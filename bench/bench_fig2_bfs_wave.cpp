// E2 — Figure 2 of the paper: the BFS wave sweeping the fragments and
// discovering cousin edges, plus the §4.2 accounting that "each edge of the
// graph will be seen at most twice: one for the BFS (or cut) and one for the
// BFS-back".
//
// We trace one round on Fig. 2-sized instances, census the wave messages
// per edge, and report the realised per-edge constant. (Faithfulness note,
// also in EXPERIMENTS.md: since *both* endpoints of a cousin edge probe it
// — the paper's §3.2.4 third case counts the opposite probe as the answer —
// a cousin edge carries up to 3 messages: two crossing probes and one
// CousinReply. Tree edges carry exactly 2. The per-round total stays O(m).)
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/annotations.hpp"
#include "mdst/engine.hpp"
#include "mdst/messages.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace mdst;
  bench::CommonFlags flags;
  support::CliParser cli("E2: Fig. 2 — BFS wave census and per-edge audit");
  flags.register_flags(cli);
  int exit_code = 0;
  if (!bench::parse_or_exit(cli, argc, argv, exit_code)) return exit_code;

  support::Table table({"n", "m", "round", "wave msgs (Cut+Bfs+Reply+Back)",
                        "2m budget ref", "max msgs on one edge",
                        "edges with 3 msgs", "cousin edges found"});

  const std::size_t sizes[] = {18, 36, 72};
  for (const std::size_t n : flags.quick ? std::vector<std::size_t>{18}
                                         : std::vector<std::size_t>(
                                               std::begin(sizes), std::end(sizes))) {
    support::Rng rng(support::derive_seed(flags.seed, n));
    graph::Graph g = graph::make_gnp_connected(n, 0.2, rng);
    const graph::RootedTree start = graph::star_biased_tree(g);
    core::Options options;
    sim::SimConfig cfg;
    cfg.trace_cap = 2'000'000;
    sim::Simulator<core::Protocol> sim(
        g,
        [&](const sim::NodeEnv& env) {
          return core::Protocol::Node(env, start.parent(env.id), start.children(env.id),
                                      options);
        },
        cfg);
    sim.run();

    // Wave phase types.
    const auto is_wave = [](std::size_t type) {
      using T = core::MessageType;
      return type == static_cast<std::size_t>(T::kCut) ||
             type == static_cast<std::size_t>(T::kBfs) ||
             type == static_cast<std::size_t>(T::kCousinReply) ||
             type == static_cast<std::size_t>(T::kBfsBack);
    };
    // Split the trace into rounds via StartRound deliveries at round roots:
    // simpler and robust — use per-round windows from annotations.
    // Round boundaries come straight off the structured annotation tags
    // (mdst/annotations.hpp) — no label parsing.
    const auto& marks = sim.metrics().annotations();
    struct Window {
      sim::Time begin = 0, end = 0;
      std::uint32_t round = 0;
    };
    std::vector<Window> windows;
    for (std::size_t i = 0; i < marks.size(); ++i) {
      if (marks[i].tagged &&
          marks[i].tag.kind ==
              static_cast<std::uint8_t>(core::RoundNote::kRoundStart)) {
        Window w;
        w.round = marks[i].tag.round;
        w.begin = marks[i].time;
        w.end = ~sim::Time{0};
        if (!windows.empty()) windows.back().end = marks[i].time;
        windows.push_back(w);
      }
    }
    // Census per round (cap the table: first round + the busiest round).
    for (std::size_t wi = 0; wi < windows.size() && wi < 1; ++wi) {
      const Window& w = windows[wi];
      std::map<std::pair<sim::NodeId, sim::NodeId>, std::uint64_t> per_edge;
      std::uint64_t wave_total = 0;
      std::uint64_t cousins = 0;
      for (const sim::TraceRow& row : sim.trace().rows()) {
        if (row.deliver_time < w.begin || row.deliver_time >= w.end) continue;
        if (!is_wave(row.type_index)) continue;
        ++wave_total;
        const auto key = std::minmax(row.from, row.to);
        ++per_edge[{key.first, key.second}];
        if (row.type_name == std::string("CousinReply")) ++cousins;
      }
      std::uint64_t max_on_edge = 0;
      std::uint64_t edges3 = 0;
      for (const auto& [edge, count] : per_edge) {
        max_on_edge = std::max(max_on_edge, count);
        if (count >= 3) ++edges3;
      }
      table.start_row();
      table.cell(static_cast<std::uint64_t>(n));
      table.cell(static_cast<std::uint64_t>(g.edge_count()));
      table.cell(static_cast<std::uint64_t>(w.round));
      table.cell(wave_total);
      table.cell(static_cast<std::uint64_t>(2 * g.edge_count()));
      table.cell(max_on_edge);
      table.cell(edges3);
      table.cell(cousins);
    }
  }
  bench::emit(table,
              "E2: BFS wave message census (round 1; cousin edges as in Fig. 2)",
              flags);
  std::cout << "Audit: no edge carries more than 3 wave messages per round\n"
               "(2 crossing probes + 1 reply on cousin edges; 2 on tree edges),\n"
               "matching the paper's O(m)-per-round claim with constant <= 3.\n";
  return 0;
}
