// E7 / Claim C6 — comparison against the Korach–Moran–Zaks lower bound.
//
// KMZ: any algorithm building a spanning tree of maximum degree at most k
// on a complete network of n processors needs Omega(n^2 / k) messages in the
// worst case. The paper argues its O((k-k*) m) algorithm is "not far from
// the optimal": on K_n, m = n(n-1)/2 and the run ends at k* = 2, so the
// end-to-end message count should track n^2 within moderate factors.
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/bounds.hpp"
#include "mdst/engine.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace mdst;
  bench::CommonFlags flags;
  support::CliParser cli("E7: messages on complete graphs vs KMZ n^2/k");
  flags.register_flags(cli);
  int exit_code = 0;
  if (!bench::parse_or_exit(cli, argc, argv, exit_code)) return exit_code;

  support::Table table({"n", "m", "k_init", "k_final", "rounds", "messages",
                        "KMZ bound n^2/k", "messages / KMZ",
                        "msgs / (k-k*+1)m"});
  const std::vector<std::size_t> sizes =
      flags.quick ? std::vector<std::size_t>{8, 16, 32}
                  : std::vector<std::size_t>{8, 16, 32, 64, 96, 128};
  for (const std::size_t n : sizes) {
    // Worst-case start: the hub star (k = n-1), as in the KMZ adversary
    // intuition. Average over seeds only for the schedule.
    support::Accumulator msgs, rounds;
    int k_init = 0, k_final = 0;
    for (std::uint64_t rep = 0; rep < flags.reps; ++rep) {
      graph::Graph g = graph::make_complete(n);
      support::Rng rng(support::derive_seed(flags.seed, n, rep));
      graph::assign_random_names(g, rng);
      const graph::RootedTree start = graph::star_biased_tree(g);
      sim::SimConfig cfg;
      cfg.seed = support::derive_seed(flags.seed, n, rep, 99);
      const core::RunResult run = core::run_mdst(g, start, {}, cfg);
      msgs.add(static_cast<double>(run.metrics.total_messages()));
      rounds.add(static_cast<double>(run.rounds));
      k_init = run.initial_degree;
      k_final = run.final_degree;
    }
    const double kmz =
        core::kmz_message_bound(n, static_cast<std::size_t>(k_final));
    const double m = static_cast<double>(n) * (static_cast<double>(n) - 1) / 2;
    const double budget = (k_init - k_final + 1) * m;
    table.start_row();
    table.cell(static_cast<std::uint64_t>(n));
    table.cell(m, 0);
    table.cell(static_cast<std::int64_t>(k_init));
    table.cell(static_cast<std::int64_t>(k_final));
    table.cell(rounds.mean(), 1);
    table.cell(msgs.mean(), 0);
    table.cell(kmz, 0);
    table.cell(msgs.mean() / kmz, 2);
    table.cell(msgs.mean() / budget, 2);
  }
  bench::emit(table, "E7: complete graphs, star start -> Hamiltonian path",
              flags);
  std::cout << "messages/KMZ grows roughly like n (the algorithm pays\n"
               "(k-k*+1) ~ n rounds of O(n^2) wave messages from a star start,\n"
               "vs the Omega(n^2/k) floor with k = 2) — the 'reasonable'\n"
               "distance from optimal the paper's conclusion concedes.\n";
  return 0;
}
