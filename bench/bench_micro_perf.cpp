// E12 — infrastructure micro-benchmarks (google-benchmark): simulator event
// throughput, graph generation, sequential baselines, and full engine runs.
// These guard the harness itself: the paper-shape experiments above are only
// trustworthy if the substrate scales predictably.
#include <benchmark/benchmark.h>

#include "analysis/pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/engine.hpp"
#include "mdst/exact.hpp"
#include "mdst/furer_raghavachari.hpp"
#include "spanning/flood_st.hpp"
#include "spanning/ghs_mst.hpp"
#include "support/rng.hpp"

namespace {

using namespace mdst;

void BM_GraphGenGnp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(1);
  for (auto _ : state) {
    graph::Graph g = graph::make_gnp_connected(n, 8.0 / static_cast<double>(n), rng);
    benchmark::DoNotOptimize(g.edge_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GraphGenGnp)->Arg(128)->Arg(512)->Arg(2048)->Arg(4096);

void BM_WilsonTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(2);
  graph::Graph g = graph::make_gnp_connected(n, 8.0 / static_cast<double>(n), rng);
  for (auto _ : state) {
    auto t = graph::random_spanning_tree(g, 0, rng);
    benchmark::DoNotOptimize(t.max_degree());
  }
}
BENCHMARK(BM_WilsonTree)->Arg(256)->Arg(1024);

void BM_SimulatorFloodSt(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  graph::Graph g = graph::make_grid(side, side);
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const spanning::SpanningRun run = spanning::run_flood_st(g, 0);
    messages += run.metrics.total_messages();
    benchmark::DoNotOptimize(run.tree.root());
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
// side=128 (16384 nodes) was impractical on the seed's binary-heap engine.
BENCHMARK(BM_SimulatorFloodSt)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

// Simulator throughput on sparse random graphs — the Gnp counterpart of the
// grid flood; n=4096 exercises the event engine at 10^5+ queued events.
void BM_SimulatorFloodGnp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(7);
  graph::Graph g = graph::make_gnp_connected(n, 8.0 / static_cast<double>(n), rng);
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const spanning::SpanningRun run = spanning::run_flood_st(g, 0);
    messages += run.metrics.total_messages();
    benchmark::DoNotOptimize(run.tree.root());
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorFloodGnp)->Arg(1024)->Arg(4096);

void BM_GhsMst(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(3);
  graph::Graph g = graph::make_gnp_connected(n, 8.0 / static_cast<double>(n), rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const spanning::SpanningRun run = spanning::run_ghs_mst(g, seed++);
    benchmark::DoNotOptimize(run.tree.max_degree());
  }
}
BENCHMARK(BM_GhsMst)->Arg(64)->Arg(256);

void BM_FurerRaghavachari(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(4);
  graph::Graph g = graph::make_gnp_connected(n, 8.0 / static_cast<double>(n), rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  for (auto _ : state) {
    const core::FrResult r =
        core::furer_raghavachari(g, start, core::FrVariant::kFull);
    benchmark::DoNotOptimize(r.final_degree);
  }
}
BENCHMARK(BM_FurerRaghavachari)->Arg(64)->Arg(128);

void BM_DistributedMdst(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(5);
  graph::Graph g = graph::make_gnp_connected(n, 8.0 / static_cast<double>(n), rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  // Past n≈2048 a healthy run exceeds the default 50M-message livelock cap
  // (n=4096 needs ~80M); the large-n sweep config raises it.
  const sim::SimConfig sim_config =
      n >= 2048 ? sim::SimConfig::large_n_sweep() : sim::SimConfig{};
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const core::RunResult run = core::run_mdst(g, start, {}, sim_config);
    messages += run.metrics.total_messages();
    benchmark::DoNotOptimize(run.final_degree);
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
// n=1024 runs ~5.7M protocol messages per iteration — newly practical with
// the calendar-queue engine. n=4096 (~89M messages, ~7 s per iteration)
// measures the asymptotic round/message growth the paper claims; it rides
// the large_n_sweep() config (the default 50M livelock cap would trip) and
// is aimed at the nightly bench job — filter it out with
// --benchmark_filter=-.*4096 when iterating locally.
BENCHMARK(BM_DistributedMdst)->Arg(32)->Arg(64)->Arg(128)->Arg(1024)->Arg(4096);

// Mode ablation on the same instances: kConcurrent lets every degree-k
// node met by the wave improve its own subtree within the round (§3.2.6),
// trading more messages per round for fewer rounds — the interesting
// comparison against BM_DistributedMdst (kSingleImprovement) is wall time
// per completed run, not msgs/s.
void BM_DistributedMdstConcurrent(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(5);  // same seed/instance as BM_DistributedMdst
  graph::Graph g = graph::make_gnp_connected(n, 8.0 / static_cast<double>(n), rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  const sim::SimConfig sim_config =
      n >= 2048 ? sim::SimConfig::large_n_sweep() : sim::SimConfig{};
  core::Options options;
  options.mode = core::EngineMode::kConcurrent;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const core::RunResult run = core::run_mdst(g, start, options, sim_config);
    messages += run.metrics.total_messages();
    benchmark::DoNotOptimize(run.final_degree);
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DistributedMdstConcurrent)->Arg(128)->Arg(1024);

// Sharded-engine scaling: the same instance/seed as BM_DistributedMdst run
// through the conservative-window engine at {n, shards}. shards=1 measures
// the pure engine overhead against the classic calendar queue (the window
// sort + barrier machinery with no parallelism to pay for it); higher shard
// counts trace the speedup curve. Output bytes are shard-count-invariant,
// so every row of this family computes the identical run — only wall time
// may differ. docs/perf.md records the measured curve per host.
void BM_DistributedMdstSharded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::uint32_t>(state.range(1));
  support::Rng rng(5);  // same seed/instance as BM_DistributedMdst
  graph::Graph g = graph::make_gnp_connected(n, 8.0 / static_cast<double>(n), rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  sim::SimConfig sim_config =
      n >= 2048 ? sim::SimConfig::large_n_sweep() : sim::SimConfig{};
  sim_config.shards = shards;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const core::RunResult run = core::run_mdst(g, start, {}, sim_config);
    messages += run.metrics.total_messages();
    benchmark::DoNotOptimize(run.final_degree);
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
// n=4096 rows feed the nightly bench gate
// (check_bench_regression.py --table 'BM_DistributedMdstSharded/4096*');
// n=1024 rows keep local iteration affordable.
BENCHMARK(BM_DistributedMdstSharded)
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 4});

void BM_ExactSolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(6);
  graph::Graph g = graph::make_gnp_connected(n, 0.3, rng);
  for (auto _ : state) {
    const core::ExactResult r = core::exact_mdst_degree(g);
    benchmark::DoNotOptimize(r.optimal_degree);
  }
}
BENCHMARK(BM_ExactSolver)->Arg(10)->Arg(14)->Arg(18);

}  // namespace

BENCHMARK_MAIN();
