// E6 / Claim C5 — message width: "all messages are of size O(log n) ...
// at most four numbers or identities by message".
//
// The meter counts identity-sized fields per message (ids_carried) and
// converts to bits with id_bits = ceil(log2 n). Single-improvement mode
// stays within the paper's 4-identity budget exactly; the §3.2.6 concurrent
// variant needs nested fragment tags (up to 8 identity fields — still
// O(log n), documented in DESIGN D2).
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"
#include "runtime/metrics.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace mdst;
  bench::CommonFlags flags;
  support::CliParser cli("E6: message width vs the 4-identity / O(log n) claim");
  flags.register_flags(cli);
  int exit_code = 0;
  if (!bench::parse_or_exit(cli, argc, argv, exit_code)) return exit_code;

  support::Table table({"mode", "n", "id bits", "max ids/message",
                        "max message bits", "paper budget 4*idbits+tag",
                        "within"});
  const std::vector<std::size_t> sizes =
      flags.quick ? std::vector<std::size_t>{64}
                  : std::vector<std::size_t>{16, 64, 256, 1024};
  for (const core::EngineMode mode :
       {core::EngineMode::kSingleImprovement, core::EngineMode::kConcurrent}) {
    for (const std::size_t n : sizes) {
      std::uint64_t max_ids = 0, max_bits = 0;
      std::size_t id_bits = sim::id_bits_for(n);
      for (std::uint64_t rep = 0; rep < flags.reps; ++rep) {
        analysis::TrialSpec spec;
        spec.family = "gnp_sparse";
        spec.n = n;
        spec.base_seed = flags.seed;
        spec.repetition = rep;
        spec.initial_tree = graph::InitialTreeKind::kStarBiased;
        spec.options.mode = mode;
        const analysis::TrialRecord r = analysis::run_trial(spec);
        max_ids = std::max(max_ids, r.max_ids);
        max_bits = std::max(max_bits, r.max_message_bits);
      }
      const std::uint64_t paper_budget =
          4 * static_cast<std::uint64_t>(id_bits) + sim::Metrics::kTagBits;
      table.start_row();
      table.cell(to_string(mode));
      table.cell(static_cast<std::uint64_t>(n));
      table.cell(static_cast<std::uint64_t>(id_bits));
      table.cell(max_ids);
      table.cell(max_bits);
      table.cell(paper_budget);
      table.cell(max_bits <= paper_budget
                     ? "yes"
                     : (max_ids <= 8 ? "no (<=8 ids, still O(log n))" : "NO"));
    }
  }
  bench::emit(table, "E6: per-message bit width", flags);
  std::cout << "Bits grow as ceil(log2 n) — the O(log n) claim — and the\n"
               "single mode respects the literal 4-identity budget.\n";
  return 0;
}
