// E13 (extension) — quantifying the paper's §1 motivation: the per-node
// load of β-synchronized computation over different spanning trees.
//
// β's control traffic per node and per round equals its tree degree, so
// the busiest node's load is the tree's maximum degree — the MDegST
// objective. This bench synchronizes a fixed number of lock-step BFS
// rounds over (a) the hub-star tree, (b) a random MST, (c) the MDegST
// result, and reports the hotspot load; α runs as the tree-less baseline.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/engine.hpp"
#include "runtime/sync_protocols.hpp"
#include "runtime/synchronizer.hpp"
#include "support/cli.hpp"

namespace {

using namespace mdst;

template <typename Sim>
std::pair<std::uint64_t, std::uint64_t> run_and_measure(Sim& sim) {
  sim.run();
  std::map<sim::NodeId, std::uint64_t> sends;
  for (const sim::TraceRow& row : sim.trace().rows()) ++sends[row.from];
  std::uint64_t busiest = 0;
  for (const auto& [node, count] : sends) busiest = std::max(busiest, count);
  return {sim.metrics().total_messages(), busiest};
}

}  // namespace

int main(int argc, char** argv) {
  bench::CommonFlags flags;
  support::CliParser cli("E13: beta-synchronizer hotspot load per tree type");
  flags.register_flags(cli);
  int exit_code = 0;
  if (!bench::parse_or_exit(cli, argc, argv, exit_code)) return exit_code;

  support::Table table({"family", "synchronizer / tree", "tree degree",
                        "total messages", "busiest node sends",
                        "hotspot vs MDegST"});
  const std::size_t n = flags.quick ? 48 : 96;
  for (const graph::FamilySpec& family : graph::standard_families()) {
    support::Rng rng(support::derive_seed(flags.seed, 13,
                                          std::hash<std::string>{}(family.name)));
    graph::Graph g = family.make(n, rng);
    const std::size_t rounds = graph::diameter(g) + 2;
    const graph::RootedTree star = graph::star_biased_tree(g);
    const graph::RootedTree mst = graph::random_mst(g, 0, rng);
    const core::RunResult improved = core::run_mdst(g, star, {}, {});

    sim::SimConfig cfg;
    cfg.delay = sim::DelayModel::uniform(1, 3);
    cfg.seed = flags.seed + 1;
    cfg.trace_cap = 10'000'000;
    auto factory = [](const sim::NodeEnv& env) {
      return sim::SyncBfs::Node(env, env.id == 0);
    };

    struct Row {
      const char* name;
      const graph::RootedTree* tree;  // nullptr = alpha
    };
    const Row rows[] = {{"alpha (no tree)", nullptr},
                        {"beta / hub star", &star},
                        {"beta / random MST", &mst},
                        {"beta / MDegST", &improved.tree}};
    std::uint64_t mdst_busiest = 0;
    {
      auto sim = sim::make_beta_synchronizer<sim::SyncBfs>(
          g, improved.tree, factory, rounds, cfg);
      mdst_busiest = run_and_measure(sim).second;
    }
    for (const Row& row : rows) {
      std::uint64_t total = 0, busiest = 0;
      if (row.tree == nullptr) {
        auto sim =
            sim::make_alpha_synchronizer<sim::SyncBfs>(g, factory, rounds, cfg);
        std::tie(total, busiest) = run_and_measure(sim);
      } else {
        auto sim = sim::make_beta_synchronizer<sim::SyncBfs>(
            g, *row.tree, factory, rounds, cfg);
        std::tie(total, busiest) = run_and_measure(sim);
      }
      table.start_row();
      table.cell(family.name);
      table.cell(row.name);
      table.cell(row.tree ? std::to_string(row.tree->max_degree()) : "-");
      table.cell(total);
      table.cell(busiest);
      table.cell(support::format_double(
          static_cast<double>(busiest) /
              static_cast<double>(std::max<std::uint64_t>(mdst_busiest, 1)),
          2) + "x");
    }
  }
  bench::emit(table,
              "E13: hotspot load, lock-step BFS synchronized for diameter+2 "
              "rounds (n = " + std::to_string(n) + ")",
              flags);
  std::cout << "beta/MDegST keeps the busiest node's work minimal — the\n"
               "network-synchronization motivation of the paper, measured.\n";
  return 0;
}
