// E10 — engine-mode ablation (paper §3.2.6 and DESIGN D2):
//   single      — one improvement per round (analysed core of the paper)
//   concurrent  — every degree-k node met by the wave improves its subtree
//                 in the same round (§3.2.6)
//   strict_lot  — extension: run until every max-degree node is blocked
// Concurrency should cut rounds (and time) when many nodes share the
// maximum degree; strict LOT may trade extra rounds for equal-or-better
// degrees and a stronger stop certificate.
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace mdst;
  bench::CommonFlags flags;
  support::CliParser cli("E10: engine mode ablation");
  flags.register_flags(cli);
  int exit_code = 0;
  if (!bench::parse_or_exit(cli, argc, argv, exit_code)) return exit_code;

  support::Table table({"family", "mode", "mean k_init", "mean k_final",
                        "mean rounds", "mean improvements", "mean messages",
                        "mean causal time"});
  const std::size_t n = flags.quick ? 40 : 80;
  for (const graph::FamilySpec& family : graph::standard_families()) {
    for (const core::EngineMode mode :
         {core::EngineMode::kSingleImprovement, core::EngineMode::kConcurrent,
          core::EngineMode::kStrictLot}) {
      support::Accumulator k_init, k_final, rounds, improvements, messages,
          time;
      for (std::uint64_t rep = 0; rep < flags.reps; ++rep) {
        analysis::TrialSpec spec;
        spec.family = family.name;
        spec.n = n;
        spec.base_seed = flags.seed;
        spec.repetition = rep;
        spec.initial_tree = graph::InitialTreeKind::kStarBiased;
        spec.options.mode = mode;
        const analysis::TrialRecord r = analysis::run_trial(spec);
        k_init.add(r.k_init);
        k_final.add(r.k_final);
        rounds.add(static_cast<double>(r.rounds));
        improvements.add(static_cast<double>(r.improvements));
        messages.add(static_cast<double>(r.messages));
        time.add(static_cast<double>(r.causal_time));
      }
      table.start_row();
      table.cell(family.name);
      table.cell(to_string(mode));
      table.cell(k_init.mean(), 1);
      table.cell(k_final.mean(), 1);
      table.cell(rounds.mean(), 1);
      table.cell(improvements.mean(), 1);
      table.cell(messages.mean(), 0);
      table.cell(time.mean(), 0);
    }
  }
  bench::emit(table, "E10: single vs concurrent vs strict LOT (n = " +
                         std::to_string(n) + ", star start)",
              flags);
  return 0;
}
