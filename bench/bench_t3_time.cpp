// E5 / Claim C3 — time complexity O((k - k*) * n).
//
// "Time" is the paper's measure: the longest causal dependency chain, with
// every hop costing at most one unit. The runtime tracks it as a Lamport
// depth, which is delay-model independent; under unit delays it coincides
// with the simulated completion time (both shown).
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace mdst;
  bench::CommonFlags flags;
  support::CliParser cli("E5: causal time vs (k-k*+1)*n");
  flags.register_flags(cli);
  int exit_code = 0;
  if (!bench::parse_or_exit(cli, argc, argv, exit_code)) return exit_code;

  support::Table table({"mode", "family", "n", "mean k-k*",
                        "mean causal time", "budget (k-k*+1)n", "ratio",
                        "ratio max", "rounds"});
  const std::vector<std::size_t> sizes =
      flags.quick ? std::vector<std::size_t>{32, 64}
                  : std::vector<std::size_t>{32, 64, 128, 256};

  std::vector<double> xs, ys;
  for (const core::EngineMode mode :
       {core::EngineMode::kConcurrent, core::EngineMode::kSingleImprovement})
  for (const graph::FamilySpec& family : graph::standard_families()) {
    for (const std::size_t n : sizes) {
      support::Accumulator drop, time, budget, ratio, rounds;
      for (std::uint64_t rep = 0; rep < flags.reps; ++rep) {
        analysis::TrialSpec spec;
        spec.family = family.name;
        spec.n = n;
        spec.base_seed = flags.seed;
        spec.repetition = rep;
        spec.initial_tree = graph::InitialTreeKind::kStarBiased;
        spec.options.mode = mode;
        const analysis::TrialRecord r = analysis::run_trial(spec);
        const double b = analysis::time_budget(r);
        drop.add(r.k_init - r.k_final);
        time.add(static_cast<double>(r.causal_time));
        budget.add(b);
        ratio.add(static_cast<double>(r.causal_time) / b);
        rounds.add(static_cast<double>(r.rounds));
        xs.push_back(b);
        ys.push_back(static_cast<double>(r.causal_time));
      }
      table.start_row();
      table.cell(to_string(mode));
      table.cell(family.name);
      table.cell(static_cast<std::uint64_t>(n));
      table.cell(drop.mean(), 1);
      table.cell(time.mean(), 0);
      table.cell(budget.mean(), 0);
      table.cell(ratio.mean(), 2);
      table.cell(ratio.max(), 2);
      table.cell(rounds.mean(), 1);
    }
  }
  bench::emit(table, "E5: causal time / ((k-k*+1) * n)", flags);

  const support::LinearFit fit = support::fit_linear(xs, ys);
  std::cout << "global fit  time = " << support::format_double(fit.intercept, 0)
            << " + " << support::format_double(fit.slope, 2)
            << " * (k-k*+1)n   (R^2 = " << support::format_double(fit.r_squared, 3)
            << ")\n";
  return 0;
}
