// E3 / Claim C1 — approximation quality: the distributed algorithm ends at a
// locally optimal tree of degree at most Δ* + 1 (FR Theorem 1).
//
// Small instances are certified against the exact branch-and-bound optimum;
// larger ones against the sequential Fürer–Raghavachari baselines and the
// vertex-cut lower bound. The headline column is the share of instances
// with Δ_dist <= Δ* + 1 (paper's guarantee; DESIGN D3 documents why an
// occasional miss would even be possible for the faithful stop rule — the
// table quantifies that it essentially never happens in practice).
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/bounds.hpp"
#include "mdst/exact.hpp"
#include "mdst/furer_raghavachari.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace mdst;
  bench::CommonFlags flags;
  support::CliParser cli("E3: approximation quality vs exact / FR / bounds");
  flags.register_flags(cli);
  int exit_code = 0;
  if (!bench::parse_or_exit(cli, argc, argv, exit_code)) return exit_code;

  core::Options single;  // paper default
  core::Options strict;
  strict.mode = core::EngineMode::kStrictLot;

  // --- Part 1: certified against the exact optimum (small n) --------------
  {
    support::Table table({"family", "n", "instances", "mean k_init",
                          "mean Δ_dist", "mean Δ_strict", "mean Δ_FR",
                          "mean Δ*", "within Δ*+1", "optimal"});
    const std::vector<std::size_t> sizes =
        flags.quick ? std::vector<std::size_t>{10}
                    : std::vector<std::size_t>{10, 14, 18};
    for (const graph::FamilySpec& family : graph::standard_families()) {
      for (const std::size_t n : sizes) {
        support::Accumulator k_init, k_dist, k_strict, k_fr, k_opt;
        std::size_t within = 0, optimal = 0, solved = 0;
        for (std::uint64_t rep = 0; rep < flags.reps; ++rep) {
          analysis::TrialSpec spec;
          spec.family = family.name;
          spec.n = n;
          spec.base_seed = flags.seed;
          spec.repetition = rep;
          spec.initial_tree = graph::InitialTreeKind::kStarBiased;
          spec.options = single;
          const analysis::TrialRecord r = analysis::run_trial(spec);

          const core::ExactResult exact =
              core::exact_mdst_degree(r.graph, 5'000'000);
          if (!exact.proven) continue;  // skip unproven instances honestly
          ++solved;

          spec.options = strict;
          const analysis::TrialRecord rs = analysis::run_trial(spec);
          const core::FrResult fr = core::furer_raghavachari(
              r.graph, r.initial_tree, core::FrVariant::kFull);

          k_init.add(r.k_init);
          k_dist.add(r.k_final);
          k_strict.add(rs.k_final);
          k_fr.add(fr.final_degree);
          k_opt.add(exact.optimal_degree);
          if (r.k_final <= exact.optimal_degree + 1) ++within;
          if (r.k_final == exact.optimal_degree) ++optimal;
        }
        if (solved == 0) continue;
        table.start_row();
        table.cell(family.name);
        table.cell(static_cast<std::uint64_t>(n));
        table.cell(static_cast<std::uint64_t>(solved));
        table.cell(k_init.mean(), 2);
        table.cell(k_dist.mean(), 2);
        table.cell(k_strict.mean(), 2);
        table.cell(k_fr.mean(), 2);
        table.cell(k_opt.mean(), 2);
        table.cell(support::format_double(
            100.0 * static_cast<double>(within) / static_cast<double>(solved), 1) + "%");
        table.cell(support::format_double(
            100.0 * static_cast<double>(optimal) / static_cast<double>(solved), 1) + "%");
      }
    }
    bench::emit(table, "E3a: distributed vs exact optimum (star-biased start)",
                flags);
  }

  // --- Part 2: larger instances vs FR and the lower bound -----------------
  {
    support::Table table({"family", "n", "mean k_init", "mean Δ_dist",
                          "mean Δ_FR(full)", "mean LB", "Δ_dist <= Δ_FR + 1"});
    const std::vector<std::size_t> sizes =
        flags.quick ? std::vector<std::size_t>{48}
                    : std::vector<std::size_t>{48, 96, 160};
    for (const graph::FamilySpec& family : graph::standard_families()) {
      for (const std::size_t n : sizes) {
        support::Accumulator k_init, k_dist, k_fr, lb;
        std::size_t close = 0, total = 0;
        for (std::uint64_t rep = 0; rep < flags.reps; ++rep) {
          analysis::TrialSpec spec;
          spec.family = family.name;
          spec.n = n;
          spec.base_seed = flags.seed + 1;
          spec.repetition = rep;
          spec.initial_tree = graph::InitialTreeKind::kStarBiased;
          const analysis::TrialRecord r = analysis::run_trial(spec);
          const core::FrResult fr = core::furer_raghavachari(
              r.graph, r.initial_tree, core::FrVariant::kFull);
          k_init.add(r.k_init);
          k_dist.add(r.k_final);
          k_fr.add(fr.final_degree);
          lb.add(core::degree_lower_bound(r.graph));
          if (r.k_final <= fr.final_degree + 1) ++close;
          ++total;
        }
        table.start_row();
        table.cell(family.name);
        table.cell(static_cast<std::uint64_t>(n));
        table.cell(k_init.mean(), 2);
        table.cell(k_dist.mean(), 2);
        table.cell(k_fr.mean(), 2);
        table.cell(lb.mean(), 2);
        table.cell(support::format_double(
            100.0 * static_cast<double>(close) / static_cast<double>(total), 1) + "%");
      }
    }
    bench::emit(table, "E3b: distributed vs sequential FR and lower bounds",
                flags);
  }
  return 0;
}
