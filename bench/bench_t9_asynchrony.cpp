// E11 — asynchrony robustness: the algorithm is event-driven, so its
// *quality* must not depend on message timing; only wall-clock completion
// may stretch. We run identical instances under unit, uniform and
// heavy-tailed link delays and staggered schedules and report final degree,
// causal time (delay-independent), and simulated completion time.
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/engine.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace mdst;
  bench::CommonFlags flags;
  support::CliParser cli("E11: delay-model robustness");
  flags.register_flags(cli);
  int exit_code = 0;
  if (!bench::parse_or_exit(cli, argc, argv, exit_code)) return exit_code;

  struct DelayCase {
    const char* name;
    sim::DelayModel model;
  };
  const DelayCase cases[] = {
      {"unit", sim::DelayModel::unit()},
      {"uniform(1,10)", sim::DelayModel::uniform(1, 10)},
      {"heavy_tail(p=0.2)", sim::DelayModel::heavy_tail(0.2)},
  };

  support::Table table({"family", "delay model", "k_final (min..max)",
                        "mean causal time", "mean completion time",
                        "mean messages"});
  const std::size_t n = flags.quick ? 32 : 64;
  for (const graph::FamilySpec& family : graph::standard_families()) {
    // One fixed instance + tree per family; vary only the schedule.
    support::Rng rng(support::derive_seed(flags.seed, 0,
                                          std::hash<std::string>{}(family.name)));
    graph::Graph g = family.make(n, rng);
    graph::assign_random_names(g, rng);
    const graph::RootedTree start = graph::star_biased_tree(g);
    for (const DelayCase& dc : cases) {
      support::Accumulator k_final, causal, wall, messages;
      for (std::uint64_t rep = 0; rep < flags.reps; ++rep) {
        sim::SimConfig cfg;
        cfg.delay = dc.model;
        cfg.seed = support::derive_seed(flags.seed, rep, 7);
        const core::RunResult run = core::run_mdst(g, start, {}, cfg);
        k_final.add(run.final_degree);
        causal.add(static_cast<double>(run.metrics.max_causal_depth()));
        wall.add(static_cast<double>(run.metrics.last_delivery_time()));
        messages.add(static_cast<double>(run.metrics.total_messages()));
      }
      table.start_row();
      table.cell(family.name);
      table.cell(dc.name);
      table.cell(support::format_double(k_final.min(), 0) + ".." +
                 support::format_double(k_final.max(), 0));
      table.cell(causal.mean(), 0);
      table.cell(wall.mean(), 0);
      table.cell(messages.mean(), 0);
    }
  }
  bench::emit(table, "E11: schedule/delay robustness (fixed instances)", flags);
  std::cout << "Final degree is schedule-independent per instance; causal\n"
               "time stays near the unit-delay value while completion time\n"
               "stretches with the delay distribution — the asynchronous\n"
               "model behaves as §2 requires.\n";
  return 0;
}
