// E9 / Claim C4 — per-round phase budgets (paper §4.2):
//   SearchDegree <= n-1   (ours: 2(n-1) — the root must broadcast the round
//                          start; the paper's leaves-initiate trick only
//                          works for the first round, see EXPERIMENTS.md)
//   MoveRoot     <= n-1
//   Cut+BFS      <= 2m    (ours: <= 3m — both endpoints probe cousin edges)
//   Choose       <= n-1   (ours: <= 3n — two-phase commit + path reversal)
// and the round count k - k* + 1.
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace mdst;
  bench::CommonFlags flags;
  support::CliParser cli("E9: per-round phase message budgets");
  flags.register_flags(cli);
  int exit_code = 0;
  if (!bench::parse_or_exit(cli, argc, argv, exit_code)) return exit_code;

  analysis::TrialSpec spec;
  spec.family = "gnp_sparse";
  spec.n = flags.quick ? 32 : 64;
  spec.base_seed = flags.seed;
  spec.initial_tree = graph::InitialTreeKind::kStarBiased;
  const analysis::TrialRecord r = analysis::run_trial(spec);
  const double n = static_cast<double>(r.n);
  const double m = static_cast<double>(r.m);

  support::Table table({"round", "k", "search", "<=2(n-1)", "move", "<=n-1",
                        "wave", "<=3m", "choose", "<=3n", "improved"});
  bool all_within = true;
  for (const core::RoundStats& rs : r.run.round_stats) {
    const bool ok = static_cast<double>(rs.search_msgs) <= 2 * (n - 1) &&
                    static_cast<double>(rs.move_msgs) <= n - 1 &&
                    static_cast<double>(rs.wave_msgs) <= 3 * m &&
                    static_cast<double>(rs.choose_msgs) <= 3 * n;
    all_within = all_within && ok;
    table.start_row();
    table.cell(static_cast<std::uint64_t>(rs.round));
    table.cell(static_cast<std::int64_t>(rs.k));
    table.cell(rs.search_msgs);
    table.cell(2 * (n - 1), 0);
    table.cell(rs.move_msgs);
    table.cell(n - 1, 0);
    table.cell(rs.wave_msgs);
    table.cell(3 * m, 0);
    table.cell(rs.choose_msgs);
    table.cell(3 * n, 0);
    table.cell(rs.improved ? "yes" : "no");
  }
  bench::emit(table,
              "E9: round budgets, " + spec.family + " n=" +
                  std::to_string(r.n) + " m=" + std::to_string(r.m),
              flags);

  std::cout << "rounds used: " << r.rounds << " (paper predicts k-k*+1 = "
            << (r.k_init - r.k_final + 1) << " from k_init=" << r.k_init
            << " to k*=" << r.k_final << ")\n";
  std::cout << (all_within ? "every round is within the (our-constant) budgets"
                           : "BUDGET VIOLATION — investigate")
            << "\n";
  return 0;
}
