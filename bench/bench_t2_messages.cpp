// E4 / Claim C2 — message complexity O((k - k*) * m).
//
// The measured quantity is total messages divided by the paper's budget
// (k - k* + 1) * m; the claim holds if that ratio is bounded by a constant
// across sizes and families (the table shows it plateaus around 3-4,
// consistent with our honest per-round constants: ~2(n-1) for the search
// phase, up to ~3 messages per edge in the wave — see E2/E9).
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace mdst;
  bench::CommonFlags flags;
  support::CliParser cli("E4: message complexity vs (k-k*+1)*m");
  flags.register_flags(cli);
  int exit_code = 0;
  if (!bench::parse_or_exit(cli, argc, argv, exit_code)) return exit_code;

  support::Table table({"mode", "family", "n", "m", "mean k-k*",
                        "mean messages", "budget (k-k*+1)m", "ratio",
                        "ratio max", "rounds"});
  const std::vector<std::size_t> sizes =
      flags.quick ? std::vector<std::size_t>{32, 64}
                  : std::vector<std::size_t>{32, 64, 128, 256};

  std::vector<double> xs, ys;  // for the global fit messages vs budget
  for (const core::EngineMode mode :
       {core::EngineMode::kConcurrent, core::EngineMode::kSingleImprovement})
  for (const graph::FamilySpec& family : graph::standard_families()) {
    for (const std::size_t n : sizes) {
      support::Accumulator drop, messages, budget, ratio, rounds;
      for (std::uint64_t rep = 0; rep < flags.reps; ++rep) {
        analysis::TrialSpec spec;
        spec.family = family.name;
        spec.n = n;
        spec.base_seed = flags.seed;
        spec.repetition = rep;
        spec.initial_tree = graph::InitialTreeKind::kStarBiased;
        spec.options.mode = mode;
        const analysis::TrialRecord r = analysis::run_trial(spec);
        const double b = analysis::message_budget(r);
        drop.add(r.k_init - r.k_final);
        messages.add(static_cast<double>(r.messages));
        budget.add(b);
        ratio.add(static_cast<double>(r.messages) / b);
        rounds.add(static_cast<double>(r.rounds));
        xs.push_back(b);
        ys.push_back(static_cast<double>(r.messages));
      }
      table.start_row();
      table.cell(to_string(mode));
      table.cell(family.name);
      table.cell(static_cast<std::uint64_t>(n));
      table.cell(support::format_double(
          budget.mean() / (drop.mean() + 1.0), 0));
      table.cell(drop.mean(), 1);
      table.cell(messages.mean(), 0);
      table.cell(budget.mean(), 0);
      table.cell(ratio.mean(), 2);
      table.cell(ratio.max(), 2);
      table.cell(rounds.mean(), 1);
    }
  }
  bench::emit(table, "E4: messages / ((k-k*+1) * m)", flags);

  const support::LinearFit fit = support::fit_linear(xs, ys);
  std::cout << "global fit  messages = " << support::format_double(fit.intercept, 0)
            << " + " << support::format_double(fit.slope, 2)
            << " * (k-k*+1)m   (R^2 = " << support::format_double(fit.r_squared, 3)
            << ")\n";
  std::cout << "A bounded ratio and a linear fit with high R^2 reproduce the\n"
               "paper's O((k-k*) m) message bound (C2).\n";
  return 0;
}
