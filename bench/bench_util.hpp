// Shared helpers for the experiment binaries. Each bench regenerates one
// artefact of EXPERIMENTS.md (a figure scenario or a claim table); they all
// print a fixed-width table to stdout and accept --csv=<path> to mirror it.
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "support/cli.hpp"
#include "support/table.hpp"

namespace mdst::bench {

/// Standard flags shared by every bench binary.
struct CommonFlags {
  std::uint64_t seed = 0x5eed;
  std::uint64_t reps = 5;
  std::string csv;
  bool quick = false;  // trims the sweep for smoke runs

  void register_flags(support::CliParser& cli) {
    cli.add_uint("seed", &seed, "base seed for all instances");
    cli.add_uint("reps", &reps, "repetitions (seeds) per configuration");
    cli.add_string("csv", &csv, "also write the table as CSV to this path");
    cli.add_bool("quick", &quick, "reduced sweep for smoke testing");
  }
};

/// Print the table and mirror to CSV when requested.
inline void emit(const support::Table& table, const std::string& title,
                 const CommonFlags& flags) {
  table.print(std::cout, title);
  if (!flags.csv.empty()) {
    std::ofstream out(flags.csv);
    table.write_csv(out);
    std::cout << "(csv written to " << flags.csv << ")\n";
  }
  std::cout << '\n';
}

/// Boilerplate main()-helper: parse flags, bail politely on --help/errors.
inline bool parse_or_exit(support::CliParser& cli, int argc, char** argv,
                          int& exit_code) {
  const auto parsed = cli.parse(argc, argv);
  if (parsed.help_requested) {
    std::cout << cli.help_text();
    exit_code = 0;
    return false;
  }
  if (!parsed.ok) {
    std::cerr << parsed.error << '\n';
    exit_code = 1;
    return false;
  }
  return true;
}

}  // namespace mdst::bench
