// E1 — Figure 1 of the paper: a single edge exchange lowers the maximum
// degree.
//
// The figure shows root p with two children x and x'; x' hangs subtrees C
// and D, x hangs E, and a non-tree ("cousin") edge joins D and E. Cutting
// p's children, the BFS wave finds the D—E edge; p deletes the tree edge to
// x' (the fragment whose node offered the exchange) and the D—E edge
// reconnects the two fragments: deg(p) drops by one.
//
// We rebuild exactly that topology, run ONE round of the distributed
// algorithm, and print the before/after structure, then repeat the same
// single-round exercise over a family sweep to show the exchange mechanics
// are generic.
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/checker.hpp"
#include "mdst/engine.hpp"
#include "support/cli.hpp"

namespace {

using namespace mdst;

/// The paper's Fig. 1 instance. Vertices: p=0, x=1, x'=2; E = {3,4} under x;
/// C = {5} and D = {6,7} under x'; cousin edge 4(∈E)–7(∈D).
struct Fig1 {
  graph::Graph g;
  graph::RootedTree tree;
};

Fig1 make_fig1() {
  graph::Graph g(8);
  g.add_edge(0, 1);  // p - x
  g.add_edge(0, 2);  // p - x'
  g.add_edge(1, 3);  // x - E
  g.add_edge(3, 4);
  g.add_edge(2, 5);  // x' - C
  g.add_edge(2, 6);  // x' - D
  g.add_edge(6, 7);
  g.add_edge(4, 7);  // the cousin edge between E and D
  // p additionally holds a third child to make it the unique max (deg 3).
  const graph::VertexId extra = g.add_vertex();
  g.add_edge(0, extra);
  std::vector<graph::VertexId> parents{
      graph::kInvalidVertex, 0, 0, 1, 3, 2, 2, 6, 0};
  return {g, graph::RootedTree::from_parents(0, std::move(parents))};
}

}  // namespace

int main(int argc, char** argv) {
  bench::CommonFlags flags;
  support::CliParser cli("E1: Fig. 1 — one exchange improves the max degree");
  flags.register_flags(cli);
  int exit_code = 0;
  if (!bench::parse_or_exit(cli, argc, argv, exit_code)) return exit_code;

  // --- Part 1: the literal Fig. 1 scenario --------------------------------
  Fig1 fig = make_fig1();
  std::cout << "Fig. 1 scenario: " << fig.g.summary() << ", root p=0 degree "
            << fig.tree.degree(0) << "\n";
  core::Options options;
  const core::RunResult run = core::run_mdst(fig.g, fig.tree, options, {});
  std::cout << "after the algorithm: root degree "
            << run.tree.degree(0) << ", tree max degree " << run.final_degree
            << ", improvements " << run.improvements << "\n";
  const bool added = run.tree.has_tree_edge(4, 7);
  // The exchange may detach either fragment endpoint's side (both are valid
  // swaps for p); report which of p's child edges was cut.
  const char* removed = !run.tree.has_tree_edge(0, 2)   ? "p-x' (0,2)"
                        : !run.tree.has_tree_edge(0, 1) ? "p-x (0,1)"
                                                        : "none";
  std::cout << "exchange as in the figure: added D-E cousin edge (4,7)="
            << (added ? "yes" : "no") << ", deleted tree edge at p: "
            << removed << "\n\n";

  // --- Part 2: the same single-round exchange across families -------------
  support::Table table({"family", "n", "m", "k before", "k after round 1",
                        "exchange applied", "k final"});
  for (const graph::FamilySpec& family : graph::standard_families()) {
    for (std::uint64_t rep = 0; rep < (flags.quick ? 1 : flags.reps); ++rep) {
      support::Rng rng(support::derive_seed(flags.seed, rep,
                                            std::hash<std::string>{}(family.name)));
      graph::Graph g = family.make(32, rng);
      const graph::RootedTree start = graph::star_biased_tree(g);
      // One full run; the round log gives us "after round 1".
      const core::RunResult full = core::run_mdst(g, start, options, {});
      int k_after_first = static_cast<int>(start.max_degree());
      if (full.round_stats.size() >= 2 && full.round_stats[1].k > 0) {
        k_after_first = full.round_stats[1].k;
      }
      table.start_row();
      table.cell(family.name);
      table.cell(static_cast<std::uint64_t>(g.vertex_count()));
      table.cell(static_cast<std::uint64_t>(g.edge_count()));
      table.cell(static_cast<std::int64_t>(start.max_degree()));
      table.cell(static_cast<std::int64_t>(k_after_first));
      table.cell(full.round_stats.empty() || !full.round_stats[0].improved
                     ? "no"
                     : "yes");
      table.cell(static_cast<std::int64_t>(full.final_degree));
      if (flags.quick) break;
    }
  }
  bench::emit(table, "E1: single-round exchange across families", flags);
  return 0;
}
