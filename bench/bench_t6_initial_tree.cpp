// E8 — the conclusion's remark: "we can hope to change a bit the algorithm
// of ST construction in order to obtain a not so bad k."
//
// The initial tree's degree k drives the round count (k - k* + 1) and hence
// the total cost. This ablation runs the same instances from five startup
// trees — the adversarial hub star, a uniformly random tree, DFS, BFS and a
// (GHS-equivalent) random MST — and shows how much a good startup tree
// saves end to end.
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace mdst;
  bench::CommonFlags flags;
  support::CliParser cli("E8: initial-tree ablation (conclusion remark)");
  flags.register_flags(cli);
  int exit_code = 0;
  if (!bench::parse_or_exit(cli, argc, argv, exit_code)) return exit_code;

  support::Table table({"family", "initial tree", "mean k_init",
                        "mean k_final", "mean rounds", "mean messages",
                        "mean causal time"});
  const std::size_t n = flags.quick ? 48 : 96;
  const graph::InitialTreeKind kinds[] = {
      graph::InitialTreeKind::kStarBiased, graph::InitialTreeKind::kRandom,
      graph::InitialTreeKind::kDfs, graph::InitialTreeKind::kBfs,
      graph::InitialTreeKind::kMst};
  for (const graph::FamilySpec& family : graph::standard_families()) {
    for (const graph::InitialTreeKind kind : kinds) {
      support::Accumulator k_init, k_final, rounds, messages, time;
      for (std::uint64_t rep = 0; rep < flags.reps; ++rep) {
        analysis::TrialSpec spec;
        spec.family = family.name;
        spec.n = n;
        spec.base_seed = flags.seed;
        spec.repetition = rep;
        spec.initial_tree = kind;
        const analysis::TrialRecord r = analysis::run_trial(spec);
        k_init.add(r.k_init);
        k_final.add(r.k_final);
        rounds.add(static_cast<double>(r.rounds));
        messages.add(static_cast<double>(r.messages));
        time.add(static_cast<double>(r.causal_time));
      }
      table.start_row();
      table.cell(family.name);
      table.cell(to_string(kind));
      table.cell(k_init.mean(), 1);
      table.cell(k_final.mean(), 1);
      table.cell(rounds.mean(), 1);
      table.cell(messages.mean(), 0);
      table.cell(time.mean(), 0);
    }
  }
  bench::emit(table, "E8: startup tree choice vs cost (n = " +
                         std::to_string(n) + ")",
              flags);
  std::cout << "DFS/BFS/MST starts give small k and correspondingly few\n"
               "rounds; the star start exercises the worst case k ~ max\n"
               "graph degree. Final quality is unchanged — only cost moves.\n";
  return 0;
}
