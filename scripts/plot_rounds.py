#!/usr/bin/env python3
"""Plot per-round flight-recorder telemetry: convergence curves of one run.

Input is the round-telemetry JSONL written by `mdst_lab rounds --jsonl=...`
(one object per round, fixed key order; docs/observability.md has the
schema). The script draws one figure with three stacked panels over the
round number:

    k (decided max degree) and fragments     per round
    messages and bits delivered              per round (log y)
    causal-depth watermark / in-flight peak  per round

so "is it converging, and what does each round cost" is read off a single
figure. The PNG is written next to the output prefix; nothing is ever
displayed (matplotlib's Agg backend), so the script is CI-safe.

`--check-only` parses, prints the per-round summary, and exits without
importing matplotlib at all — the mode the ctest smoke test runs, keeping
tier-1 independent of matplotlib being installed.

Usage:
    plot_rounds.py rounds.jsonl --out plots/rounds
    plot_rounds.py rounds.jsonl --check-only
"""

import argparse
import json
import sys

REQUIRED_FIELDS = (
    "round", "k", "fragments", "waves", "improved",
    "messages", "bits", "causal_depth", "in_flight_peak",
    "time_start", "time_end",
)


def load_rounds(path):
    """Parse the JSONL file; every malformed line is a hard error naming
    its line number (the file is machine-written — silence would hide a
    truncated export)."""
    rounds = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(f"{path}:{lineno}: not valid JSON: {error}")
            missing = [f for f in REQUIRED_FIELDS if f not in row]
            if missing:
                raise SystemExit(
                    f"{path}:{lineno}: missing field(s) {', '.join(missing)}"
                    " — is this `mdst_lab rounds --jsonl` output?")
            rounds.append(row)
    if not rounds:
        raise SystemExit(f"{path}: no telemetry rows")
    return rounds


def describe(rounds, out=sys.stdout):
    improved = sum(1 for r in rounds if r["improved"])
    total_messages = sum(r["messages"] for r in rounds)
    ks = [r["k"] for r in rounds if r["k"] >= 0]
    headline = (f"{len(rounds)} round(s), {improved} improved, "
                f"{total_messages} messages")
    if ks:
        headline += f", k {ks[0]} -> {ks[-1]}"
    print(headline, file=out)
    for r in rounds:
        print(f"  round {r['round']:>4}: k={r['k']:>3} "
              f"fragments={r['fragments']:>5} waves={r['waves']} "
              f"improved={int(r['improved'])} msgs={r['messages']:>8} "
              f"bits={r['bits']:>10} depth={r['causal_depth']:>8} "
              f"inflight<={r['in_flight_peak']}", file=out)


def plot(rounds, out_prefix):
    import matplotlib
    matplotlib.use("Agg")  # never require a display
    import matplotlib.pyplot as plt

    xs = [r["round"] for r in rounds]
    fig, (ax_k, ax_cost, ax_depth) = plt.subplots(
        3, 1, figsize=(7, 10), sharex=True)

    ax_k.step(xs, [r["k"] for r in rounds], where="post", marker="o",
              label="k (decided degree)")
    ax_k.plot(xs, [r["fragments"] for r in rounds], marker=".",
              alpha=0.6, label="fragments")
    ax_k.set_ylabel("degree / fragments")
    ax_k.legend()

    ax_cost.plot(xs, [r["messages"] for r in rounds], marker="o",
                 label="messages")
    ax_cost.plot(xs, [r["bits"] for r in rounds], marker=".",
                 alpha=0.6, label="bits")
    ax_cost.set_yscale("log")
    ax_cost.set_ylabel("per-round cost")
    ax_cost.legend()

    ax_depth.plot(xs, [r["causal_depth"] for r in rounds], marker="o",
                  label="causal-depth watermark")
    ax_depth.plot(xs, [r["in_flight_peak"] for r in rounds], marker=".",
                  alpha=0.6, label="in-flight peak")
    ax_depth.set_ylabel("depth / in-flight")
    ax_depth.set_xlabel("round")
    ax_depth.legend()

    for axis in (ax_k, ax_cost, ax_depth):
        axis.grid(True, alpha=0.3)
    fig.suptitle("per-round telemetry")
    fig.tight_layout()
    name = f"{out_prefix}.png"
    fig.savefig(name, dpi=120)
    plt.close(fig)
    return name


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("jsonl", help="`mdst_lab rounds --jsonl` output file")
    parser.add_argument("--out", default="rounds",
                        help="output prefix for the PNG (default: rounds)")
    parser.add_argument("--check-only", action="store_true",
                        help="parse and print the per-round summary; no "
                             "matplotlib import, nothing written")
    args = parser.parse_args()

    rounds = load_rounds(args.jsonl)
    if args.check_only:
        describe(rounds)
        print(f"ok: {len(rounds)} round(s)")
        return 0
    print(f"wrote {plot(rounds, args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
