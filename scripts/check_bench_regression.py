#!/usr/bin/env python3
"""Fail the nightly job when a micro benchmark regresses against history.

Compares a fresh BENCH_micro.json (google-benchmark JSON from the `bench`
target) against the `micro` sections of the last --window records of
BENCH_history.jsonl (written by append_bench_history.py). The baseline per
bench is the *median* over that window, so one noisy night on a shared CI
runner neither trips the gate by itself nor poisons the next comparison.
For every bench present in both:

  * benches with a `msgs/s` counter regress when the fresh rate drops more
    than --threshold below the baseline;
  * benches without one fall back to real_time_ns (regress when the fresh
    time exceeds the baseline time by more than --threshold).

Exits 1 listing the regressed benches, 0 otherwise. Run it *before*
appending the fresh record so a regressed night neither pollutes the
baseline nor silently masks the next comparison.

`--table PATTERN` (repeatable, fnmatch syntax) restricts the comparison to
the benches whose name matches any pattern — e.g.
`--table 'BM_DistributedMdst/128'` gates specifically on the MDST/128
acceptance number and reports it by name, on top of (or instead of) the
whole-suite sweep. A --table run that matches nothing is an error, not a
pass: a typo must not silently disable the gate.

Usage:
    check_bench_regression.py --micro BENCH_micro.json \
        --history BENCH_history.jsonl [--threshold 0.10] [--window 5] \
        [--table GLOB ...]
"""

import argparse
import fnmatch
import json
import os
import statistics
import sys

RATE_KEY = "msgs/s"


def load_micro(path: str) -> dict:
    """BENCH_micro.json -> {bench name -> {real_time_ns, msgs/s, ...}}.

    Mirrors append_bench_history.load_micro so the fresh run and the
    history record are normalized identically.
    """
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    micro = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate" and \
                bench.get("aggregate_name") != "median":
            continue
        entry = {"real_time_ns": bench.get("real_time")}
        for key, value in bench.items():
            if isinstance(value, (int, float)) and key not in entry:
                entry[key] = value
        micro[bench["name"]] = entry
    return micro


def baseline_micro(path: str, window: int) -> tuple:
    """Median per (bench, metric) over the last `window` history records.

    Returns (baseline, used_records). Short history (fewer than `window`
    records, e.g. the first nights after the gate lands) must still gate:
    the baseline is the median of however many records exist — never a
    silent pass. Records without a `micro` section are skipped.
    """
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    # Filter before slicing: a few recent micro-less records (e.g. nights
    # where the bench step failed) must not shrink the baseline while older
    # valid records exist.
    records = [json.loads(line).get("micro", {}) for line in lines]
    records = [record for record in records if record][-window:]
    samples = {}
    for record in records:
        for name, entry in record.items():
            for key, value in entry.items():
                if isinstance(value, (int, float)):
                    samples.setdefault(name, {}).setdefault(key, []).append(
                        value)
    baseline = {name: {key: statistics.median(vals)
                       for key, vals in metrics.items()}
                for name, metrics in samples.items()}
    return baseline, len(records)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--micro", required=True,
                        help="fresh BENCH_micro.json")
    parser.add_argument("--history", required=True,
                        help="BENCH_history.jsonl to compare against")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional drop that fails the job "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--window", type=int, default=5,
                        help="history records in the median baseline "
                             "(default 5)")
    parser.add_argument("--table", action="append", default=[],
                        metavar="GLOB",
                        help="only compare benches whose name matches this "
                             "fnmatch pattern (repeatable); matching "
                             "nothing in the fresh run is an error")
    args = parser.parse_args()

    if not os.path.exists(args.history):
        print(f"no history at {args.history}; nothing to compare — pass")
        return 0
    previous, used_records = baseline_micro(args.history, args.window)
    if not previous:
        print("history has no micro record; nothing to compare — pass")
        return 0
    if used_records < args.window:
        print(f"short history: {used_records} of {args.window} records — "
              f"baseline is the median of those {used_records} "
              "(still gating, not passing)")
    current = load_micro(args.micro)
    if args.table:
        selected = {name for name in current
                    if any(fnmatch.fnmatch(name, pattern)
                           for pattern in args.table)}
        if not selected:
            print(f"--table patterns {args.table} match no bench in the "
                  "fresh run — refusing to pass silently")
            return 1
        current = {name: entry for name, entry in current.items()
                   if name in selected}

    regressions = []
    compared = 0
    for name in sorted(set(current) & set(previous)):
        cur, prev = current[name], previous[name]
        if RATE_KEY in cur and RATE_KEY in prev and prev[RATE_KEY]:
            delta = cur[RATE_KEY] / prev[RATE_KEY] - 1.0
            metric = RATE_KEY
        elif cur.get("real_time_ns") and prev.get("real_time_ns"):
            # Time: higher is worse; express as a rate-style delta.
            delta = prev["real_time_ns"] / cur["real_time_ns"] - 1.0
            metric = "real_time_ns"
        else:
            continue
        compared += 1
        marker = ""
        if delta < -args.threshold:
            regressions.append(name)
            marker = "  << REGRESSION"
        print(f"{name:50s} {metric:12s} {delta:+7.1%}{marker}")

    if args.table and compared < len(current):
        # A named gate must gate: every selected bench needs a baseline.
        # (A missing/empty history file already passed above — that is the
        # legitimate first-night case; a *present* history that lacks the
        # named bench means a rename or broken append, not a pass.)
        missing = sorted(set(current) - set(previous))
        print(f"--table selected {sorted(current)} but history has no "
              f"baseline for {missing} — refusing to pass silently")
        return 1
    if not compared:
        print("no comparable benches between run and history — pass")
        return 0
    if regressions:
        print(f"\n{len(regressions)} bench(es) regressed more than "
              f"{args.threshold:.0%} vs the history baseline:")
        for name in regressions:
            print(f"  {name}")
        return 1
    print(f"\nall {compared} compared benches within {args.threshold:.0%} "
          "of the history baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
