#!/usr/bin/env python3
"""Fail the nightly job when a micro benchmark regresses against history.

Compares a fresh BENCH_micro.json (google-benchmark JSON from the `bench`
target) against the `micro` sections of the last --window records of
BENCH_history.jsonl (written by append_bench_history.py). The baseline per
bench is the *median* over that window, so one noisy night on a shared CI
runner neither trips the gate by itself nor poisons the next comparison.
For every bench present in both:

  * benches with a `msgs/s` counter regress when the fresh rate drops more
    than --threshold below the baseline;
  * benches without one fall back to real_time_ns (regress when the fresh
    time exceeds the baseline time by more than --threshold).

Exits 1 listing the regressed benches, 0 otherwise. Run it *before*
appending the fresh record so a regressed night neither pollutes the
baseline nor silently masks the next comparison.

`--table PATTERN` (repeatable, fnmatch syntax) restricts the comparison to
the benches whose name matches any pattern — e.g.
`--table 'BM_DistributedMdst/128'` gates specifically on the MDST/128
acceptance number and reports it by name, on top of (or instead of) the
whole-suite sweep. A --table run that matches nothing is an error, not a
pass: a typo must not silently disable the gate.

`--rss-table NAME=CSV` gates peak memory instead of (or alongside) speed:
the fresh campaign CSV (written by `mdst_lab run --perf-columns`, so it
carries a peak_rss_bytes column) is compared per (family, n) against the
same-named table embedded in the history records by
append_bench_history.py. The per-key fresh value is the max over reps,
the baseline is the median of the per-record maxima over the last
--window records, and growth beyond --rss-threshold (default 0.10 = 10%)
fails the job. Mirroring --table's rename detector, a *present* history
in which no record carries the named table is an error — the nightly
skips the very first night explicitly and arms the gate once the append
step has recorded a baseline. A fresh (family, n) key with no baseline
yet (a new ladder rung) passes with a notice: tonight's append records
it and the gate covers it tomorrow.

Usage:
    check_bench_regression.py [--micro BENCH_micro.json] \
        --history BENCH_history.jsonl [--threshold 0.10] [--window 5] \
        [--table GLOB ...] [--rss-table NAME=CSV] [--rss-threshold 0.10]
"""

import argparse
import csv
import fnmatch
import json
import os
import statistics
import sys

RATE_KEY = "msgs/s"
RSS_KEY = "peak_rss_bytes"


def load_micro(path: str) -> dict:
    """BENCH_micro.json -> {bench name -> {real_time_ns, msgs/s, ...}}.

    Mirrors append_bench_history.load_micro so the fresh run and the
    history record are normalized identically.
    """
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    micro = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate" and \
                bench.get("aggregate_name") != "median":
            continue
        entry = {"real_time_ns": bench.get("real_time")}
        for key, value in bench.items():
            if isinstance(value, (int, float)) and key not in entry:
                entry[key] = value
        micro[bench["name"]] = entry
    return micro


def baseline_micro(path: str, window: int) -> tuple:
    """Median per (bench, metric) over the last `window` history records.

    Returns (baseline, used_records). Short history (fewer than `window`
    records, e.g. the first nights after the gate lands) must still gate:
    the baseline is the median of however many records exist — never a
    silent pass. Records without a `micro` section are skipped.
    """
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    # Filter before slicing: a few recent micro-less records (e.g. nights
    # where the bench step failed) must not shrink the baseline while older
    # valid records exist.
    records = [json.loads(line).get("micro", {}) for line in lines]
    records = [record for record in records if record][-window:]
    samples = {}
    for record in records:
        for name, entry in record.items():
            for key, value in entry.items():
                if isinstance(value, (int, float)):
                    samples.setdefault(name, {}).setdefault(key, []).append(
                        value)
    baseline = {name: {key: statistics.median(vals)
                       for key, vals in metrics.items()}
                for name, metrics in samples.items()}
    return baseline, len(records)


def rss_by_key(rows: list) -> dict:
    """Campaign rows -> {(family, n) label -> max peak_rss_bytes}.

    Max over reps: peak RSS is a process-wide high-water mark, so within a
    (family, n) cell the largest rep value is the cell's ceiling.
    """
    peaks = {}
    for row in rows:
        value = row.get(RSS_KEY)
        if value in (None, ""):
            continue
        key = f"{row.get('family', '?')}/n={row.get('n', '?')}"
        peaks[key] = max(peaks.get(key, 0), int(float(value)))
    return peaks


def baseline_rss(path: str, table: str, window: int) -> tuple:
    """Median per (family, n) of the per-record maxima over the last
    `window` history records that carry the named table.

    Returns (baseline, records_with_table). Mirrors baseline_micro: short
    history still gates; records without the table are filtered *before*
    slicing so a few nights with a failed campaign step cannot shrink the
    baseline while older valid records exist.
    """
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    records = [json.loads(line).get("tables", {}).get(table, [])
               for line in lines]
    per_record = [rss_by_key(rows) for rows in records]
    per_record = [peaks for peaks in per_record if peaks][-window:]
    samples = {}
    for peaks in per_record:
        for key, value in peaks.items():
            samples.setdefault(key, []).append(value)
    baseline = {key: statistics.median(vals)
                for key, vals in samples.items()}
    return baseline, len(per_record)


def gate_rss(args) -> int:
    name, _, path = args.rss_table.partition("=")
    if not path:
        print(f"--rss-table expects NAME=CSV, got {args.rss_table!r}")
        return 1
    if not os.path.exists(args.history):
        print(f"no history at {args.history}; nothing to compare — pass")
        return 0
    with open(path, encoding="utf-8", newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or RSS_KEY not in reader.fieldnames:
            print(f"{path} has no {RSS_KEY} column — run mdst_lab with "
                  "--perf-columns; refusing to pass silently")
            return 1
        current = rss_by_key(list(reader))
    if not current:
        print(f"{path} has no rows with {RSS_KEY} — refusing to pass "
              "silently")
        return 1
    previous, used_records = baseline_rss(args.history, name, args.window)
    if not previous:
        # Same contract as --table: a *present* history without the named
        # table means a rename or a broken append, not a pass. The nightly
        # skips the genuine first night explicitly before calling us.
        print(f"history has no '{name}' table — refusing to pass silently")
        return 1
    if used_records < args.window:
        print(f"short history: {used_records} of {args.window} records — "
              f"baseline is the median of those {used_records} "
              "(still gating, not passing)")

    regressions = []
    for key in sorted(current):
        if key not in previous:
            # A new ladder rung: tonight's append records its baseline and
            # the gate covers it tomorrow.
            print(f"{key:50s} {RSS_KEY:14s}    new — no baseline yet, "
                  "gates tomorrow")
            continue
        growth = current[key] / previous[key] - 1.0
        marker = ""
        if growth > args.rss_threshold:
            regressions.append(key)
            marker = "  << REGRESSION"
        print(f"{key:50s} {RSS_KEY:14s} {growth:+7.1%}{marker}")

    if regressions:
        print(f"\n{len(regressions)} cell(s) grew peak RSS more than "
              f"{args.rss_threshold:.0%} vs the history baseline:")
        for key in regressions:
            print(f"  {key}")
        return 1
    compared = sum(1 for key in current if key in previous)
    print(f"\nall {compared} compared cells within "
          f"{args.rss_threshold:.0%} of the history RSS baseline")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--micro",
                        help="fresh BENCH_micro.json")
    parser.add_argument("--history", required=True,
                        help="BENCH_history.jsonl to compare against")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional drop that fails the job "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--window", type=int, default=5,
                        help="history records in the median baseline "
                             "(default 5)")
    parser.add_argument("--table", action="append", default=[],
                        metavar="GLOB",
                        help="only compare benches whose name matches this "
                             "fnmatch pattern (repeatable); matching "
                             "nothing in the fresh run is an error")
    parser.add_argument("--rss-table", metavar="NAME=CSV",
                        help="gate peak_rss_bytes of a campaign CSV "
                             "(--perf-columns output) against the "
                             "same-named table in the history records")
    parser.add_argument("--rss-threshold", type=float, default=0.10,
                        help="fractional peak-RSS growth that fails the "
                             "job (default 0.10 = 10%%)")
    args = parser.parse_args()

    if not args.micro and not args.rss_table:
        parser.error("nothing to compare: pass --micro and/or --rss-table")
    rss_code = gate_rss(args) if args.rss_table else 0
    if not args.micro:
        return rss_code

    if not os.path.exists(args.history):
        print(f"no history at {args.history}; nothing to compare — pass")
        return rss_code
    previous, used_records = baseline_micro(args.history, args.window)
    if not previous:
        print("history has no micro record; nothing to compare — pass")
        return rss_code
    if used_records < args.window:
        print(f"short history: {used_records} of {args.window} records — "
              f"baseline is the median of those {used_records} "
              "(still gating, not passing)")
    current = load_micro(args.micro)
    if args.table:
        selected = {name for name in current
                    if any(fnmatch.fnmatch(name, pattern)
                           for pattern in args.table)}
        if not selected:
            print(f"--table patterns {args.table} match no bench in the "
                  "fresh run — refusing to pass silently")
            return 1
        current = {name: entry for name, entry in current.items()
                   if name in selected}

    regressions = []
    compared = 0
    for name in sorted(set(current) & set(previous)):
        cur, prev = current[name], previous[name]
        if RATE_KEY in cur and RATE_KEY in prev and prev[RATE_KEY]:
            delta = cur[RATE_KEY] / prev[RATE_KEY] - 1.0
            metric = RATE_KEY
        elif cur.get("real_time_ns") and prev.get("real_time_ns"):
            # Time: higher is worse; express as a rate-style delta.
            delta = prev["real_time_ns"] / cur["real_time_ns"] - 1.0
            metric = "real_time_ns"
        else:
            continue
        compared += 1
        marker = ""
        if delta < -args.threshold:
            regressions.append(name)
            marker = "  << REGRESSION"
        print(f"{name:50s} {metric:12s} {delta:+7.1%}{marker}")

    if args.table and compared < len(current):
        # A named gate must gate: every selected bench needs a baseline.
        # (A missing/empty history file already passed above — that is the
        # legitimate first-night case; a *present* history that lacks the
        # named bench means a rename or broken append, not a pass.)
        missing = sorted(set(current) - set(previous))
        print(f"--table selected {sorted(current)} but history has no "
              f"baseline for {missing} — refusing to pass silently")
        return 1
    if not compared:
        print("no comparable benches between run and history — pass")
        return rss_code
    if regressions:
        print(f"\n{len(regressions)} bench(es) regressed more than "
              f"{args.threshold:.0%} vs the history baseline:")
        for name in regressions:
            print(f"  {name}")
        return 1
    print(f"\nall {compared} compared benches within {args.threshold:.0%} "
          "of the history baseline")
    return rss_code


if __name__ == "__main__":
    sys.exit(main())
