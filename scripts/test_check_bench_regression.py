#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py.

The load-bearing behavior under test: a short history (fewer records than
--window) must still gate using the median of whatever records exist — it
must never silently pass. Exercised end-to-end via subprocess so the exit
codes CI relies on are what is actually asserted.

Run directly (python3 scripts/test_check_bench_regression.py) or via ctest
(test name scripts.check_bench_regression).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_regression.py")


def micro_json(rate=None, time_ns=100.0, name="BM_DistributedMdst/128"):
    """A minimal google-benchmark JSON report with one bench."""
    bench = {"name": name, "run_type": "iteration", "real_time": time_ns,
             "cpu_time": time_ns, "iterations": 10}
    if rate is not None:
        bench["msgs/s"] = rate
    return {"benchmarks": [bench]}


def history_line(rate=None, time_ns=100.0, name="BM_DistributedMdst/128"):
    """One BENCH_history.jsonl record as append_bench_history writes it."""
    entry = {"real_time_ns": time_ns, "cpu_time_ns": time_ns, "iterations": 10}
    if rate is not None:
        entry["msgs/s"] = rate
    return json.dumps({"timestamp": "t", "commit": "c",
                       "micro": {name: entry}})


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, content):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)
        return path

    def run_check(self, micro_report, history_lines, extra_args=()):
        micro = self.write("BENCH_micro.json", json.dumps(micro_report))
        history = os.path.join(self.tmp.name, "BENCH_history.jsonl")
        if history_lines is not None:
            with open(history, "w", encoding="utf-8") as fh:
                for line in history_lines:
                    fh.write(line + "\n")
        result = subprocess.run(
            [sys.executable, SCRIPT, "--micro", micro, "--history", history,
             *extra_args],
            capture_output=True, text=True, check=False)
        return result.returncode, result.stdout + result.stderr

    def test_short_history_still_catches_regression(self):
        # Two records (window default 5): baseline must be their median,
        # and a 33% rate drop must fail — not silently pass.
        code, out = self.run_check(
            micro_json(rate=20e6),
            [history_line(rate=30e6), history_line(rate=30e6)])
        self.assertEqual(code, 1, out)
        self.assertIn("short history", out)
        self.assertIn("REGRESSION", out)

    def test_single_record_history_still_gates(self):
        code, out = self.run_check(
            micro_json(rate=10e6), [history_line(rate=30e6)])
        self.assertEqual(code, 1, out)
        self.assertIn("1 of 5 records", out)

    def test_short_history_within_threshold_passes(self):
        code, out = self.run_check(
            micro_json(rate=29e6),
            [history_line(rate=30e6), history_line(rate=30e6)])
        self.assertEqual(code, 0, out)
        self.assertIn("short history", out)

    def test_full_window_uses_median_not_latest(self):
        # Median of [10, 30, 30, 30, 100] is 30: a fresh 28.5e6 is within 10%
        # of the median even though it is far below the latest (100e6) record.
        lines = [history_line(rate=r)
                 for r in (10e6, 30e6, 30e6, 30e6, 100e6)]
        code, out = self.run_check(micro_json(rate=28.5e6), lines)
        self.assertEqual(code, 0, out)
        self.assertNotIn("short history", out)
        code, out = self.run_check(micro_json(rate=20e6), lines)
        self.assertEqual(code, 1, out)

    def test_missing_history_file_passes(self):
        code, out = self.run_check(micro_json(rate=1e6), None)
        self.assertEqual(code, 0, out)
        self.assertIn("nothing to compare", out)

    def test_history_without_micro_sections_passes(self):
        code, out = self.run_check(
            micro_json(rate=1e6),
            [json.dumps({"timestamp": "t", "commit": "c"})])
        self.assertEqual(code, 0, out)
        self.assertIn("nothing to compare", out)

    def test_time_fallback_when_no_rate_counter(self):
        # Without a msgs/s counter the gate compares real_time_ns: a 50%
        # slowdown must fail even with a single history record.
        code, out = self.run_check(
            micro_json(time_ns=150.0),
            [history_line(time_ns=100.0)])
        self.assertEqual(code, 1, out)
        code, out = self.run_check(
            micro_json(time_ns=102.0),
            [history_line(time_ns=100.0)])
        self.assertEqual(code, 0, out)

    def test_recent_microless_records_do_not_shrink_baseline(self):
        # 5 valid records then 2 without micro (bench step failed those
        # nights): the baseline must still be the median of the last 5
        # *valid* records — a full window, no short-history downgrade.
        lines = [history_line(rate=30e6)] * 5 + \
                [json.dumps({"timestamp": "t", "commit": "c"})] * 2
        code, out = self.run_check(micro_json(rate=29e6), lines)
        self.assertEqual(code, 0, out)
        self.assertNotIn("short history", out)
        code, out = self.run_check(micro_json(rate=20e6), lines)
        self.assertEqual(code, 1, out)

    def test_custom_window_trims_old_records(self):
        # window=2 must ignore the ancient fast records.
        lines = [history_line(rate=100e6)] * 5 + \
                [history_line(rate=10e6), history_line(rate=10e6)]
        code, out = self.run_check(micro_json(rate=9.5e6), lines,
                                   extra_args=("--window", "2"))
        self.assertEqual(code, 0, out)

    def run_check_two_benches(self, mdst_rate, flood_rate, extra_args=()):
        """Fresh run + history with MDST/128 and a flood bench, so --table
        filtering has something to exclude."""
        mdst = micro_json(rate=mdst_rate)["benchmarks"][0]
        flood = micro_json(rate=flood_rate,
                           name="BM_SimulatorFloodSt/64")["benchmarks"][0]
        history = json.dumps({
            "timestamp": "t", "commit": "c",
            "micro": {
                "BM_DistributedMdst/128":
                    {"real_time_ns": 100.0, "msgs/s": 30e6},
                "BM_SimulatorFloodSt/64":
                    {"real_time_ns": 100.0, "msgs/s": 30e6},
            }})
        return self.run_check({"benchmarks": [mdst, flood]}, [history],
                              extra_args=extra_args)

    def test_table_filter_gates_only_matching_benches(self):
        # Flood regressed 50% but the gate is scoped to MDST/128: pass,
        # and the flood bench must not even be compared.
        code, out = self.run_check_two_benches(
            29e6, 15e6, extra_args=("--table", "BM_DistributedMdst/*"))
        self.assertEqual(code, 0, out)
        self.assertIn("BM_DistributedMdst/128", out)
        self.assertNotIn("BM_SimulatorFloodSt/64", out)

    def test_table_filter_reports_regression_by_name(self):
        code, out = self.run_check_two_benches(
            20e6, 30e6, extra_args=("--table", "BM_DistributedMdst/128"))
        self.assertEqual(code, 1, out)
        self.assertIn("BM_DistributedMdst/128", out)
        self.assertIn("REGRESSION", out)

    def test_table_filter_matching_nothing_fails(self):
        # A typo in the pattern must not silently disable the gate.
        code, out = self.run_check_two_benches(
            30e6, 30e6, extra_args=("--table", "BM_Distributted/*"))
        self.assertEqual(code, 1, out)
        self.assertIn("match no bench", out)

    def test_table_filter_requires_a_history_baseline(self):
        # History exists but lacks the named bench (rename / broken
        # append): the named gate must fail, not silently compare nothing.
        history = json.dumps({
            "timestamp": "t", "commit": "c",
            "micro": {"BM_SomethingElse/1":
                      {"real_time_ns": 100.0, "msgs/s": 30e6}}})
        code, out = self.run_check(
            micro_json(rate=30e6), [history],
            extra_args=("--table", "BM_DistributedMdst/*"))
        self.assertEqual(code, 1, out)
        self.assertIn("no baseline", out)

    def test_table_filter_with_missing_history_file_still_passes(self):
        # First night ever: no history file at all is the legitimate
        # bootstrap case and keeps passing, --table or not.
        code, out = self.run_check(
            micro_json(rate=30e6), None,
            extra_args=("--table", "BM_DistributedMdst/*"))
        self.assertEqual(code, 0, out)

    def test_table_filter_accepts_multiple_patterns(self):
        code, out = self.run_check_two_benches(
            29e6, 29e6, extra_args=("--table", "BM_DistributedMdst/*",
                                    "--table", "BM_SimulatorFloodSt/*"))
        self.assertEqual(code, 0, out)
        self.assertIn("BM_DistributedMdst/128", out)
        self.assertIn("BM_SimulatorFloodSt/64", out)


def campaign_csv(rows):
    """A minimal --perf-columns campaign CSV (family, n, peak_rss_bytes)."""
    lines = ["family,n,rep,peak_rss_bytes"]
    for family, n, rep, rss in rows:
        lines.append(f"{family},{n},{rep},{rss}")
    return "\n".join(lines) + "\n"


def history_rss_line(peaks, table="large_n"):
    """One history record embedding a campaign table, as the append script
    writes it (rows are dicts of strings)."""
    rows = [{"family": family, "n": str(n), "peak_rss_bytes": str(rss)}
            for family, n, rss in peaks]
    return json.dumps({"timestamp": "t", "commit": "c",
                       "tables": {table: rows}})


class RssGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, content):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)
        return path

    def run_rss(self, csv_text, history_lines, extra_args=(),
                micro_report=None):
        fresh = self.write("campaign_large_n.csv", csv_text)
        history = os.path.join(self.tmp.name, "BENCH_history.jsonl")
        if history_lines is not None:
            with open(history, "w", encoding="utf-8") as fh:
                for line in history_lines:
                    fh.write(line + "\n")
        cmd = [sys.executable, SCRIPT, "--history", history,
               "--rss-table", f"large_n={fresh}", *extra_args]
        if micro_report is not None:
            cmd += ["--micro",
                    self.write("BENCH_micro.json", json.dumps(micro_report))]
        result = subprocess.run(cmd, capture_output=True, text=True,
                                check=False)
        return result.returncode, result.stdout + result.stderr

    def test_rss_growth_beyond_threshold_fails(self):
        code, out = self.run_rss(
            campaign_csv([("streamed_sparse", 4096, 0, 120_000_000)]),
            [history_rss_line([("streamed_sparse", 4096, 100_000_000)])])
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)
        self.assertIn("streamed_sparse/n=4096", out)

    def test_rss_within_threshold_passes(self):
        code, out = self.run_rss(
            campaign_csv([("streamed_sparse", 4096, 0, 105_000_000)]),
            [history_rss_line([("streamed_sparse", 4096, 100_000_000)])])
        self.assertEqual(code, 0, out)
        self.assertIn("within 10%", out)

    def test_rss_shrinking_is_fine(self):
        code, out = self.run_rss(
            campaign_csv([("streamed_sparse", 4096, 0, 50_000_000)]),
            [history_rss_line([("streamed_sparse", 4096, 100_000_000)])])
        self.assertEqual(code, 0, out)

    def test_rss_missing_history_file_passes(self):
        code, out = self.run_rss(
            campaign_csv([("streamed_sparse", 4096, 0, 100_000_000)]), None)
        self.assertEqual(code, 0, out)
        self.assertIn("nothing to compare", out)

    def test_rss_history_without_the_table_fails(self):
        # Rename / broken-append detector, mirroring --table: the workflow
        # grep-skips the genuine first night before invoking the gate.
        code, out = self.run_rss(
            campaign_csv([("streamed_sparse", 4096, 0, 100_000_000)]),
            [json.dumps({"timestamp": "t", "commit": "c"})])
        self.assertEqual(code, 1, out)
        self.assertIn("refusing to pass silently", out)

    def test_rss_new_ladder_rung_passes_with_notice(self):
        code, out = self.run_rss(
            campaign_csv([("streamed_sparse", 4096, 0, 100_000_000),
                          ("streamed_sparse", 8192, 0, 900_000_000)]),
            [history_rss_line([("streamed_sparse", 4096, 100_000_000)])])
        self.assertEqual(code, 0, out)
        self.assertIn("no baseline yet", out)
        self.assertIn("streamed_sparse/n=8192", out)

    def test_rss_csv_without_the_column_fails(self):
        code, out = self.run_rss(
            "family,n,rep\nstreamed_sparse,4096,0\n",
            [history_rss_line([("streamed_sparse", 4096, 100_000_000)])])
        self.assertEqual(code, 1, out)
        self.assertIn("no peak_rss_bytes column", out)

    def test_rss_baseline_is_median_over_window(self):
        # Median of [100, 100, 400] MB is 100 MB: one swollen night must
        # not raise the baseline enough to mask a real regression.
        lines = [history_rss_line([("streamed_sparse", 4096, 100_000_000)]),
                 history_rss_line([("streamed_sparse", 4096, 100_000_000)]),
                 history_rss_line([("streamed_sparse", 4096, 400_000_000)])]
        code, out = self.run_rss(
            campaign_csv([("streamed_sparse", 4096, 0, 120_000_000)]), lines)
        self.assertEqual(code, 1, out)
        self.assertIn("short history", out)

    def test_rss_max_over_reps_governs(self):
        # Two reps of the same cell: the larger (later) high-water mark is
        # the cell's value on both sides of the comparison.
        code, out = self.run_rss(
            campaign_csv([("streamed_sparse", 4096, 0, 90_000_000),
                          ("streamed_sparse", 4096, 1, 130_000_000)]),
            [history_rss_line([("streamed_sparse", 4096, 100_000_000)])])
        self.assertEqual(code, 1, out)

    def test_rss_failure_survives_a_green_micro_gate(self):
        # Combined invocation: the micro suite is fine but RSS grew 50% —
        # the job must still fail.
        history = json.loads(history_rss_line(
            [("streamed_sparse", 4096, 100_000_000)]))
        history["micro"] = {"BM_DistributedMdst/128":
                            {"real_time_ns": 100.0, "msgs/s": 30e6}}
        code, out = self.run_rss(
            campaign_csv([("streamed_sparse", 4096, 0, 150_000_000)]),
            [json.dumps(history)],
            micro_report=micro_json(rate=30e6))
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_rss_custom_threshold(self):
        code, out = self.run_rss(
            campaign_csv([("streamed_sparse", 4096, 0, 115_000_000)]),
            [history_rss_line([("streamed_sparse", 4096, 100_000_000)])],
            extra_args=("--rss-threshold", "0.20"))
        self.assertEqual(code, 0, out)

    def test_neither_micro_nor_rss_is_an_error(self):
        history = self.write("BENCH_history.jsonl", "")
        result = subprocess.run(
            [sys.executable, SCRIPT, "--history", history],
            capture_output=True, text=True, check=False)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("nothing to compare", result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main()
