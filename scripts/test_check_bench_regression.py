#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py.

The load-bearing behavior under test: a short history (fewer records than
--window) must still gate using the median of whatever records exist — it
must never silently pass. Exercised end-to-end via subprocess so the exit
codes CI relies on are what is actually asserted.

Run directly (python3 scripts/test_check_bench_regression.py) or via ctest
(test name scripts.check_bench_regression).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_regression.py")


def micro_json(rate=None, time_ns=100.0, name="BM_DistributedMdst/128"):
    """A minimal google-benchmark JSON report with one bench."""
    bench = {"name": name, "run_type": "iteration", "real_time": time_ns,
             "cpu_time": time_ns, "iterations": 10}
    if rate is not None:
        bench["msgs/s"] = rate
    return {"benchmarks": [bench]}


def history_line(rate=None, time_ns=100.0, name="BM_DistributedMdst/128"):
    """One BENCH_history.jsonl record as append_bench_history writes it."""
    entry = {"real_time_ns": time_ns, "cpu_time_ns": time_ns, "iterations": 10}
    if rate is not None:
        entry["msgs/s"] = rate
    return json.dumps({"timestamp": "t", "commit": "c",
                       "micro": {name: entry}})


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, content):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)
        return path

    def run_check(self, micro_report, history_lines, extra_args=()):
        micro = self.write("BENCH_micro.json", json.dumps(micro_report))
        history = os.path.join(self.tmp.name, "BENCH_history.jsonl")
        if history_lines is not None:
            with open(history, "w", encoding="utf-8") as fh:
                for line in history_lines:
                    fh.write(line + "\n")
        result = subprocess.run(
            [sys.executable, SCRIPT, "--micro", micro, "--history", history,
             *extra_args],
            capture_output=True, text=True, check=False)
        return result.returncode, result.stdout + result.stderr

    def test_short_history_still_catches_regression(self):
        # Two records (window default 5): baseline must be their median,
        # and a 33% rate drop must fail — not silently pass.
        code, out = self.run_check(
            micro_json(rate=20e6),
            [history_line(rate=30e6), history_line(rate=30e6)])
        self.assertEqual(code, 1, out)
        self.assertIn("short history", out)
        self.assertIn("REGRESSION", out)

    def test_single_record_history_still_gates(self):
        code, out = self.run_check(
            micro_json(rate=10e6), [history_line(rate=30e6)])
        self.assertEqual(code, 1, out)
        self.assertIn("1 of 5 records", out)

    def test_short_history_within_threshold_passes(self):
        code, out = self.run_check(
            micro_json(rate=29e6),
            [history_line(rate=30e6), history_line(rate=30e6)])
        self.assertEqual(code, 0, out)
        self.assertIn("short history", out)

    def test_full_window_uses_median_not_latest(self):
        # Median of [10, 30, 30, 30, 100] is 30: a fresh 28.5e6 is within 10%
        # of the median even though it is far below the latest (100e6) record.
        lines = [history_line(rate=r)
                 for r in (10e6, 30e6, 30e6, 30e6, 100e6)]
        code, out = self.run_check(micro_json(rate=28.5e6), lines)
        self.assertEqual(code, 0, out)
        self.assertNotIn("short history", out)
        code, out = self.run_check(micro_json(rate=20e6), lines)
        self.assertEqual(code, 1, out)

    def test_missing_history_file_passes(self):
        code, out = self.run_check(micro_json(rate=1e6), None)
        self.assertEqual(code, 0, out)
        self.assertIn("nothing to compare", out)

    def test_history_without_micro_sections_passes(self):
        code, out = self.run_check(
            micro_json(rate=1e6),
            [json.dumps({"timestamp": "t", "commit": "c"})])
        self.assertEqual(code, 0, out)
        self.assertIn("nothing to compare", out)

    def test_time_fallback_when_no_rate_counter(self):
        # Without a msgs/s counter the gate compares real_time_ns: a 50%
        # slowdown must fail even with a single history record.
        code, out = self.run_check(
            micro_json(time_ns=150.0),
            [history_line(time_ns=100.0)])
        self.assertEqual(code, 1, out)
        code, out = self.run_check(
            micro_json(time_ns=102.0),
            [history_line(time_ns=100.0)])
        self.assertEqual(code, 0, out)

    def test_recent_microless_records_do_not_shrink_baseline(self):
        # 5 valid records then 2 without micro (bench step failed those
        # nights): the baseline must still be the median of the last 5
        # *valid* records — a full window, no short-history downgrade.
        lines = [history_line(rate=30e6)] * 5 + \
                [json.dumps({"timestamp": "t", "commit": "c"})] * 2
        code, out = self.run_check(micro_json(rate=29e6), lines)
        self.assertEqual(code, 0, out)
        self.assertNotIn("short history", out)
        code, out = self.run_check(micro_json(rate=20e6), lines)
        self.assertEqual(code, 1, out)

    def test_custom_window_trims_old_records(self):
        # window=2 must ignore the ancient fast records.
        lines = [history_line(rate=100e6)] * 5 + \
                [history_line(rate=10e6), history_line(rate=10e6)]
        code, out = self.run_check(micro_json(rate=9.5e6), lines,
                                   extra_args=("--window", "2"))
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
