#!/usr/bin/env python3
"""Append one perf-history record to BENCH_history.jsonl.

Collects the google-benchmark JSON written by the `bench` target plus any
table CSVs produced by the figure/claim benches (t2 messages, t3 time) and
emits a single self-contained JSON line:

    {"timestamp": ..., "commit": ..., "micro": {bench -> {time_ns, counters}},
     "tables": {name -> [row dicts]}}

One line per nightly run keeps the file git-mergeable and trivially
consumable (`jq -s`, pandas.read_json(lines=True)).

Usage:
    append_bench_history.py --micro BENCH_micro.json \
        --table t2=bench_t2.csv --table t3=bench_t3.csv \
        --out BENCH_history.jsonl
"""

import argparse
import csv
import datetime
import json
import os
import subprocess
import sys


def git_commit() -> str:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "HEAD"], text=True).strip()
    except Exception:  # noqa: BLE001 - best effort outside a checkout
        return os.environ.get("GITHUB_SHA", "unknown")


def load_micro(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    micro = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate" and \
                bench.get("aggregate_name") != "median":
            continue
        entry = {
            "real_time_ns": bench.get("real_time"),
            "cpu_time_ns": bench.get("cpu_time"),
            "iterations": bench.get("iterations"),
        }
        for key, value in bench.items():
            # google-benchmark inlines user counters (e.g. "msgs/s").
            if isinstance(value, (int, float)) and key not in entry and \
                    key not in ("real_time", "cpu_time", "iterations",
                                "repetition_index", "threads",
                                "family_index", "per_family_instance_index"):
                entry[key] = value
        micro[bench["name"]] = entry
    return micro


def load_table(path: str) -> list:
    with open(path, encoding="utf-8", newline="") as fh:
        return list(csv.DictReader(fh))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--micro", help="BENCH_micro.json from the bench target")
    parser.add_argument("--table", action="append", default=[],
                        metavar="NAME=CSV", help="named table CSV to embed")
    parser.add_argument("--out", default="BENCH_history.jsonl")
    args = parser.parse_args()

    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "commit": git_commit(),
    }
    if args.micro and os.path.exists(args.micro):
        record["micro"] = load_micro(args.micro)
    tables = {}
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not path:
            parser.error(f"--table expects NAME=CSV, got {spec!r}")
        if os.path.exists(path):
            tables[name] = load_table(path)
        else:
            print(f"warning: table {path} missing, skipped", file=sys.stderr)
    if tables:
        record["tables"] = tables

    with open(args.out, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended 1 record to {args.out} "
          f"({len(record.get('micro', {}))} micro benches, "
          f"{len(tables)} tables)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
