#!/usr/bin/env python3
"""Plot campaign JSONL output: gap / messages / causal time vs n.

Input is the per-trial JSONL stream written by `mdst_lab run --jsonl=...`
(one object per line, fixed key order; see docs/campaign.md). The script
aggregates repetitions per (family, n, delay, startup, mode) cell (mean,
plus min/max whiskers), and draws one figure per (family, startup, mode)
combination with three stacked panels:

    gap (k_final - lower bound)   vs n
    total messages                vs n   (log-log)
    total causal time             vs n   (log-log)

one series per delay model, so asynchrony sensitivity is read off a single
figure. Figures are written as PNG next to the output prefix; nothing is
ever displayed (matplotlib's Agg backend), so the script is CI-safe.

`--check-only` parses and aggregates, prints what *would* be plotted, and
exits without importing matplotlib at all — this is the mode the ctest
smoke test runs, keeping tier-1 independent of matplotlib being installed.

Usage:
    plot_campaign.py trials.jsonl --out plots/campaign
    plot_campaign.py trials.jsonl --check-only
"""

import argparse
import collections
import json
import sys

REQUIRED_FIELDS = (
    "family", "n", "delay", "startup", "mode", "rep",
    "gap", "total_messages", "total_time",
)

METRICS = (
    ("gap", "gap (k_final − lower bound)", False),
    ("total_messages", "total messages", True),
    ("total_time", "total causal time", True),
)


def load_rows(path):
    """Parse the JSONL file; every malformed line is a hard error naming
    its line number (campaign output is machine-written — silence would
    hide a truncated run)."""
    rows = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(f"{path}:{lineno}: not valid JSON: {error}")
            missing = [f for f in REQUIRED_FIELDS if f not in row]
            if missing:
                raise SystemExit(
                    f"{path}:{lineno}: missing field(s) {', '.join(missing)}"
                    " — is this mdst_lab --jsonl output?")
            rows.append(row)
    if not rows:
        raise SystemExit(f"{path}: no trial rows")
    return rows


def aggregate(rows):
    """(family, startup, mode) -> delay -> n -> {metric: [values]}."""
    cells = collections.defaultdict(
        lambda: collections.defaultdict(
            lambda: collections.defaultdict(
                lambda: collections.defaultdict(list))))
    for row in rows:
        figure_key = (row["family"], row["startup"], row["mode"])
        per_delay = cells[figure_key][row["delay"]][int(row["n"])]
        for metric, _, _ in METRICS:
            per_delay[metric].append(float(row[metric]))
    return cells


def series_of(per_n, metric):
    """Sorted (n, mean, min, max) tuples for one delay/metric."""
    series = []
    for n in sorted(per_n):
        values = per_n[n][metric]
        series.append((n, sum(values) / len(values), min(values),
                       max(values)))
    return series


def describe(cells, out=sys.stdout):
    for (family, startup, mode), delays in sorted(cells.items()):
        sizes = sorted({n for per_n in delays.values() for n in per_n})
        print(f"figure: family={family} startup={startup} mode={mode} — "
              f"{len(delays)} delay series over n={sizes}", file=out)
        for delay in sorted(delays):
            for metric, _, _ in METRICS:
                points = series_of(delays[delay], metric)
                compact = ", ".join(f"{n}:{mean:.3g}" for n, mean, _, _ in
                                    points)
                print(f"  {delay:>16s} {metric:>15s}: {compact}", file=out)


def plot(cells, out_prefix):
    import matplotlib
    matplotlib.use("Agg")  # never require a display
    import matplotlib.pyplot as plt

    written = []
    for (family, startup, mode), delays in sorted(cells.items()):
        fig, axes = plt.subplots(
            len(METRICS), 1, figsize=(7, 10), sharex=True)
        for axis, (metric, label, log_scale) in zip(axes, METRICS):
            for delay in sorted(delays):
                points = series_of(delays[delay], metric)
                ns = [p[0] for p in points]
                means = [p[1] for p in points]
                lows = [p[1] - p[2] for p in points]
                highs = [p[3] - p[1] for p in points]
                axis.errorbar(ns, means, yerr=[lows, highs], marker="o",
                              capsize=3, label=delay)
            axis.set_ylabel(label)
            if log_scale:
                axis.set_xscale("log", base=2)
                axis.set_yscale("log")
            axis.grid(True, alpha=0.3)
        axes[0].legend(title="delay model")
        axes[-1].set_xlabel("n")
        fig.suptitle(f"{family} · startup={startup} · mode={mode}")
        fig.tight_layout()
        name = f"{out_prefix}-{family}-{startup}-{mode}.png"
        fig.savefig(name, dpi=120)
        plt.close(fig)
        written.append(name)
    return written


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("jsonl", help="mdst_lab --jsonl output file")
    parser.add_argument("--out", default="campaign",
                        help="output prefix for PNGs (default: campaign)")
    parser.add_argument("--check-only", action="store_true",
                        help="parse + aggregate and print the plot plan; "
                             "no matplotlib import, nothing written")
    args = parser.parse_args()

    cells = aggregate(load_rows(args.jsonl))
    if args.check_only:
        describe(cells)
        print(f"ok: {sum(len(d) for d in cells.values())} series across "
              f"{len(cells)} figure(s)")
        return 0
    for name in plot(cells, args.out):
        print(f"wrote {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
