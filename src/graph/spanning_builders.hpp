// Sequential spanning-tree constructions.
//
// The paper's algorithm takes *any* rooted spanning tree as input. These
// builders provide controlled starting points for experiments:
//   * bfs_tree / dfs_tree   — the classic cheap constructions;
//   * random_spanning_tree  — uniformly random via Wilson's loop-erased walk;
//   * kruskal_mst           — minimum weight (random or supplied weights),
//                             the stand-in for a distributed GHS result;
//   * star_biased_tree      — adversarial start: attaches as many vertices
//                             as possible to a single hub, manufacturing an
//                             initial degree k near the graph max degree to
//                             exercise the worst-case round count k - k* + 1.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "support/rng.hpp"

namespace mdst::graph {

/// BFS tree rooted at `root`. Precondition: g connected.
RootedTree bfs_tree(const Graph& g, VertexId root);

/// DFS tree rooted at `root`. Precondition: g connected.
RootedTree dfs_tree(const Graph& g, VertexId root);

/// Uniformly random spanning tree (Wilson's algorithm), rooted at `root`.
RootedTree random_spanning_tree(const Graph& g, VertexId root, support::Rng& rng);

/// Kruskal MST under the given edge weights (size = edge_count). Ties broken
/// by edge id. Rooted at `root`.
RootedTree kruskal_mst(const Graph& g, const std::vector<Weight>& weights,
                       VertexId root);

/// Kruskal MST under uniform random weights.
RootedTree random_mst(const Graph& g, VertexId root, support::Rng& rng);

/// Adversarial high-degree start: greedily attach every neighbour of the
/// highest-degree vertex (the hub), then grow the rest by BFS. The hub is
/// the root.
RootedTree star_biased_tree(const Graph& g);

/// Initial-tree kinds used by experiment sweeps.
enum class InitialTreeKind {
  kBfs,
  kDfs,
  kRandom,
  kMst,
  kStarBiased,
};

const char* to_string(InitialTreeKind kind);

/// Build the requested initial tree; `rng` is used by the stochastic kinds.
RootedTree build_initial_tree(const Graph& g, InitialTreeKind kind,
                              support::Rng& rng);

}  // namespace mdst::graph
