// Graph generators: the workload families used by the experiment suite.
//
// Deterministic generators take no RNG; stochastic ones take an explicit
// support::Rng so each experiment row is reproducible from its seed.
// Stochastic families that can produce disconnected graphs come in a
// `*_connected` variant that augments with a random spanning skeleton —
// the paper's model assumes a connected network.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace mdst::graph {

// --- Deterministic families -------------------------------------------------

/// Path P_n: 0-1-2-...-(n-1).
Graph make_path(std::size_t n);
/// Cycle C_n. Precondition: n >= 3.
Graph make_cycle(std::size_t n);
/// Complete graph K_n.
Graph make_complete(std::size_t n);
/// Star S_n: vertex 0 adjacent to all others. Precondition: n >= 2.
Graph make_star(std::size_t n);
/// Wheel W_n: cycle of n-1 vertices plus a hub. Precondition: n >= 4.
Graph make_wheel(std::size_t n);
/// Grid rows x cols (4-neighbour).
Graph make_grid(std::size_t rows, std::size_t cols);
/// Torus rows x cols (grid with wraparound). Preconditions: rows, cols >= 3.
Graph make_torus(std::size_t rows, std::size_t cols);
/// Hypercube Q_d with 2^d vertices.
Graph make_hypercube(std::size_t dimensions);
/// Complete bipartite K_{a,b}.
Graph make_complete_bipartite(std::size_t a, std::size_t b);
/// Full binary tree with n vertices (heap ordering).
Graph make_binary_tree(std::size_t n);
/// Caterpillar: spine of `spine` vertices, each with `legs` pendant leaves.
Graph make_caterpillar(std::size_t spine, std::size_t legs);
/// Lollipop: K_c clique attached to a path of p vertices.
Graph make_lollipop(std::size_t clique, std::size_t path);

// --- Stochastic families ----------------------------------------------------

/// Erdős–Rényi G(n, p).
Graph make_gnp(std::size_t n, double p, support::Rng& rng);
/// G(n, p) made connected by first inserting a uniform random spanning tree.
Graph make_gnp_connected(std::size_t n, double p, support::Rng& rng);
/// Erdős–Rényi G(n, m): exactly m distinct edges.
Graph make_gnm(std::size_t n, std::size_t m, support::Rng& rng);
/// Connected G(n, m): random spanning tree + (m - n + 1) random extra edges.
/// Precondition: m >= n-1 and m <= n(n-1)/2.
Graph make_gnm_connected(std::size_t n, std::size_t m, support::Rng& rng);
/// Random geometric graph on the unit square with connection radius r;
/// augmented to connectivity with nearest-component links.
Graph make_geometric_connected(std::size_t n, double radius, support::Rng& rng);
/// Barabási–Albert preferential attachment, each new vertex adds `k` edges.
/// Precondition: n > k >= 1.
Graph make_barabasi_albert(std::size_t n, std::size_t k, support::Rng& rng);
/// Watts–Strogatz small world: ring lattice degree `k` (even), rewiring
/// probability beta; rewiring keeps the graph simple and connected.
Graph make_watts_strogatz(std::size_t n, std::size_t k, double beta,
                          support::Rng& rng);
/// Uniformly random tree via Prüfer sequence decoding.
Graph make_random_tree(std::size_t n, support::Rng& rng);

/// Connected sparse G(n, p) built for the large-n memory envelope: a random
/// recursive tree skeleton (parent[v] uniform over [0, v)) plus
/// Batagelj–Brandes geometric edge skipping, streamed straight into the
/// graph's edge array in dedup-disabled bulk mode (no hash set, no
/// intermediate edge vector, exact reservation so capacity == size). A
/// distinct family from make_gnp_connected — the tree distribution and the
/// RNG draw sequence both differ; existing seeds reproduce existing graphs
/// only through the original generators. Precondition: p in [0, 1).
Graph make_gnp_connected_streamed(std::size_t n, double p, support::Rng& rng);

// --- Naming -------------------------------------------------------------

/// Replace node names with a random permutation of [0, n); exercises the
/// minimum-identity tie-breaks of the distributed algorithms.
void assign_random_names(Graph& g, support::Rng& rng);

// --- Family registry (used by sweeps/benches) -----------------------------

/// A named family with a single size knob; density parameters are fixed to
/// representative values documented in DESIGN.md §6.
struct FamilySpec {
  std::string name;
  /// Generate an instance with ~n vertices (exact n whenever the family
  /// permits; hypercube/grid round to the nearest legal size).
  Graph (*make)(std::size_t n, support::Rng& rng);
};

/// Families used in the standard experiment sweep.
const std::vector<FamilySpec>& standard_families();

/// Lookup by name. Throws ContractViolation if unknown.
const FamilySpec& family_by_name(const std::string& name);

}  // namespace mdst::graph
