// Fundamental identifier types for the graph layer.
//
// A vertex has two distinct notions of identity:
//   * its *index* (VertexId) — dense [0, n) handle used by data structures;
//   * its *name* (NodeName)  — the distinct identity the distributed model
//     assumes ("named asynchronous network"). Protocol tie-breaks (minimum
//     identity) compare names, never indices, so experiments can permute
//     names to check that the algorithm does not secretly depend on the
//     storage order.
#pragma once

#include <cstdint>
#include <utility>

namespace mdst::graph {

using VertexId = std::int32_t;
using EdgeId = std::int32_t;
/// Distinct node identity (paper: O(log n)-bit names). 32 bits keeps every
/// message struct — and therefore every slab node in the simulator's event
/// queue — half the size the natural int64 would give, which is measurable
/// on the event-delivery hot path; graphs stay well below 2^31 vertices.
using NodeName = std::int32_t;
using Weight = double;

inline constexpr VertexId kInvalidVertex = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// Undirected edge; stored with u < v after normalisation.
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  friend bool operator==(const Edge&, const Edge&) = default;

  /// The endpoint that is not `from`. Precondition: from is an endpoint.
  VertexId other(VertexId from) const { return from == u ? v : u; }
};

/// Normalise so that u <= v; self-loops are rejected upstream.
inline Edge normalized(VertexId a, VertexId b) {
  if (a > b) std::swap(a, b);
  return Edge{a, b};
}

}  // namespace mdst::graph
