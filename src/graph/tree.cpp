#include "graph/tree.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace mdst::graph {

RootedTree RootedTree::from_parents(VertexId root, std::vector<VertexId> parents) {
  const std::size_t n = parents.size();
  MDST_REQUIRE(n > 0, "empty tree");
  MDST_REQUIRE(root >= 0 && static_cast<std::size_t>(root) < n, "bad root");
  MDST_REQUIRE(parents[static_cast<std::size_t>(root)] == kInvalidVertex,
               "root must have no parent");

  RootedTree tree;
  tree.root_ = root;
  tree.parents_ = std::move(parents);
  tree.children_.assign(n, {});
  // Count first so every child list is built with exactly one allocation —
  // the growth reallocations otherwise dominate tree extraction for the
  // large spanning-tree runs (n child vectors, ~2 allocs each).
  std::vector<std::uint32_t> child_count(n, 0);
  std::size_t rootless = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const VertexId p = tree.parents_[v];
    if (p == kInvalidVertex) {
      ++rootless;
      continue;
    }
    MDST_REQUIRE(p >= 0 && static_cast<std::size_t>(p) < n,
                 "parent out of range");
    MDST_REQUIRE(p != static_cast<VertexId>(v), "self parent");
    ++child_count[static_cast<std::size_t>(p)];
  }
  MDST_REQUIRE(rootless == 1, "exactly one root expected");
  for (std::size_t v = 0; v < n; ++v) {
    if (child_count[v] != 0) tree.children_[v].reserve(child_count[v]);
  }
  for (std::size_t v = 0; v < n; ++v) {
    const VertexId p = tree.parents_[v];
    if (p != kInvalidVertex) {
      tree.children_[static_cast<std::size_t>(p)].push_back(
          static_cast<VertexId>(v));
    }
  }
  // Cycle check: walk up from every vertex, stopping at any vertex already
  // known to reach the root, then mark the walked path. Each vertex is
  // marked once, so the whole check is O(n) instead of O(n * depth).
  std::vector<char> reaches_root(n, 0);
  reaches_root[static_cast<std::size_t>(root)] = 1;
  for (std::size_t v = 0; v < n; ++v) {
    VertexId cur = static_cast<VertexId>(v);
    std::size_t steps = 0;
    while (!reaches_root[static_cast<std::size_t>(cur)]) {
      cur = tree.parents_[static_cast<std::size_t>(cur)];
      MDST_REQUIRE(cur != kInvalidVertex, "disconnected parent structure");
      MDST_REQUIRE(++steps <= n, "cycle in parent structure");
    }
    cur = static_cast<VertexId>(v);
    while (!reaches_root[static_cast<std::size_t>(cur)]) {
      reaches_root[static_cast<std::size_t>(cur)] = 1;
      cur = tree.parents_[static_cast<std::size_t>(cur)];
    }
  }
  return tree;
}

RootedTree RootedTree::from_views(VertexId root,
                                  std::vector<VertexId> parents,
                                  std::vector<std::vector<VertexId>> children) {
  const std::size_t n = parents.size();
  MDST_REQUIRE(n > 0, "empty tree");
  MDST_REQUIRE(children.size() == n, "child view size mismatch");
  MDST_REQUIRE(root >= 0 && static_cast<std::size_t>(root) < n, "bad root");
  MDST_REQUIRE(parents[static_cast<std::size_t>(root)] == kInvalidVertex,
               "root must have no parent");

  RootedTree tree;
  tree.root_ = root;
  tree.parents_ = std::move(parents);
  tree.children_ = std::move(children);
  // Cross-validate the adopted child lists against the parent view: pooled,
  // they must claim each non-root vertex exactly once, and each claim must
  // match the vertex's own parent pointer. Together with the single-root
  // check this is per-vertex multiset equality of the two views.
  std::vector<char> claimed(n, 0);
  std::size_t claims = 0;
  std::size_t rootless = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (tree.parents_[v] == kInvalidVertex) ++rootless;
    for (const VertexId c : tree.children_[v]) {
      MDST_REQUIRE(c >= 0 && static_cast<std::size_t>(c) < n,
                   "child out of range");
      MDST_REQUIRE(!claimed[static_cast<std::size_t>(c)],
                   "child claimed twice");
      MDST_REQUIRE(tree.parents_[static_cast<std::size_t>(c)] ==
                       static_cast<VertexId>(v),
                   "child view disagrees with parent view");
      claimed[static_cast<std::size_t>(c)] = 1;
      ++claims;
    }
  }
  MDST_REQUIRE(rootless == 1, "exactly one root expected");
  MDST_REQUIRE(claims == n - 1, "child views do not cover the tree");
  // View agreement alone admits off-tree parent cycles (a disjoint 2-cycle
  // claims itself consistently), so root reachability still needs the
  // memoized climb — O(n) total, same as from_parents.
  std::vector<char>& reaches_root = claimed;  // reuse: reset then re-mark
  std::fill(reaches_root.begin(), reaches_root.end(), 0);
  reaches_root[static_cast<std::size_t>(root)] = 1;
  for (std::size_t v = 0; v < n; ++v) {
    VertexId cur = static_cast<VertexId>(v);
    std::size_t steps = 0;
    while (!reaches_root[static_cast<std::size_t>(cur)]) {
      cur = tree.parents_[static_cast<std::size_t>(cur)];
      MDST_REQUIRE(cur != kInvalidVertex, "disconnected parent structure");
      MDST_REQUIRE(++steps <= n, "cycle in parent structure");
    }
    cur = static_cast<VertexId>(v);
    while (!reaches_root[static_cast<std::size_t>(cur)]) {
      reaches_root[static_cast<std::size_t>(cur)] = 1;
      cur = tree.parents_[static_cast<std::size_t>(cur)];
    }
  }
  return tree;
}

void RootedTree::check_vertex(VertexId v) const {
  MDST_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < parents_.size(),
               "tree: vertex out of range");
}

VertexId RootedTree::parent(VertexId v) const {
  check_vertex(v);
  return parents_[static_cast<std::size_t>(v)];
}

const std::vector<VertexId>& RootedTree::children(VertexId v) const {
  check_vertex(v);
  return children_[static_cast<std::size_t>(v)];
}

std::size_t RootedTree::degree(VertexId v) const {
  check_vertex(v);
  return children_[static_cast<std::size_t>(v)].size() +
         (parents_[static_cast<std::size_t>(v)] == kInvalidVertex ? 0 : 1);
}

std::size_t RootedTree::max_degree() const {
  std::size_t best = 0;
  for (std::size_t v = 0; v < parents_.size(); ++v) {
    best = std::max(best, degree(static_cast<VertexId>(v)));
  }
  return best;
}

std::vector<VertexId> RootedTree::max_degree_vertices() const {
  const std::size_t k = max_degree();
  std::vector<VertexId> out;
  for (std::size_t v = 0; v < parents_.size(); ++v) {
    if (degree(static_cast<VertexId>(v)) == k) {
      out.push_back(static_cast<VertexId>(v));
    }
  }
  return out;
}

bool RootedTree::has_tree_edge(VertexId a, VertexId b) const {
  check_vertex(a);
  check_vertex(b);
  return parents_[static_cast<std::size_t>(a)] == b ||
         parents_[static_cast<std::size_t>(b)] == a;
}

std::vector<VertexId> RootedTree::subtree(VertexId v) const {
  check_vertex(v);
  std::vector<VertexId> out;
  std::vector<VertexId> stack{v};
  while (!stack.empty()) {
    const VertexId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& kids = children_[static_cast<std::size_t>(cur)];
    // Push in reverse so preorder matches children order.
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

std::size_t RootedTree::subtree_size(VertexId v) const {
  return subtree(v).size();
}

std::vector<VertexId> RootedTree::path(VertexId a, VertexId b) const {
  check_vertex(a);
  check_vertex(b);
  // Collect ancestors of a (inclusive), then walk up from b to the first
  // common one.
  std::vector<VertexId> up_a;
  std::vector<char> on_a(parents_.size(), 0);
  for (VertexId cur = a;; cur = parents_[static_cast<std::size_t>(cur)]) {
    up_a.push_back(cur);
    on_a[static_cast<std::size_t>(cur)] = 1;
    if (cur == root_) break;
  }
  std::vector<VertexId> up_b;
  VertexId meet = b;
  while (!on_a[static_cast<std::size_t>(meet)]) {
    up_b.push_back(meet);
    meet = parents_[static_cast<std::size_t>(meet)];
  }
  std::vector<VertexId> out;
  for (VertexId cur : up_a) {
    out.push_back(cur);
    if (cur == meet) break;
  }
  for (auto it = up_b.rbegin(); it != up_b.rend(); ++it) out.push_back(*it);
  return out;
}

std::size_t RootedTree::depth(VertexId v) const {
  check_vertex(v);
  std::size_t d = 0;
  for (VertexId cur = v; cur != root_;
       cur = parents_[static_cast<std::size_t>(cur)]) {
    ++d;
    MDST_ASSERT(d <= parents_.size(), "depth exceeded n — corrupt tree");
  }
  return d;
}

std::size_t RootedTree::height() const {
  std::size_t best = 0;
  for (std::size_t v = 0; v < parents_.size(); ++v) {
    best = std::max(best, depth(static_cast<VertexId>(v)));
  }
  return best;
}

void RootedTree::remove_child(VertexId parent, VertexId child) {
  auto& kids = children_[static_cast<std::size_t>(parent)];
  const auto it = std::find(kids.begin(), kids.end(), child);
  MDST_ASSERT(it != kids.end(), "remove_child: not a child");
  kids.erase(it);
}

void RootedTree::reroot(VertexId new_root) {
  check_vertex(new_root);
  if (new_root == root_) return;
  // Reverse parent pointers along the path root_ .. new_root ("path
  // reversal" as in the MoveRoot step).
  std::vector<VertexId> chain;  // new_root up to old root
  for (VertexId cur = new_root; cur != kInvalidVertex;
       cur = parents_[static_cast<std::size_t>(cur)]) {
    chain.push_back(cur);
  }
  MDST_ASSERT(chain.back() == root_, "reroot: walk did not reach root");
  for (std::size_t i = chain.size(); i-- > 1;) {
    const VertexId upper = chain[i];      // closer to old root
    const VertexId lower = chain[i - 1];  // closer to new root
    remove_child(upper, lower);
    parents_[static_cast<std::size_t>(upper)] = lower;
    children_[static_cast<std::size_t>(lower)].push_back(upper);
  }
  parents_[static_cast<std::size_t>(new_root)] = kInvalidVertex;
  root_ = new_root;
}

void RootedTree::cut_and_link(VertexId child, VertexId new_parent) {
  check_vertex(child);
  check_vertex(new_parent);
  const VertexId old_parent = parents_[static_cast<std::size_t>(child)];
  MDST_REQUIRE(old_parent != kInvalidVertex, "cut_and_link: child is root");
  MDST_REQUIRE(new_parent != child, "cut_and_link: self attach");
  // Guard against creating a cycle: new_parent must not be in child's
  // subtree.
  const auto sub = subtree(child);
  MDST_REQUIRE(std::find(sub.begin(), sub.end(), new_parent) == sub.end(),
               "cut_and_link: new parent inside moved subtree");
  remove_child(old_parent, child);
  parents_[static_cast<std::size_t>(child)] = new_parent;
  children_[static_cast<std::size_t>(new_parent)].push_back(child);
}

std::vector<Edge> RootedTree::edges() const {
  std::vector<Edge> out;
  out.reserve(parents_.size() - 1);
  for (std::size_t v = 0; v < parents_.size(); ++v) {
    const VertexId p = parents_[v];
    if (p != kInvalidVertex) out.push_back(normalized(static_cast<VertexId>(v), p));
  }
  return out;
}

std::vector<std::size_t> RootedTree::degree_histogram() const {
  std::vector<std::size_t> hist(max_degree() + 1, 0);
  for (std::size_t v = 0; v < parents_.size(); ++v) {
    ++hist[degree(static_cast<VertexId>(v))];
  }
  return hist;
}

bool RootedTree::spans(const Graph& g) const {
  if (g.vertex_count() != parents_.size()) return false;
  for (std::size_t v = 0; v < parents_.size(); ++v) {
    const VertexId p = parents_[v];
    if (p == kInvalidVertex) continue;
    if (!g.has_edge(static_cast<VertexId>(v), p)) return false;
  }
  // from_parents/cut_and_link maintain acyclicity + connectivity, but verify
  // independently so the checker can trust this predicate.
  std::vector<char> seen(parents_.size(), 0);
  std::size_t count = 0;
  for (std::size_t v = 0; v < parents_.size(); ++v) {
    VertexId cur = static_cast<VertexId>(v);
    std::size_t steps = 0;
    while (cur != root_ && !seen[static_cast<std::size_t>(cur)]) {
      if (++steps > parents_.size()) return false;
      cur = parents_[static_cast<std::size_t>(cur)];
      if (cur == kInvalidVertex) return false;
    }
    if (!seen[v]) {
      seen[v] = 1;
      ++count;
    }
  }
  return count == parents_.size();
}

VertexId fragment_root(const RootedTree& tree, VertexId p, VertexId x) {
  MDST_REQUIRE(x != p || tree.vertex_count() == 1, "fragment_root: x == p");
  if (x == p) return kInvalidVertex;
  // Works for any rooted orientation: walk from x toward the root until the
  // next hop would be p; if p is not an ancestor of x, the fragment is the
  // one containing the root side, identified by p's parent-side neighbour.
  VertexId cur = x;
  while (true) {
    const VertexId up = tree.parent(cur);
    if (up == p) return cur;
    if (up == kInvalidVertex) {
      // x is above p (or in another branch): the fragment containing x is
      // reached from p through p's parent.
      const VertexId pp = tree.parent(p);
      MDST_ASSERT(pp != kInvalidVertex, "fragment_root: p is root yet x above");
      return pp;
    }
    cur = up;
  }
}

}  // namespace mdst::graph
