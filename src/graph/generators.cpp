#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/algorithms.hpp"
#include "graph/dsu.hpp"
#include "graph/limits.hpp"
#include "support/assert.hpp"

namespace mdst::graph {

Graph make_path(std::size_t n) {
  MDST_REQUIRE(n >= 1, "path: n >= 1");
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return g;
}

Graph make_cycle(std::size_t n) {
  MDST_REQUIRE(n >= 3, "cycle: n >= 3");
  Graph g = make_path(n);
  g.add_edge(static_cast<VertexId>(n - 1), 0);
  return g;
}

Graph make_complete(std::size_t n) {
  Graph g(n);
  g.reserve_edges(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
    }
  }
  return g;
}

Graph make_star(std::size_t n) {
  MDST_REQUIRE(n >= 2, "star: n >= 2");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(0, static_cast<VertexId>(i));
  }
  return g;
}

Graph make_wheel(std::size_t n) {
  MDST_REQUIRE(n >= 4, "wheel: n >= 4");
  Graph g(n);  // vertex 0 is the hub
  const std::size_t ring = n - 1;
  for (std::size_t i = 0; i < ring; ++i) {
    g.add_edge(0, static_cast<VertexId>(1 + i));
    g.add_edge(static_cast<VertexId>(1 + i),
               static_cast<VertexId>(1 + (i + 1) % ring));
  }
  return g;
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  MDST_REQUIRE(rows >= 1 && cols >= 1, "grid: positive dims");
  Graph g(rows * cols);
  g.reserve_edges(rows * (cols - 1) + (rows - 1) * cols);
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) g.add_edge(at(r, c), at(r + 1, c));
    }
  }
  return g;
}

Graph make_torus(std::size_t rows, std::size_t cols) {
  MDST_REQUIRE(rows >= 3 && cols >= 3, "torus: dims >= 3");
  Graph g(rows * cols);
  g.reserve_edges(2 * rows * cols);
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_edge(at(r, c), at(r, (c + 1) % cols));
      g.add_edge(at(r, c), at((r + 1) % rows, c));
    }
  }
  return g;
}

Graph make_hypercube(std::size_t dimensions) {
  MDST_REQUIRE(dimensions <= 20, "hypercube: dimension too large");
  const std::size_t n = std::size_t{1} << dimensions;
  Graph g(n);
  g.reserve_edges(n * dimensions / 2);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t bit = 0; bit < dimensions; ++bit) {
      const std::size_t w = v ^ (std::size_t{1} << bit);
      if (v < w) g.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(w));
    }
  }
  return g;
}

Graph make_complete_bipartite(std::size_t a, std::size_t b) {
  MDST_REQUIRE(a >= 1 && b >= 1, "bipartite: positive sides");
  Graph g(a + b);
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < b; ++j) {
      g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(a + j));
    }
  }
  return g;
}

Graph make_binary_tree(std::size_t n) {
  MDST_REQUIRE(n >= 1, "binary tree: n >= 1");
  Graph g(n);
  for (std::size_t v = 1; v < n; ++v) {
    g.add_edge(static_cast<VertexId>(v), static_cast<VertexId>((v - 1) / 2));
  }
  return g;
}

Graph make_caterpillar(std::size_t spine, std::size_t legs) {
  MDST_REQUIRE(spine >= 1, "caterpillar: spine >= 1");
  Graph g(spine * (1 + legs));
  for (std::size_t i = 0; i + 1 < spine; ++i) {
    g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  std::size_t next = spine;
  for (std::size_t i = 0; i < spine; ++i) {
    for (std::size_t leg = 0; leg < legs; ++leg) {
      g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(next++));
    }
  }
  return g;
}

Graph make_lollipop(std::size_t clique, std::size_t path) {
  MDST_REQUIRE(clique >= 2, "lollipop: clique >= 2");
  Graph g(clique + path);
  for (std::size_t i = 0; i < clique; ++i) {
    for (std::size_t j = i + 1; j < clique; ++j) {
      g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
    }
  }
  VertexId prev = 0;
  for (std::size_t i = 0; i < path; ++i) {
    const auto v = static_cast<VertexId>(clique + i);
    g.add_edge(prev, v);
    prev = v;
  }
  return g;
}

Graph make_gnp(std::size_t n, double p, support::Rng& rng) {
  MDST_REQUIRE(p >= 0.0 && p <= 1.0, "gnp: p in [0,1]");
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.next_bool(p)) {
        g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
      }
    }
  }
  return g;
}

Graph make_gnp_connected(std::size_t n, double p, support::Rng& rng) {
  MDST_REQUIRE(n >= 1, "gnp_connected: n >= 1");
  // Uniform random tree skeleton first, then independent coin flips on the
  // remaining pairs. Slight upward bias in edge count vs pure G(n,p), which
  // is irrelevant for our sweeps (documented here for honesty).
  Graph g = make_random_tree(n, rng);
  // Exact reservation: replay the coin sequence on a copy of the generator
  // state (xoshiro state is trivially copyable) against the still-tree-only
  // graph to count accepted edges, then reserve precisely — no padded
  // heuristic, capacity == size after construction. The replay is faithful
  // because the real pass visits each unordered pair once, so its has_edge
  // gate only ever fires on tree edges — exactly what the probe sees.
  support::Rng probe = rng;
  std::size_t extra = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto a = static_cast<VertexId>(i);
      const auto b = static_cast<VertexId>(j);
      if (!g.has_edge(a, b) && probe.next_bool(p)) ++extra;
    }
  }
  g.reserve_edges(g.edge_count() + extra);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto a = static_cast<VertexId>(i);
      const auto b = static_cast<VertexId>(j);
      if (!g.has_edge(a, b) && rng.next_bool(p)) g.add_edge(a, b);
    }
  }
  return g;
}

Graph make_gnp_connected_streamed(std::size_t n, double p,
                                  support::Rng& rng) {
  MDST_REQUIRE(n >= 1, "gnp_connected_streamed: n >= 1");
  MDST_REQUIRE(p >= 0.0 && p < 1.0, "gnp_connected_streamed: p in [0,1)");
  Graph g(n);
  g.disable_dedup();
  if (n == 1) return g;
  // Random recursive tree skeleton: parent[v] uniform over [0, v). O(n)
  // with one flat array, and tree membership of a candidate pair {w, v}
  // (w < v) is the O(1) check parent[v] == w — no hash set anywhere.
  std::vector<VertexId> parent(n, kInvalidVertex);
  for (std::size_t v = 1; v < n; ++v) {
    parent[v] = static_cast<VertexId>(rng.next_below(v));
  }
  // Batagelj–Brandes geometric skipping over the pairs {w, v}, w < v, in
  // column order: each accepted pair is reached by jumping
  // 1 + floor(log(u) / log(1-p)) positions, so work is O(n + m), not
  // O(n^2). Pairs that collide with a tree edge are dropped (the slight
  // density dip mirrors make_gnp_connected's upward bias — documented, not
  // corrected).
  const double log_q = std::log(1.0 - p);
  const std::int64_t sn = static_cast<std::int64_t>(n);
  const auto sweep = [&](support::Rng& r, auto&& emit) {
    if (p <= 0.0) return;
    std::int64_t v = 1;
    std::int64_t w = -1;
    while (v < sn) {
      const double u = 1.0 - r.next_double();  // (0, 1]: log(u) is finite
      w += 1 + static_cast<std::int64_t>(std::floor(std::log(u) / log_q));
      while (v < sn && w >= v) {
        w -= v;
        ++v;
      }
      if (v < sn &&
          parent[static_cast<std::size_t>(v)] != static_cast<VertexId>(w)) {
        emit(static_cast<VertexId>(w), static_cast<VertexId>(v));
      }
    }
  };
  // Dry pass on a copy of the generator state counts the accepted edges so
  // the one reservation is exact (capacity == size, pinned by tests); the
  // real pass then replays the identical draw sequence into the edge array.
  support::Rng probe = rng;
  std::size_t extra = 0;
  sweep(probe, [&](VertexId, VertexId) { ++extra; });
  detail::check_edge_budget(static_cast<std::uint64_t>(n - 1) +
                            static_cast<std::uint64_t>(extra));
  g.reserve_edges((n - 1) + extra);
  for (std::size_t v = 1; v < n; ++v) {
    g.add_edge_unchecked(static_cast<VertexId>(v), parent[v]);
  }
  sweep(rng, [&](VertexId a, VertexId b) { g.add_edge_unchecked(a, b); });
  return g;
}

Graph make_gnm(std::size_t n, std::size_t m, support::Rng& rng) {
  const std::size_t max_edges = n * (n - 1) / 2;
  MDST_REQUIRE(m <= max_edges, "gnm: too many edges");
  Graph g(n);
  g.reserve_edges(m);
  std::size_t added = 0;
  while (added < m) {
    const auto a = static_cast<VertexId>(rng.next_below(n));
    const auto b = static_cast<VertexId>(rng.next_below(n));
    if (a == b || g.has_edge(a, b)) continue;
    g.add_edge(a, b);
    ++added;
  }
  return g;
}

Graph make_gnm_connected(std::size_t n, std::size_t m, support::Rng& rng) {
  MDST_REQUIRE(n >= 1, "gnm_connected: n >= 1");
  MDST_REQUIRE(m + 1 >= n, "gnm_connected: m >= n-1 required");
  const std::size_t max_edges = n * (n - 1) / 2;
  MDST_REQUIRE(m <= max_edges, "gnm_connected: too many edges");
  Graph g = make_random_tree(n, rng);
  g.reserve_edges(m);
  std::size_t added = g.edge_count();
  while (added < m) {
    const auto a = static_cast<VertexId>(rng.next_below(n));
    const auto b = static_cast<VertexId>(rng.next_below(n));
    if (a == b || g.has_edge(a, b)) continue;
    g.add_edge(a, b);
    ++added;
  }
  return g;
}

Graph make_geometric_connected(std::size_t n, double radius, support::Rng& rng) {
  MDST_REQUIRE(n >= 1, "geometric: n >= 1");
  MDST_REQUIRE(radius > 0.0, "geometric: radius > 0");
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.next_double();
    y[i] = rng.next_double();
  }
  Graph g(n);
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx * dx + dy * dy <= r2) {
        g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
      }
    }
  }
  // Connect components through their geometrically closest pair — mimics
  // adding the minimal number of long-range radio links to a sensor field.
  while (true) {
    const Components comps = connected_components(g);
    if (comps.count <= 1) break;
    double best = 0.0;
    VertexId bu = kInvalidVertex, bv = kInvalidVertex;
    bool found = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (comps.component[i] == comps.component[j]) continue;
        const double dx = x[i] - x[j];
        const double dy = y[i] - y[j];
        const double d2 = dx * dx + dy * dy;
        if (!found || d2 < best) {
          best = d2;
          bu = static_cast<VertexId>(i);
          bv = static_cast<VertexId>(j);
          found = true;
        }
      }
    }
    MDST_ASSERT(found, "geometric: no inter-component pair");
    g.add_edge(bu, bv);
  }
  return g;
}

Graph make_barabasi_albert(std::size_t n, std::size_t k, support::Rng& rng) {
  MDST_REQUIRE(k >= 1 && n > k, "barabasi_albert: n > k >= 1");
  Graph g(n);
  // Seed clique of k+1 vertices so every new vertex can find k targets.
  std::vector<VertexId> attachment;  // vertex repeated per degree
  for (std::size_t i = 0; i <= k; ++i) {
    for (std::size_t j = i + 1; j <= k; ++j) {
      g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
      attachment.push_back(static_cast<VertexId>(i));
      attachment.push_back(static_cast<VertexId>(j));
    }
  }
  for (std::size_t v = k + 1; v < n; ++v) {
    std::vector<VertexId> targets;
    while (targets.size() < k) {
      const VertexId t = attachment[rng.pick_index(attachment)];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (VertexId t : targets) {
      g.add_edge(static_cast<VertexId>(v), t);
      attachment.push_back(static_cast<VertexId>(v));
      attachment.push_back(t);
    }
  }
  return g;
}

Graph make_watts_strogatz(std::size_t n, std::size_t k, double beta,
                          support::Rng& rng) {
  MDST_REQUIRE(k >= 2 && k % 2 == 0, "watts_strogatz: k even and >= 2");
  MDST_REQUIRE(n > k, "watts_strogatz: n > k");
  MDST_REQUIRE(beta >= 0.0 && beta <= 1.0, "watts_strogatz: beta in [0,1]");
  Graph g(n);
  // Ring lattice: each vertex connects to k/2 clockwise neighbours.
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t hop = 1; hop <= k / 2; ++hop) {
      g.add_edge(static_cast<VertexId>(v),
                 static_cast<VertexId>((v + hop) % n));
    }
  }
  // Rewire: since Graph has no edge removal (kept deliberately minimal), we
  // rebuild the edge set and construct a fresh graph.
  std::vector<Edge> edge_list(g.edges().begin(), g.edges().end());
  Graph out(n);
  auto exists_in = [&out](VertexId a, VertexId b) { return out.has_edge(a, b); };
  // First pass: decide rewiring; add kept edges.
  std::vector<std::size_t> to_rewire;
  for (std::size_t e = 0; e < edge_list.size(); ++e) {
    if (rng.next_bool(beta)) {
      to_rewire.push_back(e);
    } else {
      out.add_edge(edge_list[e].u, edge_list[e].v);
    }
  }
  for (std::size_t e : to_rewire) {
    const VertexId keep = edge_list[e].u;
    // Try a handful of random endpoints; fall back to the original edge when
    // the vertex neighbourhood is saturated.
    bool placed = false;
    for (int attempt = 0; attempt < 32 && !placed; ++attempt) {
      const auto w = static_cast<VertexId>(rng.next_below(n));
      if (w != keep && !exists_in(keep, w)) {
        out.add_edge(keep, w);
        placed = true;
      }
    }
    if (!placed && !exists_in(edge_list[e].u, edge_list[e].v)) {
      out.add_edge(edge_list[e].u, edge_list[e].v);
    }
  }
  // Guarantee connectivity (rare breakage at high beta): link components.
  while (!is_connected(out)) {
    const Components comps = connected_components(out);
    VertexId a = kInvalidVertex, b = kInvalidVertex;
    for (std::size_t v = 0; v < n && b == kInvalidVertex; ++v) {
      if (comps.component[v] != 0) {
        b = static_cast<VertexId>(v);
      } else if (a == kInvalidVertex) {
        a = static_cast<VertexId>(v);
      }
    }
    if (a == kInvalidVertex) a = 0;
    out.add_edge(a, b);
  }
  return out;
}

Graph make_random_tree(std::size_t n, support::Rng& rng) {
  MDST_REQUIRE(n >= 1, "random_tree: n >= 1");
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  g.reserve_edges(n - 1);
  // Prüfer decoding: uniform over all n^(n-2) labelled trees.
  std::vector<std::size_t> prufer(n - 2);
  for (auto& x : prufer) x = rng.next_below(n);
  std::vector<std::size_t> degree(n, 1);
  for (std::size_t x : prufer) ++degree[x];
  // Min-heap of current leaves.
  std::vector<std::size_t> leaves;
  for (std::size_t v = 0; v < n; ++v) {
    if (degree[v] == 1) leaves.push_back(v);
  }
  std::make_heap(leaves.begin(), leaves.end(), std::greater<>());
  for (std::size_t x : prufer) {
    std::pop_heap(leaves.begin(), leaves.end(), std::greater<>());
    const std::size_t leaf = leaves.back();
    leaves.pop_back();
    g.add_edge(static_cast<VertexId>(leaf), static_cast<VertexId>(x));
    if (--degree[x] == 1) {
      leaves.push_back(x);
      std::push_heap(leaves.begin(), leaves.end(), std::greater<>());
    }
  }
  std::pop_heap(leaves.begin(), leaves.end(), std::greater<>());
  const std::size_t a = leaves.back();
  leaves.pop_back();
  const std::size_t b = leaves.front();
  g.add_edge(static_cast<VertexId>(a), static_cast<VertexId>(b));
  return g;
}

void assign_random_names(Graph& g, support::Rng& rng) {
  std::vector<NodeName> names(g.vertex_count());
  std::iota(names.begin(), names.end(), NodeName{0});
  rng.shuffle(names);
  g.set_names(std::move(names));
}

namespace {

std::size_t isqrt(std::size_t n) {
  auto r = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  while ((r + 1) * (r + 1) <= n) ++r;
  while (r * r > n) --r;
  return r;
}

Graph family_gnp_sparse(std::size_t n, support::Rng& rng) {
  // Expected degree ~6; above the connectivity threshold for our sizes.
  const double p = std::min(1.0, 6.0 / static_cast<double>(std::max<std::size_t>(n, 2) - 1));
  return make_gnp_connected(n, p, rng);
}

Graph family_streamed_sparse(std::size_t n, support::Rng& rng) {
  // Tree (~n edges) + G(n,p) at expected extra degree ~4 gives m ~ 3n —
  // the sparse density of the large_n memory campaigns. O(n + m) time and
  // memory (no dedup set), so this is the only family that reaches 2^20.
  const double p = std::min(
      0.999, 4.0 / static_cast<double>(std::max<std::size_t>(n, 2) - 1));
  return make_gnp_connected_streamed(n, p, rng);
}

Graph family_gnp_dense(std::size_t n, support::Rng& rng) {
  return make_gnp_connected(n, 0.3, rng);
}

Graph family_gnm(std::size_t n, support::Rng& rng) {
  const std::size_t m = std::min(3 * n, n * (n - 1) / 2);
  return make_gnm_connected(n, m, rng);
}

Graph family_geometric(std::size_t n, support::Rng& rng) {
  // Radius ~ sqrt(8/(pi n)) gives expected degree ~8.
  const double r =
      std::sqrt(8.0 / (3.14159265358979323846 * static_cast<double>(n)));
  return make_geometric_connected(n, std::min(1.5, r), rng);
}

Graph family_barabasi(std::size_t n, support::Rng& rng) {
  return make_barabasi_albert(std::max<std::size_t>(n, 4), 3, rng);
}

Graph family_smallworld(std::size_t n, support::Rng& rng) {
  return make_watts_strogatz(std::max<std::size_t>(n, 8), 4, 0.2, rng);
}

Graph family_hypercube(std::size_t n, support::Rng& rng) {
  (void)rng;
  std::size_t d = 1;
  while ((std::size_t{1} << (d + 1)) <= n) ++d;
  return make_hypercube(d);
}

Graph family_grid(std::size_t n, support::Rng& rng) {
  (void)rng;
  const std::size_t side = std::max<std::size_t>(isqrt(n), 2);
  return make_grid(side, side);
}

Graph family_complete(std::size_t n, support::Rng& rng) {
  (void)rng;
  return make_complete(n);
}

const std::vector<FamilySpec> kFamilies = {
    {"gnp_sparse", family_gnp_sparse}, {"gnp_dense", family_gnp_dense},
    {"gnm", family_gnm},               {"geometric", family_geometric},
    {"barabasi_albert", family_barabasi},
    {"small_world", family_smallworld}, {"hypercube", family_hypercube},
    {"grid", family_grid},             {"complete", family_complete},
    {"streamed_sparse", family_streamed_sparse},
};

}  // namespace

const std::vector<FamilySpec>& standard_families() { return kFamilies; }

const FamilySpec& family_by_name(const std::string& name) {
  for (const FamilySpec& family : kFamilies) {
    if (family.name == name) return family;
  }
  MDST_REQUIRE(false, "unknown family: " + name);
  MDST_UNREACHABLE("unknown family");
}

}  // namespace mdst::graph
