// Disjoint-set union (union-find) with path halving and union by size.
// Shared by generators, Kruskal, the exact solver and the checker.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "support/assert.hpp"

namespace mdst::graph {

class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    MDST_REQUIRE(x < parent_.size(), "dsu: index out of range");
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if a merge happened (the two were in different sets).
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }
  std::size_t component_count() const { return components_; }
  std::size_t component_size(std::size_t x) { return size_[find(x)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_;
};

}  // namespace mdst::graph
