#include "graph/io.hpp"

#include <fstream>
#include <sstream>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace mdst::graph {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# libmdst edge list\n";
  out << g.vertex_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  auto next_data_line = [&]() -> bool {
    while (std::getline(in, line)) {
      const auto trimmed = support::trim(line);
      if (!trimmed.empty() && trimmed[0] != '#') {
        line = std::string(trimmed);
        return true;
      }
    }
    return false;
  };
  MDST_REQUIRE(next_data_line(), "edge list: missing header");
  std::istringstream header(line);
  std::size_t n = 0, m = 0;
  MDST_REQUIRE(static_cast<bool>(header >> n >> m), "edge list: bad header");
  Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    MDST_REQUIRE(next_data_line(), "edge list: truncated");
    std::istringstream row(line);
    long long u = 0, v = 0;
    MDST_REQUIRE(static_cast<bool>(row >> u >> v), "edge list: bad edge row");
    g.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return g;
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  MDST_REQUIRE(out.good(), "cannot open for write: " + path);
  write_edge_list(out, g);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  MDST_REQUIRE(in.good(), "cannot open for read: " + path);
  return read_edge_list(in);
}

void write_dot(std::ostream& out, const Graph& g, const RootedTree* tree) {
  out << "graph G {\n  node [shape=circle];\n";
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    out << "  " << v;
    if (tree != nullptr && tree->root() == static_cast<VertexId>(v)) {
      out << " [style=filled, fillcolor=gold]";
    }
    out << ";\n";
  }
  for (const Edge& e : g.edges()) {
    const bool in_tree =
        tree != nullptr && tree->has_tree_edge(e.u, e.v);
    out << "  " << e.u << " -- " << e.v;
    if (in_tree) {
      out << " [penwidth=2.5]";
    } else {
      out << " [color=grey70]";
    }
    out << ";\n";
  }
  out << "}\n";
}

}  // namespace mdst::graph
