// Rooted spanning tree representation.
//
// The MDegST algorithm manipulates a rooted tree: every node has a parent
// (except the root), an ordered children list, and a *tree degree* (number
// of incident tree edges — parent plus children). RootedTree is the global
// "bird's eye" structure used by sequential baselines, the checker and
// metrics; the distributed nodes hold only their local slice of it.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace mdst::graph {

class RootedTree {
 public:
  RootedTree() = default;

  /// Build from a parent vector; parent[root] must be kInvalidVertex.
  /// Validates that the structure is a tree on n vertices (single root,
  /// no cycles).
  static RootedTree from_parents(VertexId root, std::vector<VertexId> parents);

  /// Build from both local views at once, adopting the per-vertex child
  /// lists instead of reassembling them (zero allocations beyond the moved
  /// buffers — the allocation-free path distributed protocols use to lift
  /// node-local views into a tree). Validates that the two views agree:
  /// every non-root vertex is claimed by exactly its parent, and the parent
  /// structure is a single-rooted tree.
  static RootedTree from_views(VertexId root, std::vector<VertexId> parents,
                               std::vector<std::vector<VertexId>> children);

  std::size_t vertex_count() const { return parents_.size(); }
  VertexId root() const { return root_; }

  VertexId parent(VertexId v) const;
  const std::vector<VertexId>& children(VertexId v) const;

  /// Degree of v in the tree (parent edge + child edges).
  std::size_t degree(VertexId v) const;
  std::size_t max_degree() const;
  /// All vertices attaining max_degree().
  std::vector<VertexId> max_degree_vertices() const;

  bool is_leaf(VertexId v) const { return degree(v) <= 1; }
  bool has_tree_edge(VertexId a, VertexId b) const;

  /// Vertices of the subtree rooted at v (v first, preorder).
  std::vector<VertexId> subtree(VertexId v) const;
  std::size_t subtree_size(VertexId v) const;

  /// Path from a to b through the tree (inclusive of both endpoints).
  std::vector<VertexId> path(VertexId a, VertexId b) const;

  /// Depth of v (root has depth 0).
  std::size_t depth(VertexId v) const;
  /// Height of the tree = max depth.
  std::size_t height() const;

  /// Re-root at `new_root` by reversing parent pointers along the path.
  void reroot(VertexId new_root);

  /// Structural edit used by the improvement step: detach the subtree of
  /// `child` from its current parent and attach it below `new_parent` via
  /// the tree edge (new_parent, child). The caller guarantees this keeps the
  /// structure a tree (new_parent must not be inside child's subtree);
  /// violated guarantees are caught by contracts.
  void cut_and_link(VertexId child, VertexId new_parent);

  /// Tree edges as (parent, child) pairs, n-1 of them.
  std::vector<Edge> edges() const;

  /// Degree histogram indexed by degree.
  std::vector<std::size_t> degree_histogram() const;

  /// True iff this is a spanning tree of g (every tree edge is a g-edge and
  /// the structure spans all vertices).
  bool spans(const Graph& g) const;

 private:
  VertexId root_ = kInvalidVertex;
  std::vector<VertexId> parents_;
  std::vector<std::vector<VertexId>> children_;

  void check_vertex(VertexId v) const;
  void remove_child(VertexId parent, VertexId child);
};

/// The *fragment* of vertex x relative to cutting vertex p: the connected
/// component of T - p containing x. For the rooted tree with root p this is
/// the subtree of p's child leading to x. Returns p's child identifying the
/// fragment, or kInvalidVertex if x == p.
VertexId fragment_root(const RootedTree& tree, VertexId p, VertexId x);

}  // namespace mdst::graph
