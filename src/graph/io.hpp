// Graph serialisation: simple edge-list text format and Graphviz DOT export
// (used by the examples to visualise before/after trees).
//
// Edge-list format:
//   # comment lines allowed
//   n m
//   u v      (m lines, 0-based vertex indices)
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "graph/tree.hpp"

namespace mdst::graph {

/// Write the edge-list format.
void write_edge_list(std::ostream& out, const Graph& g);

/// Parse the edge-list format. Throws ContractViolation on malformed input.
Graph read_edge_list(std::istream& in);

/// Round-trip helpers for files.
void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);

/// DOT export; tree edges (if a tree is given) are drawn bold, others grey.
void write_dot(std::ostream& out, const Graph& g,
               const RootedTree* tree = nullptr);

}  // namespace mdst::graph
