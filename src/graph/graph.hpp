// Simple undirected graph with stable edge ids and CSR adjacency.
//
// The representation favours the access patterns of the simulator and the
// tree-improvement algorithms: O(deg) neighbour iteration over a contiguous
// slice of one flat array (cache-linear, no per-vertex heap allocations),
// O(1) edge-id lookup on an incident list, O(1) degree, and an O(1) average
// `has_edge` via a hash set of normalised endpoint pairs. Graphs are simple
// (no self-loops, no parallel edges) — both are rejected with contracts,
// since neither occurs in the paper's model.
//
// Lifecycle: builder-then-freeze. `add_vertex`/`add_edge` mutate the edge
// list; the compressed-sparse-row adjacency (offsets_ + incidence_) is
// (re)built lazily from the edge list on first neighbour access after a
// mutation, in edge-id order — which reproduces exactly the insertion order
// the old vector-of-vectors layout had. `freeze()` forces the build and
// locks the topology; further mutation is a contract violation. Callers
// never see the difference: `neighbors()` hands out std::span either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "graph/types.hpp"

namespace mdst::graph {

/// (neighbour, id of the connecting edge) entry of an adjacency list.
struct Incidence {
  VertexId neighbor = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
};

class Graph {
 public:
  Graph() = default;
  /// Create n isolated vertices named 0..n-1.
  explicit Graph(std::size_t n);

  std::size_t vertex_count() const { return degree_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Append a vertex; returns its index (also its default name).
  VertexId add_vertex();

  /// Add undirected edge {a,b}. Precondition: a != b, both valid, edge absent.
  EdgeId add_edge(VertexId a, VertexId b);

  /// Bulk-load mode for generators that guarantee simplicity by
  /// construction (the streamed large-n families): drops the dedup hash
  /// set — by far the largest builder-phase allocation at m ~ 3n — and
  /// routes edges through add_edge_unchecked. has_edge stays available but
  /// answers from the CSR adjacency in O(min degree) instead of O(1), which
  /// suits post-construction validators (RootedTree::spans) and would not
  /// suit a generator querying per candidate edge — bulk-mode generators
  /// must guarantee simplicity without asking. Precondition: no edges
  /// added yet.
  void disable_dedup();
  bool dedup_disabled() const { return dedup_disabled_; }

  /// add_edge without the parallel-edge hash check. Preconditions: dedup
  /// disabled, a != b, both valid, and the caller guarantees {a,b} was
  /// never added before (checked only by generator-side tests).
  EdgeId add_edge_unchecked(VertexId a, VertexId b);

  /// Pre-size the edge list and dedup set for ~m edges; cuts rehash/realloc
  /// churn in generators that add edges in a tight loop.
  void reserve_edges(std::size_t m);

  /// Capacity of the edge array; generators that reserve from exact
  /// streamed counts pin capacity == size in tests via this accessor.
  std::size_t edge_capacity() const { return edges_.capacity(); }

  /// True iff {a,b} is an edge (order-insensitive). O(1) average; in
  /// dedup-disabled bulk mode, O(min degree) via the CSR adjacency.
  bool has_edge(VertexId a, VertexId b) const;

  /// Edge id of {a,b} or kInvalidEdge.
  EdgeId find_edge(VertexId a, VertexId b) const;

  const Edge& edge(EdgeId e) const;
  std::span<const Edge> edges() const { return edges_; }

  std::span<const Incidence> neighbors(VertexId v) const;
  std::size_t degree(VertexId v) const;
  std::size_t max_degree() const;
  std::size_t min_degree() const;

  /// Build the CSR adjacency now and lock the topology: any later
  /// add_vertex/add_edge is a contract violation. Idempotent. Optional —
  /// unfrozen graphs are equally safe (the CSR rebuilds lazily after each
  /// mutation burst); freeze when a graph's topology must provably stay
  /// put for the lifetime of structures derived from it.
  void freeze();
  bool frozen() const { return frozen_; }

  bool valid_vertex(VertexId v) const {
    return v >= 0 && static_cast<std::size_t>(v) < degree_.size();
  }

  /// Distinct node identity used by distributed tie-breaks. Defaults to the
  /// index; `set_names` installs a permutation (must be unique values).
  NodeName name(VertexId v) const;
  void set_names(std::vector<NodeName> names);
  const std::vector<NodeName>& names() const { return names_; }

  /// Vertex with the given name, or kInvalidVertex.
  VertexId vertex_by_name(NodeName name) const;

  /// Human-readable one-line summary, e.g. "Graph(n=16, m=32)".
  std::string summary() const;

 private:
  void ensure_csr() const;

  std::vector<std::uint32_t> degree_;  // always current; one entry per vertex
  std::vector<Edge> edges_;
  std::vector<NodeName> names_;
  bool frozen_ = false;
  bool dedup_disabled_ = false;

  // CSR adjacency cache, rebuilt from edges_ when stale. Mutable because it
  // is a representation detail: logically-const accessors materialise it.
  mutable std::vector<std::uint32_t> offsets_;    // size n+1
  mutable std::vector<Incidence> incidence_;      // size 2m
  mutable bool csr_valid_ = false;

  struct PairHash {
    std::size_t operator()(const std::pair<VertexId, VertexId>& p) const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.first)) << 32) |
          static_cast<std::uint32_t>(p.second));
    }
  };
  std::unordered_set<std::pair<VertexId, VertexId>, PairHash> edge_set_;
};

/// Total handshake count = 2m; used in sanity checks.
std::size_t degree_sum(const Graph& g);

}  // namespace mdst::graph
