#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

#include "graph/limits.hpp"
#include "support/assert.hpp"

namespace mdst::graph {

namespace {
// Guard before the member initializers run: an over-limit n must throw
// ContractViolation, not attempt a multi-gigabyte allocation first.
std::size_t checked_vertex_count(std::size_t n) {
  detail::check_vertex_count_limit(n);
  return n;
}
}  // namespace

Graph::Graph(std::size_t n) : degree_(checked_vertex_count(n), 0), names_(n) {
  for (std::size_t i = 0; i < n; ++i) names_[i] = static_cast<NodeName>(i);
}

VertexId Graph::add_vertex() {
  MDST_REQUIRE(!frozen_, "add_vertex: graph is frozen");
  detail::check_vertex_count_limit(degree_.size() + 1);
  degree_.push_back(0);
  names_.push_back(static_cast<NodeName>(degree_.size() - 1));
  csr_valid_ = false;
  return static_cast<VertexId>(degree_.size() - 1);
}

EdgeId Graph::add_edge(VertexId a, VertexId b) {
  MDST_REQUIRE(!frozen_, "add_edge: graph is frozen");
  MDST_REQUIRE(!dedup_disabled_,
               "add_edge: graph is in dedup-disabled bulk mode; use "
               "add_edge_unchecked");
  MDST_REQUIRE(valid_vertex(a) && valid_vertex(b), "add_edge: bad endpoint");
  MDST_REQUIRE(a != b, "add_edge: self-loop rejected");
  detail::check_edge_count_limit(edges_.size() + 1);
  const Edge e = normalized(a, b);
  MDST_REQUIRE(edge_set_.emplace(e.u, e.v).second,
               "add_edge: parallel edge rejected");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(e);
  ++degree_[static_cast<std::size_t>(a)];
  ++degree_[static_cast<std::size_t>(b)];
  csr_valid_ = false;
  return id;
}

void Graph::disable_dedup() {
  MDST_REQUIRE(!frozen_, "disable_dedup: graph is frozen");
  MDST_REQUIRE(edges_.empty(),
               "disable_dedup: must be chosen before the first edge");
  dedup_disabled_ = true;
}

EdgeId Graph::add_edge_unchecked(VertexId a, VertexId b) {
  MDST_REQUIRE(!frozen_, "add_edge_unchecked: graph is frozen");
  MDST_REQUIRE(dedup_disabled_,
               "add_edge_unchecked: call disable_dedup() first (otherwise "
               "use add_edge)");
  MDST_REQUIRE(valid_vertex(a) && valid_vertex(b),
               "add_edge_unchecked: bad endpoint");
  MDST_REQUIRE(a != b, "add_edge_unchecked: self-loop rejected");
  detail::check_edge_count_limit(edges_.size() + 1);
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(normalized(a, b));
  ++degree_[static_cast<std::size_t>(a)];
  ++degree_[static_cast<std::size_t>(b)];
  csr_valid_ = false;
  return id;
}

void Graph::reserve_edges(std::size_t m) {
  detail::check_edge_count_limit(m);
  edges_.reserve(m);
  if (!dedup_disabled_) edge_set_.reserve(m);
}

bool Graph::has_edge(VertexId a, VertexId b) const {
  if (!valid_vertex(a) || !valid_vertex(b) || a == b) return false;
  if (dedup_disabled_) {
    // Bulk mode dropped the hash set; answer from the CSR adjacency
    // instead. O(min degree) — acceptable for the validators
    // (RootedTree::spans) that ask after construction, and generators in
    // bulk mode guarantee simplicity without ever querying.
    const VertexId probe = degree(a) <= degree(b) ? a : b;
    const VertexId want = probe == a ? b : a;
    for (const Incidence& inc : neighbors(probe)) {
      if (inc.neighbor == want) return true;
    }
    return false;
  }
  const Edge e = normalized(a, b);
  return edge_set_.count({e.u, e.v}) > 0;
}

EdgeId Graph::find_edge(VertexId a, VertexId b) const {
  if (!has_edge(a, b)) return kInvalidEdge;
  // Scan the smaller incidence list.
  const VertexId probe =
      degree(a) <= degree(b) ? a : b;
  const VertexId want = probe == a ? b : a;
  for (const Incidence& inc : neighbors(probe)) {
    if (inc.neighbor == want) return inc.edge;
  }
  MDST_UNREACHABLE("edge present in set but absent from adjacency");
}

const Edge& Graph::edge(EdgeId e) const {
  MDST_REQUIRE(e >= 0 && static_cast<std::size_t>(e) < edges_.size(),
               "edge id out of range");
  return edges_[static_cast<std::size_t>(e)];
}

void Graph::ensure_csr() const {
  if (csr_valid_) return;
  const std::size_t n = degree_.size();
  offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + degree_[v];
  }
  incidence_.resize(2 * edges_.size());
  // Counting sort in edge-id order reproduces the incidence order that
  // per-vertex push_back construction would have produced.
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const Edge& ed = edges_[e];
    const auto id = static_cast<EdgeId>(e);
    incidence_[cursor[static_cast<std::size_t>(ed.u)]++] = {ed.v, id};
    incidence_[cursor[static_cast<std::size_t>(ed.v)]++] = {ed.u, id};
  }
  csr_valid_ = true;
}

void Graph::freeze() {
  ensure_csr();
  frozen_ = true;
}

std::span<const Incidence> Graph::neighbors(VertexId v) const {
  MDST_REQUIRE(valid_vertex(v), "neighbors: bad vertex");
  ensure_csr();
  const auto i = static_cast<std::size_t>(v);
  return {incidence_.data() + offsets_[i], degree_[i]};
}

std::size_t Graph::degree(VertexId v) const {
  MDST_REQUIRE(valid_vertex(v), "degree: bad vertex");
  return degree_[static_cast<std::size_t>(v)];
}

std::size_t Graph::max_degree() const {
  std::uint32_t best = 0;
  for (const std::uint32_t d : degree_) best = std::max(best, d);
  return best;
}

std::size_t Graph::min_degree() const {
  if (degree_.empty()) return 0;
  std::uint32_t best = degree_.front();
  for (const std::uint32_t d : degree_) best = std::min(best, d);
  return best;
}

NodeName Graph::name(VertexId v) const {
  MDST_REQUIRE(valid_vertex(v), "name: bad vertex");
  return names_[static_cast<std::size_t>(v)];
}

void Graph::set_names(std::vector<NodeName> names) {
  MDST_REQUIRE(names.size() == degree_.size(), "names size mismatch");
  std::vector<NodeName> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  MDST_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
               "names must be distinct");
  names_ = std::move(names);
}

VertexId Graph::vertex_by_name(NodeName name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<VertexId>(i);
  }
  return kInvalidVertex;
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "Graph(n=" << vertex_count() << ", m=" << edge_count() << ")";
  return os.str();
}

std::size_t degree_sum(const Graph& g) {
  std::size_t total = 0;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    total += g.degree(static_cast<VertexId>(v));
  }
  return total;
}

}  // namespace mdst::graph
