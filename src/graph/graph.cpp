#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace mdst::graph {

Graph::Graph(std::size_t n) : adjacency_(n), names_(n) {
  for (std::size_t i = 0; i < n; ++i) names_[i] = static_cast<NodeName>(i);
}

VertexId Graph::add_vertex() {
  adjacency_.emplace_back();
  names_.push_back(static_cast<NodeName>(adjacency_.size() - 1));
  return static_cast<VertexId>(adjacency_.size() - 1);
}

EdgeId Graph::add_edge(VertexId a, VertexId b) {
  MDST_REQUIRE(valid_vertex(a) && valid_vertex(b), "add_edge: bad endpoint");
  MDST_REQUIRE(a != b, "add_edge: self-loop rejected");
  const Edge e = normalized(a, b);
  MDST_REQUIRE(edge_set_.emplace(e.u, e.v).second,
               "add_edge: parallel edge rejected");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(e);
  adjacency_[static_cast<std::size_t>(a)].push_back({b, id});
  adjacency_[static_cast<std::size_t>(b)].push_back({a, id});
  return id;
}

bool Graph::has_edge(VertexId a, VertexId b) const {
  if (!valid_vertex(a) || !valid_vertex(b) || a == b) return false;
  const Edge e = normalized(a, b);
  return edge_set_.count({e.u, e.v}) > 0;
}

EdgeId Graph::find_edge(VertexId a, VertexId b) const {
  if (!has_edge(a, b)) return kInvalidEdge;
  // Scan the smaller incidence list.
  const VertexId probe =
      degree(a) <= degree(b) ? a : b;
  const VertexId want = probe == a ? b : a;
  for (const Incidence& inc : neighbors(probe)) {
    if (inc.neighbor == want) return inc.edge;
  }
  MDST_UNREACHABLE("edge present in set but absent from adjacency");
}

const Edge& Graph::edge(EdgeId e) const {
  MDST_REQUIRE(e >= 0 && static_cast<std::size_t>(e) < edges_.size(),
               "edge id out of range");
  return edges_[static_cast<std::size_t>(e)];
}

std::span<const Incidence> Graph::neighbors(VertexId v) const {
  MDST_REQUIRE(valid_vertex(v), "neighbors: bad vertex");
  return adjacency_[static_cast<std::size_t>(v)];
}

std::size_t Graph::degree(VertexId v) const {
  MDST_REQUIRE(valid_vertex(v), "degree: bad vertex");
  return adjacency_[static_cast<std::size_t>(v)].size();
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& row : adjacency_) best = std::max(best, row.size());
  return best;
}

std::size_t Graph::min_degree() const {
  if (adjacency_.empty()) return 0;
  std::size_t best = adjacency_.front().size();
  for (const auto& row : adjacency_) best = std::min(best, row.size());
  return best;
}

NodeName Graph::name(VertexId v) const {
  MDST_REQUIRE(valid_vertex(v), "name: bad vertex");
  return names_[static_cast<std::size_t>(v)];
}

void Graph::set_names(std::vector<NodeName> names) {
  MDST_REQUIRE(names.size() == adjacency_.size(), "names size mismatch");
  std::vector<NodeName> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  MDST_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
               "names must be distinct");
  names_ = std::move(names);
}

VertexId Graph::vertex_by_name(NodeName name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<VertexId>(i);
  }
  return kInvalidVertex;
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "Graph(n=" << vertex_count() << ", m=" << edge_count() << ")";
  return os.str();
}

std::size_t degree_sum(const Graph& g) {
  std::size_t total = 0;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    total += g.degree(static_cast<VertexId>(v));
  }
  return total;
}

}  // namespace mdst::graph
