#include "graph/spanning_builders.hpp"

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"
#include "graph/dsu.hpp"
#include "support/assert.hpp"

namespace mdst::graph {

RootedTree bfs_tree(const Graph& g, VertexId root) {
  MDST_REQUIRE(is_connected(g), "bfs_tree: graph must be connected");
  BfsResult r = bfs(g, root);
  return RootedTree::from_parents(root, std::move(r.parents));
}

RootedTree dfs_tree(const Graph& g, VertexId root) {
  MDST_REQUIRE(is_connected(g), "dfs_tree: graph must be connected");
  DfsResult r = dfs(g, root);
  return RootedTree::from_parents(root, std::move(r.parents));
}

RootedTree random_spanning_tree(const Graph& g, VertexId root,
                                support::Rng& rng) {
  MDST_REQUIRE(is_connected(g), "random_spanning_tree: must be connected");
  const std::size_t n = g.vertex_count();
  std::vector<VertexId> parents(n, kInvalidVertex);
  std::vector<char> in_tree(n, 0);
  in_tree[static_cast<std::size_t>(root)] = 1;
  // Wilson's algorithm: loop-erased random walks from each vertex until the
  // current tree is hit; yields the uniform distribution over spanning trees.
  std::vector<VertexId> next(n, kInvalidVertex);
  for (std::size_t start = 0; start < n; ++start) {
    if (in_tree[start]) continue;
    // Random walk recording the last exit edge of each visited vertex.
    VertexId cur = static_cast<VertexId>(start);
    while (!in_tree[static_cast<std::size_t>(cur)]) {
      const auto neigh = g.neighbors(cur);
      const Incidence& step = neigh[rng.pick_index(neigh)];
      next[static_cast<std::size_t>(cur)] = step.neighbor;
      cur = step.neighbor;
    }
    // Retrace the loop-erased path and add it to the tree.
    cur = static_cast<VertexId>(start);
    while (!in_tree[static_cast<std::size_t>(cur)]) {
      const VertexId to = next[static_cast<std::size_t>(cur)];
      parents[static_cast<std::size_t>(cur)] = to;
      in_tree[static_cast<std::size_t>(cur)] = 1;
      cur = to;
    }
  }
  return RootedTree::from_parents(root, std::move(parents));
}

RootedTree kruskal_mst(const Graph& g, const std::vector<Weight>& weights,
                       VertexId root) {
  MDST_REQUIRE(weights.size() == g.edge_count(), "kruskal: weight size");
  MDST_REQUIRE(is_connected(g), "kruskal: must be connected");
  const std::size_t n = g.vertex_count();
  std::vector<EdgeId> ids(g.edge_count());
  std::iota(ids.begin(), ids.end(), 0);
  std::sort(ids.begin(), ids.end(), [&](EdgeId a, EdgeId b) {
    const Weight wa = weights[static_cast<std::size_t>(a)];
    const Weight wb = weights[static_cast<std::size_t>(b)];
    return wa != wb ? wa < wb : a < b;
  });
  Dsu dsu(n);
  Graph tree_graph(n);
  for (EdgeId id : ids) {
    const Edge& e = g.edge(id);
    if (dsu.unite(static_cast<std::size_t>(e.u), static_cast<std::size_t>(e.v))) {
      tree_graph.add_edge(e.u, e.v);
      if (tree_graph.edge_count() + 1 == n) break;
    }
  }
  MDST_ASSERT(tree_graph.edge_count() + 1 == n, "kruskal: tree incomplete");
  BfsResult r = bfs(tree_graph, root);
  return RootedTree::from_parents(root, std::move(r.parents));
}

RootedTree random_mst(const Graph& g, VertexId root, support::Rng& rng) {
  std::vector<Weight> weights(g.edge_count());
  for (auto& w : weights) w = rng.next_double();
  return kruskal_mst(g, weights, root);
}

RootedTree star_biased_tree(const Graph& g) {
  MDST_REQUIRE(is_connected(g), "star_biased_tree: must be connected");
  const std::size_t n = g.vertex_count();
  // Hub = max-degree vertex (ties by index).
  VertexId hub = 0;
  for (std::size_t v = 1; v < n; ++v) {
    if (g.degree(static_cast<VertexId>(v)) > g.degree(hub)) {
      hub = static_cast<VertexId>(v);
    }
  }
  std::vector<VertexId> parents(n, kInvalidVertex);
  std::vector<char> attached(n, 0);
  attached[static_cast<std::size_t>(hub)] = 1;
  std::vector<VertexId> frontier;
  for (const Incidence& inc : g.neighbors(hub)) {
    parents[static_cast<std::size_t>(inc.neighbor)] = hub;
    attached[static_cast<std::size_t>(inc.neighbor)] = 1;
    frontier.push_back(inc.neighbor);
  }
  // Grow the remainder by BFS from the hub's neighbours.
  std::size_t head = 0;
  while (head < frontier.size()) {
    const VertexId v = frontier[head++];
    for (const Incidence& inc : g.neighbors(v)) {
      if (!attached[static_cast<std::size_t>(inc.neighbor)]) {
        attached[static_cast<std::size_t>(inc.neighbor)] = 1;
        parents[static_cast<std::size_t>(inc.neighbor)] = v;
        frontier.push_back(inc.neighbor);
      }
    }
  }
  return RootedTree::from_parents(hub, std::move(parents));
}

const char* to_string(InitialTreeKind kind) {
  switch (kind) {
    case InitialTreeKind::kBfs: return "bfs";
    case InitialTreeKind::kDfs: return "dfs";
    case InitialTreeKind::kRandom: return "random";
    case InitialTreeKind::kMst: return "mst";
    case InitialTreeKind::kStarBiased: return "star";
  }
  return "?";
}

RootedTree build_initial_tree(const Graph& g, InitialTreeKind kind,
                              support::Rng& rng) {
  const auto root = static_cast<VertexId>(rng.next_below(g.vertex_count()));
  switch (kind) {
    case InitialTreeKind::kBfs: return bfs_tree(g, root);
    case InitialTreeKind::kDfs: return dfs_tree(g, root);
    case InitialTreeKind::kRandom: return random_spanning_tree(g, root, rng);
    case InitialTreeKind::kMst: return random_mst(g, root, rng);
    case InitialTreeKind::kStarBiased: return star_biased_tree(g);
  }
  MDST_UNREACHABLE("bad InitialTreeKind");
}

}  // namespace mdst::graph
