// Classic sequential graph algorithms used by generators, baselines,
// the exact solver, and the invariant checker.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace mdst::graph {

/// BFS from `source`: returns parent vector (kInvalidVertex for source and
/// unreachable vertices) in `parents` and BFS distance (-1 if unreachable).
struct BfsResult {
  std::vector<VertexId> parents;
  std::vector<int> distance;
  std::vector<VertexId> order;  // visit order, source first
};
BfsResult bfs(const Graph& g, VertexId source);

/// Iterative DFS preorder from `source` with parent pointers.
struct DfsResult {
  std::vector<VertexId> parents;
  std::vector<VertexId> order;
};
DfsResult dfs(const Graph& g, VertexId source);

/// Component id per vertex (0-based, by discovery) and component count.
struct Components {
  std::vector<int> component;
  std::size_t count = 0;
};
Components connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Number of connected components of G - v (v removed).
std::size_t components_without_vertex(const Graph& g, VertexId v);

/// Bridges (cut edges) via Tarjan low-link. Returned as edge ids.
std::vector<EdgeId> bridges(const Graph& g);

/// Articulation points (cut vertices).
std::vector<VertexId> articulation_points(const Graph& g);

/// Exact diameter by BFS from every vertex (fine for experiment sizes);
/// returns 0 for n <= 1. Precondition: connected graph.
std::size_t diameter(const Graph& g);

/// True iff g is a tree (connected with n-1 edges).
bool is_tree(const Graph& g);

/// True iff g contains a Hamiltonian path (exponential search with degree
/// pruning; only intended for the exact MDegST solver on small graphs).
bool has_hamiltonian_path(const Graph& g);

}  // namespace mdst::graph
