// Representation limits of the graph layer, checked explicitly.
//
// VertexId/EdgeId/NodeName are int32_t (types.hpp) and the CSR offset
// array is uint32_t, so the layer has hard ceilings: n < 2^31 vertices,
// m < 2^31 edges, and 2m <= 2^32 - 1 incidence entries. The large-n work
// (docs/perf.md "Memory model") pushes sizes to 2^20 and beyond, close
// enough that a silent wrap would otherwise be the failure mode; these
// helpers turn each ceiling into an MDST_REQUIRE that names the offending
// count and the limit. They are free functions (not buried in Graph
// internals) so tests can provoke each guard with a huge count without
// allocating anything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/assert.hpp"

namespace mdst::graph::detail {

/// Largest vertex count representable: VertexId is int32_t.
inline constexpr std::size_t kMaxVertexCount =
    static_cast<std::size_t>(INT32_MAX);
/// Largest edge count representable: EdgeId is int32_t, and the CSR
/// incidence array holds 2m uint32_t-indexed entries (2m <= 2^32 - 1 is
/// implied by m <= 2^31 - 1).
inline constexpr std::size_t kMaxEdgeCount =
    static_cast<std::size_t>(INT32_MAX);

/// Precondition guard: `n` vertices fit in VertexId. Call before sizing a
/// graph from an untrusted or computed count.
inline void check_vertex_count_limit(std::size_t n) {
  MDST_REQUIRE(n <= kMaxVertexCount,
               "graph: vertex count n = " + std::to_string(n) +
                   " exceeds the int32 VertexId limit (" +
                   std::to_string(kMaxVertexCount) + ")");
}

/// Precondition guard: `m` edges fit in EdgeId (and 2m in the uint32 CSR
/// offsets). Call before reserving or appending edge `m`.
inline void check_edge_count_limit(std::size_t m) {
  MDST_REQUIRE(m <= kMaxEdgeCount,
               "graph: edge count m = " + std::to_string(m) +
                   " exceeds the int32 EdgeId limit (" +
                   std::to_string(kMaxEdgeCount) + ")");
}

/// Precondition guard for degree products: generators that compute an
/// expected edge count as n * avg_degree (or n * (n-1) / 2) must check the
/// product before casting it into a reservation size.
inline void check_edge_budget(std::uint64_t product) {
  MDST_REQUIRE(product <= static_cast<std::uint64_t>(kMaxEdgeCount),
               "graph: requested edge budget " + std::to_string(product) +
                   " exceeds the int32 EdgeId limit (" +
                   std::to_string(kMaxEdgeCount) + ")");
}

}  // namespace mdst::graph::detail
