#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>

#include "support/assert.hpp"

namespace mdst::graph {

BfsResult bfs(const Graph& g, VertexId source) {
  MDST_REQUIRE(g.valid_vertex(source), "bfs: bad source");
  const std::size_t n = g.vertex_count();
  BfsResult result;
  result.parents.assign(n, kInvalidVertex);
  result.distance.assign(n, -1);
  result.order.reserve(n);
  std::deque<VertexId> queue;
  queue.push_back(source);
  result.distance[static_cast<std::size_t>(source)] = 0;
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    result.order.push_back(v);
    for (const Incidence& inc : g.neighbors(v)) {
      auto& dist = result.distance[static_cast<std::size_t>(inc.neighbor)];
      if (dist == -1) {
        dist = result.distance[static_cast<std::size_t>(v)] + 1;
        result.parents[static_cast<std::size_t>(inc.neighbor)] = v;
        queue.push_back(inc.neighbor);
      }
    }
  }
  return result;
}

DfsResult dfs(const Graph& g, VertexId source) {
  MDST_REQUIRE(g.valid_vertex(source), "dfs: bad source");
  const std::size_t n = g.vertex_count();
  DfsResult result;
  result.parents.assign(n, kInvalidVertex);
  result.order.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<std::pair<VertexId, VertexId>> stack;  // (vertex, parent)
  stack.emplace_back(source, kInvalidVertex);
  while (!stack.empty()) {
    const auto [v, parent] = stack.back();
    stack.pop_back();
    if (visited[static_cast<std::size_t>(v)]) continue;
    visited[static_cast<std::size_t>(v)] = 1;
    result.parents[static_cast<std::size_t>(v)] = parent;
    result.order.push_back(v);
    const auto neigh = g.neighbors(v);
    // Reverse push so the first-listed neighbour is explored first.
    for (auto it = neigh.rbegin(); it != neigh.rend(); ++it) {
      if (!visited[static_cast<std::size_t>(it->neighbor)]) {
        stack.emplace_back(it->neighbor, v);
      }
    }
  }
  return result;
}

Components connected_components(const Graph& g) {
  const std::size_t n = g.vertex_count();
  Components result;
  result.component.assign(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    if (result.component[v] != -1) continue;
    const int id = static_cast<int>(result.count++);
    std::vector<VertexId> stack{static_cast<VertexId>(v)};
    result.component[v] = id;
    while (!stack.empty()) {
      const VertexId cur = stack.back();
      stack.pop_back();
      for (const Incidence& inc : g.neighbors(cur)) {
        auto& c = result.component[static_cast<std::size_t>(inc.neighbor)];
        if (c == -1) {
          c = id;
          stack.push_back(inc.neighbor);
        }
      }
    }
  }
  return result;
}

bool is_connected(const Graph& g) {
  if (g.vertex_count() <= 1) return true;
  return connected_components(g).count == 1;
}

std::size_t components_without_vertex(const Graph& g, VertexId v) {
  MDST_REQUIRE(g.valid_vertex(v), "components_without_vertex: bad vertex");
  const std::size_t n = g.vertex_count();
  if (n <= 1) return 0;
  std::vector<char> visited(n, 0);
  visited[static_cast<std::size_t>(v)] = 1;
  std::size_t components = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (visited[s]) continue;
    ++components;
    std::vector<VertexId> stack{static_cast<VertexId>(s)};
    visited[s] = 1;
    while (!stack.empty()) {
      const VertexId cur = stack.back();
      stack.pop_back();
      for (const Incidence& inc : g.neighbors(cur)) {
        if (!visited[static_cast<std::size_t>(inc.neighbor)]) {
          visited[static_cast<std::size_t>(inc.neighbor)] = 1;
          stack.push_back(inc.neighbor);
        }
      }
    }
  }
  return components;
}

namespace {

// Shared iterative Tarjan for bridges + articulation points.
struct LowLink {
  std::vector<int> disc;
  std::vector<int> low;
  std::vector<EdgeId> bridge_edges;
  std::vector<VertexId> articulation;
};

LowLink tarjan(const Graph& g) {
  const std::size_t n = g.vertex_count();
  LowLink out;
  out.disc.assign(n, -1);
  out.low.assign(n, -1);
  std::vector<char> is_artic(n, 0);
  int timer = 0;

  struct Frame {
    VertexId v;
    EdgeId in_edge;        // edge taken to reach v (kInvalidEdge at root)
    std::size_t next = 0;  // neighbour cursor
    std::size_t root_children = 0;
  };

  for (std::size_t start = 0; start < n; ++start) {
    if (out.disc[start] != -1) continue;
    std::vector<Frame> stack;
    stack.push_back({static_cast<VertexId>(start), kInvalidEdge});
    out.disc[start] = out.low[start] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto neigh = g.neighbors(frame.v);
      if (frame.next < neigh.size()) {
        const Incidence inc = neigh[frame.next++];
        if (inc.edge == frame.in_edge) continue;  // don't re-use entry edge
        const auto w = static_cast<std::size_t>(inc.neighbor);
        if (out.disc[w] == -1) {
          out.disc[w] = out.low[w] = timer++;
          if (frame.in_edge == kInvalidEdge) ++frame.root_children;
          stack.push_back({inc.neighbor, inc.edge});
        } else {
          out.low[static_cast<std::size_t>(frame.v)] =
              std::min(out.low[static_cast<std::size_t>(frame.v)], out.disc[w]);
        }
      } else {
        // Pop: propagate low-link to parent and classify.
        const Frame done = frame;
        stack.pop_back();
        if (stack.empty()) {
          if (done.root_children >= 2) is_artic[static_cast<std::size_t>(done.v)] = 1;
          continue;
        }
        Frame& up = stack.back();
        const auto v = static_cast<std::size_t>(done.v);
        const auto u = static_cast<std::size_t>(up.v);
        out.low[u] = std::min(out.low[u], out.low[v]);
        if (out.low[v] > out.disc[u]) out.bridge_edges.push_back(done.in_edge);
        if (up.in_edge != kInvalidEdge && out.low[v] >= out.disc[u]) {
          is_artic[u] = 1;
        }
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (is_artic[v]) out.articulation.push_back(static_cast<VertexId>(v));
  }
  return out;
}

}  // namespace

std::vector<EdgeId> bridges(const Graph& g) { return tarjan(g).bridge_edges; }

std::vector<VertexId> articulation_points(const Graph& g) {
  return tarjan(g).articulation;
}

std::size_t diameter(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n <= 1) return 0;
  MDST_REQUIRE(is_connected(g), "diameter: graph must be connected");
  std::size_t best = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const BfsResult r = bfs(g, static_cast<VertexId>(v));
    for (int d : r.distance) best = std::max(best, static_cast<std::size_t>(d));
  }
  return best;
}

bool is_tree(const Graph& g) {
  return g.edge_count() + 1 == g.vertex_count() && is_connected(g);
}

namespace {

bool ham_path_extend(const Graph& g, VertexId cur, std::vector<char>& used,
                     std::size_t placed) {
  if (placed == g.vertex_count()) return true;
  for (const Incidence& inc : g.neighbors(cur)) {
    const auto w = static_cast<std::size_t>(inc.neighbor);
    if (used[w]) continue;
    used[w] = 1;
    if (ham_path_extend(g, inc.neighbor, used, placed + 1)) return true;
    used[w] = 0;
  }
  return false;
}

}  // namespace

bool has_hamiltonian_path(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n <= 1) return true;
  if (!is_connected(g)) return false;
  // Quick necessary condition: at most 2 vertices of degree 1... not true in
  // general graphs (degree-1 vertices must be path endpoints), so:
  std::size_t degree_one = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (g.degree(static_cast<VertexId>(v)) == 1) ++degree_one;
  }
  if (degree_one > 2) return false;
  std::vector<char> used(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    std::fill(used.begin(), used.end(), 0);
    used[s] = 1;
    if (ham_path_extend(g, static_cast<VertexId>(s), used, 1)) return true;
  }
  return false;
}

}  // namespace mdst::graph
