#include "mdst/node.hpp"

#include <algorithm>
#include <cstddef>

#include "mdst/annotations.hpp"
#include "runtime/sim_core.hpp"
#include "runtime/sharded_sim.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace mdst::core {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kNotStopped: return "not_stopped";
    case StopReason::kChain: return "chain";
    case StopReason::kLocallyOptimal: return "locally_optimal";
    case StopReason::kAllMaxStuck: return "all_max_stuck";
    case StopReason::kTargetReached: return "target_reached";
  }
  return "?";
}

const char* to_string(EngineMode mode) {
  switch (mode) {
    case EngineMode::kSingleImprovement: return "single";
    case EngineMode::kConcurrent: return "concurrent";
    case EngineMode::kStrictLot: return "strict_lot";
  }
  return "?";
}

template <typename Context>
BasicNode<Context>::BasicNode(const sim::NodeEnv& env, sim::NodeId parent,
                              std::vector<sim::NodeId> children,
                              Options options)
    : env_(env), opts_(options) {
  // Self-allocating binding: carve all five degree-scaled arrays out of one
  // private block (layout: the three u32-wide arrays and the NodeId array
  // first, the byte flags last, so every element is naturally aligned).
  const std::size_t deg = env_.neighbors.size();
  if (deg > 0) {
    owned_ = std::make_unique<std::byte[]>(deg * (4 * sizeof(std::uint32_t) +
                                                  sizeof(std::uint8_t)));
    std::byte* p = owned_.get();
    children_.bind(reinterpret_cast<sim::NodeId*>(p),
                   static_cast<std::uint32_t>(deg));
    p += deg * sizeof(sim::NodeId);
    child_indices_.bind(reinterpret_cast<std::uint32_t*>(p),
                        static_cast<std::uint32_t>(deg));
    p += deg * sizeof(std::uint32_t);
    wave_child_epoch_ = reinterpret_cast<std::uint32_t*>(p);
    p += deg * sizeof(std::uint32_t);
    cross_closed_epoch_ = reinterpret_cast<std::uint32_t*>(p);
    p += deg * sizeof(std::uint32_t);
    child_at_ = reinterpret_cast<std::uint8_t*>(p);
  }
  init(parent, std::span<const sim::NodeId>(children));
}

template <typename Context>
BasicNode<Context>::BasicNode(const sim::NodeEnv& env, sim::NodeId parent,
                              std::span<const sim::NodeId> children,
                              const NodeSlice& slice, Options options)
    : env_(env), opts_(options) {
  MDST_REQUIRE(slice.degree == env_.neighbors.size(),
               "node arena slice does not match the node's degree");
  children_.bind(slice.children, slice.degree);
  child_indices_.bind(slice.child_indices, slice.degree);
  child_at_ = slice.child_at;
  wave_child_epoch_ = slice.wave_child_epoch;
  cross_closed_epoch_ = slice.cross_closed_epoch;
  init(parent, children);
}

template <typename Context>
void BasicNode<Context>::init(sim::NodeId parent,
                              std::span<const sim::NodeId> children) {
  parent_ = parent;
  MDST_REQUIRE(parent_ == sim::kNoNode || env_.is_neighbor(parent_),
               "initial parent must be a neighbor");
  if (parent_ != sim::kNoNode) {
    parent_index_ = static_cast<std::uint32_t>(neighbor_index(parent_));
  }
  // Flat per-neighbor-slot bookkeeping: zeroed once here, never cleared
  // again (the epoch stamps are invalidated by epoch bumps).
  const std::size_t deg = env_.neighbors.size();
  std::fill_n(child_at_, deg, std::uint8_t{0});
  std::fill_n(wave_child_epoch_, deg, std::uint32_t{0});
  std::fill_n(cross_closed_epoch_, deg, std::uint32_t{0});
  for (const sim::NodeId child : children) {
    MDST_REQUIRE(env_.is_neighbor(child), "initial child must be a neighbor");
    const auto slot = static_cast<std::uint32_t>(neighbor_index(child));
    children_.push_back(child);
    child_indices_.push_back(slot);
    child_at_[slot] = 1;
  }
  concurrent_ = opts_.mode == EngineMode::kConcurrent;
  recovery_on_ = opts_.recovery.enabled;
  defensive_ = opts_.recovery.defensive || recovery_on_;
  if (recovery_on_) {
    stall_limit_ = std::max<std::uint32_t>(1, opts_.recovery.stall_ticks);
    ack_limit_ = std::max<std::uint32_t>(1, opts_.recovery.ack_timeout_ticks);
    if (deg > 0) rec_nb_ = std::make_unique<std::uint8_t[]>(deg);
  }
}

// Compile-time guard for the hot-line packing promised in node.hpp: the
// per-message fields (dispatch asserts, wave counters, tags, aggregation
// slots) must share the object's leading cache line. offsetof on a
// non-standard-layout class is conditionally-supported; GCC and Clang both
// implement it, we just silence the pedantic warning.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
template <typename Context>
void BasicNode<Context>::static_layout_check() {
  using Self = BasicNode;
  static_assert(alignof(Self) == 64, "node must be cache-line aligned");
  static_assert(offsetof(Self, parent_) == 0, "hot block must lead");
  static_assert(offsetof(Self, search_best_who_) + sizeof(graph::NodeName) <=
                    64,
                "hot per-message state must fit the leading cache line");
}
#pragma GCC diagnostic pop

template <typename Context>
void BasicNode<Context>::add_child(sim::NodeId node, std::uint32_t idx_hint) {
  MDST_ASSERT(!has_child(node), "add_child: already a child");
  MDST_ASSERT(node != parent_, "add_child: is parent");
  const auto slot =
      static_cast<std::uint32_t>(neighbor_index_hinted(node, idx_hint));
  children_.push_back(node);
  child_indices_.push_back(slot);
  child_at_[slot] = 1;
}

template <typename Context>
void BasicNode<Context>::remove_child(sim::NodeId node) {
  const sim::NodeId* it = std::find(children_.begin(), children_.end(), node);
  MDST_ASSERT(it != children_.end(), "remove_child: not a child");
  const auto pos = static_cast<std::size_t>(it - children_.begin());
  child_at_[child_indices_[pos]] = 0;
  child_indices_.erase_at(pos);
  children_.erase_at(pos);
}

template <typename Context>
std::uint32_t BasicNode<Context>::child_index_of(sim::NodeId node) const {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (children_[i] == node) return child_indices_[i];
  }
  MDST_UNREACHABLE("child_index_of: not a child");
}

template <typename Context>
sim::NodeId BasicNode<Context>::neighbor_by_name(graph::NodeName name) const {
  for (const sim::NeighborInfo& nb : env_.neighbors) {
    if (nb.name == name) return nb.id;
  }
  MDST_UNREACHABLE("neighbor_by_name: no neighbor with that name");
}

template <typename Context>
bool BasicNode<Context>::node_is_stuck() const {
  // A stuck mark is only meaningful while the node's degree is unchanged
  // since the mark was taken (lazy invalidation).
  return stuck_ && stuck_degree_ == tree_degree();
}

template <typename Context>
void BasicNode<Context>::reset_round_state() {
  role_ = Role::kIdle;
  have_tags_ = false;
  top_ = FragTag{};
  sub_ = FragTag{};
  wave_waiting_ = 0;
  // The epoch stamps need no clearing: the next begin_wave() bump
  // invalidates every stale wave_child/cross_closed stamp at once.
  queued_probes_.clear();
  reported_up_ = false;
  best_top_ = Candidate{};
  prov_top_ = sim::kNoNode;
  best_sub_ = Candidate{};
  prov_sub_ = sim::kNoNode;
  subtree_stuck_ = false;
  subtree_improved_ = false;
  improving_ = false;
  round_aborted_ = false;
  sub_internal_done_ = false;
  sub_stuck_ = false;
  sub_improved_ = false;
  update_from_ = sim::kNoNode;
  pending_candidate_ = Candidate{};
  pending_new_parent_ = sim::kNoNode;
  if (stuck_ && stuck_degree_ != tree_degree()) stuck_ = false;
  // Seed the SearchDegree aggregation with this node's own entry.
  search_waiting_ = static_cast<std::uint32_t>(children_.size());
  const int deg = tree_degree();
  if (node_is_stuck()) {
    search_best_deg_ = -1;
    search_best_who_ = kNoName;
  } else {
    search_best_deg_ = deg;
    search_best_who_ = env_.name;
  }
  search_deg_all_ = deg;
  via_ = sim::kNoNode;  // kNoNode = the winner is this node itself
}

// ---------------------------------------------------------------------------
// Round orchestration (root side)
// ---------------------------------------------------------------------------

template <typename Context>
void BasicNode<Context>::on_start(Context& ctx) {
  if (crashed_) return;
  arm_heartbeat(ctx);  // no-op unless the recovery layer is enabled
  if (parent_ != sim::kNoNode || done_) return;
  begin_round(ctx);
}

template <typename Context>
void BasicNode<Context>::begin_round(Context& ctx) {
  MDST_ASSERT(parent_ == sim::kNoNode, "begin_round on non-root");
  ++round_;
  const bool clear = clear_stuck_next_;
  clear_stuck_next_ = false;
  if (clear) stuck_ = false;
  reset_round_state();
  sim::annotate_tagged(ctx, note_round_start(round_), format_round_note);
  for (std::size_t i = 0; i < children_.size(); ++i) {
    send_indexed(ctx, children_[i], child_indices_[i],
                 StartRound{round_, clear});
  }
  if (children_.empty()) root_decide_after_search(ctx);  // n == 1
}

template <typename Context>
void BasicNode<Context>::root_decide_after_search(Context& ctx) {
  round_root_duty_ = true;
  const int k_all = search_deg_all_;
  sim::annotate_tagged(
      ctx, note_decide(round_, k_all, search_best_deg_, search_best_who_),
      format_round_note);
  if (k_all <= 2) {
    terminate(ctx, StopReason::kChain);
    return;
  }
  if (opts_.target_degree > 0 && k_all <= opts_.target_degree) {
    terminate(ctx, StopReason::kTargetReached);
    return;
  }
  if (opts_.mode == EngineMode::kStrictLot && search_best_deg_ < k_all) {
    terminate(ctx, StopReason::kAllMaxStuck);
    return;
  }
  if (defensive_ && search_best_deg_ != k_all) [[unlikely]] return;
  MDST_ASSERT(search_best_deg_ == k_all,
              "non-stuck maximum must equal the overall maximum here");
  k_ = k_all;
  if (search_best_who_ == env_.name) {
    begin_cut(ctx);
    return;
  }
  // MoveRoot: hand the root role to the child that reported the target.
  if (defensive_ && (via_ == sim::kNoNode || !has_child(via_))) [[unlikely]]
    return;
  MDST_ASSERT(via_ != sim::kNoNode, "target elsewhere but via is self");
  const sim::NodeId next = via_;
  const std::uint32_t next_idx = child_index_of(next);
  send_indexed(ctx, next, next_idx, MoveRoot{k_, search_best_who_});
  parent_ = next;
  parent_index_ = next_idx;
  remove_child(next);
}

template <typename Context>
void BasicNode<Context>::begin_cut(Context& ctx) {
  if (defensive_ && (parent_ != sim::kNoNode || tree_degree() != k_))
      [[unlikely]]
    return;
  MDST_ASSERT(parent_ == sim::kNoNode, "begin_cut on non-root");
  MDST_ASSERT(tree_degree() == k_, "round root must have degree k");
  role_ = Role::kRoot;
  top_ = FragTag{env_.name, env_.name};
  sub_ = top_;
  have_tags_ = true;
  begin_wave();
  wave_waiting_ = static_cast<std::uint32_t>(children_.size());
  sim::annotate_tagged(ctx, note_cut(round_, k_), format_round_note);
  for (std::size_t i = 0; i < children_.size(); ++i) {
    stamp_wave_child(child_indices_[i]);
    send_indexed(ctx, children_[i], child_indices_[i],
                 Cut{k_, env_.name, FragTag{}});
  }
  // Probes queued before we became the round root (only possible for
  // sub-roots in practice, but harmless to drain here too).
  for (const QueuedProbe& queued : queued_probes_) {
    send_indexed(ctx, queued.from, queued.from_index,
                 CousinReply{tree_degree(), top_, sub_});
  }
  queued_probes_.clear();
}

template <typename Context>
void BasicNode<Context>::root_choose(Context& ctx) {
  sim::annotate_tagged(ctx, note_wave_done(round_, best_top_.valid()),
                       format_round_note);
  if (best_top_.valid()) {
    start_improvement(ctx, Scope::kTop, best_top_, prov_top_);
    return;
  }
  root_finish_round(ctx, /*improved=*/false);
}

template <typename Context>
void BasicNode<Context>::start_improvement(Context& ctx, Scope scope,
                                           const Candidate& chosen,
                                           sim::NodeId provenance) {
  MDST_ASSERT(provenance != sim::kNoNode,
              "root-side candidates always come from a child");
  improving_ = true;
  improving_scope_ = scope;
  ctx.send(provenance, Update{chosen.u, chosen.w, k_});
}

template <typename Context>
void BasicNode<Context>::root_finish_round(Context& ctx, bool improved) {
  MDST_ASSERT(role_ == Role::kRoot, "finish_round outside root role");
  const bool any_change = improved || subtree_improved_;
  if (opts_.mode == EngineMode::kConcurrent && subtree_stuck_ && !any_change) {
    // §3.2.6: a degree-k node could not be improved, and since nothing in
    // the tree changed this round its certificate is still valid: the
    // maximum degree cannot drop below k. Rounds that did change the tree
    // re-evaluate instead (every continued round strictly decreases the
    // degree potential Σ 3^deg, so this terminates).
    terminate(ctx, StopReason::kLocallyOptimal);
    return;
  }
  if (any_change) {
    clear_stuck_next_ = true;
    begin_round(ctx);
    return;
  }
  if (round_aborted_) {
    // kConcurrent: our candidate went stale because sub-round swaps changed
    // degrees; the candidate pool was non-empty, so retry with a fresh round.
    clear_stuck_next_ = true;
    begin_round(ctx);
    return;
  }
  // Genuinely no usable outgoing edge for this round's target (= me).
  if (opts_.mode == EngineMode::kStrictLot) {
    stuck_ = true;
    stuck_degree_ = tree_degree();
    begin_round(ctx);
    return;
  }
  terminate(ctx, StopReason::kLocallyOptimal);
}

template <typename Context>
void BasicNode<Context>::terminate(Context& ctx, StopReason reason) {
  stop_reason_ = reason;
  sim::annotate_tagged(ctx, note_terminate(round_, reason, search_deg_all_),
                       format_round_note);
  done_ = true;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    send_indexed(ctx, children_[i], child_indices_[i], Terminate{});
  }
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

template <typename Context>
void BasicNode<Context>::on_message(Context& ctx, sim::NodeId from,
                                    const Message& message) {
  // Crash-stop guard: the simulator suppresses deliveries to a crashed
  // node before the handler is reached (and routes pooled payloads through
  // Protocol::dispose); this guard makes the semantics driver-independent,
  // so mock-context tests exercising crash() see the same dead silence.
  if (crashed_) [[unlikely]] return;
  // Stall detector feed: any *protocol* message proves the run is moving;
  // recovery-band traffic (Ping and up) deliberately does not count, so a
  // wedged wave cannot be masked by healthy heartbeats.
  if (recovery_on_ && message.index() < kFirstRecoveryType) stall_fires_ = 0;
  // Dispatch by switch on the variant index (MessageType mirrors the
  // alternative order; static_asserts in messages.hpp pin that) — a direct
  // jump table the handlers can inline into, instead of std::visit's
  // function-pointer table. This is the hottest dispatch in the library;
  // with Context = sim::SimContext the ctx.send calls inside the handlers
  // resolve statically and inline here too.
  switch (static_cast<MessageType>(message.index())) {
    case MessageType::kStartRound:
      return handle_start_round(ctx, from, *std::get_if<StartRound>(&message));
    case MessageType::kSearchReply:
      return handle_search_reply(ctx, from, *std::get_if<SearchReply>(&message));
    case MessageType::kMoveRoot:
      return handle_move_root(ctx, from, *std::get_if<MoveRoot>(&message));
    case MessageType::kCut:
      // The wave entry points are mode-specialized (one predictable branch
      // on the cached hot-line flag selects the instantiation; the
      // sub-root checks inside compile away in the single-improvement
      // path). See node.hpp.
      if (concurrent_) {
        return handle_cut<true>(ctx, from, *std::get_if<Cut>(&message));
      }
      return handle_cut<false>(ctx, from, *std::get_if<Cut>(&message));
    case MessageType::kBfs:
      if (concurrent_) {
        return handle_bfs<true>(ctx, from, *std::get_if<Bfs>(&message));
      }
      return handle_bfs<false>(ctx, from, *std::get_if<Bfs>(&message));
    case MessageType::kCousinReply:
      return handle_cousin_reply(ctx, from, *std::get_if<CousinReply>(&message));
    case MessageType::kBfsBack:
      return handle_bfs_back(ctx, from, *std::get_if<BfsBack>(&message));
    case MessageType::kUpdate:
      return handle_update(ctx, from, *std::get_if<Update>(&message));
    case MessageType::kChildRequest:
      return handle_child_request(ctx, from, *std::get_if<ChildRequest>(&message));
    case MessageType::kChildAccept:
      return handle_child_accept(ctx, from);
    case MessageType::kChildReject:
      return handle_child_reject(ctx, from);
    case MessageType::kReverse:
      return handle_reverse(ctx, from, *std::get_if<Reverse>(&message));
    case MessageType::kDetach:
      return handle_detach(ctx, from);
    case MessageType::kAbort:
      return handle_abort(ctx, from);
    case MessageType::kTerminate:
      return handle_terminate(ctx, from);
    case MessageType::kPing:
      return handle_ping(ctx, from);
    case MessageType::kPong:
      return handle_pong(ctx, from, *std::get_if<Pong>(&message));
    case MessageType::kRecover:
      return handle_recover(ctx, from, *std::get_if<Recover>(&message));
    case MessageType::kRecoverAck:
      return handle_recover_ack(ctx, from, *std::get_if<RecoverAck>(&message));
  }
  MDST_UNREACHABLE("on_message: unknown message type");
}

// ---------------------------------------------------------------------------
// SearchDegree
// ---------------------------------------------------------------------------

template <typename Context>
void BasicNode<Context>::handle_start_round(Context& ctx, sim::NodeId from,
                                            const StartRound& msg) {
  if (defensive_ && (from != parent_ || done_)) [[unlikely]] return;
  MDST_ASSERT(from == parent_, "StartRound from non-parent");
  MDST_ASSERT(!done_, "StartRound after Terminate");
  round_ = msg.round;
  if (msg.clear_stuck) stuck_ = false;
  reset_round_state();
  for (std::size_t i = 0; i < children_.size(); ++i) {
    send_indexed(ctx, children_[i], child_indices_[i],
                 StartRound{msg.round, msg.clear_stuck});
  }
  if (children_.empty()) send_search_reply_up(ctx);
}

template <typename Context>
void BasicNode<Context>::send_search_reply_up(Context& ctx) {
  if (defensive_ && parent_ == sim::kNoNode) [[unlikely]] return;
  MDST_ASSERT(parent_ != sim::kNoNode, "reply up from root");
  send_indexed(ctx, parent_, parent_index_,
               SearchReply{search_best_deg_, search_best_who_,
                           search_deg_all_});
}

template <typename Context>
void BasicNode<Context>::handle_search_reply(Context& ctx, sim::NodeId from,
                                             const SearchReply& msg) {
  if (defensive_ && (!has_child(from) || search_waiting_ == 0)) [[unlikely]]
    return;
  MDST_ASSERT(has_child(from), "SearchReply from non-child");
  MDST_ASSERT(search_waiting_ > 0, "unexpected SearchReply");
  if (msg.degree > search_best_deg_ ||
      (msg.degree == search_best_deg_ && msg.who != kNoName &&
       (search_best_who_ == kNoName || msg.who < search_best_who_))) {
    search_best_deg_ = msg.degree;
    search_best_who_ = msg.who;
    via_ = from;
  }
  search_deg_all_ = std::max(search_deg_all_, msg.deg_all);
  --search_waiting_;
  if (search_waiting_ != 0) return;
  if (parent_ == sim::kNoNode) {
    root_decide_after_search(ctx);
  } else {
    send_search_reply_up(ctx);
  }
}

// ---------------------------------------------------------------------------
// MoveRoot
// ---------------------------------------------------------------------------

template <typename Context>
void BasicNode<Context>::handle_move_root(Context& ctx, sim::NodeId from,
                                          const MoveRoot& msg) {
  if (defensive_ && from != parent_) [[unlikely]] return;
  MDST_ASSERT(from == parent_, "MoveRoot from non-parent");
  // Path reversal: the sender already made us its parent.
  const std::uint32_t from_idx = parent_index_;
  parent_ = sim::kNoNode;
  parent_index_ = sim::kNoNeighborIndex;
  add_child(from, from_idx);
  k_ = msg.k;
  if (env_.name == msg.target) {
    MDST_ASSERT(defensive_ || tree_degree() == msg.k,
                "MoveRoot target degree mismatch");
    round_root_duty_ = true;
    begin_cut(ctx);  // defensively bails on a degree mismatch
    return;
  }
  if (defensive_ && (via_ == sim::kNoNode || !has_child(via_))) [[unlikely]]
    return;
  MDST_ASSERT(via_ != sim::kNoNode, "MoveRoot: no via toward target");
  const sim::NodeId next = via_;
  const std::uint32_t next_idx = child_index_of(next);
  send_indexed(ctx, next, next_idx, MoveRoot{msg.k, msg.target});
  parent_ = next;
  parent_index_ = next_idx;
  remove_child(next);
}

// ---------------------------------------------------------------------------
// Cut / BFS wave
// ---------------------------------------------------------------------------

template <typename Context>
template <bool Concurrent>
void BasicNode<Context>::handle_cut(Context& ctx, sim::NodeId from,
                                    const Cut& msg) {
  if (defensive_ && from != parent_) [[unlikely]] return;
  MDST_ASSERT(from == parent_, "Cut from non-parent");
  if (!msg.encl_top.valid()) {
    // Main cut: I am a fragment root; my fragment is (p, my name).
    const FragTag top{msg.sub_root, env_.name};
    if constexpr (Concurrent) {
      if (tree_degree() == msg.k) {
        become_sub_root(ctx, top, msg.k);
        return;
      }
    }
    become_member(ctx, top, top, msg.k);
    return;
  }
  // Sub cut from a sub-root q: I am a sub-fragment root (q, my name).
  become_member(ctx, msg.encl_top, FragTag{msg.sub_root, env_.name}, msg.k);
}

template <typename Context>
template <bool Concurrent>
void BasicNode<Context>::handle_bfs(Context& ctx, sim::NodeId from,
                                    const Bfs& msg) {
  if (from != parent_) {
    on_cross_probe(ctx, from, msg, delivery_from_index(ctx));
    return;
  }
  // The wave reaches me through my tree parent.
  if constexpr (Concurrent) {
    const bool main_wave = msg.sub == msg.top;
    if (main_wave && tree_degree() == msg.k) {
      become_sub_root(ctx, msg.top, msg.k);
      return;
    }
  }
  become_member(ctx, msg.top, msg.sub, msg.k);
}

template <typename Context>
void BasicNode<Context>::become_member(Context& ctx, const FragTag& top,
                                       const FragTag& sub, int k) {
  if (defensive_ && role_ != Role::kIdle) [[unlikely]] return;
  MDST_ASSERT(role_ == Role::kIdle, "wave reached a node twice");
  role_ = Role::kMember;
  k_ = k;
  top_ = top;
  sub_ = sub;
  have_tags_ = true;
  begin_wave();
  const std::size_t kid_count = children_.size();
  for (std::size_t i = 0; i < kid_count; ++i) {
    stamp_wave_child(child_indices_[i]);
    send_indexed(ctx, children_[i], child_indices_[i], Bfs{k_, top_, sub_});
  }
  // No closure can arrive while this handler runs, so the cross count may
  // be accumulated in the same pass that sends the probes, as long as
  // wave_waiting_ is final before the queued probes below are replayed.
  // The child test is one byte load per slot (child_at_), not an
  // O(children) rescan per neighbor.
  std::size_t cross = 0;
  const std::span<const sim::NeighborInfo> neighbors = env_.neighbors;
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    if (i == parent_index_ || child_at_[i]) continue;
    // Neighbors the recovery layer declared dead answer no probe; counting
    // them would wedge the closure forever (rec_nb_ is null = one pointer
    // test when the layer is off).
    if (nb_dead(i)) [[unlikely]] continue;
    ++cross;
    send_indexed(ctx, neighbors[i].id, static_cast<std::uint32_t>(i),
                 Bfs{k_, top_, sub_});  // cousin probe
  }
  wave_waiting_ = static_cast<std::uint32_t>(kid_count + cross);
  // Swap through a member scratch so both buffers survive across waves
  // instead of a free/malloc pair per wave. Replayed probes cannot re-queue:
  // have_tags_ is already set. Each replay reuses the reverse-CSR hint
  // captured when the probe was parked (the slot never changes).
  scratch_probes_.clear();
  scratch_probes_.swap(queued_probes_);
  for (const QueuedProbe& queued : scratch_probes_) {
    on_cross_probe(ctx, queued.from, queued.probe, queued.from_index);
  }
  member_maybe_report(ctx);
}

template <typename Context>
void BasicNode<Context>::become_sub_root(Context& ctx, const FragTag& encl_top,
                                         int k) {
  if (defensive_ && (role_ != Role::kIdle || children_.empty())) [[unlikely]]
    return;
  MDST_ASSERT(role_ == Role::kIdle, "wave reached a node twice");
  role_ = Role::kSubRoot;
  k_ = k;
  top_ = encl_top;
  sub_ = FragTag{env_.name, env_.name};
  have_tags_ = true;
  begin_wave();
  wave_waiting_ = static_cast<std::uint32_t>(children_.size());
  MDST_ASSERT(!children_.empty(), "degree-k non-root node has children");
  for (std::size_t i = 0; i < children_.size(); ++i) {
    stamp_wave_child(child_indices_[i]);
    send_indexed(ctx, children_[i], child_indices_[i],
                 Cut{k_, env_.name, top_});
  }
  scratch_probes_.clear();
  scratch_probes_.swap(queued_probes_);
  for (const QueuedProbe& queued : scratch_probes_) {
    send_indexed(ctx, queued.from, queued.from_index,
                 CousinReply{tree_degree(), top_, sub_});
  }
}

template <typename Context>
void BasicNode<Context>::on_cross_probe(Context& ctx, sim::NodeId from,
                                        const Bfs& msg,
                                        std::uint32_t from_idx_hint) {
  if (!have_tags_) {
    queued_probes_.push_back({from, from_idx_hint, msg});
    return;
  }
  if (role_ == Role::kRoot || role_ == Role::kSubRoot) {
    // Roots never probe, so their reply is the prober's closure for this
    // edge. The degree they report (k) disqualifies the edge anyway.
    send_indexed(ctx, from, from_idx_hint,
                 CousinReply{tree_degree(), top_, sub_});
    return;
  }
  // Member: the closure protocol (see header). Exactly one closing event
  // happens per cross edge:
  //   probe.sub == mine  -> same (sub-)fragment; the probe closes the edge.
  //   probe.sub <  mine  -> I answer (CousinReply) and their probe closes
  //                         my edge; my own probe will be ignored by them.
  //   probe.sub >  mine  -> they will answer my probe; that reply closes.
  const auto order = msg.sub <=> sub_;
  if (order > 0) return;  // they will answer my probe; that reply closes
  // One slot resolution serves both the reply and the closure below.
  const std::size_t idx = neighbor_index_hinted(from, from_idx_hint);
  if (order < 0) {
    send_indexed(ctx, from, static_cast<std::uint32_t>(idx),
                 CousinReply{tree_degree(), top_, sub_});
  }
  close_cross_edge_at(ctx, idx);
}

template <typename Context>
void BasicNode<Context>::close_cross_edge_at(Context& ctx, std::size_t idx) {
  if (defensive_ &&
      (cross_closed_epoch_[idx] == wave_epoch_ || wave_waiting_ == 0))
      [[unlikely]]
    return;
  MDST_ASSERT(cross_closed_epoch_[idx] != wave_epoch_,
              "cross edge closed twice");
  cross_closed_epoch_[idx] = wave_epoch_;
  MDST_ASSERT(wave_waiting_ > 0, "closure with nothing pending");
  --wave_waiting_;
  member_maybe_report(ctx);
}

template <typename Context>
void BasicNode<Context>::handle_cousin_reply(Context& ctx, sim::NodeId from,
                                             const CousinReply& msg) {
  if (defensive_ && role_ != Role::kMember) [[unlikely]] return;
  MDST_ASSERT(role_ == Role::kMember, "CousinReply at a non-member");
  const int my_deg = tree_degree();
  const int end_deg = std::max(my_deg, msg.degree);
  // One lookup serves both the name read and the closure below; the
  // delivery hint makes it O(1) on the simulator path.
  const std::size_t from_idx = neighbor_index_hinted(from, delivery_from_index(ctx));
  const graph::NodeName w_name = env_.neighbors[from_idx].name;
  if (end_deg <= k_ - 2) {
    if (msg.top != top_) {
      // Outgoing edge between two fragments of the round root.
      const Candidate cand{env_.name, w_name, end_deg, msg.top, msg.sub};
      if (!best_top_.valid() || cand < best_top_) {
        best_top_ = cand;
        prov_top_ = sim::kNoNode;  // formed here
      }
    } else if (msg.sub.root == sub_.root && msg.sub != sub_ && sub_ != top_) {
      // Outgoing edge between two sub-fragments of our sub-root.
      const Candidate cand{env_.name, w_name, end_deg, msg.top, msg.sub};
      if (!best_sub_.valid() || cand < best_sub_) {
        best_sub_ = cand;
        prov_sub_ = sim::kNoNode;
      }
    }
  }
  close_cross_edge_at(ctx, from_idx);
}

template <typename Context>
void BasicNode<Context>::member_maybe_report(Context& ctx) {
  if (role_ != Role::kMember || reported_up_ || wave_waiting_ != 0) return;
  // A corrupted member whose parent link was severed has nowhere to report;
  // the wave above it wedges, which the stall detector turns into recovery.
  if (defensive_ && parent_ == sim::kNoNode) [[unlikely]] return;
  reported_up_ = true;
  const Candidate sub_cand = (sub_ != top_) ? best_sub_ : Candidate{};
  // BfsBack boxes its candidates: the implicit Candidate -> BoxedCandidate
  // conversions here allocate a pool slot only when the side is valid.
  send_indexed(ctx, parent_, parent_index_,
               BfsBack{best_top_, sub_cand, subtree_stuck_,
                       subtree_improved_});
}

template <typename Context>
void BasicNode<Context>::handle_bfs_back(Context& ctx, sim::NodeId from,
                                         const BfsBack& msg) {
  const std::size_t from_idx =
      neighbor_index_hinted(from, delivery_from_index(ctx));
  if (defensive_ && (!is_wave_child_slot(from_idx) || wave_waiting_ == 0 ||
                     role_ == Role::kIdle)) [[unlikely]] {
    // Stale-epoch report (the recovery reset bumped the wave epoch, so
    // pre-reset traffic fails the membership test). Dropping it still
    // consumes the boxed candidates — this handler stays their single
    // consumer either way.
    if (msg.best_top.valid()) msg.best_top.release();
    if (msg.best_sub.valid()) msg.best_sub.release();
    return;
  }
  MDST_ASSERT(is_wave_child_slot(from_idx), "BfsBack from non-wave-child");
  // This handler is the boxed candidates' single consumer (candidates.hpp):
  // read, then release each valid box exactly once.
  if (msg.best_top.valid()) {
    if (!best_top_.valid() || msg.best_top.get() < best_top_) {
      best_top_ = msg.best_top.get();
      prov_top_ = from;
    }
    msg.best_top.release();
  }
  if (msg.best_sub.valid()) {
    if (!best_sub_.valid() || msg.best_sub.get() < best_sub_) {
      best_sub_ = msg.best_sub.get();
      prov_sub_ = from;
    }
    msg.best_sub.release();
  }
  subtree_stuck_ = subtree_stuck_ || msg.stuck;
  subtree_improved_ = subtree_improved_ || msg.improved;
  MDST_ASSERT(wave_waiting_ > 0, "BfsBack with nothing pending");
  --wave_waiting_;
  switch (role_) {
    case Role::kMember:
      member_maybe_report(ctx);
      return;
    case Role::kSubRoot:
      subroot_maybe_resolve(ctx);
      return;
    case Role::kRoot:
      if (wave_waiting_ == 0) root_choose(ctx);
      return;
    case Role::kIdle:
      MDST_UNREACHABLE("BfsBack at idle node");
  }
}

template <typename Context>
void BasicNode<Context>::subroot_maybe_resolve(Context& ctx) {
  if (wave_waiting_ != 0 || sub_internal_done_ || improving_) return;
  if (best_sub_.valid()) {
    start_improvement(ctx, Scope::kSub, best_sub_, prov_sub_);
    return;
  }
  // No edge between my sub-fragments: my degree k cannot be improved.
  sub_stuck_ = true;
  sub_internal_done_ = true;
  subroot_report_up(ctx);
}

template <typename Context>
void BasicNode<Context>::subroot_report_up(Context& ctx) {
  if (defensive_ && (parent_ == sim::kNoNode || reported_up_)) [[unlikely]]
    return;
  MDST_ASSERT(role_ == Role::kSubRoot, "report_up outside sub-root");
  MDST_ASSERT(!reported_up_, "sub-root reported twice");
  reported_up_ = true;
  send_indexed(ctx, parent_, parent_index_,
               BfsBack{best_top_, Candidate{},
                       sub_stuck_ || subtree_stuck_,
                       sub_improved_ || subtree_improved_});
}

// ---------------------------------------------------------------------------
// Improvement commit (Update / ChildRequest / Reverse / Detach / Abort)
// ---------------------------------------------------------------------------

template <typename Context>
void BasicNode<Context>::handle_update(Context& ctx, sim::NodeId from,
                                       const Update& msg) {
  update_from_ = from;
  if (msg.u == env_.name) {
    // I own the chosen outgoing edge. Determine the scope by matching the
    // candidate against what I formed, then re-validate my degree cap.
    Scope scope;
    if (best_top_.valid() && best_top_.u == msg.u && best_top_.w == msg.w) {
      scope = Scope::kTop;
      MDST_ASSERT(prov_top_ == sim::kNoNode, "owner must have formed the candidate");
    } else if (best_sub_.valid() && best_sub_.u == msg.u &&
               best_sub_.w == msg.w) {
      scope = Scope::kSub;
      MDST_ASSERT(prov_sub_ == sim::kNoNode, "owner must have formed the candidate");
    } else {
      if (defensive_) {
        // The candidate no longer matches (reset or corrupted state):
        // abandon the commit so the round aborts instead of wedging here.
        ctx.send(update_from_, Abort{});
        return;
      }
      MDST_UNREACHABLE("Update for a candidate I did not form");
    }
    if (tree_degree() > msg.k - 2) {
      // Stale (my degree grew since discovery): abandon with no change.
      ctx.send(update_from_, Abort{});
      return;
    }
    pending_candidate_ = (scope == Scope::kTop) ? best_top_ : best_sub_;
    pending_scope_ = scope;
    pending_new_parent_ = neighbor_by_name(msg.w);
    ctx.send(pending_new_parent_, ChildRequest{msg.k, top_});
    return;
  }
  // Forward along the provenance path of the matching candidate.
  if (best_top_.valid() && best_top_.u == msg.u && best_top_.w == msg.w) {
    update_scope_ = Scope::kTop;
    MDST_ASSERT(prov_top_ != sim::kNoNode, "provenance missing");
    ctx.send(prov_top_, msg);
    return;
  }
  if (best_sub_.valid() && best_sub_.u == msg.u && best_sub_.w == msg.w) {
    update_scope_ = Scope::kSub;
    MDST_ASSERT(prov_sub_ != sim::kNoNode, "provenance missing");
    ctx.send(prov_sub_, msg);
    return;
  }
  if (defensive_) {
    ctx.send(update_from_, Abort{});
    return;
  }
  MDST_UNREACHABLE("Update does not match any recorded candidate");
}

template <typename Context>
void BasicNode<Context>::handle_child_request(Context& ctx, sim::NodeId from,
                                              const ChildRequest& msg) {
  // I am the far endpoint w. Accept iff my degree cap still holds and the
  // requester is (still) in a different fragment of the round root.
  const std::uint32_t from_idx = delivery_from_index(ctx);
  // The two structural terms (requester is not already tree-adjacent) hold
  // trivially on a sane commit — a cross edge is neither parent nor child —
  // and turn a corrupted double-commit into a clean reject.
  const bool ok = have_tags_ && tree_degree() <= msg.k - 2 &&
                  top_ != msg.u_top && from != parent_ && !has_child(from);
  if (!ok) {
    send_indexed(ctx, from, from_idx, ChildReject{});
    return;
  }
  add_child(from, from_idx);
  send_indexed(ctx, from, from_idx, ChildAccept{});
}

template <typename Context>
void BasicNode<Context>::handle_child_accept(Context& ctx, sim::NodeId from) {
  if (defensive_ && from != pending_new_parent_) [[unlikely]] return;
  MDST_ASSERT(from == pending_new_parent_, "ChildAccept from unexpected node");
  const graph::NodeName stop_at =
      (pending_scope_ == Scope::kTop) ? top_.root : sub_.root;
  begin_reversal(ctx, stop_at, from);
}

template <typename Context>
void BasicNode<Context>::handle_child_reject(Context& ctx, sim::NodeId from) {
  if (defensive_ && from != pending_new_parent_) [[unlikely]] return;
  MDST_ASSERT(from == pending_new_parent_, "ChildReject from unexpected node");
  pending_new_parent_ = sim::kNoNode;
  ctx.send(update_from_, Abort{});
}

template <typename Context>
void BasicNode<Context>::begin_reversal(Context& ctx, graph::NodeName stop_at,
                                        sim::NodeId new_parent) {
  // Re-root my old fragment path at me and hang myself below new_parent.
  if (defensive_ && parent_ == sim::kNoNode) [[unlikely]] return;
  MDST_ASSERT(parent_ != sim::kNoNode, "edge owner cannot be the round root");
  const sim::NodeId old_parent = parent_;
  const std::uint32_t old_idx = parent_index_;
  parent_ = new_parent;
  parent_index_ = static_cast<std::uint32_t>(neighbor_index(new_parent));
  if (env_.neighbors[old_idx].name == stop_at) {
    send_indexed(ctx, old_parent, old_idx, Detach{});
  } else {
    add_child(old_parent, old_idx);
    send_indexed(ctx, old_parent, old_idx, Reverse{stop_at});
  }
}

template <typename Context>
void BasicNode<Context>::handle_reverse(Context& ctx, sim::NodeId from,
                                        const Reverse& msg) {
  if (defensive_ && (!has_child(from) || parent_ == sim::kNoNode)) [[unlikely]]
    return;
  MDST_ASSERT(has_child(from), "Reverse from non-child");
  remove_child(from);
  MDST_ASSERT(parent_ != sim::kNoNode, "Reverse reached the round root");
  const sim::NodeId old_parent = parent_;
  const std::uint32_t old_idx = parent_index_;
  parent_ = from;
  parent_index_ = static_cast<std::uint32_t>(
      neighbor_index_hinted(from, delivery_from_index(ctx)));
  if (env_.neighbors[old_idx].name == msg.stop_at) {
    send_indexed(ctx, old_parent, old_idx, Detach{});
  } else {
    add_child(old_parent, old_idx);
    send_indexed(ctx, old_parent, old_idx, Reverse{msg.stop_at});
  }
}

template <typename Context>
void BasicNode<Context>::handle_detach(Context& ctx, sim::NodeId from) {
  if (defensive_ &&
      (!has_child(from) || !improving_ ||
       (role_ != Role::kRoot && role_ != Role::kSubRoot))) [[unlikely]]
    return;
  MDST_ASSERT(has_child(from), "Detach from non-child");
  remove_child(from);
  MDST_ASSERT(improving_, "Detach while not improving");
  improving_ = false;
  ++improvements_;
  if (role_ == Role::kRoot) {
    sim::annotate_tagged(ctx, note_improve(round_, k_), format_round_note);
    root_finish_round(ctx, /*improved=*/true);
    return;
  }
  MDST_ASSERT(role_ == Role::kSubRoot, "Detach at unexpected role");
  sim::annotate_tagged(ctx, note_sub_improve(round_, k_), format_round_note);
  sub_improved_ = true;
  sub_internal_done_ = true;
  subroot_report_up(ctx);
}

template <typename Context>
void BasicNode<Context>::handle_abort(Context& ctx, sim::NodeId from) {
  (void)from;
  if (improving_ && (role_ == Role::kRoot || role_ == Role::kSubRoot)) {
    improving_ = false;
    if (role_ == Role::kRoot) {
      round_aborted_ = true;
      root_finish_round(ctx, /*improved=*/false);
    } else {
      // The internal candidate went stale; do not mark stuck (an edge did
      // exist), just report up and let a later round retry.
      sub_internal_done_ = true;
      subroot_report_up(ctx);
    }
    return;
  }
  // Forwarding member: pass the abort back toward the (sub-)root.
  if (defensive_ && update_from_ == sim::kNoNode) [[unlikely]] return;
  MDST_ASSERT(update_from_ != sim::kNoNode, "Abort with no pending update");
  ctx.send(update_from_, Abort{});
}

// ---------------------------------------------------------------------------
// Termination
// ---------------------------------------------------------------------------

template <typename Context>
void BasicNode<Context>::handle_terminate(Context& ctx, sim::NodeId from) {
  if (defensive_ && (from != parent_ || done_)) [[unlikely]] return;
  MDST_ASSERT(from == parent_, "Terminate from non-parent");
  MDST_ASSERT(!done_, "Terminate twice");
  done_ = true;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    send_indexed(ctx, children_[i], child_indices_[i], Terminate{});
  }
}

// ---------------------------------------------------------------------------
// Self-healing layer: heartbeat detection + keyed re-election floods.
// The protocol design lives in mdst/recovery.hpp; the simulator-side timer
// contract in runtime/sim_core.hpp (schedule_timer).
// ---------------------------------------------------------------------------

template <typename Context>
void BasicNode<Context>::arm_heartbeat(Context& ctx) {
  if (!recovery_on_ || timer_armed_ || done_ || crashed_) return;
  // Capability probe: virtual mock contexts have no timer facility; there
  // the layer stays message-driven only (tests call on_timer directly).
  if (sim::schedule_timer(ctx, opts_.recovery.heartbeat_period)) {
    timer_armed_ = true;
  }
}

template <typename Context>
void BasicNode<Context>::on_timer(Context& ctx) {
  timer_armed_ = false;
  if (crashed_ || done_ || !recovery_on_) return;  // the timer chain drains
  if (recovering_) {
    if (rec_waiting_ > 0 && ++ack_fires_ >= ack_limit_) {
      // Flood neighbors that answered nothing within the timeout are
      // declared dead and dropped from the wait. The limit doubles per use
      // so a slow-but-alive network cannot be starved by repeated false
      // timeouts — each retry tolerates twice the quiet time.
      ack_fires_ = 0;
      ack_limit_ *= 2;
      const std::size_t deg = env_.neighbors.size();
      for (std::size_t i = 0; i < deg; ++i) {
        if ((rec_nb_[i] & kNbAwait) == 0) continue;
        rec_nb_[i] = static_cast<std::uint8_t>((rec_nb_[i] & ~kNbAwait) |
                                               kNbDead);
        MDST_ASSERT(rec_waiting_ > 0, "flood ack accounting underflow");
        --rec_waiting_;
      }
      if (rec_waiting_ == 0) finish_flood(ctx);
    }
    arm_heartbeat(ctx);
    return;
  }
  if (awaiting_pong_) {
    if (++pong_fires_ >= pong_limit_) {
      pong_fires_ = 0;
      pong_limit_ *= 2;  // tolerance doubles against ARQ-delayed replies
      awaiting_pong_ = false;
      start_recovery(ctx, /*cause=*/0);  // dead parent
      arm_heartbeat(ctx);
      return;
    }
  } else if (parent_ != sim::kNoNode && !nb_dead(parent_index_)) {
    send_indexed(ctx, parent_, parent_index_, Ping{});
    awaiting_pong_ = true;
  }
  // Stall detection (cause 2) counts quiet heartbeats only while this node
  // holds an outstanding obligation — a wave or search it is collecting, or
  // a parent hand-off in flight. That is the one detector that catches a
  // *leaf* dying (nobody heartbeats toward a leaf; only its parent's
  // never-completing wave betrays it) and a corrupted coordinator silently
  // dropping a wave. A node with no obligation may idle forever without
  // being suspicious, so its quiet ticks never count; the waiting side of a
  // healthy-but-slow subtree is protected by the doubling limit below.
  const bool mid_protocol = wave_waiting_ > 0 || search_waiting_ > 0 ||
                            pending_new_parent_ != sim::kNoNode;
  if (!mid_protocol) {
    stall_fires_ = 0;
  } else if (++stall_fires_ >= stall_limit_) {
    stall_fires_ = 0;
    stall_limit_ *= 2;  // false-positive guard: see recovery.hpp
    start_recovery(ctx, /*cause=*/2);  // stalled wave
  }
  arm_heartbeat(ctx);
}

template <typename Context>
void BasicNode<Context>::handle_ping(Context& ctx, sim::NodeId from) {
  if (!recovery_on_) return;
  const auto idx = static_cast<std::uint32_t>(
      neighbor_index_hinted(from, delivery_from_index(ctx)));
  rec_nb_[idx] &= static_cast<std::uint8_t>(~kNbDead);  // it spoke: alive
  // Truthful edge check: a parent whose state no longer counts the pinger
  // among its children answers ok=false — the pinger reads that as "the
  // tree edge is gone on one side" and starts recovery.
  send_indexed(ctx, from, idx, Pong{child_at_[idx] != 0});
}

template <typename Context>
void BasicNode<Context>::handle_pong(Context& ctx, sim::NodeId from,
                                     const Pong& msg) {
  if (!recovery_on_ || !awaiting_pong_) return;
  if (from != parent_) {
    // Stale reply: the heartbeat went to a node that stopped being this
    // node's parent while the Pong was in flight (improvement hand-offs
    // re-parent constantly). The wait must still clear — leaving
    // awaiting_pong_ stuck would starve the new parent of pings and read
    // as a dead parent two quiet fires later.
    awaiting_pong_ = false;
    pong_fires_ = 0;
    deny_count_ = 0;
    return;
  }
  awaiting_pong_ = false;
  pong_fires_ = 0;
  // Denied-edge tolerance: a single denial is routinely benign — during an
  // improvement hand-off the parent drops the child from its table a few
  // ticks before (or after) the child re-points, and a heartbeat landing in
  // that window reads as "not my child". Only *consecutive* denials mark a
  // genuinely inconsistent edge (a corrupted child table denies forever),
  // and the limit doubles per fire so repeated recoveries back off
  // geometrically instead of livelocking on post-install windows.
  if (msg.ok) {
    deny_count_ = 0;
    return;
  }
  if (++deny_count_ >= deny_limit_) {
    deny_count_ = 0;
    deny_limit_ *= 2;
    start_recovery(ctx, /*cause=*/1);  // persistently denied tree edge
  }
}

template <typename Context>
void BasicNode<Context>::start_recovery(Context& ctx, int cause) {
  if (!recovery_on_ || recovering_ || crashed_) return;
  const std::uint32_t gen = rec_gen_ + 1;
  sim::annotate_tagged(ctx, note_recover_start(gen, env_.name, cause),
                       format_round_note);
  begin_flood(gen, env_.name, sim::kNoNode, sim::kNoNeighborIndex);
  forward_flood(ctx);
  if (rec_waiting_ == 0) finish_flood(ctx);  // fully isolated node
}

template <typename Context>
void BasicNode<Context>::begin_flood(std::uint32_t gen, graph::NodeName root,
                                     sim::NodeId from,
                                     std::uint32_t from_index) {
  rec_gen_ = gen;
  rec_root_ = root;
  rec_parent_ = from;
  rec_parent_index_ = from_index;
  recovering_ = true;
  awaiting_pong_ = false;
  pong_fires_ = 0;
  stall_fires_ = 0;
  ack_fires_ = 0;
  recovery_reset_protocol();
}

template <typename Context>
void BasicNode<Context>::recovery_reset_protocol() {
  // The re-election rebuilds the tree from scratch: every link dissolves
  // here and reforms from accepted RecoverAcks (children) and the winning
  // flood edge (parent, installed in finish_flood). Done nodes wake.
  parent_ = sim::kNoNode;
  parent_index_ = sim::kNoNeighborIndex;
  children_.clear();
  child_indices_.clear();
  std::fill_n(child_at_, env_.neighbors.size(), std::uint8_t{0});
  done_ = false;
  stop_reason_ = StopReason::kNotStopped;
  round_root_duty_ = false;
  stuck_ = false;
  clear_stuck_next_ = false;
  role_ = Role::kIdle;
  have_tags_ = false;
  top_ = FragTag{};
  sub_ = FragTag{};
  wave_waiting_ = 0;
  search_waiting_ = 0;
  reported_up_ = false;
  best_top_ = Candidate{};
  best_sub_ = Candidate{};
  prov_top_ = sim::kNoNode;
  prov_sub_ = sim::kNoNode;
  via_ = sim::kNoNode;
  subtree_stuck_ = false;
  subtree_improved_ = false;
  improving_ = false;
  round_aborted_ = false;
  update_from_ = sim::kNoNode;
  pending_candidate_ = Candidate{};
  pending_new_parent_ = sim::kNoNode;
  sub_internal_done_ = false;
  sub_stuck_ = false;
  sub_improved_ = false;
  queued_probes_.clear();
  // Invalidate every wave-membership stamp: stale pre-reset BfsBack and
  // closure traffic now fails the epoch test and is defensively dropped.
  begin_wave();
}

template <typename Context>
void BasicNode<Context>::forward_flood(Context& ctx) {
  rec_waiting_ = 0;
  const std::span<const sim::NeighborInfo> neighbors = env_.neighbors;
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    // Stale await bits from an abandoned (outvoted) flood must not survive
    // into this one's accounting.
    rec_nb_[i] &= static_cast<std::uint8_t>(~kNbAwait);
    if (static_cast<std::uint32_t>(i) == rec_parent_index_) continue;
    if ((rec_nb_[i] & kNbDead) != 0) continue;
    rec_nb_[i] |= kNbAwait;
    ++rec_waiting_;
    send_indexed(ctx, neighbors[i].id, static_cast<std::uint32_t>(i),
                 Recover{rec_gen_, rec_root_});
  }
}

template <typename Context>
void BasicNode<Context>::handle_recover(Context& ctx, sim::NodeId from,
                                        const Recover& msg) {
  if (!recovery_on_) return;
  const auto idx = static_cast<std::uint32_t>(
      neighbor_index_hinted(from, delivery_from_index(ctx)));
  rec_nb_[idx] &= static_cast<std::uint8_t>(~kNbDead);
  const bool higher =
      msg.gen > rec_gen_ || (msg.gen == rec_gen_ && msg.root > rec_root_);
  if (!higher) {
    // Already carrying an equal-or-better key (possibly via another path):
    // reject so the sender's ack count closes without adopting me.
    send_indexed(ctx, from, idx, RecoverAck{msg.gen, msg.root, false});
    return;
  }
  // Losing a flood race mid-flood: release the old flood parent from its
  // wait before switching allegiance (echoing the old key).
  if (recovering_ && rec_parent_ != sim::kNoNode) {
    send_indexed(ctx, rec_parent_, rec_parent_index_,
                 RecoverAck{rec_gen_, rec_root_, false});
  }
  begin_flood(msg.gen, msg.root, from, idx);
  arm_heartbeat(ctx);  // woken done nodes resume heartbeating
  forward_flood(ctx);
  if (rec_waiting_ == 0) finish_flood(ctx);
}

template <typename Context>
void BasicNode<Context>::handle_recover_ack(Context& ctx, sim::NodeId from,
                                            const RecoverAck& msg) {
  if (!recovery_on_) return;
  if (!recovering_ || msg.gen != rec_gen_ || msg.root != rec_root_) return;
  const auto idx = static_cast<std::uint32_t>(
      neighbor_index_hinted(from, delivery_from_index(ctx)));
  rec_nb_[idx] &= static_cast<std::uint8_t>(~kNbDead);
  if ((rec_nb_[idx] & kNbAwait) == 0) return;  // late answer after a timeout
  rec_nb_[idx] &= static_cast<std::uint8_t>(~kNbAwait);
  if (msg.accepted) add_child(from, idx);
  MDST_ASSERT(rec_waiting_ > 0, "RecoverAck accounting underflow");
  --rec_waiting_;
  if (rec_waiting_ == 0) finish_flood(ctx);
}

template <typename Context>
void BasicNode<Context>::finish_flood(Context& ctx) {
  recovering_ = false;
  ack_fires_ = 0;
  if (rec_parent_ == sim::kNoNode) {
    // This node initiated the winning flood: every accepted subtree has
    // reset and re-attached below it. Install as root and hand control
    // back to the normal improvement rounds.
    sim::annotate_tagged(
        ctx,
        note_recover_install(rec_gen_, env_.name,
                             static_cast<std::uint32_t>(children_.size())),
        format_round_note);
    begin_round(ctx);
    return;
  }
  parent_ = rec_parent_;
  parent_index_ = rec_parent_index_;
  send_indexed(ctx, parent_, parent_index_,
               RecoverAck{rec_gen_, rec_root_, true});
}

// ---------------------------------------------------------------------------
// State corruption (runtime/fault.hpp corrupt(r,k))
// ---------------------------------------------------------------------------

template <typename Context>
bool BasicNode<Context>::corrupt(support::Rng& rng) {
  if (crashed_) return false;  // crash-stop wins; nothing left to scramble
  switch (rng.next_below(3)) {
    case 0:
      if (parent_ != sim::kNoNode) {
        // Sever the parent link: this node silently turns into a fake root
        // while its parent still counts it as a child.
        parent_ = sim::kNoNode;
        parent_index_ = sim::kNoNeighborIndex;
        break;
      }
      [[fallthrough]];  // the real root has no parent link to sever
    case 1:
      // Forge the fragment identity: cousin probes now compare against a
      // tag no wave ever issued, and wave closures misroute.
      top_ = FragTag{env_.name, kNoName};
      sub_ = top_;
      have_tags_ = true;
      break;
    default:
      // Inflate the wave closure counter: the node waits for reports that
      // can never arrive, wedging the convergecast above it.
      wave_waiting_ += 1 + static_cast<std::uint32_t>(rng.next_below(3));
      break;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Instantiations: the virtual/mock path and the devirtualized simulator path.
// ---------------------------------------------------------------------------

template class BasicNode<sim::IContext<Message>>;
template class BasicNode<sim::SimContext<Message>>;
template class BasicNode<sim::ShardContext<Message>>;

}  // namespace mdst::core
