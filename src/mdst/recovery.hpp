// Self-healing layer of the distributed MDegST protocol: heartbeat/timeout
// failure detection over tree edges and a keyed re-election flood that
// rebuilds a spanning structure over the live nodes, then hands control
// back to the normal improvement waves.
//
// The layer is OFF by default (RecoveryOptions::enabled == false) and, when
// off, contributes no timers, no messages, and no state transitions — runs
// are byte-identical to a build without it (tests/mdst/recovery_test.cpp
// pins this). When on:
//
//   * every live, unterminated node runs one multiplexed heartbeat timer
//     (sim::schedule_timer through the CalendarQueue — ARQ-compatible,
//     shard-deterministic): each fire (a) pings the parent and flags a
//     missed Pong, (b) advances a stall counter reset by every *protocol*
//     message (Ping/Pong do not count), and (c) while recovering, advances
//     the ack-timeout counter;
//   * three detection paths trigger a RECOVER flood: a missed Pong (dead
//     parent), Pong{ok=false} (the parent denies the tree edge — corrupted
//     state), and the stall counter crossing its limit (a wedged wave, e.g.
//     a corrupted fake root that everyone else is waiting on);
//   * the flood (messages.hpp Recover/RecoverAck) is a keyed re-election:
//     keys (gen, initiator name) order lexicographically, every node adopts
//     the highest key it has seen, fully resets its protocol state (done
//     nodes wake), and forwards; RecoverAck{accepted} convergecasts "my
//     subtree has reset" back up, and the winning initiator installs
//     itself as root and begins a fresh improvement round;
//   * neighbors that answer neither the flood nor heartbeats within the
//     timeout are marked dead locally and excluded from future waves, so
//     crashed nodes stop wedging the BFS wave.
//
// False-positive safety: the stall and ack limits double after each use
// (per node), so spurious recoveries — long quiet phases on big graphs,
// ARQ-delayed acks — cannot livelock; each retry tolerates twice the
// quiet time until the limits exceed every honest delay. docs/faults.md
// has the full taxonomy (ok / re_rooted / recovered / wedged).
#pragma once

#include <cstdint>

#include "runtime/types.hpp"

namespace mdst::core {

/// Knobs of the self-healing layer (Options::recovery). All periods are in
/// simulated ticks; the counters count heartbeat fires.
struct RecoveryOptions {
  /// Master switch. Off = no timers, no recovery messages, byte-identical
  /// runs.
  bool enabled = false;
  /// Heartbeat timer period. Must be >= the delay model's min delay when
  /// the sharded engine runs (window-closure requirement; run_mdst
  /// enforces it).
  sim::Time heartbeat_period = 8;
  /// Heartbeat fires to wait for RecoverAcks before declaring unanswered
  /// neighbors dead (doubles per use).
  std::uint32_t ack_timeout_ticks = 6;
  /// Heartbeat fires without any protocol message before suspecting a
  /// wedged wave (doubles per use).
  std::uint32_t stall_ticks = 8;
  /// Tolerate protocol-contract violations by dropping the offending
  /// message instead of asserting. Implied by `enabled`; also switched on
  /// by the engine whenever the fault plan corrupts state, so corrupted
  /// runs wedge measurably instead of dying on an assert.
  bool defensive = false;
};

/// Per-run stabilization metrics (RunResult::recovery), derived at run end
/// from the annotation marks and the per-type message counters.
struct RecoveryStats {
  /// True when the layer was enabled for the run.
  bool enabled = false;
  /// Simulated time of the first recovery flood (detection latency from
  /// t=0); 0 when no recovery fired.
  sim::Time first_detection_time = 0;
  /// Re-election floods initiated (kRecoverStart marks).
  std::uint64_t re_elections = 0;
  /// Completed installs — floods that rebuilt a tree and restarted the
  /// improvement waves (kRecoverInstall marks).
  std::uint64_t installs = 0;
  /// Delivered recovery-band messages (Ping/Pong/Recover/RecoverAck) — the
  /// layer's message overhead.
  std::uint64_t recovery_messages = 0;
};

}  // namespace mdst::core
