// Distributed MDegST node — the per-processor state machine of the
// Blin–Butelle algorithm.
//
// Each node holds only local state: its identity, its neighbours (with
// identities), and its current parent/children in the evolving spanning
// tree. All coordination happens through the Message set (messages.hpp).
// A round (paper §3.1) as seen from the current round root:
//
//   StartRound ↓ / SearchReply ↑     SearchDegree: find (k, target)
//   MoveRoot → … → target           root migrates with path reversal
//   Cut ↓                            children become fragment roots
//   Bfs ↓ + cross probes /           fragment waves discover cousin edges;
//     CousinReply / BfsBack ↑          candidates convergecast with
//                                      provenance pointers
//   Update ↓ ChildRequest/Accept →   two-phase commit of the edge swap
//   Reverse ↑ Detach → root          fragment re-roots at the new
//                                      attachment point (paper's "via
//                                      becomes parent" cascade)
//
// Two-phase swap (DESIGN D2): the paper applies the exchange while the
// Update message walks down; we first route Update unchanged to the edge
// owner u, validate degree caps at u and at the far endpoint w
// (ChildRequest/ChildAccept|ChildReject), and only then perform the path
// reversal (Reverse … Detach). A validation failure sends Abort back up and
// leaves the tree untouched — necessary in kConcurrent mode where sub-round
// swaps may have changed degrees between discovery and apply, and harmless
// (never triggered) in kSingleImprovement mode.
//
// Quiescence invariant used throughout: the round root receives the last
// BfsBack only after every wave message, cousin probe/reply and sub-round
// improvement of this round has been delivered, because every such message
// is counted by exactly one node's completion condition (see the closure
// rules in on_cross_probe()).
//
// Dispatch: BasicNode is generic over its context type. The simulator path
// instantiates it on the concrete sim::SimContext<Message> (no vtable; the
// send path inlines into the handlers), while `Node` keeps the virtual
// sim::IContext binding for mock-context unit tests and trace/replay
// tooling. Both instantiations are compiled once in node.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/assert.hpp"
#include "support/fixed_vec.hpp"

#include "mdst/messages.hpp"
#include "mdst/node_arena.hpp"
#include "mdst/options.hpp"
#include "runtime/context.hpp"
#include "runtime/node_env.hpp"

namespace mdst::sim {
template <typename Message>
class SimContext;  // defined in runtime/sim_core.hpp
template <typename Message>
class ShardContext;  // defined in runtime/sharded_sim.hpp
}  // namespace mdst::sim

namespace mdst::support {
class Rng;  // defined in support/rng.hpp (the corrupt() scramble stream)
}  // namespace mdst::support

namespace mdst::core {

/// Why the algorithm stopped (recorded by the final round root).
enum class StopReason {
  kNotStopped,
  kChain,           // k <= 2: the tree is a path — globally optimal
  kLocallyOptimal,  // a round target had no usable outgoing edge
  kAllMaxStuck,     // kStrictLot: every max-degree node is stuck
  kTargetReached,   // Options::target_degree satisfied
};
const char* to_string(StopReason reason);

template <typename Context>
class alignas(64) BasicNode {
 public:
  using Ctx = Context;

  /// `parent` is kNoNode exactly for the initial root; `children` are the
  /// node ids of the initial tree children. This overload self-allocates
  /// one private block for the degree-scaled state — the binding for
  /// hand-built unit-test nodes and small ad-hoc runs.
  BasicNode(const sim::NodeEnv& env, sim::NodeId parent,
            std::vector<sim::NodeId> children, Options options);

  /// Arena binding: the degree-scaled state lives in `slice` (a view into
  /// NodeArenas, which must outlive this node). run_mdst uses this for both
  /// engines — one allocation per subsystem for the whole trial instead of
  /// five per node (docs/perf.md "Memory model").
  BasicNode(const sim::NodeEnv& env, sim::NodeId parent,
            std::span<const sim::NodeId> children, const NodeSlice& slice,
            Options options);

  void on_start(Ctx& ctx);
  void on_message(Ctx& ctx, sim::NodeId from, const Message& message);

  /// Heartbeat fire of the self-healing layer (recovery.hpp). Only ever
  /// delivered when Options::recovery.enabled armed a timer; a fire on a
  /// done or crashed node simply does not re-arm, so the timer chain — and
  /// with it the event queue — drains at termination.
  void on_timer(Ctx& ctx);

  /// State-corruption fault hook (runtime/fault.hpp corrupt(r,k)): scramble
  /// one facet of the protocol state — sever the parent link, forge the
  /// fragment tag, or inflate the wave closure counter — drawing from the
  /// per-node stream the simulator derives. Returns true when state
  /// changed (false on an already-crashed node: crash-stop wins).
  bool corrupt(support::Rng& rng);

  // --- final / inspection state -------------------------------------------
  bool done() const { return done_; }
  sim::NodeId parent() const { return parent_; }
  std::span<const sim::NodeId> children() const {
    return {children_.data(), children_.size()};
  }
  int tree_degree() const {
    return static_cast<int>(children_.size()) +
           (parent_ != sim::kNoNode ? 1 : 0);
  }
  bool is_current_root() const { return parent_ == sim::kNoNode; }
  StopReason stop_reason() const { return stop_reason_; }
  std::uint32_t rounds_started() const { return round_; }
  std::uint64_t improvements_applied() const { return improvements_; }

  // --- crash-stop support (runtime/fault.hpp) -----------------------------
  /// Mark this node crash-stopped: it ignores every subsequent event and
  /// never sends again. Its tree pointers freeze at their pre-crash values,
  /// which engine-level outcome evaluation reads as the node's final public
  /// state. Called by the simulator when a FaultPlan kills the node; also
  /// callable from mock-context tests.
  void crash() { crashed_ = true; }
  bool crashed() const { return crashed_; }

  /// Human label for the node's current round role — wedge forensics input
  /// (the per-node protocol-state census in sim::WedgeReport).
  const char* role_name() const {
    switch (role_) {
      case Role::kIdle: return "idle";
      case Role::kRoot: return "root";
      case Role::kSubRoot: return "sub_root";
      case Role::kMember: return "member";
    }
    return "idle";
  }

 private:
  // ---- identity of this node's role within the current round.
  enum class Role : std::uint8_t { kIdle, kRoot, kSubRoot, kMember };
  enum class Scope : std::uint8_t { kTop, kSub };

  // ---- message handlers (one per type).
  void handle_start_round(Ctx& ctx, sim::NodeId from, const StartRound& msg);
  void handle_search_reply(Ctx& ctx, sim::NodeId from, const SearchReply& msg);
  void handle_move_root(Ctx& ctx, sim::NodeId from, const MoveRoot& msg);
  // The wave entry points are specialized on the engine mode: on_message
  // dispatches through the cached `concurrent_` flag once per delivery, so
  // the sub-root checks inside compile away entirely in the (default)
  // single-improvement instantiation instead of re-testing opts_.mode.
  template <bool Concurrent>
  void handle_cut(Ctx& ctx, sim::NodeId from, const Cut& msg);
  template <bool Concurrent>
  void handle_bfs(Ctx& ctx, sim::NodeId from, const Bfs& msg);
  void handle_cousin_reply(Ctx& ctx, sim::NodeId from, const CousinReply& msg);
  void handle_bfs_back(Ctx& ctx, sim::NodeId from, const BfsBack& msg);
  void handle_update(Ctx& ctx, sim::NodeId from, const Update& msg);
  void handle_child_request(Ctx& ctx, sim::NodeId from, const ChildRequest& msg);
  void handle_child_accept(Ctx& ctx, sim::NodeId from);
  void handle_child_reject(Ctx& ctx, sim::NodeId from);
  void handle_reverse(Ctx& ctx, sim::NodeId from, const Reverse& msg);
  void handle_detach(Ctx& ctx, sim::NodeId from);
  void handle_abort(Ctx& ctx, sim::NodeId from);
  void handle_terminate(Ctx& ctx, sim::NodeId from);

  // ---- self-healing layer (mdst/recovery.hpp has the protocol design).
  void handle_ping(Ctx& ctx, sim::NodeId from);
  void handle_pong(Ctx& ctx, sim::NodeId from, const Pong& msg);
  void handle_recover(Ctx& ctx, sim::NodeId from, const Recover& msg);
  void handle_recover_ack(Ctx& ctx, sim::NodeId from, const RecoverAck& msg);
  /// (Re-)arm the multiplexed heartbeat timer, if the context supports
  /// timers and none is in flight. Done/crashed nodes never re-arm.
  void arm_heartbeat(Ctx& ctx);
  /// Detection fired (`cause`: 0 dead parent, 1 denied tree edge, 2 stalled
  /// wave): initiate a re-election flood keyed (rec_gen_ + 1, own name).
  void start_recovery(Ctx& ctx, int cause);
  /// Adopt flood key (gen, root) learned from `from` (kNoNode when this
  /// node initiates) and hard-reset the protocol state.
  void begin_flood(std::uint32_t gen, graph::NodeName root, sim::NodeId from,
                   std::uint32_t from_index);
  /// Forward the adopted flood to every live non-parent neighbor and start
  /// the ack count.
  void forward_flood(Ctx& ctx);
  /// All acks in: initiators install themselves as root and restart the
  /// rounds; everyone else re-attaches below the flood parent and acks up.
  void finish_flood(Ctx& ctx);
  /// The hard reset behind begin_flood: dissolve every tree link and all
  /// round/improvement state; done nodes wake. The wave epoch bump makes
  /// stale pre-reset wave traffic fail the membership checks (defensively
  /// dropped).
  void recovery_reset_protocol();
  bool nb_dead(std::size_t slot) const {
    return rec_nb_ != nullptr && (rec_nb_[slot] & kNbDead) != 0;
  }
  // Per-neighbor liveness bits (rec_nb_):
  static constexpr std::uint8_t kNbDead = 1;   // timed out; excluded from waves
  static constexpr std::uint8_t kNbAwait = 2;  // flood forwarded, ack pending

  // ---- round orchestration (executed by whichever node is currently root).
  void begin_round(Ctx& ctx);
  void root_decide_after_search(Ctx& ctx);
  void begin_cut(Ctx& ctx);
  void root_choose(Ctx& ctx);
  void root_finish_round(Ctx& ctx, bool improved);
  void terminate(Ctx& ctx, StopReason reason);

  // ---- wave mechanics.
  void become_member(Ctx& ctx, const FragTag& top, const FragTag& sub, int k);
  void become_sub_root(Ctx& ctx, const FragTag& encl_top, int k);
  void on_cross_probe(Ctx& ctx, sim::NodeId from, const Bfs& msg,
                      std::uint32_t from_idx_hint);
  void close_cross_edge_at(Ctx& ctx, std::size_t idx);
  void member_maybe_report(Ctx& ctx);
  void subroot_maybe_resolve(Ctx& ctx);
  void subroot_report_up(Ctx& ctx);
  void send_search_reply_up(Ctx& ctx);
  void start_improvement(Ctx& ctx, Scope scope, const Candidate& chosen,
                         sim::NodeId provenance);
  void begin_reversal(Ctx& ctx, graph::NodeName stop_at,
                      sim::NodeId new_parent);

  // ---- local tree-structure helpers. The scans run once or more per
  // delivered message, so the hot ones are defined inline below.
  bool has_child(sim::NodeId node) const {
    for (const sim::NodeId c : children_) {
      if (c == node) return true;
    }
    return false;
  }
  std::size_t neighbor_index(sim::NodeId node) const {
    for (std::size_t i = 0; i < env_.neighbors.size(); ++i) {
      if (env_.neighbors[i].id == node) return i;
    }
    MDST_UNREACHABLE("neighbor_index: not a neighbor");
  }
  /// Receiver-side index of the current delivery's sender, when the context
  /// can provide it; kNoNeighborIndex otherwise (virtual contexts, starts,
  /// injects). Delegates to the shared helper in runtime/context.hpp.
  static std::uint32_t delivery_from_index(Ctx& ctx) {
    return sim::delivery_from_index(ctx);
  }
  /// neighbor_index(node), skipping the O(deg) scan when a delivery hint is
  /// available. The hint is cross-checked — a wrong hint is a simulator bug.
  std::size_t neighbor_index_hinted(sim::NodeId node,
                                    std::uint32_t hint) const {
    if (hint != sim::kNoNeighborIndex) {
      MDST_ASSERT(hint < env_.neighbors.size() &&
                      env_.neighbors[hint].id == node,
                  "delivery from-index hint does not match sender");
      return hint;
    }
    return neighbor_index(node);
  }
  /// Slot-addressed send when the context supports it (the simulator path
  /// skips the O(deg) neighbor-row scan); plain send otherwise. `idx` may
  /// be kNoNeighborIndex to force the fallback (e.g. replayed probes whose
  /// delivery hint no longer applies). Delegates to the shared helper in
  /// runtime/context.hpp.
  template <typename M>
  void send_indexed(Ctx& ctx, sim::NodeId to, std::uint32_t idx, M&& m) {
    sim::send_indexed(ctx, to, idx, std::forward<M>(m));
  }
  // ---- flat wave bookkeeping (epoch-stamped views over CSR child slots).
  //
  // A wave's membership is "children at wave start". The wave-start loops
  // always iterate the *live* children_ list (which at that instant IS the
  // membership), so no snapshot copy is ever taken — kConcurrent included,
  // where sub-round improvements mutate children_ mid-wave. What the rest
  // of the wave needs from the snapshot is only *membership queries*
  // (closure accounting, the BfsBack-sender invariant), and those are
  // answered by per-neighbor-slot epoch stamps: begin_wave() bumps
  // wave_epoch_, the start loop stamps each wave child's slot, and a slot
  // is a wave member iff its stamp equals the current epoch. No per-wave
  // allocation, copying, or clearing — stale stamps from earlier waves are
  // invalidated by the epoch bump alone (cross_closed_epoch_ works the
  // same way, replacing a per-wave byte-flag memset).
  void begin_wave() { ++wave_epoch_; }
  void stamp_wave_child(std::uint32_t slot) {
    wave_child_epoch_[slot] = wave_epoch_;
  }
  bool is_wave_child_slot(std::size_t slot) const {
    return wave_child_epoch_[slot] == wave_epoch_;
  }

  void add_child(sim::NodeId node,
                 std::uint32_t idx_hint = sim::kNoNeighborIndex);
  void remove_child(sim::NodeId node);
  std::uint32_t child_index_of(sim::NodeId node) const;
  sim::NodeId neighbor_by_name(graph::NodeName name) const;
  bool node_is_stuck() const;

  void reset_round_state();

  /// Shared tail of both constructors: binds/validates parent and children
  /// against the already-bound degree-scaled storage and zeroes the
  /// per-slot stamps (one code path whether the storage is arena or owned).
  void init(sim::NodeId parent, std::span<const sim::NodeId> children);

  static void static_layout_check();  // compile-time asserts (node.cpp)

  // ==== hot per-message state =============================================
  // Every delivered message touches a handful of these (dispatch asserts on
  // parent_/role_, wave counters, fragment tags, aggregation slots), so
  // they are declared first — the class is alignas(64), putting the whole
  // group in the object's leading cache line. Checked by
  // static_layout_check(); keep new cold fields out of this block.
  sim::NodeId parent_ = sim::kNoNode;
  /// Index of parent_ in env_.neighbors (kNoNeighborIndex at the root);
  /// maintained across every parent_ change so up-tree sends are
  /// slot-addressed.
  std::uint32_t parent_index_ = sim::kNoNeighborIndex;
  Role role_ = Role::kIdle;
  bool have_tags_ = false;
  bool reported_up_ = false;
  bool done_ = false;
  int k_ = 0;  // the round's max degree, learned from wave messages
  std::uint32_t wave_waiting_ = 0;  // child reports + cross closures
  std::uint32_t search_waiting_ = 0;
  FragTag top_;
  FragTag sub_;
  sim::NodeId prov_top_ = sim::kNoNode;
  sim::NodeId prov_sub_ = sim::kNoNode;
  sim::NodeId via_ = sim::kNoNode;  // child that reported the winner; kNoNode = self
  /// opts_.mode == kConcurrent, cached into the hot line so the per-wave
  /// dispatch never touches the cold Options block.
  bool concurrent_ = false;
  bool subtree_stuck_ = false;
  bool subtree_improved_ = false;  // some sub-round below applied a swap
  // kStrictLot: set when this node was a round target with no candidate;
  // invalidated when its degree changes or a StartRound clears it.
  bool stuck_ = false;
  // SearchDegree aggregation (one touch per SearchReply).
  int search_best_deg_ = -1;
  graph::NodeName search_best_who_ = kNoName;
  // ==== warm wave state (second/third cache line) =========================
  int search_deg_all_ = -1;
  std::uint32_t wave_epoch_ = 0;  // bumped by begin_wave(); stamps below
  /// Tolerant-dispatch flag (opts_.recovery.defensive, or implied by the
  /// recovery layer): handler-entry invariant violations drop the message
  /// instead of asserting, so corrupted or stale-epoch traffic wedges
  /// measurably (and recoverably) instead of dying. Cached in the warm
  /// block — it gates every handler entry.
  bool defensive_ = false;
  bool recovery_on_ = false;  // opts_.recovery.enabled, cached beside it
  /// Degree-scaled state: fixed-capacity views into storage the node does
  /// not own (a NodeArenas slice, or the private owned_ block below). All
  /// five blocks hold exactly env_.neighbors.size() slots, bound once at
  /// construction and never rebound.
  support::FixedVec<sim::NodeId> children_;
  support::FixedVec<std::uint32_t> child_indices_;  // parallel to children_
  Candidate best_top_;
  Candidate best_sub_;
  /// Per-neighbor-slot flags/stamps:
  ///   child_at_[s]          — slot s is currently a tree child (byte flag:
  ///                           O(1) membership for the cross-probe scan,
  ///                           where has_child()'s O(children) scan per
  ///                           neighbor was ~quadratic in degree);
  ///   wave_child_epoch_[s]  — slot s was a child when the current wave
  ///                           (epoch wave_epoch_) started;
  ///   cross_closed_epoch_[s]— slot s's cross edge closed this wave.
  std::uint8_t* child_at_ = nullptr;
  std::uint32_t* wave_child_epoch_ = nullptr;
  std::uint32_t* cross_closed_epoch_ = nullptr;
  // ==== cold state: construction-time, per-round-once, root-only ==========
  sim::NodeEnv env_;
  Options opts_;
  int stuck_degree_ = -1;
  // Root-side bookkeeping (meaningful while this node is round root).
  std::uint32_t round_ = 0;
  std::uint64_t improvements_ = 0;
  StopReason stop_reason_ = StopReason::kNotStopped;
  bool round_root_duty_ = false;  // I ran root_decide for the current round
  bool clear_stuck_next_ = false;
  /// A cross probe that arrived before this node had tags, parked for
  /// replay. `from_index` keeps the delivery's reverse-CSR hint — the
  /// sender's slot in this node's row is a property of the static network,
  /// so it stays valid across the park (kNoNeighborIndex when the probe
  /// came through a context with no hint).
  struct QueuedProbe {
    sim::NodeId from = sim::kNoNode;
    std::uint32_t from_index = sim::kNoNeighborIndex;
    Bfs probe;
  };
  std::vector<QueuedProbe> queued_probes_;
  std::vector<QueuedProbe> scratch_probes_;  // replay buffer
  // Improvement phase (a handful of messages per round).
  bool improving_ = false;        // root/sub-root: an Update is in flight
  bool round_aborted_ = false;    // root: this round's commit went stale
  Scope improving_scope_ = Scope::kTop;
  sim::NodeId update_from_ = sim::kNoNode;  // for routing Abort back up
  Scope update_scope_ = Scope::kTop;
  Candidate pending_candidate_;   // owner-side: candidate being committed
  Scope pending_scope_ = Scope::kTop;
  sim::NodeId pending_new_parent_ = sim::kNoNode;
  // Sub-root bookkeeping.
  bool sub_internal_done_ = false;
  bool sub_stuck_ = false;
  bool sub_improved_ = false;
  /// Crash-stop flag (cold: only fault-plan runs ever set it; the guard
  /// reads are one byte load per event).
  bool crashed_ = false;
  // ==== self-healing layer state (cold: recovery-off runs never touch it,
  // beyond the never-set recovery_on_/defensive_ flags cached above) ======
  bool timer_armed_ = false;    // one heartbeat timer event is in flight
  bool awaiting_pong_ = false;  // pinged parent_, reply still outstanding
  bool recovering_ = false;     // flood adopted/initiated, acks pending
  std::uint32_t pong_fires_ = 0;   // heartbeat fires spent waiting for Pong
  std::uint32_t pong_limit_ = 2;   // doubles per miss (ARQ-delay tolerance)
  std::uint32_t stall_fires_ = 0;  // fires since the last protocol message
  std::uint32_t stall_limit_ = 0;  // from RecoveryOptions; doubles per use
  std::uint32_t ack_fires_ = 0;    // fires spent waiting for RecoverAcks
  std::uint32_t ack_limit_ = 0;    // from RecoveryOptions; doubles per use
  std::uint32_t deny_count_ = 0;   // consecutive denied Pongs from parent
  std::uint32_t deny_limit_ = 2;   // doubles per fire (hand-off tolerance)
  /// Highest flood key seen, lexicographic (gen, root name). Survives the
  /// flood so stale same-key Recover arrivals are rejected, not re-adopted.
  std::uint32_t rec_gen_ = 0;
  graph::NodeName rec_root_ = kNoName;
  sim::NodeId rec_parent_ = sim::kNoNode;  // flood parent = next tree parent
  std::uint32_t rec_parent_index_ = sim::kNoNeighborIndex;
  std::uint32_t rec_waiting_ = 0;  // forwarded floods awaiting a RecoverAck
  /// Per-neighbor-slot liveness bits (kNbDead/kNbAwait). Allocated only
  /// when the recovery layer is enabled; null (and never read) otherwise.
  std::unique_ptr<std::uint8_t[]> rec_nb_;
  /// Backing block for the legacy (non-arena) constructor: one allocation
  /// holding all five degree-scaled arrays. Null when arena-backed. Cold —
  /// touched only at construction; the hot path goes through the bound
  /// pointers above, which stay valid across moves (the block address never
  /// changes). Makes the node move-only, which both simulators satisfy.
  std::unique_ptr<std::byte[]> owned_;
};

/// Virtual-context binding: unit tests drive handlers through mock
/// IContext implementations; trace/replay tooling stays backend-agnostic.
using Node = BasicNode<sim::IContext<Message>>;
/// Concrete-context binding: what the simulator runs. send()/now() resolve
/// statically and inline into the dispatch switch.
using SimNode = BasicNode<sim::SimContext<Message>>;
/// Sharded-context binding: the same devirtualized fast path against the
/// intra-trial parallel engine's per-lane context.
using ShardNode = BasicNode<sim::ShardContext<Message>>;

// All instantiations are compiled once, in node.cpp.
extern template class BasicNode<sim::IContext<Message>>;
extern template class BasicNode<sim::SimContext<Message>>;
extern template class BasicNode<sim::ShardContext<Message>>;

/// Simulator protocol binding (the devirtualized fast path).
struct Protocol {
  using Message = core::Message;
  using Node = core::SimNode;

  /// Reclaim pooled payload state for a message the simulator drops
  /// instead of delivering (crash-stop destination, watchdog discard).
  /// BfsBack boxes are released by their single consumer on delivery
  /// (candidates.hpp), so an undelivered BfsBack must release here to keep
  /// the CandidatePool balanced — run_mdst's pool-balance check stays
  /// unconditional even under fault plans.
  static void dispose(const Message& message) {
    if (const BfsBack* back = std::get_if<BfsBack>(&message)) {
      back->best_top.release();
      back->best_sub.release();
    }
  }
};

/// Sharded-simulator protocol binding: same message set and dispose
/// contract, nodes bound to the per-lane shard context. Cross-shard
/// candidate re-homing rides on CrossShardTraits<Message> (messages.hpp).
struct ShardProtocol {
  using Message = core::Message;
  using Node = core::ShardNode;
  static void dispose(const Message& message) { Protocol::dispose(message); }
};

}  // namespace mdst::core
