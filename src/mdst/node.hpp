// Distributed MDegST node — the per-processor state machine of the
// Blin–Butelle algorithm.
//
// Each node holds only local state: its identity, its neighbours (with
// identities), and its current parent/children in the evolving spanning
// tree. All coordination happens through the Message set (messages.hpp).
// A round (paper §3.1) as seen from the current round root:
//
//   StartRound ↓ / SearchReply ↑     SearchDegree: find (k, target)
//   MoveRoot → … → target           root migrates with path reversal
//   Cut ↓                            children become fragment roots
//   Bfs ↓ + cross probes /           fragment waves discover cousin edges;
//     CousinReply / BfsBack ↑          candidates convergecast with
//                                      provenance pointers
//   Update ↓ ChildRequest/Accept →   two-phase commit of the edge swap
//   Reverse ↑ Detach → root          fragment re-roots at the new
//                                      attachment point (paper's "via
//                                      becomes parent" cascade)
//
// Two-phase swap (DESIGN D2): the paper applies the exchange while the
// Update message walks down; we first route Update unchanged to the edge
// owner u, validate degree caps at u and at the far endpoint w
// (ChildRequest/ChildAccept|ChildReject), and only then perform the path
// reversal (Reverse … Detach). A validation failure sends Abort back up and
// leaves the tree untouched — necessary in kConcurrent mode where sub-round
// swaps may have changed degrees between discovery and apply, and harmless
// (never triggered) in kSingleImprovement mode.
//
// Quiescence invariant used throughout: the round root receives the last
// BfsBack only after every wave message, cousin probe/reply and sub-round
// improvement of this round has been delivered, because every such message
// is counted by exactly one node's completion condition (see the closure
// rules in on_cross_probe()).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/assert.hpp"

#include "mdst/messages.hpp"
#include "mdst/options.hpp"
#include "runtime/context.hpp"
#include "runtime/node_env.hpp"

namespace mdst::core {

/// Why the algorithm stopped (recorded by the final round root).
enum class StopReason {
  kNotStopped,
  kChain,           // k <= 2: the tree is a path — globally optimal
  kLocallyOptimal,  // a round target had no usable outgoing edge
  kAllMaxStuck,     // kStrictLot: every max-degree node is stuck
  kTargetReached,   // Options::target_degree satisfied
};
const char* to_string(StopReason reason);

class Node {
 public:
  using Ctx = sim::IContext<Message>;

  /// `parent` is kNoNode exactly for the initial root; `children` are the
  /// node ids of the initial tree children.
  Node(const sim::NodeEnv& env, sim::NodeId parent,
       std::vector<sim::NodeId> children, Options options);

  void on_start(Ctx& ctx);
  void on_message(Ctx& ctx, sim::NodeId from, const Message& message);

  // --- final / inspection state -------------------------------------------
  bool done() const { return done_; }
  sim::NodeId parent() const { return parent_; }
  const std::vector<sim::NodeId>& children() const { return children_; }
  int tree_degree() const {
    return static_cast<int>(children_.size()) +
           (parent_ != sim::kNoNode ? 1 : 0);
  }
  bool is_current_root() const { return parent_ == sim::kNoNode; }
  StopReason stop_reason() const { return stop_reason_; }
  std::uint32_t rounds_started() const { return round_; }
  std::uint64_t improvements_applied() const { return improvements_; }

 private:
  // ---- identity of this node's role within the current round.
  enum class Role { kIdle, kRoot, kSubRoot, kMember };
  enum class Scope { kTop, kSub };

  // ---- message handlers (one per type).
  void handle_start_round(Ctx& ctx, sim::NodeId from, const StartRound& msg);
  void handle_search_reply(Ctx& ctx, sim::NodeId from, const SearchReply& msg);
  void handle_move_root(Ctx& ctx, sim::NodeId from, const MoveRoot& msg);
  void handle_cut(Ctx& ctx, sim::NodeId from, const Cut& msg);
  void handle_bfs(Ctx& ctx, sim::NodeId from, const Bfs& msg);
  void handle_cousin_reply(Ctx& ctx, sim::NodeId from, const CousinReply& msg);
  void handle_bfs_back(Ctx& ctx, sim::NodeId from, const BfsBack& msg);
  void handle_update(Ctx& ctx, sim::NodeId from, const Update& msg);
  void handle_child_request(Ctx& ctx, sim::NodeId from, const ChildRequest& msg);
  void handle_child_accept(Ctx& ctx, sim::NodeId from);
  void handle_child_reject(Ctx& ctx, sim::NodeId from);
  void handle_reverse(Ctx& ctx, sim::NodeId from, const Reverse& msg);
  void handle_detach(Ctx& ctx, sim::NodeId from);
  void handle_abort(Ctx& ctx, sim::NodeId from);
  void handle_terminate(Ctx& ctx, sim::NodeId from);

  // ---- round orchestration (executed by whichever node is currently root).
  void begin_round(Ctx& ctx);
  void root_decide_after_search(Ctx& ctx);
  void begin_cut(Ctx& ctx);
  void root_choose(Ctx& ctx);
  void root_finish_round(Ctx& ctx, bool improved);
  void terminate(Ctx& ctx, StopReason reason);

  // ---- wave mechanics.
  void become_member(Ctx& ctx, const FragTag& top, const FragTag& sub, int k);
  void become_sub_root(Ctx& ctx, const FragTag& encl_top, int k);
  void on_cross_probe(Ctx& ctx, sim::NodeId from, const Bfs& msg);
  void close_cross_edge(Ctx& ctx, sim::NodeId neighbor);
  void close_cross_edge_at(Ctx& ctx, std::size_t idx);
  void member_maybe_report(Ctx& ctx);
  void subroot_maybe_resolve(Ctx& ctx);
  void subroot_report_up(Ctx& ctx);
  void send_search_reply_up(Ctx& ctx);
  void start_improvement(Ctx& ctx, Scope scope, const Candidate& chosen,
                         sim::NodeId provenance);
  void begin_reversal(Ctx& ctx, graph::NodeName stop_at,
                      sim::NodeId new_parent);

  // ---- local tree-structure helpers. The scans run once or more per
  // delivered message, so the hot ones are defined inline below.
  bool has_child(sim::NodeId node) const {
    for (const sim::NodeId c : children_) {
      if (c == node) return true;
    }
    return false;
  }
  std::size_t neighbor_index(sim::NodeId node) const {
    for (std::size_t i = 0; i < env_.neighbors.size(); ++i) {
      if (env_.neighbors[i].id == node) return i;
    }
    MDST_UNREACHABLE("neighbor_index: not a neighbor");
  }
  void add_child(sim::NodeId node);
  void remove_child(sim::NodeId node);
  sim::NodeId neighbor_by_name(graph::NodeName name) const;
  bool node_is_stuck() const;

  void reset_round_state();

  // ---- permanent state.
  sim::NodeEnv env_;
  Options opts_;
  sim::NodeId parent_ = sim::kNoNode;
  std::vector<sim::NodeId> children_;
  bool done_ = false;
  // kStrictLot: set when this node was a round target with no candidate;
  // invalidated when its degree changes or a StartRound clears it.
  bool stuck_ = false;
  int stuck_degree_ = -1;

  // ---- root-side bookkeeping (meaningful while this node is round root).
  std::uint32_t round_ = 0;
  std::uint64_t improvements_ = 0;
  StopReason stop_reason_ = StopReason::kNotStopped;
  bool round_root_duty_ = false;  // I ran root_decide for the current round
  bool clear_stuck_next_ = false;

  // ---- per-round state (reset by StartRound / begin_round).
  Role role_ = Role::kIdle;
  int k_ = 0;  // the round's max degree, learned from wave messages
  // SearchDegree phase.
  std::size_t search_waiting_ = 0;
  int search_best_deg_ = -1;
  graph::NodeName search_best_who_ = kNoName;
  int search_deg_all_ = -1;
  sim::NodeId via_ = sim::kNoNode;  // child that reported the winner; kNoNode = self
  // Wave phase.
  bool have_tags_ = false;
  FragTag top_;
  FragTag sub_;
  std::vector<sim::NodeId> wave_children_;  // children at wave start
  std::size_t wave_waiting_ = 0;            // child reports + cross closures
  std::vector<bool> cross_closed_;          // per neighbour index
  std::vector<std::pair<sim::NodeId, Bfs>> queued_probes_;
  std::vector<std::pair<sim::NodeId, Bfs>> scratch_probes_;  // replay buffer
  bool reported_up_ = false;
  Candidate best_top_;
  sim::NodeId prov_top_ = sim::kNoNode;
  Candidate best_sub_;
  sim::NodeId prov_sub_ = sim::kNoNode;
  bool subtree_stuck_ = false;
  bool subtree_improved_ = false;  // some sub-round below applied a swap
  // Improvement phase.
  bool improving_ = false;        // root/sub-root: an Update is in flight
  bool round_aborted_ = false;    // root: this round's commit went stale
  Scope improving_scope_ = Scope::kTop;
  sim::NodeId update_from_ = sim::kNoNode;  // for routing Abort back up
  Scope update_scope_ = Scope::kTop;
  Candidate pending_candidate_;   // owner-side: candidate being committed
  Scope pending_scope_ = Scope::kTop;
  sim::NodeId pending_new_parent_ = sim::kNoNode;
  // Sub-root bookkeeping.
  bool sub_internal_done_ = false;
  bool sub_stuck_ = false;
  bool sub_improved_ = false;
};

/// Simulator protocol binding.
struct Protocol {
  using Message = core::Message;
  using Node = core::Node;
};

}  // namespace mdst::core
