#include "mdst/node_arena.hpp"

#include <cstddef>

#include "graph/graph.hpp"
#include "support/assert.hpp"

namespace mdst::core {

NodeArenas::NodeArenas(const graph::Graph& g) {
  const std::size_t n = g.vertex_count();
  offsets_.resize(n + 1);
  std::uint64_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    offsets_[v] = static_cast<std::uint32_t>(total);
    total += g.degree(static_cast<graph::VertexId>(v));
  }
  // 2m must fit the u32 CSR offsets (same limit the graph's own incidence
  // arrays live under; graph construction guards it first, this is the
  // arena-local restatement).
  MDST_REQUIRE(total <= UINT32_MAX,
               "NodeArenas: degree sum 2m exceeds the 32-bit CSR offset "
               "limit (2^32 - 1)");
  offsets_[n] = static_cast<std::uint32_t>(total);
  children_.resize(total);
  child_indices_.resize(total);
  child_at_.resize(total);
  wave_child_epoch_.resize(total);
  cross_closed_epoch_.resize(total);
}

}  // namespace mdst::core
