// Lower bounds on the optimal spanning-tree degree Δ*.
//
// Used to certify exactness on mid-size instances where the exact solver is
// too slow, and as the reference line of the approximation experiment:
//
//   * vertex-cut bound: any spanning tree must connect the components of
//     G - v through v, so deg_T(v) >= #components(G - v) for every tree;
//   * set bound (pairs): for X ⊆ V the tree edges leaving X must connect
//     all components of G - X to X, so Σ_{x∈X} deg_T(x) >=
//     #components(G - X) + |X| - 1, giving a ceil-average bound;
//   * trivial bound: 2 for n >= 3 unless the graph is a simple path-like
//     structure (Δ* = 1 only for n <= 2).
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace mdst::core {

/// max_v #components(G - v).
int vertex_cut_bound(const graph::Graph& g);

/// Pairwise set bound; O(n^2 (n+m)), only evaluated when n <= pair_limit.
int pair_cut_bound(const graph::Graph& g, std::size_t pair_limit = 48);

/// Best available lower bound on Δ*.
int degree_lower_bound(const graph::Graph& g);

/// Korach–Moran–Zaks message lower bound Ω(n²/k) for degree-k-restricted
/// spanning tree construction on a complete network (reference curve).
double kmz_message_bound(std::size_t n, std::size_t k);

}  // namespace mdst::core
