#include "mdst/bounds.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/dsu.hpp"
#include "support/assert.hpp"

namespace mdst::core {

int vertex_cut_bound(const graph::Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n <= 1) return 0;
  int best = 1;
  for (std::size_t v = 0; v < n; ++v) {
    best = std::max(
        best, static_cast<int>(graph::components_without_vertex(
                  g, static_cast<graph::VertexId>(v))));
  }
  return best;
}

namespace {

std::size_t components_without_pair(const graph::Graph& g, graph::VertexId a,
                                    graph::VertexId b) {
  const std::size_t n = g.vertex_count();
  graph::Dsu dsu(n);
  std::vector<char> removed(n, 0);
  removed[static_cast<std::size_t>(a)] = 1;
  removed[static_cast<std::size_t>(b)] = 1;
  std::size_t present = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (!removed[v]) ++present;
  }
  if (present == 0) return 0;
  std::size_t merges = 0;
  for (const graph::Edge& e : g.edges()) {
    if (removed[static_cast<std::size_t>(e.u)] ||
        removed[static_cast<std::size_t>(e.v)]) {
      continue;
    }
    if (dsu.unite(static_cast<std::size_t>(e.u),
                  static_cast<std::size_t>(e.v))) {
      ++merges;
    }
  }
  return present - merges;
}

}  // namespace

int pair_cut_bound(const graph::Graph& g, std::size_t pair_limit) {
  const std::size_t n = g.vertex_count();
  if (n <= 2 || n > pair_limit) return 0;
  int best = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const std::size_t comps = components_without_pair(
          g, static_cast<graph::VertexId>(a), static_cast<graph::VertexId>(b));
      // Σ deg_T over {a,b} >= comps + 1  =>  max >= ceil((comps + 1) / 2).
      const int bound = static_cast<int>((comps + 1 + 1) / 2);
      best = std::max(best, bound);
    }
  }
  return best;
}

int degree_lower_bound(const graph::Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n <= 1) return 0;
  if (n == 2) return 1;
  int best = 2;  // every spanning tree on n >= 3 vertices has a degree-2 node
  best = std::max(best, vertex_cut_bound(g));
  best = std::max(best, pair_cut_bound(g));
  return best;
}

double kmz_message_bound(std::size_t n, std::size_t k) {
  MDST_REQUIRE(k >= 1, "kmz bound: k >= 1");
  return static_cast<double>(n) * static_cast<double>(n) /
         static_cast<double>(k);
}

}  // namespace mdst::core
