// Sequential Fürer–Raghavachari local-search baselines.
//
// The paper's distributed algorithm is "based on the main ideas of [3]"
// (Fürer & Raghavachari). We implement two sequential variants:
//
//   * kPure — exactly the local rule the paper attributes to FR: a non-tree
//     edge (u, w) may reduce the maximum-degree vertex v on its fundamental
//     cycle when max(deg u, deg w) <= deg v - 2. Each exchange strictly
//     decreases Σ_x 3^deg(x), so termination is immediate. This matches what
//     the distributed algorithm can achieve (DESIGN D3).
//
//   * kFull — FR's complete procedure with degree-(k-1) propagation: when no
//     direct improvement of a degree-k vertex exists but an edge still
//     crosses two components of T - (S ∪ B) (S = degree-k set, B =
//     degree-(k-1) set), the blocking degree-(k-1) vertex is reduced first.
//     At the fixpoint no crossing edge exists, so FR Theorem 1 gives
//     max-degree <= Δ* + 1 unconditionally. Termination of the interleaving
//     is enforced with a generous step budget (never hit in practice; a
//     violation throws, it does not return a wrong tree).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/tree.hpp"

namespace mdst::core {

enum class FrVariant { kPure, kFull };

struct FrResult {
  graph::RootedTree tree;
  std::uint64_t exchanges = 0;        // direct degree-k exchanges
  std::uint64_t propagations = 0;     // degree-(k-1) unblocking exchanges
  int initial_degree = 0;
  int final_degree = 0;
  /// kFull only: true iff the run ended because no edge crosses two
  /// components of T - (S ∪ B) — the Theorem-1 witness, certifying
  /// final_degree <= Δ* + 1. (False exits — a propagation cycle guard or
  /// budget — are possible in principle but unobserved across the test
  /// sweeps; the flag keeps the report honest either way.)
  bool witness = false;
};

/// Run the chosen variant from `initial` until locally optimal.
FrResult furer_raghavachari(const graph::Graph& g,
                            const graph::RootedTree& initial,
                            FrVariant variant = FrVariant::kFull);

}  // namespace mdst::core
