// Message set of the distributed MDegST protocol.
//
// Mapping to the paper's vocabulary (§3.2) — docs/protocol.md carries the
// full handler-by-handler table:
//   paper                      here
//   ------------------------   ------------------------------------------
//   degree convergecast        StartRound (down) + SearchReply (up)
//   "Move Root"                MoveRoot
//   <cut, k, p>                Cut
//   <BFS, k, p, p'>            Bfs
//   <BFSBack, r, r', deg, ()>  CousinReply   (answer across a non-tree edge)
//   "BFSBack" up the fragment  BfsBack       (convergecast of candidates)
//   <update, e>                Update, then ChildRequest/ChildAccept/
//                              ChildReject + Reverse + Detach (the paper's
//                              single "update/child" exchange, split into a
//                              two-phase commit so a stale improvement can
//                              abort without ever breaking the tree; see
//                              node.cpp header comment)
//   "stop"                     stuck flag carried by BfsBack, plus Abort
//   termination by process     Terminate broadcast
//
// The paper's rounds 1..R are explicit here: the root triggers each round's
// degree search with a StartRound broadcast (the paper lets leaves start
// spontaneously, which only works for the first round; we meter the extra
// n-1 messages honestly — see docs/protocol.md).
//
// Every message reports how many identity-sized fields it carries
// (ids_carried) so the bit-width claim C5 can be measured. In
// kSingleImprovement mode all messages carry at most 4 identity fields,
// matching the paper; kConcurrent needs up to 8 (sub-fragment tags), still
// O(log n) bits. Types whose count is a constant of the type additionally
// advertise it as `static constexpr kIdsCarried`, which feeds the
// simulator's compile-time descriptor table (runtime/variant_util.hpp) so
// per-delivery metering is one array load; only Cut/Bfs/CousinReply/BfsBack
// have payload-dependent counts and keep the visit fallback.
//
// Size discipline: every alternative is a few machine words. The one
// naturally fat message, BfsBack, carries its Candidates *boxed* (4-byte
// pool handles, see candidates.hpp), so the variant — and with it every
// queued event — stays small; tests/mdst/message_layout_test.cpp pins the
// bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <variant>

#include "graph/types.hpp"
#include "mdst/candidates.hpp"
#include "runtime/shard_traits.hpp"
#include "runtime/variant_util.hpp"

namespace mdst::core {

// --- Messages ---------------------------------------------------------------

/// Root -> leaves: begin round `round`; clear stuck flags if an improvement
/// happened last round (kStrictLot bookkeeping).
struct StartRound {
  static constexpr const char* kName = "StartRound";
  std::uint32_t round = 0;
  bool clear_stuck = false;
  static constexpr std::size_t kIdsCarried = 1;
  std::size_t ids_carried() const { return kIdsCarried; }
};

/// Leaves -> root: maximum tree degree in my subtree and the minimum name
/// attaining it. `deg_all` additionally reports the maximum including
/// stuck nodes (identical to `degree` outside kStrictLot) so the root can
/// detect that every maximum-degree node is stuck.
struct SearchReply {
  static constexpr const char* kName = "SearchReply";
  int degree = 0;
  NodeName who = kNoName;
  int deg_all = 0;
  static constexpr std::size_t kIdsCarried = 3;
  std::size_t ids_carried() const { return kIdsCarried; }
};

/// Walks from the old root to the new one, reversing parents hop by hop.
struct MoveRoot {
  static constexpr const char* kName = "MoveRoot";
  int k = 0;
  NodeName target = kNoName;
  static constexpr std::size_t kIdsCarried = 2;
  std::size_t ids_carried() const { return kIdsCarried; }
};

/// Round root p (or sub-root q) -> its children: you are a fragment root.
/// For the main cut, encl_top is invalid (receiver derives top = (root, own
/// name)); a sub-root forwards its enclosing top tag.
struct Cut {
  static constexpr const char* kName = "Cut";
  int k = 0;
  NodeName sub_root = kNoName;  // who cut (p, or a sub-root q)
  FragTag encl_top;             // invalid for the main cut
  std::size_t ids_carried() const { return encl_top.valid() ? 4 : 2; }
};

/// The BFS wave: down tree edges and across non-tree (cousin) edges.
struct Bfs {
  static constexpr const char* kName = "Bfs";
  int k = 0;
  FragTag top;
  FragTag sub;
  std::size_t ids_carried() const { return top == sub ? 3 : 5; }
};

/// Answer to a cousin probe: the replier's tree degree and tags.
struct CousinReply {
  static constexpr const char* kName = "CousinReply";
  int degree = 0;
  FragTag top;
  FragTag sub;
  std::size_t ids_carried() const { return top == sub ? 3 : 5; }
};

/// Convergecast up a fragment: best candidates seen below, per scope.
/// `stuck` reports a sub-root that found no internal improvement (§3.2.6
/// "stop" path); `improved` reports that a sub-round applied an exchange
/// (the root only honours a stuck report in a round where nothing changed,
/// because an exchange elsewhere can invalidate the stuck certificate —
/// DESIGN D2/D4).
struct BfsBack {
  static constexpr const char* kName = "BfsBack";
  BoxedCandidate best_top;  // usable at the round root p
  BoxedCandidate best_sub;  // usable at the enclosing sub-root q (concurrent)
  bool stuck = false;
  bool improved = false;
  std::size_t ids_carried() const {
    return (best_top.valid() ? 4u : 1u) + (best_sub.valid() ? 4u : 0u);
  }
};

/// Routed down the recorded provenance path toward the candidate owner u.
struct Update {
  static constexpr const char* kName = "Update";
  NodeName u = kNoName;
  NodeName w = kNoName;
  int k = 0;
  static constexpr std::size_t kIdsCarried = 3;
  std::size_t ids_carried() const { return kIdsCarried; }
};

/// u -> w across the chosen outgoing edge: may I become your child?
struct ChildRequest {
  static constexpr const char* kName = "ChildRequest";
  int k = 0;
  FragTag u_top;  // w re-checks the endpoints are in different fragments
  static constexpr std::size_t kIdsCarried = 3;
  std::size_t ids_carried() const { return kIdsCarried; }
};

struct ChildAccept {
  static constexpr const char* kName = "ChildAccept";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};

struct ChildReject {
  static constexpr const char* kName = "ChildReject";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};

/// Reverses parent pointers from the attach point u back to the fragment
/// root; terminates with Detach at the node whose parent is `stop_at`.
struct Reverse {
  static constexpr const char* kName = "Reverse";
  NodeName stop_at = kNoName;
  static constexpr std::size_t kIdsCarried = 1;
  std::size_t ids_carried() const { return kIdsCarried; }
};

/// Final hop of an improvement: tells the (sub-)root to drop the moved
/// child. Receipt is the paper's "round is terminated" event.
struct Detach {
  static constexpr const char* kName = "Detach";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};

/// An improvement was found stale at apply time and abandoned with no
/// structural change (two-phase commit failure path; DESIGN D2).
struct Abort {
  static constexpr const char* kName = "Abort";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};

/// Broadcast down the final tree: algorithm over, local views final.
struct Terminate {
  static constexpr const char* kName = "Terminate";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};

// --- Recovery layer (mdst/recovery.hpp; off unless Options::recovery) -------

/// Child -> parent heartbeat probe over the tree edge.
struct Ping {
  static constexpr const char* kName = "Ping";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};

/// Parent -> child heartbeat answer; `ok = false` means "you are not my
/// child" — the child's view of the tree edge is corrupt and it must
/// trigger recovery.
struct Pong {
  static constexpr const char* kName = "Pong";
  bool ok = true;
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};

/// Recovery flood: rebuild the spanning structure from scratch around the
/// initiator. Keys (gen, root) order lexicographically; a node adopts the
/// highest key it has seen, forwards the flood, and resets its protocol
/// state — so concurrent initiators collapse to one winner.
struct Recover {
  static constexpr const char* kName = "Recover";
  std::uint32_t gen = 0;
  NodeName root = kNoName;
  static constexpr std::size_t kIdsCarried = 1;
  std::size_t ids_carried() const { return kIdsCarried; }
};

/// Convergecast answer to a Recover flood: `accepted = true` means "I am
/// your child in the rebuilt tree and my whole subtree has reset";
/// `accepted = false` is an immediate rejection (the receiver already sits
/// in an equal-or-higher flood through another edge).
struct RecoverAck {
  static constexpr const char* kName = "RecoverAck";
  std::uint32_t gen = 0;
  NodeName root = kNoName;
  bool accepted = false;
  static constexpr std::size_t kIdsCarried = 1;
  std::size_t ids_carried() const { return kIdsCarried; }
};

using Message =
    std::variant<StartRound, SearchReply, MoveRoot, Cut, Bfs, CousinReply,
                 BfsBack, Update, ChildRequest, ChildAccept, ChildReject,
                 Reverse, Detach, Abort, Terminate, Ping, Pong, Recover,
                 RecoverAck>;

// Two load-bearing layout properties (see candidates.hpp and docs/perf.md):
// trivial copyability keeps every queue payload move a memcpy, and the
// 24-byte bound keeps calendar-queue slab nodes lean. A new alternative (or
// field) that breaks either deserves a deliberate decision, not an accident.
static_assert(std::is_trivially_copyable_v<Message>);
static_assert(sizeof(Message) <= 24);

/// Indices for metrics queries (kept in sync with the variant order).
enum class MessageType : std::size_t {
  kStartRound = 0,
  kSearchReply,
  kMoveRoot,
  kCut,
  kBfs,
  kCousinReply,
  kBfsBack,
  kUpdate,
  kChildRequest,
  kChildAccept,
  kChildReject,
  kReverse,
  kDetach,
  kAbort,
  kTerminate,
  kPing,
  kPong,
  kRecover,
  kRecoverAck,
};

/// First recovery-layer alternative; [kFirstRecoveryType, variant_size)
/// is exactly the recovery message band (metrics overhead accounting).
inline constexpr std::size_t kFirstRecoveryType =
    static_cast<std::size_t>(MessageType::kPing);

// Node::on_message dispatches by switch on Message::index() through this
// enum; pin every alternative so a reordering cannot silently misroute.
namespace detail {
template <MessageType E, typename T>
inline constexpr bool kPinned = std::is_same_v<
    std::variant_alternative_t<static_cast<std::size_t>(E), Message>, T>;
}  // namespace detail
static_assert(std::variant_size_v<Message> == 19);
static_assert(detail::kPinned<MessageType::kStartRound, StartRound>);
static_assert(detail::kPinned<MessageType::kSearchReply, SearchReply>);
static_assert(detail::kPinned<MessageType::kMoveRoot, MoveRoot>);
static_assert(detail::kPinned<MessageType::kCut, Cut>);
static_assert(detail::kPinned<MessageType::kBfs, Bfs>);
static_assert(detail::kPinned<MessageType::kCousinReply, CousinReply>);
static_assert(detail::kPinned<MessageType::kBfsBack, BfsBack>);
static_assert(detail::kPinned<MessageType::kUpdate, Update>);
static_assert(detail::kPinned<MessageType::kChildRequest, ChildRequest>);
static_assert(detail::kPinned<MessageType::kChildAccept, ChildAccept>);
static_assert(detail::kPinned<MessageType::kChildReject, ChildReject>);
static_assert(detail::kPinned<MessageType::kReverse, Reverse>);
static_assert(detail::kPinned<MessageType::kDetach, Detach>);
static_assert(detail::kPinned<MessageType::kAbort, Abort>);
static_assert(detail::kPinned<MessageType::kTerminate, Terminate>);
static_assert(detail::kPinned<MessageType::kPing, Ping>);
static_assert(detail::kPinned<MessageType::kPong, Pong>);
static_assert(detail::kPinned<MessageType::kRecover, Recover>);
static_assert(detail::kPinned<MessageType::kRecoverAck, RecoverAck>);

// The metering descriptor table must see exactly the four payload-dependent
// types as dynamic; a new alternative that forgets kIdsCarried silently
// falls back to the slower visit path, so pin the split here.
namespace detail {
inline constexpr auto& kDescriptors = sim::kMessageDescriptors<Message>;
template <MessageType E>
inline constexpr bool kDynamicIds =
    kDescriptors[static_cast<std::size_t>(E)].dynamic_ids;
}  // namespace detail
static_assert(detail::kDynamicIds<MessageType::kCut> &&
              detail::kDynamicIds<MessageType::kBfs> &&
              detail::kDynamicIds<MessageType::kCousinReply> &&
              detail::kDynamicIds<MessageType::kBfsBack>);
static_assert(!detail::kDynamicIds<MessageType::kStartRound> &&
              !detail::kDynamicIds<MessageType::kSearchReply> &&
              !detail::kDynamicIds<MessageType::kMoveRoot> &&
              !detail::kDynamicIds<MessageType::kUpdate> &&
              !detail::kDynamicIds<MessageType::kChildRequest> &&
              !detail::kDynamicIds<MessageType::kChildAccept> &&
              !detail::kDynamicIds<MessageType::kChildReject> &&
              !detail::kDynamicIds<MessageType::kReverse> &&
              !detail::kDynamicIds<MessageType::kDetach> &&
              !detail::kDynamicIds<MessageType::kAbort> &&
              !detail::kDynamicIds<MessageType::kTerminate> &&
              !detail::kDynamicIds<MessageType::kPing> &&
              !detail::kDynamicIds<MessageType::kPong> &&
              !detail::kDynamicIds<MessageType::kRecover> &&
              !detail::kDynamicIds<MessageType::kRecoverAck>);
static_assert(detail::kDescriptors[static_cast<std::size_t>(
                  MessageType::kSearchReply)].static_ids == 3);

}  // namespace mdst::core

// ---------------------------------------------------------------------------
// Cross-shard traits: re-homing BfsBack's pooled candidate boxes.
//
// BoxedCandidate handles index the *owning thread's* CandidatePool, so an
// event crossing a shard boundary must not carry them as-is. detach (on the
// sender's thread) copies the boxed values into the luggage and releases the
// sender-side slots; attach (on the receiver's thread) re-boxes them, so the
// receiving handler releases receiver-local slots exactly as it would in the
// single-threaded engine. The specialization lives here, next to the message
// set, so every translation unit that can name core::Message sees it.
// ---------------------------------------------------------------------------

namespace mdst::sim {

template <>
struct CrossShardTraits<mdst::core::Message> {
  struct Luggage {
    mdst::core::Candidate top;
    mdst::core::Candidate sub;
  };

  static void detach(mdst::core::Message& message, Luggage& luggage) {
    if (auto* back = std::get_if<mdst::core::BfsBack>(&message)) {
      if (back->best_top.valid()) luggage.top = back->best_top.get();
      if (back->best_sub.valid()) luggage.sub = back->best_sub.get();
      back->best_top.release();
      back->best_sub.release();
    }
  }

  static void attach(mdst::core::Message& message, const Luggage& luggage) {
    if (auto* back = std::get_if<mdst::core::BfsBack>(&message)) {
      // An invalid Candidate re-boxes to the empty box (no pool slot), so
      // one-sided BfsBacks survive the crossing with ids_carried intact.
      back->best_top = mdst::core::BoxedCandidate(luggage.top);
      back->best_sub = mdst::core::BoxedCandidate(luggage.sub);
    }
  }

  /// Per-worker pool-balance probe for the sharded engine's end-of-run
  /// leak check (the sharded counterpart of run_mdst's main-thread check).
  static std::size_t pooled_in_use() {
    return mdst::core::CandidatePool::local().in_use();
  }
};

}  // namespace mdst::sim
