// Engine: runs the distributed MDegST protocol on a graph from a given
// initial rooted spanning tree, and packages the result for experiments.
//
// This is the main entry point of the library:
//
//   auto g    = mdst::graph::make_gnp_connected(64, 0.2, rng);
//   auto st   = mdst::spanning::run_flood_st(g, 0).tree;   // distributed
//   auto run  = mdst::core::run_mdst(g, st, {}, {});
//   // run.tree.max_degree() <= st.max_degree(), locally optimal.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "mdst/node.hpp"
#include "mdst/options.hpp"
#include "runtime/fault.hpp"
#include "runtime/memory_report.hpp"
#include "runtime/metrics.hpp"
#include "runtime/simulator.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/trace.hpp"

namespace mdst::core {

/// One root-side round checkpoint ("round=3", "decide ...", "improve ...").
/// The protocol records these as structured tags (mdst/annotations.hpp);
/// `label` is the seed-style text, formatted once when the RunResult is
/// assembled (read time), and `tag` keeps the structured fields so
/// consumers need not re-parse the text.
struct RoundMark {
  sim::Time time = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t max_causal_depth = 0;
  std::string label;
  sim::AnnotationTag tag;
  bool tagged = false;
  /// Cumulative bit meter and queue occupancy at the checkpoint (carried
  /// through from sim::Annotation; inputs of the per-round telemetry ring).
  std::uint64_t total_bits = 0;
  std::uint64_t in_flight = 0;
};

/// Per-round phase message census derived from the annotations; used by the
/// per-round budget experiment (E9).
struct RoundStats {
  std::uint32_t round = 0;
  int k = -1;                       // max degree this round (from "decide")
  std::uint64_t search_msgs = 0;    // StartRound broadcast + SearchReply
  std::uint64_t move_msgs = 0;      // MoveRoot hops
  std::uint64_t wave_msgs = 0;      // Cut + Bfs + CousinReply + BfsBack
  std::uint64_t choose_msgs = 0;    // Update .. Detach/Abort
  bool improved = false;
};

/// Index entry: round `round`'s marks are marks[begin..end).
struct RoundMarkSpan {
  std::uint32_t round = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

struct RunResult {
  /// Final spanning tree. Empty when wedged, and for recovered runs with
  /// crashed nodes (the live tree cannot span g; final_degree still carries
  /// the live tree's max degree).
  graph::RootedTree tree;
  sim::Metrics metrics{static_cast<std::size_t>(
                           std::variant_size_v<core::Message>),
                       1};
  StopReason stop_reason = StopReason::kNotStopped;
  std::uint32_t rounds = 0;
  std::uint64_t improvements = 0;
  int initial_degree = 0;
  /// Max degree of the final tree; -1 when the run wedged and no valid
  /// tree survives.
  int final_degree = 0;
  /// Adversity outcome (runtime/fault.hpp): always kOk for fault-free
  /// runs; under an active plan the wedge watchdog classifies the run as
  /// ok / re_rooted / recovered / wedged instead of asserting global
  /// termination.
  sim::RunOutcome outcome = sim::RunOutcome::kOk;
  /// Adversity counters (retransmits, dropped deliveries); zeroes without
  /// an active plan.
  sim::FaultStats fault_stats;
  /// Self-healing stabilization metrics (mdst/recovery.hpp): detection
  /// latency, re-election/install counts, recovery message overhead.
  /// Defaulted (enabled = false) when the layer is off.
  RecoveryStats recovery;
  /// Per-subsystem byte accounting captured at run end (node arenas, event
  /// queue slabs, FIFO floors, metrics, network CSR). See
  /// runtime/memory_report.hpp for what each bucket counts.
  sim::MemoryReport memory;
  std::vector<RoundMark> marks;
  std::vector<RoundStats> round_stats;
  /// Round → marks index, built once by run_mdst in the same pass that
  /// derives round_stats (annotations arrive in round order, so each round
  /// is one contiguous block). Consumers that used to rescan `marks` per
  /// round look a round up here instead.
  std::vector<RoundMarkSpan> round_mark_index;
  /// Flight-recorder ring: one convergence row per round (k, fragments,
  /// waves, message/bit deltas, causal-depth and in-flight watermarks),
  /// derived from `marks` in the same post-run pass. Bounded exactly like
  /// the annotation ring: under SimConfig::annotation_cap only the most
  /// recent rounds survive.
  std::vector<sim::RoundTelemetry> round_telemetry;
  /// Wedge forensics snapshot; `wedge.captured` is true iff
  /// outcome == kWedged (docs/observability.md has the anatomy).
  sim::WedgeReport wedge;
  /// The recorded message trace, moved out of the simulator at run end
  /// (empty unless SimConfig::trace_cap > 0). Input of the timeline export.
  sim::Trace trace;

  /// The contiguous block of marks belonging to `round` (empty span when
  /// the round emitted none / does not exist). O(log rounds).
  std::span<const RoundMark> marks_of_round(std::uint32_t round) const;
  /// The per-round census row for `round`, or nullptr. O(log rounds).
  const RoundStats* stats_of_round(std::uint32_t round) const;
};

/// Run the protocol to termination. Preconditions: `initial` spans `g`.
/// With options.check_each_round, the engine validates the global tree
/// after every committed improvement (slow; for tests).
RunResult run_mdst(const graph::Graph& g, const graph::RootedTree& initial,
                   const Options& options = {},
                   const sim::SimConfig& sim_config = {});

/// Protocol phase spans for the timeline export, derived from the round
/// marks: search = [round start, decide], move = [decide, cut],
/// wave = [cut, wave_done], choose = [wave_done, round end]. Phases whose
/// closing mark never arrived (wedged runs) end at the last mark seen.
std::vector<sim::TimelinePhase> round_phases(const RunResult& result);

}  // namespace mdst::core
