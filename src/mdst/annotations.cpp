#include "mdst/annotations.hpp"

#include "support/assert.hpp"

namespace mdst::core {

std::string format_round_note(const sim::AnnotationTag& tag) {
  const std::string round = std::to_string(tag.round);
  switch (static_cast<RoundNote>(tag.kind)) {
    case RoundNote::kRoundStart:
      return "round=" + round;
    case RoundNote::kDecide:
      return "decide round=" + round + " k_all=" + std::to_string(tag.a) +
             " best=" + std::to_string(tag.b) +
             " target=" + std::to_string(tag.c);
    case RoundNote::kCut:
      return "cut round=" + round + " k=" + std::to_string(tag.a);
    case RoundNote::kWaveDone:
      return "wave_done round=" + round +
             " has_candidate=" + std::to_string(tag.a);
    case RoundNote::kImprove:
      return "improve round=" + round + " k=" + std::to_string(tag.a);
    case RoundNote::kSubImprove:
      return "subimprove round=" + round + " k=" + std::to_string(tag.a);
    case RoundNote::kTerminate:
      return "terminate round=" + round +
             " reason=" + to_string(static_cast<StopReason>(tag.a)) +
             " k_all=" + std::to_string(tag.b);
    case RoundNote::kRecoverStart:
      return "recover gen=" + round + " initiator=" + std::to_string(tag.a) +
             " cause=" + std::to_string(tag.b);
    case RoundNote::kRecoverInstall:
      return "recover_install gen=" + round +
             " root=" + std::to_string(tag.a) +
             " children=" + std::to_string(tag.b);
  }
  MDST_UNREACHABLE("format_round_note: unknown RoundNote kind");
}

std::string annotation_text(const sim::Annotation& annotation) {
  return annotation.tagged ? format_round_note(annotation.tag)
                           : annotation.label;
}

}  // namespace mdst::core
