#include "mdst/exact.hpp"

#include <algorithm>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/bounds.hpp"
#include "mdst/furer_raghavachari.hpp"
#include "support/assert.hpp"

namespace mdst::core {
namespace {

/// Union-find with an explicit undo stack (no path compression) so the
/// branch-and-bound can backtrack in O(1) per operation.
class RollbackDsu {
 public:
  explicit RollbackDsu(std::size_t n) : parent_(n), size_(n, 1) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  std::size_t find(std::size_t x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    undo_.push_back(b);
    return true;
  }

  void rollback_one() {
    MDST_ASSERT(!undo_.empty(), "rollback with empty undo stack");
    const std::size_t b = undo_.back();
    undo_.pop_back();
    const std::size_t a = parent_[b];
    size_[a] -= size_[b];
    parent_[b] = b;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::vector<std::size_t> undo_;
};

class DecisionSearch {
 public:
  DecisionSearch(const graph::Graph& g, int d, std::uint64_t budget)
      : g_(g), d_(d), budget_(budget), dsu_(g.vertex_count()),
        degree_(g.vertex_count(), 0) {}

  Feasibility run() {
    Feasibility result;
    if (g_.vertex_count() <= 1) {
      result.feasible = true;
      return result;
    }
    ok_ = true;
    result.feasible = recurse(0);
    result.proven = ok_;
    result.nodes_explored = nodes_;
    if (!ok_) result.feasible = false;
    return result;
  }

 private:
  bool usable(const graph::Edge& e) const {
    return degree_[static_cast<std::size_t>(e.u)] < d_ &&
           degree_[static_cast<std::size_t>(e.v)] < d_;
  }

  /// Look-ahead: can the picked forest plus the still-usable suffix edges
  /// connect everything? (Upper-bound relaxation: ignores that picking one
  /// suffix edge may saturate another's endpoint.)
  bool connectable(std::size_t idx) {
    RollbackDsu probe = dsu_;  // cheap: vectors copy, undo stack empty
    std::size_t merges = 0;
    const auto edges = g_.edges();
    std::size_t components = count_components();
    if (components == 1) return true;
    for (std::size_t i = idx; i < edges.size(); ++i) {
      if (!usable(edges[i])) continue;
      if (probe.unite(static_cast<std::size_t>(edges[i].u),
                      static_cast<std::size_t>(edges[i].v))) {
        ++merges;
        if (components - merges == 1) return true;
      }
    }
    return components - merges == 1;
  }

  std::size_t count_components() const {
    // picked_ edges form a forest on n vertices.
    return g_.vertex_count() - picked_;
  }

  bool recurse(std::size_t idx) {
    if (!ok_) return false;
    if (++nodes_ > budget_) {
      ok_ = false;
      return false;
    }
    if (picked_ + 1 == g_.vertex_count()) return true;
    const auto edges = g_.edges();
    if (idx >= edges.size()) return false;
    // Not enough edges left even ignoring every constraint?
    if (edges.size() - idx < g_.vertex_count() - 1 - picked_) return false;
    if (!connectable(idx)) return false;
    const graph::Edge& e = edges[idx];
    const auto u = static_cast<std::size_t>(e.u);
    const auto v = static_cast<std::size_t>(e.v);
    const bool can_pick =
        usable(e) && dsu_.find(u) != dsu_.find(v);
    if (can_pick) {
      dsu_.unite(u, v);
      ++degree_[u];
      ++degree_[v];
      ++picked_;
      if (recurse(idx + 1)) return true;
      --picked_;
      --degree_[u];
      --degree_[v];
      dsu_.rollback_one();
    }
    return recurse(idx + 1);
  }

  const graph::Graph& g_;
  int d_;
  std::uint64_t budget_;
  std::uint64_t nodes_ = 0;
  bool ok_ = true;
  RollbackDsu dsu_;
  std::vector<int> degree_;
  std::size_t picked_ = 0;
};

}  // namespace

Feasibility spanning_tree_with_degree(const graph::Graph& g, int d,
                                      std::uint64_t budget) {
  MDST_REQUIRE(d >= 0, "spanning_tree_with_degree: d >= 0");
  if (g.vertex_count() > 1) {
    MDST_REQUIRE(graph::is_connected(g), "graph must be connected");
  }
  if (d == 0) {
    Feasibility r;
    r.feasible = g.vertex_count() <= 1;
    return r;
  }
  DecisionSearch search(g, d, budget);
  return search.run();
}

ExactResult exact_mdst_degree(const graph::Graph& g, std::uint64_t budget) {
  ExactResult result;
  const std::size_t n = g.vertex_count();
  if (n <= 1) {
    result.optimal_degree = 0;
    return result;
  }
  if (n == 2) {
    result.optimal_degree = 1;
    return result;
  }
  MDST_REQUIRE(graph::is_connected(g), "exact: graph must be connected");
  // Upper bound from the FR(kFull) heuristic: Δ* ∈ {fr - 1, fr} when the
  // theorem applies; the linear scan below does not rely on that, it only
  // uses fr as a feasible upper bound.
  graph::RootedTree start = graph::bfs_tree(g, 0);
  const FrResult fr = furer_raghavachari(g, start, FrVariant::kFull);
  const int upper = fr.final_degree;
  const int lower = degree_lower_bound(g);
  for (int d = lower; d < upper; ++d) {
    const Feasibility f = spanning_tree_with_degree(g, d, budget);
    result.nodes_explored += f.nodes_explored;
    if (!f.proven) {
      result.proven = false;
      result.optimal_degree = upper;  // best known
      return result;
    }
    if (f.feasible) {
      result.optimal_degree = d;
      return result;
    }
  }
  result.optimal_degree = upper;
  return result;
}

}  // namespace mdst::core
