// Structured round annotations of the MDegST protocol.
//
// The root of each round emits checkpoints ("round started", "decide",
// "cut", "wave_done", "improve"/"subimprove", "terminate") that the census
// parser (engine.cpp) and the per-round benches diff for phase budgets.
// The seed formatted each checkpoint into a heap-allocated std::string on
// the hot path; they are now recorded as a sim::AnnotationTag — one kind
// byte plus numeric fields — and formatted only at read time by
// format_round_note(), which reproduces the seed strings byte-for-byte
// (tests/runtime/annotation_equivalence_test.cpp pins this). Virtual
// contexts (mock tests, replay tooling) still receive the formatted text
// through sim::annotate_tagged's string fallback.
#pragma once

#include <string>

#include "mdst/node.hpp"
#include "runtime/metrics.hpp"

namespace mdst::core {

/// Kinds of the root-side round checkpoints, stored in
/// sim::AnnotationTag::kind. 0 stays reserved for "no tag".
enum class RoundNote : std::uint8_t {
  kRoundStart = 1,  // "round=R"
  kDecide,          // "decide round=R k_all=<a> best=<b> target=<c>"
  kCut,             // "cut round=R k=<a>"
  kWaveDone,        // "wave_done round=R has_candidate=<a>"
  kImprove,         // "improve round=R k=<a>"
  kSubImprove,      // "subimprove round=R k=<a>"
  kTerminate,       // "terminate round=R reason=<StopReason a> k_all=<b>"
  kRecoverStart,    // "recover gen=R initiator=<a> cause=<b>"
  kRecoverInstall,  // "recover_install gen=R root=<a> children=<b>"
};

inline sim::AnnotationTag note_round_start(std::uint32_t round) {
  return {static_cast<std::uint8_t>(RoundNote::kRoundStart), round, 0, 0, 0};
}
inline sim::AnnotationTag note_decide(std::uint32_t round, int k_all, int best,
                                      graph::NodeName target) {
  return {static_cast<std::uint8_t>(RoundNote::kDecide), round, k_all, best,
          target};
}
inline sim::AnnotationTag note_cut(std::uint32_t round, int k) {
  return {static_cast<std::uint8_t>(RoundNote::kCut), round, k, 0, 0};
}
inline sim::AnnotationTag note_wave_done(std::uint32_t round,
                                         bool has_candidate) {
  return {static_cast<std::uint8_t>(RoundNote::kWaveDone), round,
          has_candidate ? 1 : 0, 0, 0};
}
inline sim::AnnotationTag note_improve(std::uint32_t round, int k) {
  return {static_cast<std::uint8_t>(RoundNote::kImprove), round, k, 0, 0};
}
inline sim::AnnotationTag note_sub_improve(std::uint32_t round, int k) {
  return {static_cast<std::uint8_t>(RoundNote::kSubImprove), round, k, 0, 0};
}
inline sim::AnnotationTag note_terminate(std::uint32_t round,
                                         StopReason reason, int k_all) {
  return {static_cast<std::uint8_t>(RoundNote::kTerminate), round,
          static_cast<std::int64_t>(reason), k_all, 0};
}
/// `cause`: 0 = dead parent (missed Pong), 1 = denied tree edge
/// (Pong{ok=false}), 2 = stalled wave (stall counter).
inline sim::AnnotationTag note_recover_start(std::uint32_t gen,
                                             graph::NodeName initiator,
                                             int cause) {
  return {static_cast<std::uint8_t>(RoundNote::kRecoverStart), gen, initiator,
          cause, 0};
}
inline sim::AnnotationTag note_recover_install(std::uint32_t gen,
                                               graph::NodeName root,
                                               std::uint32_t children) {
  return {static_cast<std::uint8_t>(RoundNote::kRecoverInstall), gen, root,
          children, 0};
}

/// Seed-style text of one tagged round note (byte-identical to the strings
/// the seed allocated per round). Precondition: tag.kind is a RoundNote.
std::string format_round_note(const sim::AnnotationTag& tag);

/// Text of any annotation: tagged notes format on demand, string-labelled
/// ones pass their label through.
std::string annotation_text(const sim::Annotation& annotation);

}  // namespace mdst::core
