#include "mdst/furer_raghavachari.hpp"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "graph/algorithms.hpp"
#include "graph/dsu.hpp"
#include "mdst/checker.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace mdst::core {
namespace {

/// Rebuild the rooted tree after exchanging edges: remove tree edge
/// (cut_a, cut_b), add graph edge (add_u, add_w). O(n); obviously correct,
/// which is what a baseline should optimise for.
graph::RootedTree apply_swap(const graph::RootedTree& tree,
                             graph::VertexId add_u, graph::VertexId add_w,
                             graph::VertexId cut_a, graph::VertexId cut_b) {
  const std::size_t n = tree.vertex_count();
  std::vector<std::vector<graph::VertexId>> adj(n);
  for (const graph::Edge& e : tree.edges()) {
    if ((e.u == std::min(cut_a, cut_b)) && (e.v == std::max(cut_a, cut_b))) {
      continue;
    }
    adj[static_cast<std::size_t>(e.u)].push_back(e.v);
    adj[static_cast<std::size_t>(e.v)].push_back(e.u);
  }
  adj[static_cast<std::size_t>(add_u)].push_back(add_w);
  adj[static_cast<std::size_t>(add_w)].push_back(add_u);
  const graph::VertexId root = tree.root();
  std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
  std::vector<char> seen(n, 0);
  std::vector<graph::VertexId> queue{root};
  seen[static_cast<std::size_t>(root)] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const graph::VertexId v = queue[head];
    for (const graph::VertexId w : adj[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = 1;
        parents[static_cast<std::size_t>(w)] = v;
        queue.push_back(w);
      }
    }
  }
  MDST_ASSERT(queue.size() == n, "swap disconnected the tree");
  return graph::RootedTree::from_parents(root, std::move(parents));
}

struct SwapPlan {
  graph::VertexId add_u, add_w;  // non-tree edge to insert
  graph::VertexId cut_a, cut_b;  // tree edge to delete (incident to target)
  graph::VertexId target;        // vertex whose degree drops
  int target_degree = 0;
  int end_degree = 0;            // max(deg add_u, deg add_w)
};

/// Best direct exchange: a non-tree edge (u,w) whose fundamental cycle
/// contains a vertex v with deg(v) >= max(deg u, deg w) + 2 — the paper's
/// local-optimality rule. Every such exchange strictly decreases Σ 3^deg.
/// Preference: highest target degree, then lowest endpoint degree.
std::optional<SwapPlan> find_direct_swap(const graph::Graph& g,
                                         const graph::RootedTree& tree) {
  std::optional<SwapPlan> best;
  for (const graph::Edge& e : g.edges()) {
    if (tree.has_tree_edge(e.u, e.v)) continue;
    const int du = static_cast<int>(tree.degree(e.u));
    const int dw = static_cast<int>(tree.degree(e.v));
    const int end_degree = std::max(du, dw);
    const std::vector<graph::VertexId> path = tree.path(e.u, e.v);
    graph::VertexId target = graph::kInvalidVertex;
    int target_degree = -1;
    std::size_t target_pos = 0;
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      const int d = static_cast<int>(tree.degree(path[i]));
      if (d > target_degree) {
        target_degree = d;
        target = path[i];
        target_pos = i;
      }
    }
    if (target == graph::kInvalidVertex || target_degree < end_degree + 2) {
      continue;
    }
    const SwapPlan plan{e.u,    e.v,           target,    path[target_pos - 1],
                        target, target_degree, end_degree};
    if (!best || plan.target_degree > best->target_degree ||
        (plan.target_degree == best->target_degree &&
         plan.end_degree < best->end_degree)) {
      best = plan;
    }
  }
  return best;
}

/// All exchanges that reduce a blocking degree-(k-1) vertex on the cycle of
/// an edge crossing two components of T - (S ∪ B), B = all degree-(k-1)
/// vertices. `safe_only` restricts to endpoint degrees <= k-3 (then the
/// exchange is itself Σ 3^deg-decreasing).
std::vector<SwapPlan> propagation_swaps(const graph::Graph& g,
                                        const graph::RootedTree& tree,
                                        bool safe_only) {
  std::vector<SwapPlan> out;
  const std::size_t n = tree.vertex_count();
  const int k = static_cast<int>(tree.max_degree());
  graph::Dsu dsu(n);
  std::vector<char> removed(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<int>(tree.degree(static_cast<graph::VertexId>(v))) >=
        k - 1) {
      removed[v] = 1;
    }
  }
  for (const graph::Edge& e : tree.edges()) {
    if (removed[static_cast<std::size_t>(e.u)] ||
        removed[static_cast<std::size_t>(e.v)]) {
      continue;
    }
    dsu.unite(static_cast<std::size_t>(e.u), static_cast<std::size_t>(e.v));
  }
  for (const graph::Edge& e : g.edges()) {
    if (removed[static_cast<std::size_t>(e.u)] ||
        removed[static_cast<std::size_t>(e.v)]) {
      continue;
    }
    if (dsu.same(static_cast<std::size_t>(e.u),
                 static_cast<std::size_t>(e.v))) {
      continue;
    }
    if (tree.has_tree_edge(e.u, e.v)) continue;
    const int du = static_cast<int>(tree.degree(e.u));
    const int dw = static_cast<int>(tree.degree(e.v));
    if (safe_only && std::max(du, dw) > k - 3) continue;
    const std::vector<graph::VertexId> path = tree.path(e.u, e.v);
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      const int d = static_cast<int>(tree.degree(path[i]));
      if (d < k - 1) continue;
      // Degree-k vertices on such a cycle would have been direct swaps.
      out.push_back(SwapPlan{e.u, e.v, path[i], path[i - 1], path[i], d,
                             std::max(du, dw)});
    }
  }
  return out;
}

/// Incremental tree fingerprint for cycle detection: XOR of per-edge hashes.
std::uint64_t tree_hash(const graph::RootedTree& tree) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const graph::Edge& e : tree.edges()) {
    std::uint64_t s = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                           e.u))
                       << 32) |
                      static_cast<std::uint32_t>(e.v);
    h ^= support::splitmix64(s);
  }
  return h;
}

}  // namespace

FrResult furer_raghavachari(const graph::Graph& g,
                            const graph::RootedTree& initial,
                            FrVariant variant) {
  MDST_REQUIRE(initial.spans(g), "furer_raghavachari: tree must span g");
  FrResult result{initial,
                  0,
                  0,
                  static_cast<int>(initial.max_degree()),
                  static_cast<int>(initial.max_degree()),
                  false};
  // Hard cap as a last-resort guard: the Σ 3^deg argument bounds the
  // Φ-decreasing swaps and the visited-set guard bounds the rest; the cap
  // exists so a logic bug degrades to a truthful (witness=false) result.
  const std::uint64_t budget =
      1024 + 64 * static_cast<std::uint64_t>(g.vertex_count()) *
                 static_cast<std::uint64_t>(g.edge_count() + 1);
  std::uint64_t steps = 0;
  std::unordered_set<std::uint64_t> visited;
  visited.insert(tree_hash(result.tree));

  while (result.tree.max_degree() > 2 && ++steps <= budget) {
    if (auto plan = find_direct_swap(g, result.tree)) {
      result.tree = apply_swap(result.tree, plan->add_u, plan->add_w,
                               plan->cut_a, plan->cut_b);
      visited.insert(tree_hash(result.tree));
      ++result.exchanges;
      continue;
    }
    if (variant == FrVariant::kPure) break;
    // Propagation through blocking degree-(k-1) vertices. Φ-decreasing ones
    // first; otherwise any exchange leading to a never-visited tree.
    bool applied = false;
    for (const bool safe_only : {true, false}) {
      auto plans = propagation_swaps(g, result.tree, safe_only);
      for (const SwapPlan& plan : plans) {
        graph::RootedTree next = apply_swap(result.tree, plan.add_u,
                                            plan.add_w, plan.cut_a, plan.cut_b);
        const std::uint64_t h = tree_hash(next);
        if (!safe_only && visited.count(h) > 0) continue;  // avoid cycles
        visited.insert(h);
        result.tree = std::move(next);
        ++result.propagations;
        applied = true;
        break;
      }
      if (applied) break;
    }
    if (!applied) {
      // No crossing edge at all (witness), or only cycle-inducing swaps.
      result.witness = propagation_swaps(g, result.tree, false).empty();
      break;
    }
  }
  if (result.tree.max_degree() <= 2) {
    result.witness = true;  // a Hamiltonian path is globally optimal
  } else if (variant == FrVariant::kFull && !result.witness) {
    // Loop may also exit on budget; recheck the stop certificate.
    result.witness = propagation_swaps(g, result.tree, false).empty() &&
                     !find_direct_swap(g, result.tree).has_value();
  }
  result.final_degree = static_cast<int>(result.tree.max_degree());
  return result;
}

}  // namespace mdst::core
