#include "mdst/checker.hpp"

#include <algorithm>

#include "graph/dsu.hpp"
#include "support/assert.hpp"

namespace mdst::core {
namespace {

/// Component labels of the forest obtained by deleting `removed` vertices
/// from the tree. Removed vertices get label -1.
std::vector<int> forest_components(const graph::RootedTree& tree,
                                   const std::vector<char>& removed) {
  const std::size_t n = tree.vertex_count();
  graph::Dsu dsu(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (removed[v]) continue;
    const graph::VertexId p = tree.parent(static_cast<graph::VertexId>(v));
    if (p == graph::kInvalidVertex || removed[static_cast<std::size_t>(p)]) {
      continue;
    }
    dsu.unite(v, static_cast<std::size_t>(p));
  }
  std::vector<int> label(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    if (!removed[v]) label[v] = static_cast<int>(dsu.find(v));
  }
  return label;
}

}  // namespace

bool vertex_improvable(const graph::Graph& g, const graph::RootedTree& tree,
                       graph::VertexId p) {
  MDST_REQUIRE(g.valid_vertex(p), "vertex_improvable: bad vertex");
  const std::size_t n = g.vertex_count();
  const int k = static_cast<int>(tree.degree(p));
  std::vector<char> removed(n, 0);
  removed[static_cast<std::size_t>(p)] = 1;
  const std::vector<int> comp = forest_components(tree, removed);
  for (const graph::Edge& e : g.edges()) {
    if (e.u == p || e.v == p) continue;
    if (comp[static_cast<std::size_t>(e.u)] ==
        comp[static_cast<std::size_t>(e.v)]) {
      continue;
    }
    const int du = static_cast<int>(tree.degree(e.u));
    const int dv = static_cast<int>(tree.degree(e.v));
    if (du <= k - 2 && dv <= k - 2) return true;
  }
  return false;
}

LocalOptReport local_optimality(const graph::Graph& g,
                                const graph::RootedTree& tree) {
  LocalOptReport report;
  report.max_degree = static_cast<int>(tree.max_degree());
  for (const graph::VertexId p : tree.max_degree_vertices()) {
    if (vertex_improvable(g, tree, p)) {
      report.improvable.push_back(p);
    } else {
      report.blocked.push_back(p);
    }
  }
  return report;
}

std::size_t crossing_edges_all_b(const graph::Graph& g,
                                 const graph::RootedTree& tree) {
  const std::size_t n = g.vertex_count();
  const std::size_t k = tree.max_degree();
  std::vector<char> removed(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t d = tree.degree(static_cast<graph::VertexId>(v));
    if (d >= k - 1 && k >= 1) removed[v] = 1;
  }
  const std::vector<int> comp = forest_components(tree, removed);
  std::size_t crossing = 0;
  for (const graph::Edge& e : g.edges()) {
    const int cu = comp[static_cast<std::size_t>(e.u)];
    const int cv = comp[static_cast<std::size_t>(e.v)];
    if (cu == -1 || cv == -1) continue;
    if (cu != cv) ++crossing;
  }
  return crossing;
}

bool theorem_witness_all_b(const graph::Graph& g,
                           const graph::RootedTree& tree) {
  return crossing_edges_all_b(g, tree) == 0;
}

}  // namespace mdst::core
