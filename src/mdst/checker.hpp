// Global invariant checker — the oracle used by tests and benches.
//
// The distributed nodes only ever see local state; this module owns the
// "bird's eye" validation that the union of their views has the properties
// the paper claims:
//   * the structure is a spanning tree of g;
//   * local optimality: a vertex p is *blocked* if no graph edge joins two
//     different components of T - p with both endpoint tree-degrees
//     <= deg(p) - 2 (the improvement precondition of §3.2.4/§3.2.5);
//   * the Fürer–Raghavachari Theorem-1 witness: removing S (all max-degree
//     vertices) together with a choice of B ⊆ {degree k-1} leaves a forest
//     with no crossing edges.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"

namespace mdst::core {

struct LocalOptReport {
  int max_degree = 0;
  /// Max-degree vertices that still admit an improving exchange.
  std::vector<graph::VertexId> improvable;
  /// Max-degree vertices with no improving exchange.
  std::vector<graph::VertexId> blocked;

  bool all_blocked() const { return improvable.empty(); }
  bool any_blocked() const { return !blocked.empty(); }
};

/// True iff `p` admits an improving exchange in `tree` (see above).
bool vertex_improvable(const graph::Graph& g, const graph::RootedTree& tree,
                       graph::VertexId p);

/// Classify every max-degree vertex of `tree`.
LocalOptReport local_optimality(const graph::Graph& g,
                                const graph::RootedTree& tree);

/// Theorem-1 witness check with B = all degree-(k-1) vertices: returns true
/// iff no graph edge connects two different components of
/// T - (S ∪ B). When true, k <= Δ* + 1 is guaranteed.
bool theorem_witness_all_b(const graph::Graph& g, const graph::RootedTree& tree);

/// Count of edges crossing components of T - S - B for reporting.
std::size_t crossing_edges_all_b(const graph::Graph& g,
                                 const graph::RootedTree& tree);

}  // namespace mdst::core
