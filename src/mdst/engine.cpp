#include "mdst/engine.hpp"

#include <algorithm>
#include <utility>

#include "graph/algorithms.hpp"
#include "mdst/annotations.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"

namespace mdst::core {
namespace {

using Sim = sim::Simulator<Protocol>;
using SimNode = Protocol::Node;

graph::RootedTree extract_tree(const Sim& simulation) {
  const std::size_t n = simulation.node_count();
  std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
  sim::NodeId root = sim::kNoNode;
  for (std::size_t v = 0; v < n; ++v) {
    const SimNode& node = simulation.node(static_cast<sim::NodeId>(v));
    MDST_ASSERT(node.done(), "protocol ended with an undone node");
    if (node.parent() == sim::kNoNode) {
      MDST_ASSERT(root == sim::kNoNode, "two roots after termination");
      root = static_cast<sim::NodeId>(v);
    } else {
      parents[v] = node.parent();
    }
  }
  MDST_ASSERT(root != sim::kNoNode, "no root after termination");
  graph::RootedTree tree =
      graph::RootedTree::from_parents(root, std::move(parents));
  for (std::size_t v = 0; v < n; ++v) {
    const SimNode& node = simulation.node(static_cast<sim::NodeId>(v));
    auto kids = node.children();
    std::sort(kids.begin(), kids.end());
    auto expected = tree.children(static_cast<sim::NodeId>(v));
    std::sort(expected.begin(), expected.end());
    MDST_ASSERT(kids == expected, "child/parent views disagree");
  }
  return tree;
}

/// Mid-run consistency probe used by check_each_round: right after a Detach
/// delivery no structural operation is in flight, so the union of local
/// views must form a spanning tree of g.
void validate_midrun(const Sim& simulation, const graph::Graph& g) {
  const std::size_t n = simulation.node_count();
  std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
  sim::NodeId root = sim::kNoNode;
  for (std::size_t v = 0; v < n; ++v) {
    const SimNode& node = simulation.node(static_cast<sim::NodeId>(v));
    if (node.parent() == sim::kNoNode) {
      MDST_ASSERT(root == sim::kNoNode, "mid-run: two roots");
      root = static_cast<sim::NodeId>(v);
    } else {
      parents[v] = node.parent();
    }
  }
  MDST_ASSERT(root != sim::kNoNode, "mid-run: no root");
  const graph::RootedTree tree =
      graph::RootedTree::from_parents(root, std::move(parents));
  MDST_ASSERT(tree.spans(g), "mid-run: not a spanning tree of g");
}

/// One classified mark: what the census pass needs, read off the structured
/// tag when present (the simulator path — no string parsing at all) or
/// parsed from the seed-style label (legacy string annotations).
struct MarkView {
  RoundNote kind = RoundNote::kRoundStart;
  std::uint32_t round = 0;  // meaningful for kRoundStart
  int k_all = -1;           // meaningful for kDecide
  bool recognized = false;
};

MarkView classify(const RoundMark& mark) {
  MarkView view;
  if (mark.tagged) {
    view.kind = static_cast<RoundNote>(mark.tag.kind);
    view.round = mark.tag.round;
    if (view.kind == RoundNote::kDecide) {
      view.k_all = static_cast<int>(mark.tag.a);
    }
    view.recognized = true;
    return view;
  }
  const auto fields = support::split_whitespace(mark.label);
  if (fields.empty()) return view;
  if (support::starts_with(fields[0], "round=")) {
    view.kind = RoundNote::kRoundStart;
    view.round = static_cast<std::uint32_t>(std::stoul(fields[0].substr(6)));
    view.recognized = true;
  } else if (fields[0] == "decide") {
    view.kind = RoundNote::kDecide;
    for (const std::string& field : fields) {
      if (support::starts_with(field, "k_all=")) {
        view.k_all = std::stoi(field.substr(6));
      }
    }
    view.recognized = true;
  } else if (fields[0] == "cut") {
    view.kind = RoundNote::kCut;
    view.recognized = true;
  } else if (fields[0] == "wave_done") {
    view.kind = RoundNote::kWaveDone;
    view.recognized = true;
  } else if (fields[0] == "improve") {
    view.kind = RoundNote::kImprove;
    view.recognized = true;
  } else if (fields[0] == "subimprove") {
    view.kind = RoundNote::kSubImprove;
    view.recognized = true;
  } else if (fields[0] == "terminate") {
    view.kind = RoundNote::kTerminate;
    view.recognized = true;
  }
  return view;
}

/// Single pass over the marks: derive the per-round phase census *and* the
/// round → marks index (each round's marks are one contiguous block, opened
/// by its kRoundStart). Consumers look rounds up via
/// RunResult::marks_of_round/stats_of_round instead of rescanning.
std::pair<std::vector<RoundStats>, std::vector<RoundMarkSpan>>
derive_round_census(const std::vector<RoundMark>& marks) {
  // Annotation sequence per round:
  //   round=R | decide ... | cut ... | wave_done ... | improve ... (opt)
  // Message counters at each mark let us diff the phases. "decide" is
  // always emitted; terminal rounds stop after "decide" or "wave_done".
  std::vector<RoundStats> rounds;
  std::vector<RoundMarkSpan> index;
  RoundStats current;
  std::uint64_t at_round_start = 0;
  std::uint64_t at_decide = 0;
  std::uint64_t at_cut = 0;
  std::uint64_t at_wave = 0;
  bool in_round = false;
  auto flush = [&](std::uint64_t end_messages) {
    if (!in_round) return;
    if (at_decide >= at_round_start) {
      current.search_msgs = at_decide - at_round_start;
    }
    if (at_cut > 0) {
      current.move_msgs = at_cut - at_decide;
      if (at_wave > 0) {
        current.wave_msgs = at_wave - at_cut;
        current.choose_msgs = end_messages - at_wave;
      }
    }
    rounds.push_back(current);
    in_round = false;
  };
  for (std::size_t i = 0; i < marks.size(); ++i) {
    const RoundMark& mark = marks[i];
    const MarkView view = classify(mark);
    if (!view.recognized) continue;
    if (view.kind == RoundNote::kRoundStart) {
      flush(mark.total_messages);
      current = RoundStats{};
      current.round = view.round;
      at_round_start = mark.total_messages;
      at_decide = at_cut = at_wave = 0;
      in_round = true;
      index.push_back({view.round, static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(i + 1)});
      continue;
    }
    if (!index.empty()) index.back().end = static_cast<std::uint32_t>(i + 1);
    switch (view.kind) {
      case RoundNote::kDecide:
        at_decide = mark.total_messages;
        current.k = view.k_all;
        break;
      case RoundNote::kCut:
        at_cut = mark.total_messages;
        break;
      case RoundNote::kWaveDone:
        at_wave = mark.total_messages;
        break;
      case RoundNote::kImprove:
        current.improved = true;
        break;
      case RoundNote::kSubImprove:
        break;  // sub-round detail; not part of the root census row
      case RoundNote::kTerminate:
        flush(mark.total_messages);
        break;
      case RoundNote::kRoundStart:
        break;  // handled above
    }
  }
  // A run always ends with a terminate mark, which flushed the last round.
  return {std::move(rounds), std::move(index)};
}

}  // namespace

std::span<const RoundMark> RunResult::marks_of_round(
    std::uint32_t round) const {
  const auto it = std::lower_bound(
      round_mark_index.begin(), round_mark_index.end(), round,
      [](const RoundMarkSpan& s, std::uint32_t r) { return s.round < r; });
  if (it == round_mark_index.end() || it->round != round) return {};
  return std::span<const RoundMark>(marks.data() + it->begin,
                                    it->end - it->begin);
}

const RoundStats* RunResult::stats_of_round(std::uint32_t round) const {
  const auto it = std::lower_bound(
      round_stats.begin(), round_stats.end(), round,
      [](const RoundStats& s, std::uint32_t r) { return s.round < r; });
  if (it == round_stats.end() || it->round != round) return nullptr;
  return &*it;
}

RunResult run_mdst(const graph::Graph& g, const graph::RootedTree& initial,
                   const Options& options, const sim::SimConfig& sim_config) {
  MDST_REQUIRE(initial.spans(g), "initial tree must span g");
  MDST_REQUIRE(graph::is_connected(g), "graph must be connected");
  // Safety net for the trivially-copyable BoxedCandidate convention
  // (candidates.hpp): every slot allocated by a BfsBack sender must be
  // released by exactly one handle_bfs_back. A completed run is balanced.
  const std::size_t boxed_before = CandidatePool::local().in_use();

  Sim simulation(
      g,
      [&](const sim::NodeEnv& env) {
        const graph::VertexId v = env.id;
        const graph::VertexId parent = initial.parent(v);
        return SimNode(env, parent, initial.children(v), options);
      },
      sim_config);

  if (options.check_each_round) {
    const std::size_t detach_index =
        static_cast<std::size_t>(MessageType::kDetach);
    std::uint64_t detaches_seen = 0;
    while (simulation.step()) {
      const std::uint64_t detaches =
          simulation.metrics().messages_of_type(detach_index);
      if (detaches != detaches_seen) {
        detaches_seen = detaches;
        validate_midrun(simulation, g);
      }
    }
  } else {
    simulation.run();
  }

  MDST_ASSERT(CandidatePool::local().in_use() == boxed_before,
              "boxed-candidate pool imbalance: a BfsBack box leaked or was "
              "double-released");

  RunResult result;
  result.tree = extract_tree(simulation);
  result.metrics = simulation.metrics();
  result.initial_degree = static_cast<int>(initial.max_degree());
  result.final_degree = static_cast<int>(result.tree.max_degree());
  MDST_ASSERT(result.tree.spans(g), "final structure must span g");

  std::uint32_t rounds = 0;
  std::uint64_t improvements = 0;
  for (std::size_t v = 0; v < simulation.node_count(); ++v) {
    const SimNode& node = simulation.node(static_cast<sim::NodeId>(v));
    rounds = std::max(rounds, node.rounds_started());
    improvements += node.improvements_applied();
    if (node.stop_reason() != StopReason::kNotStopped) {
      MDST_ASSERT(result.stop_reason == StopReason::kNotStopped,
                  "two nodes claim to have stopped the run");
      result.stop_reason = node.stop_reason();
    }
  }
  MDST_ASSERT(result.stop_reason != StopReason::kNotStopped,
              "no stop reason recorded");
  result.rounds = rounds;
  result.improvements = improvements;
  if (options.max_rounds != 0) {
    MDST_ASSERT(result.rounds <= options.max_rounds,
                "round budget exceeded");
  }

  // Read-time formatting: the protocol recorded structured tags (no string
  // was built during the run); the seed-style label text materializes here,
  // once per mark, alongside the structured fields.
  result.marks.reserve(result.metrics.annotations().size());
  for (const sim::Annotation& a : result.metrics.annotations()) {
    result.marks.push_back({a.time, a.total_messages, a.max_causal_depth,
                            annotation_text(a), a.tag, a.tagged});
  }
  auto census = derive_round_census(result.marks);
  result.round_stats = std::move(census.first);
  result.round_mark_index = std::move(census.second);
  return result;
}

}  // namespace mdst::core
