#include "mdst/engine.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"

namespace mdst::core {
namespace {

using Sim = sim::Simulator<Protocol>;
using SimNode = Protocol::Node;

graph::RootedTree extract_tree(const Sim& simulation) {
  const std::size_t n = simulation.node_count();
  std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
  sim::NodeId root = sim::kNoNode;
  for (std::size_t v = 0; v < n; ++v) {
    const SimNode& node = simulation.node(static_cast<sim::NodeId>(v));
    MDST_ASSERT(node.done(), "protocol ended with an undone node");
    if (node.parent() == sim::kNoNode) {
      MDST_ASSERT(root == sim::kNoNode, "two roots after termination");
      root = static_cast<sim::NodeId>(v);
    } else {
      parents[v] = node.parent();
    }
  }
  MDST_ASSERT(root != sim::kNoNode, "no root after termination");
  graph::RootedTree tree =
      graph::RootedTree::from_parents(root, std::move(parents));
  for (std::size_t v = 0; v < n; ++v) {
    const SimNode& node = simulation.node(static_cast<sim::NodeId>(v));
    auto kids = node.children();
    std::sort(kids.begin(), kids.end());
    auto expected = tree.children(static_cast<sim::NodeId>(v));
    std::sort(expected.begin(), expected.end());
    MDST_ASSERT(kids == expected, "child/parent views disagree");
  }
  return tree;
}

/// Mid-run consistency probe used by check_each_round: right after a Detach
/// delivery no structural operation is in flight, so the union of local
/// views must form a spanning tree of g.
void validate_midrun(const Sim& simulation, const graph::Graph& g) {
  const std::size_t n = simulation.node_count();
  std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
  sim::NodeId root = sim::kNoNode;
  for (std::size_t v = 0; v < n; ++v) {
    const SimNode& node = simulation.node(static_cast<sim::NodeId>(v));
    if (node.parent() == sim::kNoNode) {
      MDST_ASSERT(root == sim::kNoNode, "mid-run: two roots");
      root = static_cast<sim::NodeId>(v);
    } else {
      parents[v] = node.parent();
    }
  }
  MDST_ASSERT(root != sim::kNoNode, "mid-run: no root");
  const graph::RootedTree tree =
      graph::RootedTree::from_parents(root, std::move(parents));
  MDST_ASSERT(tree.spans(g), "mid-run: not a spanning tree of g");
}

std::vector<RoundStats> derive_round_stats(const std::vector<RoundMark>& marks) {
  // Annotation sequence per round:
  //   round=R | decide ... | cut ... | wave_done ... | improve ... (opt)
  // Message counters at each mark let us diff the phases. The "cut" mark is
  // missing when the root did not move and had no MoveRoot... (it is always
  // emitted by begin_cut); "decide" is always emitted; terminal rounds stop
  // after "decide" or "wave_done".
  std::vector<RoundStats> rounds;
  RoundStats current;
  std::uint64_t at_round_start = 0;
  std::uint64_t at_decide = 0;
  std::uint64_t at_cut = 0;
  std::uint64_t at_wave = 0;
  bool in_round = false;
  auto flush = [&](std::uint64_t end_messages) {
    if (!in_round) return;
    if (at_decide >= at_round_start) {
      current.search_msgs = at_decide - at_round_start;
    }
    if (at_cut > 0) {
      current.move_msgs = at_cut - at_decide;
      if (at_wave > 0) {
        current.wave_msgs = at_wave - at_cut;
        current.choose_msgs = end_messages - at_wave;
      }
    }
    rounds.push_back(current);
    in_round = false;
  };
  for (const RoundMark& mark : marks) {
    const auto fields = support::split_whitespace(mark.label);
    if (fields.empty()) continue;
    if (support::starts_with(fields[0], "round=")) {
      flush(mark.total_messages);
      current = RoundStats{};
      current.round =
          static_cast<std::uint32_t>(std::stoul(fields[0].substr(6)));
      at_round_start = mark.total_messages;
      at_decide = at_cut = at_wave = 0;
      in_round = true;
    } else if (fields[0] == "decide") {
      at_decide = mark.total_messages;
      for (const std::string& f : fields) {
        if (support::starts_with(f, "k_all=")) {
          current.k = std::stoi(f.substr(6));
        }
      }
    } else if (fields[0] == "cut") {
      at_cut = mark.total_messages;
    } else if (fields[0] == "wave_done") {
      at_wave = mark.total_messages;
    } else if (fields[0] == "improve") {
      current.improved = true;
    } else if (fields[0] == "terminate") {
      flush(mark.total_messages);
    }
  }
  // A run always ends with a terminate mark, which flushed the last round.
  return rounds;
}

}  // namespace

RunResult run_mdst(const graph::Graph& g, const graph::RootedTree& initial,
                   const Options& options, const sim::SimConfig& sim_config) {
  MDST_REQUIRE(initial.spans(g), "initial tree must span g");
  MDST_REQUIRE(graph::is_connected(g), "graph must be connected");
  // Safety net for the trivially-copyable BoxedCandidate convention
  // (candidates.hpp): every slot allocated by a BfsBack sender must be
  // released by exactly one handle_bfs_back. A completed run is balanced.
  const std::size_t boxed_before = CandidatePool::local().in_use();

  Sim simulation(
      g,
      [&](const sim::NodeEnv& env) {
        const graph::VertexId v = env.id;
        const graph::VertexId parent = initial.parent(v);
        return SimNode(env, parent, initial.children(v), options);
      },
      sim_config);

  if (options.check_each_round) {
    const std::size_t detach_index =
        static_cast<std::size_t>(MessageType::kDetach);
    std::uint64_t detaches_seen = 0;
    while (simulation.step()) {
      const std::uint64_t detaches =
          simulation.metrics().messages_of_type(detach_index);
      if (detaches != detaches_seen) {
        detaches_seen = detaches;
        validate_midrun(simulation, g);
      }
    }
  } else {
    simulation.run();
  }

  MDST_ASSERT(CandidatePool::local().in_use() == boxed_before,
              "boxed-candidate pool imbalance: a BfsBack box leaked or was "
              "double-released");

  RunResult result;
  result.tree = extract_tree(simulation);
  result.metrics = simulation.metrics();
  result.initial_degree = static_cast<int>(initial.max_degree());
  result.final_degree = static_cast<int>(result.tree.max_degree());
  MDST_ASSERT(result.tree.spans(g), "final structure must span g");

  std::uint32_t rounds = 0;
  std::uint64_t improvements = 0;
  for (std::size_t v = 0; v < simulation.node_count(); ++v) {
    const SimNode& node = simulation.node(static_cast<sim::NodeId>(v));
    rounds = std::max(rounds, node.rounds_started());
    improvements += node.improvements_applied();
    if (node.stop_reason() != StopReason::kNotStopped) {
      MDST_ASSERT(result.stop_reason == StopReason::kNotStopped,
                  "two nodes claim to have stopped the run");
      result.stop_reason = node.stop_reason();
    }
  }
  MDST_ASSERT(result.stop_reason != StopReason::kNotStopped,
              "no stop reason recorded");
  result.rounds = rounds;
  result.improvements = improvements;
  if (options.max_rounds != 0) {
    MDST_ASSERT(result.rounds <= options.max_rounds,
                "round budget exceeded");
  }

  for (const sim::Annotation& a : result.metrics.annotations()) {
    result.marks.push_back({a.time, a.total_messages, a.max_causal_depth,
                            a.label});
  }
  result.round_stats = derive_round_stats(result.marks);
  return result;
}

}  // namespace mdst::core
