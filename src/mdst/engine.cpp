#include "mdst/engine.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "graph/algorithms.hpp"
#include "mdst/annotations.hpp"
#include "runtime/sharded_sim.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"

namespace mdst::core {
namespace {

using Sim = sim::Simulator<Protocol>;
using ShardedSim = sim::ShardedSimulator<ShardProtocol>;
using SimNode = Protocol::Node;

// The post-run helpers are templated over the engine (classic Simulator or
// ShardedSimulator): both expose the same node_count/node/crashed surface,
// and the node accessors they read are context-independent.

template <typename SimT>
graph::RootedTree extract_tree(const SimT& simulation) {
  const std::size_t n = simulation.node_count();
  std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
  sim::NodeId root = sim::kNoNode;
  for (std::size_t v = 0; v < n; ++v) {
    const auto& node = simulation.node(static_cast<sim::NodeId>(v));
    MDST_ASSERT(node.done(), "protocol ended with an undone node");
    if (node.parent() == sim::kNoNode) {
      MDST_ASSERT(root == sim::kNoNode, "two roots after termination");
      root = static_cast<sim::NodeId>(v);
    } else {
      parents[v] = node.parent();
    }
  }
  MDST_ASSERT(root != sim::kNoNode, "no root after termination");
  graph::RootedTree tree =
      graph::RootedTree::from_parents(root, std::move(parents));
  for (std::size_t v = 0; v < n; ++v) {
    const auto& node = simulation.node(static_cast<sim::NodeId>(v));
    std::vector<graph::VertexId> kids(node.children().begin(),
                                      node.children().end());
    std::sort(kids.begin(), kids.end());
    auto expected = tree.children(static_cast<sim::NodeId>(v));
    std::sort(expected.begin(), expected.end());
    MDST_ASSERT(kids == expected, "child/parent views disagree");
  }
  return tree;
}

/// Mid-run consistency probe used by check_each_round: right after a Detach
/// delivery no structural operation is in flight, so the union of local
/// views must form a spanning tree of g.
void validate_midrun(const Sim& simulation, const graph::Graph& g) {
  const std::size_t n = simulation.node_count();
  std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
  sim::NodeId root = sim::kNoNode;
  for (std::size_t v = 0; v < n; ++v) {
    const SimNode& node = simulation.node(static_cast<sim::NodeId>(v));
    if (node.parent() == sim::kNoNode) {
      MDST_ASSERT(root == sim::kNoNode, "mid-run: two roots");
      root = static_cast<sim::NodeId>(v);
    } else {
      parents[v] = node.parent();
    }
  }
  MDST_ASSERT(root != sim::kNoNode, "mid-run: no root");
  const graph::RootedTree tree =
      graph::RootedTree::from_parents(root, std::move(parents));
  MDST_ASSERT(tree.spans(g), "mid-run: not a spanning tree of g");
}

/// One classified mark: what the census pass needs, read off the structured
/// tag when present (the simulator path — no string parsing at all) or
/// parsed from the seed-style label (legacy string annotations).
struct MarkView {
  RoundNote kind = RoundNote::kRoundStart;
  std::uint32_t round = 0;  // meaningful for kRoundStart (tagged: all kinds)
  int k_all = -1;           // meaningful for kDecide
  std::int64_t a = 0;       // the tag's first field (kCut: the cut k)
  bool recognized = false;
};

MarkView classify(const RoundMark& mark) {
  MarkView view;
  if (mark.tagged) {
    view.kind = static_cast<RoundNote>(mark.tag.kind);
    view.round = mark.tag.round;
    view.a = mark.tag.a;
    if (view.kind == RoundNote::kDecide) {
      view.k_all = static_cast<int>(mark.tag.a);
    }
    view.recognized = true;
    return view;
  }
  const auto fields = support::split_whitespace(mark.label);
  if (fields.empty()) return view;
  if (support::starts_with(fields[0], "round=")) {
    view.kind = RoundNote::kRoundStart;
    view.round = static_cast<std::uint32_t>(std::stoul(fields[0].substr(6)));
    view.recognized = true;
  } else if (fields[0] == "decide") {
    view.kind = RoundNote::kDecide;
    for (const std::string& field : fields) {
      if (support::starts_with(field, "k_all=")) {
        view.k_all = std::stoi(field.substr(6));
      }
    }
    view.recognized = true;
  } else if (fields[0] == "cut") {
    view.kind = RoundNote::kCut;
    for (const std::string& field : fields) {
      if (support::starts_with(field, "k=")) {
        view.a = std::stoi(field.substr(2));
      }
    }
    view.recognized = true;
  } else if (fields[0] == "wave_done") {
    view.kind = RoundNote::kWaveDone;
    view.recognized = true;
  } else if (fields[0] == "improve") {
    view.kind = RoundNote::kImprove;
    view.recognized = true;
  } else if (fields[0] == "subimprove") {
    view.kind = RoundNote::kSubImprove;
    view.recognized = true;
  } else if (fields[0] == "terminate") {
    view.kind = RoundNote::kTerminate;
    view.recognized = true;
  }
  return view;
}

/// Single pass over the marks: derive the per-round phase census *and* the
/// round → marks index (each round's marks are one contiguous block, opened
/// by its kRoundStart). Consumers look rounds up via
/// RunResult::marks_of_round/stats_of_round instead of rescanning.
std::pair<std::vector<RoundStats>, std::vector<RoundMarkSpan>>
derive_round_census(const std::vector<RoundMark>& marks) {
  // Annotation sequence per round:
  //   round=R | decide ... | cut ... | wave_done ... | improve ... (opt)
  // Message counters at each mark let us diff the phases. "decide" is
  // always emitted; terminal rounds stop after "decide" or "wave_done".
  std::vector<RoundStats> rounds;
  std::vector<RoundMarkSpan> index;
  RoundStats current;
  std::uint64_t at_round_start = 0;
  std::uint64_t at_decide = 0;
  std::uint64_t at_cut = 0;
  std::uint64_t at_wave = 0;
  bool in_round = false;
  auto flush = [&](std::uint64_t end_messages) {
    if (!in_round) return;
    if (at_decide >= at_round_start) {
      current.search_msgs = at_decide - at_round_start;
    }
    if (at_cut > 0) {
      current.move_msgs = at_cut - at_decide;
      if (at_wave > 0) {
        current.wave_msgs = at_wave - at_cut;
        current.choose_msgs = end_messages - at_wave;
      }
    }
    rounds.push_back(current);
    in_round = false;
  };
  for (std::size_t i = 0; i < marks.size(); ++i) {
    const RoundMark& mark = marks[i];
    const MarkView view = classify(mark);
    if (!view.recognized) continue;
    if (view.kind == RoundNote::kRoundStart) {
      flush(mark.total_messages);
      current = RoundStats{};
      current.round = view.round;
      at_round_start = mark.total_messages;
      at_decide = at_cut = at_wave = 0;
      in_round = true;
      index.push_back({view.round, static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(i + 1)});
      continue;
    }
    if (!index.empty()) index.back().end = static_cast<std::uint32_t>(i + 1);
    switch (view.kind) {
      case RoundNote::kDecide:
        at_decide = mark.total_messages;
        current.k = view.k_all;
        break;
      case RoundNote::kCut:
        at_cut = mark.total_messages;
        break;
      case RoundNote::kWaveDone:
        at_wave = mark.total_messages;
        break;
      case RoundNote::kImprove:
        current.improved = true;
        break;
      case RoundNote::kSubImprove:
        break;  // sub-round detail; not part of the root census row
      case RoundNote::kTerminate:
        flush(mark.total_messages);
        break;
      case RoundNote::kRecoverStart:
      case RoundNote::kRecoverInstall:
        // Recovery interventions sit between rounds; the phase census rows
        // describe only the normal improvement waves.
        break;
      case RoundNote::kRoundStart:
        break;  // handled above
    }
  }
  // A run always ends with a terminate mark, which flushed the last round.
  return {std::move(rounds), std::move(index)};
}

/// Flight-recorder ring: one convergence row per round, diffed off the
/// cumulative meters the marks carry. A round closes at the next round's
/// start mark or the terminate mark; a round left open (wedged run, or the
/// annotation ring evicting the closer) closes at its last surviving mark.
std::vector<sim::RoundTelemetry> derive_round_telemetry(
    const std::vector<RoundMark>& marks) {
  std::vector<sim::RoundTelemetry> rounds;
  sim::RoundTelemetry current;
  std::uint64_t msg_base = 0;
  std::uint64_t bits_base = 0;
  bool in_round = false;
  auto close = [&](const RoundMark& mark) {
    if (!in_round) return;
    current.messages = mark.total_messages - msg_base;
    current.bits = mark.total_bits - bits_base;
    current.causal_depth = mark.max_causal_depth;
    current.in_flight_peak = std::max(current.in_flight_peak, mark.in_flight);
    current.time_end = mark.time;
    rounds.push_back(current);
    in_round = false;
  };
  const RoundMark* last_seen = nullptr;
  for (const RoundMark& mark : marks) {
    const MarkView view = classify(mark);
    if (!view.recognized) continue;
    if (view.kind == RoundNote::kRoundStart) {
      close(mark);
      current = sim::RoundTelemetry{};
      current.round = view.round;
      current.time_start = mark.time;
      current.in_flight_peak = mark.in_flight;
      msg_base = mark.total_messages;
      bits_base = mark.total_bits;
      in_round = true;
      last_seen = &mark;
      continue;
    }
    last_seen = &mark;
    if (!in_round) continue;  // ring evicted this round's start mark
    current.in_flight_peak = std::max(current.in_flight_peak, mark.in_flight);
    switch (view.kind) {
      case RoundNote::kDecide:
        current.k = view.k_all;
        break;
      case RoundNote::kCut:
        // Cutting the k tree edges of the target leaves k neighbor
        // fragments plus the target itself.
        current.fragments = view.a + 1;
        break;
      case RoundNote::kWaveDone:
      case RoundNote::kSubImprove:
        ++current.waves;
        if (view.kind == RoundNote::kSubImprove) current.improved = true;
        break;
      case RoundNote::kImprove:
        current.improved = true;
        break;
      case RoundNote::kTerminate:
        close(mark);
        break;
      case RoundNote::kRecoverStart:
        // A detection mid-round ends that round's telemetry row where the
        // run actually stopped making wave progress.
        close(mark);
        break;
      case RoundNote::kRecoverInstall:
        break;  // the re-started round opens its own row
      case RoundNote::kRoundStart:
        break;  // handled above
    }
  }
  if (in_round && last_seen != nullptr) close(*last_seen);
  return rounds;
}

/// Phase in progress after a given checkpoint kind — the wedge report's
/// "where progress stopped" label.
const char* phase_after(RoundNote kind) {
  switch (kind) {
    case RoundNote::kRoundStart: return "search";
    case RoundNote::kDecide: return "move";
    case RoundNote::kCut: return "wave";
    case RoundNote::kWaveDone: return "choose";
    case RoundNote::kImprove:
    case RoundNote::kSubImprove: return "improve";
    case RoundNote::kTerminate: return "terminated";
    case RoundNote::kRecoverStart: return "recovering";
    case RoundNote::kRecoverInstall: return "search";  // begin_round follows
  }
  return "none";
}

/// Wedge forensics: snapshot the settled post-run state (queue drained or
/// discarded) into result.wedge. Assert-free for the same reason
/// evaluate_adverse_run is — forensics must not depend on check level.
template <typename SimT>
void build_wedge_report(const SimT& simulation, bool time_capped,
                        RunResult& result) {
  sim::WedgeReport& report = result.wedge;
  report.captured = true;
  report.time_capped = time_capped;
  const std::size_t n = simulation.node_count();
  report.nodes = n;
  std::uint64_t roles[4] = {0, 0, 0, 0};  // idle, root, sub_root, member
  for (std::size_t v = 0; v < n; ++v) {
    const auto& node = simulation.node(static_cast<sim::NodeId>(v));
    if (simulation.crashed(static_cast<sim::NodeId>(v)) || node.crashed()) {
      ++report.crashed;
      continue;
    }
    if (node.parent() == sim::kNoNode) {
      ++report.live_root_count;
      if (report.live_roots.size() < sim::WedgeReport::kMaxLiveRoots) {
        report.live_roots.push_back(static_cast<sim::NodeId>(v));
      }
    }
    if (node.done()) {
      ++report.done;
      continue;
    }
    ++report.live_undone;
    const std::string_view role = node.role_name();
    if (role == "idle") ++roles[0];
    else if (role == "root") ++roles[1];
    else if (role == "sub_root") ++roles[2];
    else ++roles[3];
  }
  auto put = [&](const char* label, std::uint64_t count) {
    if (count != 0) report.state_census.emplace_back(label, count);
  };
  put("crashed", report.crashed);
  put("done", report.done);
  put("idle", roles[0]);
  put("root", roles[1]);
  put("sub_root", roles[2]);
  put("member", roles[3]);
  // In-flight population at teardown: the watchdog's per-type discard
  // census (empty when the queue drained on its own — nothing was in
  // flight when progress stopped).
  using Message = typename SimT::Message;
  const std::vector<std::uint64_t>& census = simulation.discard_census();
  for (std::size_t t = 0; t < census.size(); ++t) {
    if (census[t] == 0) continue;
    report.in_flight_by_type.emplace_back(
        std::string(sim::kMessageDescriptors<Message>[t].name), census[t]);
  }
  report.last_delivery_time = result.metrics.last_delivery_time();
  for (auto it = result.marks.rbegin(); it != result.marks.rend(); ++it) {
    const MarkView view = classify(*it);
    if (!view.recognized) continue;
    report.last_round = view.round;
    report.last_phase = phase_after(view.kind);
    break;
  }
  report.discarded_events = result.fault_stats.discarded_events;
  report.dropped_deliveries = result.fault_stats.dropped_deliveries;
}

/// Wedge-watchdog outcome evaluation for runs under an active fault plan:
/// classify what the drained (or time-capped) network left behind instead
/// of asserting global termination. Deliberately assert-free — the
/// classification must not depend on MDST_CHECK_LEVEL, so every structural
/// check is an explicit branch and the always-on validation inside
/// RootedTree::from_parents is caught rather than propagated.
///
/// Taxonomy (docs/faults.md): `ok` — terminated, no crash fired;
/// `re_rooted` — crashes fired, yet every live node terminated and the
/// frozen parent pointers still form a spanning tree (crashed nodes hang
/// off it as leaves); `wedged` — anything else: a live node that never
/// terminated, a live subtree stranded behind a crashed parent, no or two
/// live roots, inconsistent frozen structure, or the time cap hit.
template <typename SimT>
void evaluate_adverse_run(const SimT& simulation, const graph::Graph& g,
                          bool time_capped, RunResult& result) {
  result.outcome = sim::RunOutcome::kWedged;
  result.final_degree = -1;
  if (time_capped) return;
  const std::size_t n = simulation.node_count();
  std::vector<char> crashed(n, 0);
  bool any_crashed = false;
  for (std::size_t v = 0; v < n; ++v) {
    crashed[v] = simulation.crashed(static_cast<sim::NodeId>(v)) ? 1 : 0;
    any_crashed |= crashed[v] != 0;
  }
  // Every live node must have terminated, exactly one of them as root,
  // none behind a crashed parent — a crashed *inner* node strands its live
  // subtree, so only crashed leaves are survivable.
  sim::NodeId root = sim::kNoNode;
  for (std::size_t v = 0; v < n; ++v) {
    if (crashed[v] != 0) continue;
    const auto& node = simulation.node(static_cast<sim::NodeId>(v));
    if (!node.done()) return;
    const sim::NodeId parent = node.parent();
    if (parent == sim::kNoNode) {
      if (root != sim::kNoNode) return;
      root = static_cast<sim::NodeId>(v);
    } else if (crashed[static_cast<std::size_t>(parent)] != 0) {
      return;
    }
  }
  if (root == sim::kNoNode) return;
  // Rebuild the tree from the frozen local views (a crashed node keeps its
  // pre-crash parent). Frozen state can be mid-operation inconsistent;
  // from_parents's own always-on validation turns any such case into a
  // ContractViolation, which downgrades to wedged here.
  std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<sim::NodeId>(v) == root) continue;
    const sim::NodeId parent =
        simulation.node(static_cast<sim::NodeId>(v)).parent();
    if (parent == sim::kNoNode) return;  // a crashed ex-root: two "roots"
    parents[v] = parent;
  }
  try {
    graph::RootedTree tree =
        graph::RootedTree::from_parents(root, std::move(parents));
    if (!tree.spans(g)) return;
    result.tree = std::move(tree);
  } catch (const ContractViolation&) {
    return;
  }
  result.final_degree = static_cast<int>(result.tree.max_degree());
  result.outcome =
      any_crashed ? sim::RunOutcome::kReRooted : sim::RunOutcome::kOk;
}

/// Outcome evaluation with the self-healing layer on. Recovery changes the
/// survivable shapes: a crashed *inner* node no longer strands its subtree
/// (the orphans re-elect and re-attach), so the contract is a spanning tree
/// of the *live induced subgraph*, not of g. Crashed nodes are excluded
/// entirely: every live node must have terminated, exactly one live root,
/// every live non-root's parent must be a live g-neighbor (corruption can
/// forge pointers, so the edge is checked against g), and the live parent
/// edges must connect all live nodes acyclically. `recovered` when the
/// re-election flood actually fired (any Recover message was delivered —
/// counter-based, so annotation-ring eviction cannot hide it), `re_rooted`
/// when crashes fired but recovery never had to, `ok` otherwise; `wedged`
/// on the time cap or any structural failure (e.g. a partitioned live
/// subgraph, whose components each terminate under their own root).
/// Assert-free for the same reason as evaluate_adverse_run.
template <typename SimT>
void evaluate_recovered_run(const SimT& simulation, const graph::Graph& g,
                            bool time_capped, RunResult& result) {
  result.outcome = sim::RunOutcome::kWedged;
  result.final_degree = -1;
  if (time_capped) return;
  const std::size_t n = simulation.node_count();
  std::vector<char> crashed(n, 0);
  bool any_crashed = false;
  for (std::size_t v = 0; v < n; ++v) {
    crashed[v] = simulation.crashed(static_cast<sim::NodeId>(v)) ? 1 : 0;
    any_crashed |= crashed[v] != 0;
  }
  sim::NodeId root = sim::kNoNode;
  std::size_t live = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (crashed[v] != 0) continue;
    ++live;
    const auto& node = simulation.node(static_cast<sim::NodeId>(v));
    if (!node.done()) return;
    const sim::NodeId parent = node.parent();
    if (parent == sim::kNoNode) {
      if (root != sim::kNoNode) return;  // two live roots
      root = static_cast<sim::NodeId>(v);
      continue;
    }
    if (parent >= static_cast<sim::NodeId>(n) ||
        crashed[static_cast<std::size_t>(parent)] != 0) {
      return;
    }
    if (!g.has_edge(static_cast<graph::VertexId>(v),
                    static_cast<graph::VertexId>(parent))) {
      return;  // forged pointer: not an edge of g
    }
  }
  if (root == sim::kNoNode) return;
  // Acyclicity + connectivity over the live parent edges: walk each live
  // node's parent chain, memoizing rooted prefixes (each node is walked
  // through at most twice overall); revisiting the current pass's path is
  // a cycle, and a cycle never reaches the root, so rooted[] covering all
  // live nodes certifies one tree.
  std::vector<std::uint32_t> pass_mark(n, 0);
  std::vector<char> rooted(n, 0);
  rooted[static_cast<std::size_t>(root)] = 1;
  std::vector<sim::NodeId> path;
  std::uint32_t pass = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (crashed[v] != 0 || rooted[v] != 0) continue;
    ++pass;
    path.clear();
    sim::NodeId u = static_cast<sim::NodeId>(v);
    while (rooted[static_cast<std::size_t>(u)] == 0) {
      if (pass_mark[static_cast<std::size_t>(u)] == pass) return;  // cycle
      pass_mark[static_cast<std::size_t>(u)] = pass;
      path.push_back(u);
      u = simulation.node(u).parent();
    }
    for (const sim::NodeId w : path) rooted[static_cast<std::size_t>(w)] = 1;
  }
  // Max degree of the live tree; each parent edge counts at both ends.
  std::vector<std::uint32_t> degree(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (crashed[v] != 0 || static_cast<sim::NodeId>(v) == root) continue;
    const sim::NodeId parent =
        simulation.node(static_cast<sim::NodeId>(v)).parent();
    ++degree[v];
    ++degree[static_cast<std::size_t>(parent)];
  }
  std::uint32_t max_degree = 0;
  for (std::size_t v = 0; v < n; ++v) {
    max_degree = std::max(max_degree, degree[v]);
  }
  result.final_degree = static_cast<int>(max_degree);
  // With every node live the structure spans g — export it as a RootedTree
  // like the crash-free paths do. With crashes the live tree cannot span g,
  // so result.tree stays empty and final_degree carries the answer.
  if (live == n) {
    std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
    for (std::size_t v = 0; v < n; ++v) {
      if (static_cast<sim::NodeId>(v) == root) continue;
      parents[v] = simulation.node(static_cast<sim::NodeId>(v)).parent();
    }
    try {
      graph::RootedTree tree =
          graph::RootedTree::from_parents(root, std::move(parents));
      if (!tree.spans(g)) return;
      result.tree = std::move(tree);
    } catch (const ContractViolation&) {
      return;
    }
  }
  const std::uint64_t recover_msgs = result.metrics.messages_of_type(
      static_cast<std::size_t>(MessageType::kRecover));
  result.outcome = recover_msgs != 0 ? sim::RunOutcome::kRecovered
                   : any_crashed     ? sim::RunOutcome::kReRooted
                                     : sim::RunOutcome::kOk;
}

/// Everything after the event loop: outcome evaluation / tree extraction,
/// node-state aggregation, and mark materialization. One body for both
/// engines — the determinism suites compare its outputs field by field
/// across classic, devirtualized, and sharded runs.
template <typename SimT>
RunResult finish_run(SimT& simulation, const graph::Graph& g,
                     const graph::RootedTree& initial, const Options& options,
                     bool adversity, bool time_capped,
                     std::uint64_t node_arena_bytes) {
  RunResult result;
  result.metrics = simulation.metrics();
  result.trace = simulation.take_trace();
  result.initial_degree = static_cast<int>(initial.max_degree());
  result.fault_stats = simulation.fault_stats();
  result.memory = simulation.memory_report();
  result.memory.node_bytes += node_arena_bytes;
  if (adversity) {
    if (options.recovery.enabled) {
      evaluate_recovered_run(simulation, g, time_capped, result);
    } else {
      evaluate_adverse_run(simulation, g, time_capped, result);
    }
  } else {
    result.tree = extract_tree(simulation);
    result.final_degree = static_cast<int>(result.tree.max_degree());
    MDST_ASSERT(result.tree.spans(g), "final structure must span g");
  }

  std::uint32_t rounds = 0;
  std::uint64_t improvements = 0;
  for (std::size_t v = 0; v < simulation.node_count(); ++v) {
    const auto& node = simulation.node(static_cast<sim::NodeId>(v));
    rounds = std::max(rounds, node.rounds_started());
    improvements += node.improvements_applied();
    if (node.stop_reason() != StopReason::kNotStopped) {
      if (!adversity) {
        MDST_ASSERT(result.stop_reason == StopReason::kNotStopped,
                    "two nodes claim to have stopped the run");
      }
      if (result.stop_reason == StopReason::kNotStopped) {
        result.stop_reason = node.stop_reason();
      }
    }
  }
  // A wedged run legitimately has no stop reason (and may overshoot a
  // round budget before the watchdog cuts it); the termination contracts
  // hold only for runs the fault plan left whole.
  if (!adversity) {
    MDST_ASSERT(result.stop_reason != StopReason::kNotStopped,
                "no stop reason recorded");
  }
  result.rounds = rounds;
  result.improvements = improvements;
  if (options.max_rounds != 0 && !adversity) {
    MDST_ASSERT(result.rounds <= options.max_rounds,
                "round budget exceeded");
  }

  // Read-time formatting: the protocol recorded structured tags (no string
  // was built during the run); the seed-style label text materializes here,
  // once per mark, alongside the structured fields.
  result.marks.reserve(result.metrics.annotations().size());
  for (const sim::Annotation& a : result.metrics.annotations()) {
    result.marks.push_back({a.time, a.total_messages, a.max_causal_depth,
                            annotation_text(a), a.tag, a.tagged, a.total_bits,
                            a.in_flight});
  }
  auto census = derive_round_census(result.marks);
  result.round_stats = std::move(census.first);
  result.round_mark_index = std::move(census.second);
  result.round_telemetry = derive_round_telemetry(result.marks);
  // Stabilization metrics: flood/install counts from the tagged marks
  // (ring-bounded — under a tight annotation_cap only the most recent
  // recoveries survive, like every other mark consumer), message overhead
  // from the unbounded per-type counters.
  result.recovery.enabled = options.recovery.enabled;
  if (options.recovery.enabled) {
    for (const RoundMark& mark : result.marks) {
      if (!mark.tagged) continue;
      const auto kind = static_cast<RoundNote>(mark.tag.kind);
      if (kind == RoundNote::kRecoverStart) {
        ++result.recovery.re_elections;
        if (result.recovery.first_detection_time == 0) {
          result.recovery.first_detection_time = mark.time;
        }
      } else if (kind == RoundNote::kRecoverInstall) {
        ++result.recovery.installs;
      }
    }
    for (std::size_t t = kFirstRecoveryType;
         t < std::variant_size_v<Message>; ++t) {
      result.recovery.recovery_messages += result.metrics.messages_of_type(t);
    }
  }
  if (result.outcome == sim::RunOutcome::kWedged) {
    build_wedge_report(simulation, time_capped, result);
  }
  return result;
}

}  // namespace

std::span<const RoundMark> RunResult::marks_of_round(
    std::uint32_t round) const {
  const auto it = std::lower_bound(
      round_mark_index.begin(), round_mark_index.end(), round,
      [](const RoundMarkSpan& s, std::uint32_t r) { return s.round < r; });
  if (it == round_mark_index.end() || it->round != round) return {};
  return std::span<const RoundMark>(marks.data() + it->begin,
                                    it->end - it->begin);
}

const RoundStats* RunResult::stats_of_round(std::uint32_t round) const {
  const auto it = std::lower_bound(
      round_stats.begin(), round_stats.end(), round,
      [](const RoundStats& s, std::uint32_t r) { return s.round < r; });
  if (it == round_stats.end() || it->round != round) return nullptr;
  return &*it;
}

std::vector<sim::TimelinePhase> round_phases(const RunResult& result) {
  std::vector<sim::TimelinePhase> phases;
  const char* open_name = nullptr;
  sim::Time open_at = 0;
  auto advance = [&](const char* name, const RoundMark& mark) {
    if (open_name != nullptr) phases.push_back({open_name, open_at, mark.time});
    open_name = name;
    open_at = mark.time;
  };
  for (const RoundMark& mark : result.marks) {
    const MarkView view = classify(mark);
    if (!view.recognized) continue;
    switch (view.kind) {
      case RoundNote::kRoundStart: advance("search", mark); break;
      case RoundNote::kDecide: advance("move", mark); break;
      case RoundNote::kCut: advance("wave", mark); break;
      case RoundNote::kWaveDone: advance("choose", mark); break;
      case RoundNote::kImprove:
      case RoundNote::kSubImprove:
        break;  // detail inside the wave/choose spans
      case RoundNote::kRecoverStart: advance("recover", mark); break;
      case RoundNote::kRecoverInstall:
        break;  // the restarted round's start mark opens "search"
      case RoundNote::kTerminate: advance(nullptr, mark); break;
    }
  }
  // A phase left open (wedged run) ends where the mark stream does.
  if (open_name != nullptr && !result.marks.empty()) {
    phases.push_back({open_name, open_at, result.marks.back().time});
  }
  return phases;
}

RunResult run_mdst(const graph::Graph& g, const graph::RootedTree& initial,
                   const Options& options, const sim::SimConfig& sim_config) {
  MDST_REQUIRE(initial.spans(g), "initial tree must span g");
  MDST_REQUIRE(graph::is_connected(g), "graph must be connected");
  // Corruption faults scramble protocol state into shapes the handler
  // contracts never anticipated. Defensive mode turns those contract
  // violations into dropped messages, so a corrupted run wedges measurably
  // (or recovers, when the self-healing layer is on) instead of dying on a
  // tiered assert whose firing depends on the build's check level.
  Options opts = options;
  if (sim_config.faults.corrupts()) opts.recovery.defensive = true;
  // Stall-detection calibration: RecoveryOptions::stall_ticks is specified
  // in unit-delay heartbeat fires, but an honest wave's quiet stretch grows
  // linearly with the per-hop delay — under uniform(1,4) a healthy
  // convergecast routinely outlasts the unit-delay tolerance and every such
  // false stall costs a full re-election. Scale the tolerance by the delay
  // model's per-hop bound so "quiet for this long" means the same amount of
  // protocol progress under every model (the per-node doubling guard still
  // absorbs heavy-tail outliers).
  if (opts.recovery.enabled) {
    opts.recovery.stall_ticks = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(opts.recovery.stall_ticks *
                                    sim_config.delay.timeout_scale(),
                                1u << 20));
  }
  // Safety net for the trivially-copyable BoxedCandidate convention
  // (candidates.hpp): every slot allocated by a BfsBack sender must be
  // released by exactly one handle_bfs_back. A completed run is balanced.
  const std::size_t boxed_before = CandidatePool::local().in_use();

  const bool sharded = sim_config.shards > 0;
  if (sharded) {
    // Intra-trial sharded engine (runtime/sharded_sim.hpp). Its watchdog is
    // internal — the time cap is checked against the agreed window base, so
    // the stepping loop below never sees a sharded run. Mid-run validation
    // has no meaning across lanes, so check_each_round keeps the classic
    // engine.
    MDST_REQUIRE(!opts.check_each_round,
                 "check_each_round needs the classic engine "
                 "(SimConfig::shards = 0)");
    // Window-closure requirement (runtime/sharded_sim.hpp): a timer with
    // delay below the lookahead would land inside an already-agreed window.
    MDST_REQUIRE(!opts.recovery.enabled ||
                     opts.recovery.heartbeat_period >=
                         sim_config.delay.min_delay(),
                 "recovery heartbeat_period must be >= the delay model's "
                 "min delay under the sharded engine");
    const bool adversity = sim_config.faults.active();
    // Degree-scaled node state lives in shared arenas (mdst/node_arena.hpp):
    // declared before the simulator so every node's slice outlives it. Both
    // engines build all nodes on this thread before workers start, so one
    // shared arena is race-free.
    NodeArenas arenas(g);
    ShardedSim simulation(
        g,
        [&](const sim::NodeEnv& env) {
          const graph::VertexId v = env.id;
          const graph::VertexId parent = initial.parent(v);
          return ShardProtocol::Node(
              env, parent, std::span<const sim::NodeId>(initial.children(v)),
              arenas.slice(v), opts);
        },
        sim_config);
    const bool time_capped =
        adversity ? simulation.run_capped(sim_config.faults.max_time)
                  : (simulation.run(), false);
    MDST_ASSERT(simulation.pools_balanced(),
                "boxed-candidate pool imbalance on a shard worker: a BfsBack "
                "box leaked or was double-released");
    MDST_ASSERT(CandidatePool::local().in_use() == boxed_before,
                "boxed-candidate pool imbalance: a BfsBack box leaked or was "
                "double-released");
    return finish_run(simulation, g, initial, opts, adversity, time_capped,
                      arenas.bytes());
  }

  NodeArenas arenas(g);
  Sim simulation(
      g,
      [&](const sim::NodeEnv& env) {
        const graph::VertexId v = env.id;
        const graph::VertexId parent = initial.parent(v);
        return SimNode(env, parent,
                       std::span<const sim::NodeId>(initial.children(v)),
                       arenas.slice(v), opts);
      },
      sim_config);

  const bool adversity = sim_config.faults.active();
  bool time_capped = false;
  if (adversity) {
    // Wedge watchdog, stepping side: drive the network with the plan's
    // wall-clock cap (0 = uncapped — a crash-stop network always drains,
    // since ARQ never drops and crashed nodes only absorb). A cap hit
    // discards the still-queued events through Protocol::dispose so the
    // candidate pool stays balanced. Adversity takes this plain loop even
    // under check_each_round: mid-run validation assumes crash-free
    // structure.
    const sim::Time cap = sim_config.faults.max_time;
    while (simulation.step()) {
      if (cap != 0 && simulation.now() >= cap) {
        time_capped = true;
        break;
      }
    }
    if (time_capped) simulation.discard_pending();
  } else if (opts.check_each_round) {
    const std::size_t detach_index =
        static_cast<std::size_t>(MessageType::kDetach);
    std::uint64_t detaches_seen = 0;
    while (simulation.step()) {
      const std::uint64_t detaches =
          simulation.metrics().messages_of_type(detach_index);
      if (detaches != detaches_seen) {
        detaches_seen = detaches;
        validate_midrun(simulation, g);
      }
    }
  } else {
    simulation.run();
  }

  MDST_ASSERT(CandidatePool::local().in_use() == boxed_before,
              "boxed-candidate pool imbalance: a BfsBack box leaked or was "
              "double-released");

  return finish_run(simulation, g, initial, opts, adversity, time_capped,
                    arenas.bytes());
}

}  // namespace mdst::core
