// Exact minimum-degree spanning tree via branch-and-bound.
//
// MDegST is NP-hard, so this solver is meant for instances up to roughly
// n = 24 — enough to certify the Δ* + 1 guarantee of the distributed
// algorithm on thousands of sampled instances (experiment E3).
//
// Strategy: binary-free linear scan over the decision problem "does a
// spanning tree with max degree <= d exist?" from the best lower bound
// upward. The decision search branches over edges with two prunings:
//   * degree caps (never pick an edge at a saturated endpoint);
//   * connectivity look-ahead: if the currently picked forest plus all
//     still-usable edges cannot connect the graph, backtrack.
// The Fürer–Raghavachari (kFull) tree caps the scan from above: Δ* is
// either its degree or one less, so at most two decision searches run.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace mdst::core {

struct ExactResult {
  int optimal_degree = 0;
  bool proven = true;            // false iff the node budget was exhausted
  std::uint64_t nodes_explored = 0;
};

/// Decide whether a spanning tree with maximum degree <= d exists.
/// `budget` caps the number of search nodes; returns unproven=false result
/// via ExactResult when exceeded.
struct Feasibility {
  bool feasible = false;
  bool proven = true;
  std::uint64_t nodes_explored = 0;
};
Feasibility spanning_tree_with_degree(const graph::Graph& g, int d,
                                      std::uint64_t budget = 50'000'000);

/// Compute Δ* exactly (within the node budget).
ExactResult exact_mdst_degree(const graph::Graph& g,
                              std::uint64_t budget = 50'000'000);

}  // namespace mdst::core
