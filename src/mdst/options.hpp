// Engine configuration for the distributed MDegST algorithm.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mdst/recovery.hpp"

namespace mdst::core {

/// How rounds treat multiple maximum-degree nodes (paper §3.2.6; DESIGN D2).
enum class EngineMode {
  /// One improvement per round: the round root (max-degree node of minimum
  /// identity) is the only node improved. Other degree-k nodes wait for
  /// later rounds. The algorithm stops the first time a round root finds no
  /// usable outgoing edge (the paper's stop rule).
  kSingleImprovement,
  /// Paper §3.2.6: degree-k nodes met by the main BFS wave become sub-roots
  /// and improve their own subtrees within the same round (nesting depth 1).
  /// Any stuck degree-k node stops the whole algorithm at round end.
  kConcurrent,
  /// Extension: like kSingleImprovement but a stuck node is only skipped
  /// (marked stuck); the run ends when every degree-k node is stuck in the
  /// same tree. Closer to the hypothesis of FR Theorem 1.
  kStrictLot,
};

const char* to_string(EngineMode mode);

struct Options {
  EngineMode mode = EngineMode::kSingleImprovement;
  /// Safety valve: abort after this many rounds (0 = no cap). A correct run
  /// needs at most ~n rounds; the engine asserts against this budget.
  std::size_t max_rounds = 0;
  /// Re-validate the global tree invariants after every round (test builds).
  bool check_each_round = false;
  /// Early exit (paper §1: "the degree ... cannot exceed a given value k"):
  /// stop as soon as the tree's maximum degree is <= target_degree.
  /// 0 disables the target; values < 2 behave like 2.
  int target_degree = 0;
  /// Self-healing layer (mdst/recovery.hpp): heartbeat failure detection +
  /// re-election floods. Off by default — and then byte-inert.
  RecoveryOptions recovery;
};

}  // namespace mdst::core
