// Fragment tags, outgoing-edge candidates, and the boxed-candidate pool.
//
// A `Candidate` is the paper's <u, w, deg, tags> tuple describing one usable
// outgoing edge; `BfsBack` convergecasts up to two of them (top + sub scope)
// per hop. Carried inline they dominate `sizeof(Message)` — the whole
// variant, and with it every calendar-queue slab node and in-flight event,
// pays for the fattest alternative on every message of every type. Most
// BfsBack messages carry *no* candidate at all (leaves, exhausted subtrees),
// so the payload is boxed: the message holds a 4-byte slot handle into a
// thread-local `CandidatePool`, allocated only when a candidate is actually
// present. This shrinks `sizeof(Message)` from 64 to 24 bytes (see
// tests/mdst/message_layout_test.cpp and docs/perf.md).
//
// Pool discipline — deliberate, and load-bearing for performance:
// `BoxedCandidate` is TRIVIALLY COPYABLE (a bare slot handle, no RAII). An
// RAII box would make `BfsBack`, and through it the whole `Message`
// variant, non-trivial — turning every queue payload move of every message
// type into a visitation dispatch instead of a memcpy (measured ≈7% on the
// end-to-end MDegST bench). Instead the handle has malloc/free semantics
// with a single-owner convention:
//
//   * the sender allocates by constructing BoxedCandidate from a valid
//     Candidate (invalid candidates take no slot — the common case);
//   * copies of the message share the handle; the simulator delivers each
//     message exactly once;
//   * the one consuming handler (BasicNode::handle_bfs_back) calls
//     release() exactly once per valid box after reading it.
//
// run_mdst() asserts the pool returns to its starting occupancy after every
// run, so a violated convention fails loudly instead of leaking. The pool
// is thread_local (a Simulator and everything it delivers runs on one
// thread); slots recycle through a free list, so steady-state traffic does
// no allocation. Handles are never compared or serialized, so slot
// numbering cannot affect protocol behaviour or determinism.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "graph/types.hpp"
#include "support/assert.hpp"

namespace mdst::core {

using graph::NodeName;

/// Sentinel for "no name".
inline constexpr NodeName kNoName = -1;

/// A fragment identity (root name, fragment name) ordered lexicographically
/// — the paper's (p, p') pairs.
struct FragTag {
  NodeName root = kNoName;
  NodeName frag = kNoName;

  friend bool operator==(const FragTag&, const FragTag&) = default;
  friend auto operator<=>(const FragTag& a, const FragTag& b) {
    return a.key() <=> b.key();
  }

  bool valid() const { return root != kNoName; }

  /// Order-preserving packed key: valid names are >= -1 (the kNoName
  /// sentinel), so shifting by one in *unsigned* arithmetic (no overflow
  /// UB even at INT32_MAX) maps them monotonically onto uint32, and the
  /// (root, frag) lexicographic order collapses to one 64-bit compare —
  /// the hottest comparison in the BFS wave (on_cross_probe's closure
  /// protocol).
  std::uint64_t key() const {
    const auto shift = [](NodeName name) {
      return static_cast<std::uint32_t>(name) + 1u;
    };
    return (static_cast<std::uint64_t>(shift(root)) << 32) | shift(frag);
  }
};

/// An outgoing-edge candidate (u, w): u is the node that discovered the
/// edge, w the far endpoint; end_degree = max(deg_T(u), deg_T(w)) is the
/// paper's choice key. w_top/w_sub record the far endpoint's fragment tags
/// used for usability filtering at the round root / sub-root.
struct Candidate {
  NodeName u = kNoName;
  NodeName w = kNoName;
  int end_degree = 0;
  FragTag w_top;
  FragTag w_sub;

  bool valid() const { return u != kNoName; }

  /// The paper's selection order: minimal endpoint max-degree, then names
  /// for determinism.
  friend bool operator<(const Candidate& a, const Candidate& b) {
    if (a.end_degree != b.end_degree) return a.end_degree < b.end_degree;
    if (a.u != b.u) return a.u < b.u;
    return a.w < b.w;
  }
};

/// Slot pool backing BoxedCandidate. One instance per thread; slots are
/// reused through a free list so steady-state message traffic allocates
/// nothing.
class CandidatePool {
 public:
  static CandidatePool& local();

  std::uint32_t alloc(const Candidate& value) {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      slots_[slot] = value;
      return slot;
    }
    slots_.push_back(value);
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void release(std::uint32_t slot) { free_.push_back(slot); }

  const Candidate& at(std::uint32_t slot) const { return slots_[slot]; }

  /// Live slot count; run_mdst() asserts this is balanced across a run, so
  /// a missed (or doubled) release() fails loudly. Capacity never shrinks.
  std::size_t in_use() const { return slots_.size() - free_.size(); }

 private:
  std::vector<Candidate> slots_;
  std::vector<std::uint32_t> free_;
};

namespace detail {
// Namespace-scope constinit thread_local: raw TLS access, no per-call
// initialization guard (vector's default constructor is constexpr).
inline constinit thread_local CandidatePool candidate_pool{};
}  // namespace detail

inline CandidatePool& CandidatePool::local() { return detail::candidate_pool; }

/// Trivially-copyable 4-byte handle to a pooled Candidate (see the file
/// header for the ownership convention). Constructing from an *invalid*
/// candidate — the common "nothing to report" case — takes no slot.
class BoxedCandidate {
 public:
  BoxedCandidate() = default;
  BoxedCandidate(const Candidate& value)  // NOLINT: implicit by design
      : slot_(value.valid() ? CandidatePool::local().alloc(value) : kNull) {}

  /// Mirrors Candidate::valid(): true iff a candidate is present.
  bool valid() const { return slot_ != kNull; }

  const Candidate& get() const {
    MDST_ASSERT(valid(), "BoxedCandidate: get() on empty box");
    return CandidatePool::local().at(slot_);
  }

  /// Return the slot to the pool. Must be called exactly once, by the final
  /// consumer of the message, after the last get(). No-op on an empty box.
  /// `const` because consumers see messages by const-ref; it mutates the
  /// thread-local pool, not this handle.
  void release() const {
    if (slot_ != kNull) CandidatePool::local().release(slot_);
  }

 private:
  static constexpr std::uint32_t kNull = static_cast<std::uint32_t>(-1);

  std::uint32_t slot_ = kNull;
};

// The entire point of the handle design: BfsBack (and with it Message)
// stays trivially copyable, so queue payload moves compile to memcpy.
static_assert(std::is_trivially_copyable_v<BoxedCandidate>);
static_assert(std::is_trivially_destructible_v<BoxedCandidate>);

}  // namespace mdst::core
