// Shared CSR-indexed arenas for the degree-scaled state of BasicNode.
//
// Before the large-n memory overhaul every node owned five heap-allocated
// vectors sized to its degree (child list, child slot indices, the child_at_
// byte flags and two epoch-stamp arrays). At n = 2^20 on a sparse graph that
// is five million tiny allocations plus per-vector header overhead — the
// dominant per-node cost after the cache-line-packed hot state. NodeArenas
// replaces them with five flat arrays over the whole graph, laid out in CSR
// order (offset prefix sums over exact degree counts, one allocation each),
// and hands each node a NodeSlice of raw pointers into them. Constructed
// once per trial by run_mdst before the simulator builds its nodes; the
// arenas must outlive the simulator (all slices point into them).
//
// Thread-safety: both engines construct every node on the coordinating
// thread before any worker thread starts, and a slice is touched only by
// its own node afterwards, so one shared NodeArenas serves the sharded
// engine without synchronization.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/types.hpp"

namespace mdst::graph {
class Graph;
}  // namespace mdst::graph

namespace mdst::core {

/// One node's view into the arenas: five blocks of exactly `degree`
/// elements each. Plain pointers — the node binds them at construction and
/// never rebinds (a node's degree is fixed by the static network).
struct NodeSlice {
  sim::NodeId* children = nullptr;
  std::uint32_t* child_indices = nullptr;
  std::uint8_t* child_at = nullptr;
  std::uint32_t* wave_child_epoch = nullptr;
  std::uint32_t* cross_closed_epoch = nullptr;
  std::uint32_t degree = 0;
};

class NodeArenas {
 public:
  /// Sizes every arena from the graph's exact degree counts (Σ deg = 2m).
  /// The graph need not be frozen; only degree(v) is read.
  explicit NodeArenas(const graph::Graph& g);

  NodeSlice slice(sim::NodeId v) {
    const std::uint32_t base = offsets_[static_cast<std::size_t>(v)];
    const std::uint32_t deg =
        offsets_[static_cast<std::size_t>(v) + 1] - base;
    return NodeSlice{children_.data() + base,
                     child_indices_.data() + base,
                     child_at_.data() + base,
                     wave_child_epoch_.data() + base,
                     cross_closed_epoch_.data() + base,
                     deg};
  }

  /// Total heap footprint of the arenas, for sim::MemoryReport.
  std::size_t bytes() const {
    return offsets_.capacity() * sizeof(std::uint32_t) +
           children_.capacity() * sizeof(sim::NodeId) +
           child_indices_.capacity() * sizeof(std::uint32_t) +
           child_at_.capacity() * sizeof(std::uint8_t) +
           wave_child_epoch_.capacity() * sizeof(std::uint32_t) +
           cross_closed_epoch_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::vector<std::uint32_t> offsets_;  // n + 1 prefix sums over degrees
  std::vector<sim::NodeId> children_;
  std::vector<std::uint32_t> child_indices_;
  std::vector<std::uint8_t> child_at_;
  std::vector<std::uint32_t> wave_child_epoch_;
  std::vector<std::uint32_t> cross_closed_epoch_;
};

}  // namespace mdst::core
