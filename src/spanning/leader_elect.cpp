#include "spanning/leader_elect.hpp"

#include "runtime/variant_util.hpp"
#include "support/assert.hpp"

namespace mdst::spanning {
namespace leader {

std::size_t Node::neighbor_index(sim::NodeId id) const {
  for (std::size_t i = 0; i < env_.neighbors.size(); ++i) {
    if (env_.neighbors[i].id == id) return i;
  }
  MDST_UNREACHABLE("neighbor_index: not a neighbor");
}

void Node::join_wave(sim::IContext<Message>& ctx, graph::NodeName tag,
                     sim::NodeId wave_parent) {
  current_tag_ = tag;
  parent_ = wave_parent;
  received_.assign(env_.neighbors.size(), false);
  echo_child_.assign(env_.neighbors.size(), false);
  if (wave_parent != sim::kNoNode) {
    // The probe that made us join counts as this tag's message from parent.
    received_[neighbor_index(wave_parent)] = true;
  }
  for (const sim::NeighborInfo& nb : env_.neighbors) {
    if (nb.id == wave_parent) continue;
    ctx.send(nb.id, Wave{tag});
  }
  complete_wave(ctx);  // degree-0 / degree-1 corner cases
}

void Node::complete_wave(sim::IContext<Message>& ctx) {
  if (done_) return;
  for (bool got : received_) {
    if (!got) return;
  }
  if (parent_ == sim::kNoNode) {
    // Our own wave completed: only the global minimum identity can get here.
    MDST_ASSERT(current_tag_ == env_.name, "foreign wave completed at non-root");
    leader_ = env_.name;
    done_ = true;
    for (std::size_t i = 0; i < env_.neighbors.size(); ++i) {
      if (echo_child_[i]) ctx.send(env_.neighbors[i].id, Announce{leader_});
    }
  } else {
    ctx.send(parent_, WaveEcho{current_tag_});
  }
}

void Node::note_tagged_message(sim::IContext<Message>& ctx, sim::NodeId from,
                               graph::NodeName tag, bool is_echo) {
  if (current_tag_ != -1 && tag > current_tag_) return;  // extinguished
  if (current_tag_ == -1 || tag < current_tag_) {
    // A strictly smaller wave reaches us: defect to it.
    MDST_ASSERT(!is_echo, "echo for a wave we never joined");
    join_wave(ctx, tag, from);
    return;
  }
  // tag == current_tag_
  const std::size_t idx = neighbor_index(from);
  received_[idx] = true;
  if (is_echo) echo_child_[idx] = true;
  complete_wave(ctx);
}

void Node::on_start(sim::IContext<Message>& ctx) {
  // A smaller wave may already have recruited us before our spontaneous
  // start (start times are independent); in that case our own wave is
  // extinguished before birth.
  if (current_tag_ != -1 && current_tag_ < env_.name) return;
  join_wave(ctx, env_.name, sim::kNoNode);
}

void Node::on_message(sim::IContext<Message>& ctx, sim::NodeId from,
                      const Message& message) {
  std::visit(
      sim::Overloaded{
          [&](const Wave& wave) {
            note_tagged_message(ctx, from, wave.tag, /*is_echo=*/false);
          },
          [&](const WaveEcho& echo) {
            note_tagged_message(ctx, from, echo.tag, /*is_echo=*/true);
          },
          [&](const Announce& announce) {
            MDST_ASSERT(from == parent_, "Announce from non-parent");
            leader_ = announce.leader;
            done_ = true;
            for (std::size_t i = 0; i < env_.neighbors.size(); ++i) {
              if (echo_child_[i]) {
                ctx.send(env_.neighbors[i].id, Announce{leader_});
              }
            }
          },
      },
      message);
}

std::vector<sim::NodeId> Node::children() const {
  std::vector<sim::NodeId> out;
  for (std::size_t i = 0; i < env_.neighbors.size(); ++i) {
    if (echo_child_[i]) out.push_back(env_.neighbors[i].id);
  }
  return out;
}

}  // namespace leader

LeaderRun run_leader_elect(const graph::Graph& g,
                           const sim::SimConfig& config) {
  sim::Simulator<leader::Protocol> simulation(
      g, [](const sim::NodeEnv& env) { return leader::Node(env); }, config);
  simulation.run();
  LeaderRun result;
  result.tree = extract_tree(simulation);
  result.leader = simulation.node(result.tree.root()).leader_name();
  result.metrics = simulation.metrics();
  for (std::size_t v = 0; v < simulation.node_count(); ++v) {
    MDST_ASSERT(simulation.node(static_cast<sim::NodeId>(v)).leader_name() ==
                    result.leader,
                "nodes disagree on leader");
  }
  return result;
}

}  // namespace mdst::spanning
