// Leader election by echo waves with extinction (Tel, Ch. 7).
//
// Every node spontaneously starts an echo wave tagged with its own identity;
// nodes always participate in the smallest tag they have seen, which
// extinguishes every wave except the minimum-identity one. Only the
// minimum-identity initiator can see its wave complete; it becomes leader
// and announces along the winning wave's parent tree — which is therefore
// also a spanning tree rooted at the leader, the canonical startup state of
// the MDegST phase ("almost all spanning tree construction algorithms give
// a root", paper §3.1).
//
// Complexity: O(n·m) messages worst case, O(n) time. Tags are identities,
// so messages carry one identity — within the paper's O(log n) bit budget.
#pragma once

#include <cstddef>
#include <variant>
#include <vector>

#include "graph/types.hpp"
#include "runtime/context.hpp"
#include "runtime/node_env.hpp"
#include "runtime/simulator.hpp"
#include "spanning/tree_result.hpp"

namespace mdst::spanning {

namespace leader {

/// Probe of the wave tagged with initiator identity `tag`.
struct Wave {
  static constexpr const char* kName = "Wave";
  graph::NodeName tag = -1;
  static constexpr std::size_t kIdsCarried = 1;
  std::size_t ids_carried() const { return kIdsCarried; }
};
/// Echo of the wave tagged `tag` (sender completed its subtree).
struct WaveEcho {
  static constexpr const char* kName = "WaveEcho";
  graph::NodeName tag = -1;
  static constexpr std::size_t kIdsCarried = 1;
  std::size_t ids_carried() const { return kIdsCarried; }
};
/// Broadcast by the winner along the winning tree.
struct Announce {
  static constexpr const char* kName = "Announce";
  graph::NodeName leader = -1;
  static constexpr std::size_t kIdsCarried = 1;
  std::size_t ids_carried() const { return kIdsCarried; }
};

using Message = std::variant<Wave, WaveEcho, Announce>;

class Node {
 public:
  explicit Node(const sim::NodeEnv& env)
      : env_(env), received_(env.neighbors.size(), false) {}

  void on_start(sim::IContext<Message>& ctx);
  void on_message(sim::IContext<Message>& ctx, sim::NodeId from,
                  const Message& message);

  bool done() const { return done_; }
  sim::NodeId parent() const { return done_ ? parent_ : sim::kNoNode; }
  std::vector<sim::NodeId> children() const;
  /// Extraction alias: children() already builds a fresh vector.
  std::vector<sim::NodeId> take_children() const { return children(); }
  graph::NodeName leader_name() const { return leader_; }
  bool is_leader() const { return done_ && leader_ == env_.name; }

 private:
  void join_wave(sim::IContext<Message>& ctx, graph::NodeName tag,
                 sim::NodeId wave_parent);
  void note_tagged_message(sim::IContext<Message>& ctx, sim::NodeId from,
                           graph::NodeName tag, bool is_echo);
  void complete_wave(sim::IContext<Message>& ctx);
  std::size_t neighbor_index(sim::NodeId id) const;

  sim::NodeEnv env_;
  graph::NodeName current_tag_ = -1;  // -1 = not started
  sim::NodeId parent_ = sim::kNoNode;
  std::vector<bool> received_;        // t-tagged message seen per neighbour
  std::vector<bool> echo_child_;      // neighbour echoed our current tag
  bool done_ = false;
  graph::NodeName leader_ = -1;
};

struct Protocol {
  using Message = leader::Message;
  using Node = leader::Node;
};

}  // namespace leader

/// Result of leader election: tree rooted at the minimum-identity node.
struct LeaderRun {
  graph::RootedTree tree;
  graph::NodeName leader = -1;
  sim::Metrics metrics{1, 1};
};

LeaderRun run_leader_elect(const graph::Graph& g,
                           const sim::SimConfig& config = {});

}  // namespace mdst::spanning
