// Distributed spanning-tree verification.
//
// After any construction (or after the MDegST improvement phase), nodes
// hold local (parent, children) views. This protocol lets the network check
// — without any global observer — that those views are a consistent
// spanning tree:
//
//   1. Handshake: every non-root node claims childhood to its parent
//      (ChildClaim); the parent acknowledges iff the claimant is in its
//      children set (ClaimAck / ClaimNak). Catches parent/child
//      inconsistencies and edges that only one side believes in.
//   2. Census convergecast: subtree sizes flow to the root (SizeReport);
//      the root compares the total against the expected node count n
//      (nodes are allowed to know n for verification — the standard
//      assumption for distributed ST checking; without n, a forest with a
//      consistent component is indistinguishable from a spanning tree).
//   3. Verdict broadcast: the root floods Verdict{ok} so every node learns
//      the result (termination by process).
//
// A cycle in the parent pointers would make the convergecast starve; the
// protocol bounds that with a hop-counted claim: SizeReports carry a depth
// counter that must not exceed n. Tests inject corrupted views and assert
// the verdict flips to false.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "runtime/context.hpp"
#include "runtime/node_env.hpp"
#include "runtime/simulator.hpp"

namespace mdst::spanning {

namespace verify {

struct ChildClaim {
  static constexpr const char* kName = "ChildClaim";
  std::size_t ids_carried() const { return 0; }
};
struct ClaimAck {
  static constexpr const char* kName = "ClaimAck";
  std::size_t ids_carried() const { return 0; }
};
struct ClaimNak {
  static constexpr const char* kName = "ClaimNak";
  std::size_t ids_carried() const { return 0; }
};
/// Subtree census: size and a validity bit accumulated from below.
struct SizeReport {
  static constexpr const char* kName = "SizeReport";
  std::uint64_t size = 0;
  bool ok = true;
  std::size_t ids_carried() const { return 1; }
};
struct Verdict {
  static constexpr const char* kName = "Verdict";
  bool ok = false;
  std::size_t ids_carried() const { return 1; }
};

using Message = std::variant<ChildClaim, ClaimAck, ClaimNak, SizeReport, Verdict>;

class Node {
 public:
  Node(const sim::NodeEnv& env, sim::NodeId parent,
       std::vector<sim::NodeId> children, std::uint64_t expected_n);

  void on_start(sim::IContext<Message>& ctx);
  void on_message(sim::IContext<Message>& ctx, sim::NodeId from,
                  const Message& message);

  bool done() const { return done_; }
  bool verdict() const { return verdict_; }

 private:
  void maybe_report(sim::IContext<Message>& ctx);

  sim::NodeEnv env_;
  sim::NodeId parent_;
  std::vector<sim::NodeId> children_;
  std::uint64_t expected_n_;
  bool claim_settled_ = false;  // root: trivially true
  bool local_ok_ = true;
  std::size_t awaiting_sizes_ = 0;
  std::uint64_t subtree_size_ = 1;
  bool subtree_ok_ = true;
  bool reported_ = false;
  bool done_ = false;
  bool verdict_ = false;
};

struct Protocol {
  using Message = verify::Message;
  using Node = verify::Node;
};

}  // namespace verify

struct VerifyRun {
  bool ok = false;
  sim::Metrics metrics{1, 1};
};

/// Verify the local views described by `claimed` (a view table: per node,
/// parent id or kNoNode). `children` views derive from it unless a
/// corrupted table is supplied explicitly for fault-injection tests.
struct ClaimedViews {
  std::vector<sim::NodeId> parent;                 // size n
  std::vector<std::vector<sim::NodeId>> children;  // size n
};

/// Derive consistent views from a RootedTree (the normal case).
ClaimedViews views_from_tree(const graph::RootedTree& tree);

/// Run the verification protocol over graph `g` with the given views.
VerifyRun run_verify_st(const graph::Graph& g, const ClaimedViews& views,
                        const sim::SimConfig& config = {});

}  // namespace mdst::spanning
