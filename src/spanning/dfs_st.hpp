// Distributed depth-first-search spanning tree (token traversal).
//
// The classic sequential-token algorithm (Tel, Ch. 6): a single token walks
// the graph; on first receipt a node adopts the sender as parent, then
// forwards the token to one unexplored neighbour at a time. An
// already-visited neighbour bounces the token back with Visited. When a node
// has exhausted its neighbours it returns the token to its parent; when the
// initiator exhausts its neighbours the traversal is complete and Term is
// broadcast down the tree.
//
// Complexity: every edge is traversed at most twice (token + bounce/return),
// so <= 2m messages plus n-1 Term; time O(m) — the token serialises
// everything. DFS trees tend to have low degree, which makes this a *good*
// startup tree for the MDegST phase (measured in bench_t6_initial_tree).
#pragma once

#include <cstddef>
#include <variant>
#include <utility>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/node_env.hpp"
#include "runtime/simulator.hpp"
#include "spanning/tree_result.hpp"

namespace mdst::spanning {

namespace dfs {

struct Token {
  static constexpr const char* kName = "Token";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};
/// Bounce: receiver of Token was already visited.
struct Visited {
  static constexpr const char* kName = "Visited";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};
/// Subtree of sender fully explored; sender is a child of the receiver.
struct Return {
  static constexpr const char* kName = "Return";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};
struct Term {
  static constexpr const char* kName = "Term";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};

using Message = std::variant<Token, Visited, Return, Term>;

class Node {
 public:
  Node(const sim::NodeEnv& env, bool is_initiator)
      : env_(env), is_initiator_(is_initiator),
        used_(env.neighbors.size(), false) {}

  void on_start(sim::IContext<Message>& ctx);
  void on_message(sim::IContext<Message>& ctx, sim::NodeId from,
                  const Message& message);

  bool done() const { return done_; }
  sim::NodeId parent() const { return parent_; }
  const std::vector<sim::NodeId>& children() const { return children_; }
  /// Relinquish the children list to tree extraction (see extract_tree).
  std::vector<sim::NodeId> take_children() { return std::move(children_); }

 private:
  /// Forward the token to the next unexplored neighbour, or conclude.
  void advance(sim::IContext<Message>& ctx);
  void mark_used(sim::NodeId neighbor);

  sim::NodeEnv env_;
  bool is_initiator_;
  bool visited_ = false;
  bool done_ = false;
  sim::NodeId parent_ = sim::kNoNode;
  std::vector<sim::NodeId> children_;
  std::vector<bool> used_;  // parallel to env_.neighbors
};

struct Protocol {
  using Message = dfs::Message;
  using Node = dfs::Node;
};

}  // namespace dfs

/// Run token-DFS from `initiator` and return the tree plus metrics.
SpanningRun run_dfs_st(const graph::Graph& g, sim::NodeId initiator,
                       const sim::SimConfig& config = {});

}  // namespace mdst::spanning
