#include "spanning/dfs_st.hpp"

#include "runtime/variant_util.hpp"
#include "support/assert.hpp"

namespace mdst::spanning {
namespace dfs {

void Node::mark_used(sim::NodeId neighbor) {
  for (std::size_t i = 0; i < env_.neighbors.size(); ++i) {
    if (env_.neighbors[i].id == neighbor) {
      used_[i] = true;
      return;
    }
  }
  MDST_UNREACHABLE("mark_used: not a neighbor");
}

void Node::advance(sim::IContext<Message>& ctx) {
  for (std::size_t i = 0; i < env_.neighbors.size(); ++i) {
    if (!used_[i]) {
      used_[i] = true;  // one shot per edge; response comes as Visited/Return
      ctx.send(env_.neighbors[i].id, Token{});
      return;
    }
  }
  // All incident edges explored.
  if (is_initiator_) {
    done_ = true;
    for (const sim::NodeId child : children_) ctx.send(child, Term{});
  } else {
    MDST_ASSERT(parent_ != sim::kNoNode, "returning without parent");
    ctx.send(parent_, Return{});
  }
}

void Node::on_start(sim::IContext<Message>& ctx) {
  if (!is_initiator_) return;
  visited_ = true;
  advance(ctx);
}

void Node::on_message(sim::IContext<Message>& ctx, sim::NodeId from,
                      const Message& message) {
  std::visit(
      sim::Overloaded{
          [&](const Token&) {
            if (visited_) {
              // Bounce, and never try this edge ourselves: the sender is
              // visited, so a token through it would only bounce back. This
              // keeps the classic 2-messages-per-edge budget.
              mark_used(from);
              ctx.send(from, Visited{});
              return;
            }
            visited_ = true;
            parent_ = from;
            mark_used(from);
            advance(ctx);
          },
          [&](const Visited&) { advance(ctx); },
          [&](const Return&) {
            children_.push_back(from);
            advance(ctx);
          },
          [&](const Term&) {
            MDST_ASSERT(from == parent_, "Term from non-parent");
            done_ = true;
            for (const sim::NodeId child : children_) ctx.send(child, Term{});
          },
      },
      message);
}

}  // namespace dfs

SpanningRun run_dfs_st(const graph::Graph& g, sim::NodeId initiator,
                       const sim::SimConfig& config) {
  MDST_REQUIRE(g.valid_vertex(initiator), "run_dfs_st: bad initiator");
  sim::Simulator<dfs::Protocol> simulation(
      g,
      [initiator](const sim::NodeEnv& env) {
        return dfs::Node(env, env.id == initiator);
      },
      config);
  simulation.run();
  SpanningRun result{extract_tree(simulation), simulation.metrics()};
  return result;
}

}  // namespace mdst::spanning
