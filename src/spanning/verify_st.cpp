#include "spanning/verify_st.hpp"

#include <algorithm>

#include "runtime/variant_util.hpp"
#include "support/assert.hpp"

namespace mdst::spanning {
namespace verify {

Node::Node(const sim::NodeEnv& env, sim::NodeId parent,
           std::vector<sim::NodeId> children, std::uint64_t expected_n)
    : env_(env), parent_(parent), children_(std::move(children)),
      expected_n_(expected_n) {
  // Claims about non-neighbours are view corruption we must *detect*, not
  // reject at construction — but the transport can only reach neighbours,
  // so such views are reported as locally broken immediately.
  if (parent_ != sim::kNoNode && !env_.is_neighbor(parent_)) {
    local_ok_ = false;
    parent_ = sim::kNoNode;  // cannot even claim; act as an orphan root
  }
  std::erase_if(children_, [this](sim::NodeId c) {
    if (env_.is_neighbor(c)) return false;
    local_ok_ = false;
    return true;
  });
  // Counters must exist before any message arrives — with staggered starts
  // a child may report before our own spontaneous start fires.
  awaiting_sizes_ = children_.size();
  claim_settled_ = parent_ == sim::kNoNode;
}

void Node::on_start(sim::IContext<Message>& ctx) {
  if (parent_ != sim::kNoNode) {
    ctx.send(parent_, ChildClaim{});
  }
  maybe_report(ctx);
}

void Node::maybe_report(sim::IContext<Message>& ctx) {
  if (reported_ || done_ || !claim_settled_ || awaiting_sizes_ > 0) return;
  if (parent_ == sim::kNoNode) {
    // Root: final verdict.
    verdict_ = local_ok_ && subtree_ok_ && subtree_size_ == expected_n_;
    done_ = true;
    for (const sim::NodeId child : children_) ctx.send(child, Verdict{verdict_});
    return;
  }
  reported_ = true;
  ctx.send(parent_, SizeReport{subtree_size_, local_ok_ && subtree_ok_});
}

void Node::on_message(sim::IContext<Message>& ctx, sim::NodeId from,
                      const Message& message) {
  std::visit(
      sim::Overloaded{
          [&](const ChildClaim&) {
            const bool known =
                std::find(children_.begin(), children_.end(), from) !=
                children_.end();
            if (known) {
              ctx.send(from, ClaimAck{});
            } else {
              local_ok_ = false;  // someone believes an edge we do not
              ctx.send(from, ClaimNak{});
            }
          },
          [&](const ClaimAck&) {
            claim_settled_ = true;
            maybe_report(ctx);
          },
          [&](const ClaimNak&) {
            claim_settled_ = true;
            local_ok_ = false;
            maybe_report(ctx);
          },
          [&](const SizeReport& m) {
            const bool expected =
                std::find(children_.begin(), children_.end(), from) !=
                children_.end();
            if (!expected) {
              // A node we never adopted reports through us: inconsistent.
              local_ok_ = false;
              return;
            }
            subtree_size_ += m.size;
            subtree_ok_ = subtree_ok_ && m.ok;
            MDST_ASSERT(awaiting_sizes_ > 0, "verify: unexpected SizeReport");
            --awaiting_sizes_;
            maybe_report(ctx);
          },
          [&](const Verdict& m) {
            done_ = true;
            verdict_ = m.ok;
            for (const sim::NodeId child : children_) ctx.send(child, m);
          },
      },
      message);
}

}  // namespace verify

ClaimedViews views_from_tree(const graph::RootedTree& tree) {
  ClaimedViews views;
  const std::size_t n = tree.vertex_count();
  views.parent.resize(n);
  views.children.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    views.parent[v] = tree.parent(static_cast<graph::VertexId>(v));
    views.children[v] = tree.children(static_cast<graph::VertexId>(v));
  }
  return views;
}

VerifyRun run_verify_st(const graph::Graph& g, const ClaimedViews& views,
                        const sim::SimConfig& config) {
  MDST_REQUIRE(views.parent.size() == g.vertex_count() &&
                   views.children.size() == g.vertex_count(),
               "verify: one view row per node");
  sim::Simulator<verify::Protocol> simulation(
      g,
      [&](const sim::NodeEnv& env) {
        const auto v = static_cast<std::size_t>(env.id);
        return verify::Node(env, views.parent[v], views.children[v],
                            g.vertex_count());
      },
      config);
  simulation.run();
  VerifyRun result;
  result.ok = true;
  for (std::size_t v = 0; v < simulation.node_count(); ++v) {
    const auto& node = simulation.node(static_cast<sim::NodeId>(v));
    // A starved convergecast (cycle / split views) leaves nodes undone —
    // in a deployment that is a timeout; here the drained queue reveals it.
    if (!node.done() || !node.verdict()) {
      result.ok = false;
      break;
    }
  }
  result.metrics = simulation.metrics();
  return result;
}

}  // namespace mdst::spanning
