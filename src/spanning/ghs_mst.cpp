#include "spanning/ghs_mst.hpp"

#include <algorithm>
#include <numeric>

#include "runtime/variant_util.hpp"
#include "support/assert.hpp"

namespace mdst::spanning {
namespace ghs {

Node::Node(const sim::NodeEnv& env, std::vector<EdgeWeight> weights)
    : env_(env), weights_(std::move(weights)),
      edge_state_(env_.neighbors.size(), EdgeState::kBasic) {
  MDST_REQUIRE(weights_.size() == env_.neighbors.size(),
               "ghs: one weight per incident edge");
}

std::size_t Node::edge_of(sim::NodeId neighbor) const {
  for (std::size_t i = 0; i < env_.neighbors.size(); ++i) {
    if (env_.neighbors[i].id == neighbor) return i;
  }
  MDST_UNREACHABLE("ghs: message from non-neighbor");
}

std::size_t Node::min_basic_edge() const {
  std::size_t best = SIZE_MAX;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (edge_state_[i] != EdgeState::kBasic) continue;
    if (best == SIZE_MAX || weights_[i] < weights_[best]) best = i;
  }
  return best;
}

void Node::wakeup(sim::IContext<Message>& ctx) {
  if (state_ != NodeState::kSleeping) return;
  // (1): join the MST over the locally minimal edge as a level-0 fragment.
  std::size_t m = SIZE_MAX;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (m == SIZE_MAX || weights_[i] < weights_[m]) m = i;
  }
  MDST_ASSERT(m != SIZE_MAX, "ghs: isolated node cannot join an MST");
  edge_state_[m] = EdgeState::kBranch;
  level_ = 0;
  state_ = NodeState::kFound;
  find_count_ = 0;
  ctx.send(env_.neighbors[m].id, Connect{0});
}

void Node::on_start(sim::IContext<Message>& ctx) {
  wakeup(ctx);
}

void Node::on_message(sim::IContext<Message>& ctx, sim::NodeId from,
                      const Message& message) {
  const std::size_t edge = edge_of(from);
  if (!try_handle(ctx, edge, message)) {
    deferred_.emplace_back(edge, message);
    return;
  }
  retry_deferred(ctx);
}

void Node::retry_deferred(sim::IContext<Message>& ctx) {
  if (retrying_) return;
  retrying_ = true;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < deferred_.size(); ++i) {
      auto [edge, message] = deferred_[i];
      if (try_handle(ctx, edge, message)) {
        deferred_.erase(deferred_.begin() + static_cast<std::ptrdiff_t>(i));
        progressed = true;
        break;  // state changed: rescan from the front
      }
    }
  }
  retrying_ = false;
}

bool Node::try_handle(sim::IContext<Message>& ctx, std::size_t edge,
                      const Message& message) {
  return std::visit(
      sim::Overloaded{
          [&](const Connect& m) -> bool {
            wakeup(ctx);
            if (m.level < level_) {
              // Absorb the lower-level fragment.
              edge_state_[edge] = EdgeState::kBranch;
              ctx.send(env_.neighbors[edge].id,
                       Initiate{level_, fragment_, state_ == NodeState::kFind});
              if (state_ == NodeState::kFind) ++find_count_;
              return true;
            }
            if (edge_state_[edge] == EdgeState::kBasic) {
              return false;  // defer until our level catches up
            }
            // Symmetric Connect over the (branch) edge: merge; the edge
            // becomes the new core and its weight the fragment identity.
            ctx.send(env_.neighbors[edge].id,
                     Initiate{level_ + 1, weights_[edge], true});
            return true;
          },
          [&](const Initiate& m) -> bool {
            level_ = m.level;
            fragment_ = m.fragment;
            state_ = m.find ? NodeState::kFind : NodeState::kFound;
            in_branch_ = edge;
            best_edge_ = SIZE_MAX;
            best_weight_ = kInfiniteWeight;
            for (std::size_t i = 0; i < edge_state_.size(); ++i) {
              if (i == edge || edge_state_[i] != EdgeState::kBranch) continue;
              ctx.send(env_.neighbors[i].id, m);
              if (m.find) ++find_count_;
            }
            if (m.find) do_test(ctx);
            return true;
          },
          [&](const Test& m) -> bool {
            wakeup(ctx);
            if (m.level > level_) return false;  // defer
            if (m.fragment != fragment_) {
              ctx.send(env_.neighbors[edge].id, Accept{});
              return true;
            }
            if (edge_state_[edge] == EdgeState::kBasic) {
              edge_state_[edge] = EdgeState::kRejected;
            }
            if (test_edge_ != edge) {
              ctx.send(env_.neighbors[edge].id, Reject{});
            } else {
              do_test(ctx);  // our own test crossed theirs; try the next edge
            }
            return true;
          },
          [&](const Accept&) -> bool {
            test_edge_ = SIZE_MAX;
            if (weights_[edge] < best_weight_) {
              best_weight_ = weights_[edge];
              best_edge_ = edge;
            }
            do_report(ctx);
            return true;
          },
          [&](const Reject&) -> bool {
            if (edge_state_[edge] == EdgeState::kBasic) {
              edge_state_[edge] = EdgeState::kRejected;
            }
            do_test(ctx);
            return true;
          },
          [&](const Report& m) -> bool {
            if (edge != in_branch_) {
              --find_count_;
              if (m.best < best_weight_) {
                best_weight_ = m.best;
                best_edge_ = edge;
              }
              do_report(ctx);
              return true;
            }
            if (state_ == NodeState::kFind) return false;  // defer
            if (m.best > best_weight_) {
              do_change_root(ctx);
              return true;
            }
            if (m.best == kInfiniteWeight && best_weight_ == kInfiniteWeight) {
              halt(ctx);
            }
            return true;
          },
          [&](const ChangeRoot&) -> bool {
            do_change_root(ctx);
            return true;
          },
          [&](const Done&) -> bool {
            MDST_ASSERT(!done_, "ghs: Done twice");
            done_ = true;
            parent_ = env_.neighbors[edge].id;
            for (std::size_t i = 0; i < edge_state_.size(); ++i) {
              if (i == edge || edge_state_[i] != EdgeState::kBranch) continue;
              ctx.send(env_.neighbors[i].id, Done{});
            }
            return true;
          },
      },
      message);
}

void Node::do_test(sim::IContext<Message>& ctx) {
  const std::size_t candidate = min_basic_edge();
  if (candidate != SIZE_MAX) {
    test_edge_ = candidate;
    ctx.send(env_.neighbors[candidate].id, Test{level_, fragment_});
    return;
  }
  test_edge_ = SIZE_MAX;
  do_report(ctx);
}

void Node::do_report(sim::IContext<Message>& ctx) {
  if (find_count_ != 0 || test_edge_ != SIZE_MAX) return;
  if (state_ != NodeState::kFind) return;  // only report once per Initiate
  state_ = NodeState::kFound;
  MDST_ASSERT(in_branch_ != SIZE_MAX, "ghs: report with no core direction");
  ctx.send(env_.neighbors[in_branch_].id, Report{best_weight_});
}

void Node::do_change_root(sim::IContext<Message>& ctx) {
  MDST_ASSERT(best_edge_ != SIZE_MAX, "ghs: change_root without best edge");
  if (edge_state_[best_edge_] == EdgeState::kBranch) {
    ctx.send(env_.neighbors[best_edge_].id, ChangeRoot{});
    return;
  }
  ctx.send(env_.neighbors[best_edge_].id, Connect{level_});
  edge_state_[best_edge_] = EdgeState::kBranch;
}

void Node::halt(sim::IContext<Message>& ctx) {
  // Both core endpoints detect the final all-infinite Report exchange;
  // the one with the smaller identity becomes the root and broadcasts Done.
  MDST_ASSERT(in_branch_ != SIZE_MAX, "ghs: halt without core edge");
  const graph::NodeName partner = env_.neighbors[in_branch_].name;
  if (env_.name > partner) return;  // partner becomes root
  MDST_ASSERT(!done_, "ghs: halt twice");
  done_ = true;
  parent_ = sim::kNoNode;
  for (std::size_t i = 0; i < edge_state_.size(); ++i) {
    if (edge_state_[i] != EdgeState::kBranch) continue;
    ctx.send(env_.neighbors[i].id, Done{});
  }
}

std::vector<sim::NodeId> Node::branch_neighbors() const {
  std::vector<sim::NodeId> out;
  for (std::size_t i = 0; i < edge_state_.size(); ++i) {
    if (edge_state_[i] == EdgeState::kBranch) out.push_back(env_.neighbors[i].id);
  }
  return out;
}

std::vector<sim::NodeId> Node::children() const {
  std::vector<sim::NodeId> out;
  for (const sim::NodeId nb : branch_neighbors()) {
    if (nb != parent_) out.push_back(nb);
  }
  return out;
}

}  // namespace ghs

SpanningRun run_ghs_mst_weighted(const graph::Graph& g,
                                 const std::vector<ghs::EdgeWeight>& weights,
                                 const sim::SimConfig& config) {
  MDST_REQUIRE(weights.size() == g.edge_count(), "ghs: weight per edge");
  {
    std::vector<ghs::EdgeWeight> sorted = weights;
    std::sort(sorted.begin(), sorted.end());
    MDST_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                     sorted.end(),
                 "ghs: weights must be distinct");
  }
  sim::Simulator<ghs::Protocol> simulation(
      g,
      [&](const sim::NodeEnv& env) {
        std::vector<ghs::EdgeWeight> incident;
        incident.reserve(env.neighbors.size());
        for (const sim::NeighborInfo& nb : env.neighbors) {
          const graph::EdgeId e = g.find_edge(env.id, nb.id);
          incident.push_back(weights[static_cast<std::size_t>(e)]);
        }
        return ghs::Node(env, std::move(incident));
      },
      config);
  simulation.run();
  SpanningRun result{extract_tree(simulation), simulation.metrics()};
  return result;
}

SpanningRun run_ghs_mst(const graph::Graph& g, std::uint64_t weight_seed,
                        const sim::SimConfig& config) {
  // Distinct weights: a random permutation of 1..m.
  std::vector<ghs::EdgeWeight> weights(g.edge_count());
  std::iota(weights.begin(), weights.end(), ghs::EdgeWeight{1});
  support::Rng rng(weight_seed);
  rng.shuffle(weights);
  return run_ghs_mst_weighted(g, weights, config);
}

}  // namespace mdst::spanning
