#include "spanning/flood_st.hpp"

#include "runtime/variant_util.hpp"
#include "support/assert.hpp"

namespace mdst::spanning {
namespace flood {

void Node::flood(sim::IContext<Message>& ctx, sim::NodeId except) {
  awaiting_ = 0;
  for (const sim::NeighborInfo& nb : env_.neighbors) {
    if (nb.id == except) continue;
    ctx.send(nb.id, Probe{});
    ++awaiting_;
  }
}

void Node::on_start(sim::IContext<Message>& ctx) {
  if (!is_initiator_) return;
  joined_ = true;
  flood(ctx, sim::kNoNode);
  maybe_finish(ctx);  // single-node network: immediately done
}

void Node::maybe_finish(sim::IContext<Message>& ctx) {
  if (done_ || awaiting_ != 0) return;
  if (is_initiator_) {
    // Global completion: tell everyone.
    done_ = true;
    for (const sim::NodeId child : children_) ctx.send(child, Term{});
  } else {
    MDST_ASSERT(parent_ != sim::kNoNode, "finishing without parent");
    ctx.send(parent_, Echo{});
    // Done only on Term; until then we may still receive stray Probes.
  }
}

void Node::on_message(sim::IContext<Message>& ctx, sim::NodeId from,
                      const Message& message) {
  std::visit(
      sim::Overloaded{
          [&](const Probe&) {
            if (joined_) {
              ctx.send(from, Reject{});
              return;
            }
            joined_ = true;
            parent_ = from;
            flood(ctx, from);
            maybe_finish(ctx);  // leaf: echo straight away
          },
          [&](const Echo&) {
            MDST_ASSERT(awaiting_ > 0, "unexpected Echo");
            // First child: one exactly-bounded allocation instead of
            // push_back growth (leaves never allocate at all).
            if (children_.empty()) children_.reserve(env_.neighbors.size());
            children_.push_back(from);
            --awaiting_;
            maybe_finish(ctx);
          },
          [&](const Reject&) {
            MDST_ASSERT(awaiting_ > 0, "unexpected Reject");
            --awaiting_;
            maybe_finish(ctx);
          },
          [&](const Term&) {
            MDST_ASSERT(from == parent_, "Term from non-parent");
            done_ = true;
            for (const sim::NodeId child : children_) ctx.send(child, Term{});
          },
      },
      message);
}

}  // namespace flood

SpanningRun run_flood_st(const graph::Graph& g, sim::NodeId initiator,
                         const sim::SimConfig& config) {
  MDST_REQUIRE(g.valid_vertex(initiator), "run_flood_st: bad initiator");
  sim::Simulator<flood::Protocol> simulation(
      g,
      [initiator](const sim::NodeEnv& env) {
        return flood::Node(env, env.id == initiator);
      },
      config);
  simulation.run();
  SpanningRun result{extract_tree(simulation), simulation.metrics()};
  return result;
}

}  // namespace mdst::spanning
