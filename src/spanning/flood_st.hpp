// Flooding spanning-tree construction (the classic echo / PIF algorithm).
//
// A designated initiator floods Probe messages; every node adopts the sender
// of the first Probe it sees as its parent, re-floods, and answers every
// other Probe with Reject. A node reports Echo to its parent once all its
// probes are answered and its children finished, so the initiator learns
// global completion; it then broadcasts Term down the tree, giving
// termination by process at every node.
//
// Complexity: each edge carries at most one Probe and one response in each
// direction, so <= 4m messages (2m of which are Probes/Echo on tree edges);
// time O(diameter). This is the cheapest startup tree for the MDegST phase.
#pragma once

#include <cstddef>
#include <variant>
#include <utility>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/node_env.hpp"
#include "runtime/simulator.hpp"
#include "spanning/tree_result.hpp"

namespace mdst::spanning {

namespace flood {

struct Probe {
  static constexpr const char* kName = "Probe";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};
struct Echo {
  static constexpr const char* kName = "Echo";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};
struct Reject {
  static constexpr const char* kName = "Reject";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};
struct Term {
  static constexpr const char* kName = "Term";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};

using Message = std::variant<Probe, Echo, Reject, Term>;

class Node {
 public:
  Node(const sim::NodeEnv& env, bool is_initiator)
      : env_(env), is_initiator_(is_initiator) {}

  void on_start(sim::IContext<Message>& ctx);
  void on_message(sim::IContext<Message>& ctx, sim::NodeId from,
                  const Message& message);

  bool done() const { return done_; }
  sim::NodeId parent() const { return parent_; }
  const std::vector<sim::NodeId>& children() const { return children_; }
  /// Relinquish the children list to tree extraction (see extract_tree);
  /// the node is done and never reads it again.
  std::vector<sim::NodeId> take_children() { return std::move(children_); }

 private:
  void maybe_finish(sim::IContext<Message>& ctx);
  void flood(sim::IContext<Message>& ctx, sim::NodeId except);

  sim::NodeEnv env_;
  bool is_initiator_;
  bool joined_ = false;  // has a parent or is the initiator
  bool done_ = false;
  sim::NodeId parent_ = sim::kNoNode;
  std::vector<sim::NodeId> children_;
  std::size_t awaiting_ = 0;  // responses still expected to our probes
};

struct Protocol {
  using Message = flood::Message;
  using Node = flood::Node;
};

}  // namespace flood

/// Run flooding-ST from `initiator` and return the tree plus metrics.
SpanningRun run_flood_st(const graph::Graph& g, sim::NodeId initiator,
                         const sim::SimConfig& config = {});

}  // namespace mdst::spanning
