// Common result shape for distributed spanning-tree protocols.
//
// Every protocol in this directory terminates "by process": each node ends
// in a Done state knowing its parent and children in the constructed tree.
// extract_tree() lifts those local views into a global RootedTree (something
// no node possesses — it exists only for checking and for seeding the next
// protocol phase) and cross-validates that parent/child views agree.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "runtime/metrics.hpp"
#include "runtime/types.hpp"
#include "support/assert.hpp"

namespace mdst::spanning {

struct SpanningRun {
  graph::RootedTree tree;
  sim::Metrics metrics{1, 1};
};

/// Node concept used by extract_tree: exposes done(), parent(),
/// children() (ids of adopted children).
template <typename Sim>
graph::RootedTree extract_tree(const Sim& simulation) {
  const std::size_t n = simulation.node_count();
  std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
  sim::NodeId root = sim::kNoNode;
  for (std::size_t v = 0; v < n; ++v) {
    const auto& node = simulation.node(static_cast<sim::NodeId>(v));
    MDST_ASSERT(node.done(), "protocol ended with a node not Done");
    const sim::NodeId p = node.parent();
    if (p == sim::kNoNode) {
      MDST_ASSERT(root == sim::kNoNode, "two roots in extracted tree");
      root = static_cast<sim::NodeId>(v);
    } else {
      parents[v] = p;
    }
  }
  MDST_ASSERT(root != sim::kNoNode, "no root in extracted tree");
  graph::RootedTree tree =
      graph::RootedTree::from_parents(root, std::move(parents));
  // Cross-validate the child views against the parent views in O(n): the
  // children lists, pooled, must claim each non-root vertex exactly once,
  // and each claim must match the vertex's own parent pointer. That is
  // equivalent to per-node multiset equality without the sorts and copies.
  std::vector<sim::NodeId> claimed_by(n, sim::kNoNode);
  std::size_t claims = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const auto& node = simulation.node(static_cast<sim::NodeId>(v));
    for (const sim::NodeId c : node.children()) {
      MDST_ASSERT(c >= 0 && static_cast<std::size_t>(c) < n &&
                      claimed_by[static_cast<std::size_t>(c)] == sim::kNoNode,
                  "child claimed twice or out of range");
      claimed_by[static_cast<std::size_t>(c)] = static_cast<sim::NodeId>(v);
      ++claims;
    }
  }
  MDST_ASSERT(claims == n - 1, "child views do not cover the tree");
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<sim::NodeId>(v) == root) continue;
    MDST_ASSERT(claimed_by[v] == tree.parent(static_cast<sim::NodeId>(v)),
                "child view disagrees with parent view");
  }
  return tree;
}

}  // namespace mdst::spanning
