// Common result shape for distributed spanning-tree protocols.
//
// Every protocol in this directory terminates "by process": each node ends
// in a Done state knowing its parent and children in the constructed tree.
// extract_tree() lifts those local views into a global RootedTree (something
// no node possesses — it exists only for checking and for seeding the next
// protocol phase) and cross-validates that parent/child views agree.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "runtime/metrics.hpp"
#include "runtime/types.hpp"
#include "support/assert.hpp"

namespace mdst::spanning {

struct SpanningRun {
  graph::RootedTree tree;
  sim::Metrics metrics{1, 1};
};

/// Node concept used by extract_tree: exposes done(), parent(), and
/// take_children() (relinquishes the node's adopted-children list).
///
/// The child lists are *moved* out of the finished nodes into the tree —
/// for a large run that is the difference between zero allocations and one
/// per internal vertex — and the parent/child cross-validation (each
/// non-root vertex claimed exactly once, by its own parent) now lives in
/// RootedTree::from_views together with the single-root and reachability
/// checks.
template <typename Sim>
graph::RootedTree extract_tree(Sim& simulation) {
  const std::size_t n = simulation.node_count();
  std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
  std::vector<std::vector<graph::VertexId>> children;
  children.reserve(n);
  sim::NodeId root = sim::kNoNode;
  for (std::size_t v = 0; v < n; ++v) {
    auto& node = simulation.node(static_cast<sim::NodeId>(v));
    MDST_ASSERT(node.done(), "protocol ended with a node not Done");
    const sim::NodeId p = node.parent();
    if (p == sim::kNoNode) {
      MDST_ASSERT(root == sim::kNoNode, "two roots in extracted tree");
      root = static_cast<sim::NodeId>(v);
    } else {
      parents[v] = p;
    }
    children.push_back(node.take_children());
  }
  MDST_ASSERT(root != sim::kNoNode, "no root in extracted tree");
  return graph::RootedTree::from_views(root, std::move(parents),
                                       std::move(children));
}

}  // namespace mdst::spanning
