// Common result shape for distributed spanning-tree protocols.
//
// Every protocol in this directory terminates "by process": each node ends
// in a Done state knowing its parent and children in the constructed tree.
// extract_tree() lifts those local views into a global RootedTree (something
// no node possesses — it exists only for checking and for seeding the next
// protocol phase) and cross-validates that parent/child views agree.
#pragma once

#include <algorithm>
#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "runtime/metrics.hpp"
#include "runtime/types.hpp"
#include "support/assert.hpp"

namespace mdst::spanning {

struct SpanningRun {
  graph::RootedTree tree;
  sim::Metrics metrics{1, 1};
};

/// Node concept used by extract_tree: exposes done(), parent(),
/// children() (ids of adopted children).
template <typename Sim>
graph::RootedTree extract_tree(const Sim& simulation) {
  const std::size_t n = simulation.node_count();
  std::vector<graph::VertexId> parents(n, graph::kInvalidVertex);
  sim::NodeId root = sim::kNoNode;
  for (std::size_t v = 0; v < n; ++v) {
    const auto& node = simulation.node(static_cast<sim::NodeId>(v));
    MDST_ASSERT(node.done(), "protocol ended with a node not Done");
    const sim::NodeId p = node.parent();
    if (p == sim::kNoNode) {
      MDST_ASSERT(root == sim::kNoNode, "two roots in extracted tree");
      root = static_cast<sim::NodeId>(v);
    } else {
      parents[v] = p;
    }
  }
  MDST_ASSERT(root != sim::kNoNode, "no root in extracted tree");
  graph::RootedTree tree =
      graph::RootedTree::from_parents(root, std::move(parents));
  // Cross-validate the child views against the parent views.
  for (std::size_t v = 0; v < n; ++v) {
    const auto& node = simulation.node(static_cast<sim::NodeId>(v));
    auto kids = node.children();
    std::sort(kids.begin(), kids.end());
    auto expected = tree.children(static_cast<sim::NodeId>(v));
    std::sort(expected.begin(), expected.end());
    MDST_ASSERT(kids == expected, "child view disagrees with parent view");
  }
  return tree;
}

}  // namespace mdst::spanning
