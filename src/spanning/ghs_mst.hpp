// Gallager–Humblet–Spira (GHS) distributed minimum spanning tree.
//
// The canonical asynchronous MST protocol (Gallager, Humblet, Spira 1983),
// cited by the paper as the standard way to build the startup spanning tree.
// Fragments grow by level: each fragment finds its minimum-weight outgoing
// edge (Test/Accept/Reject + Report convergecast), merges with the fragment
// across it (Connect / Initiate), levels rise only on equal-level merges, so
// levels stay <= log2 n and the message complexity is O(m + n log n).
//
// Implementation notes:
//  * Edge weights must be distinct for MST uniqueness (and for fragment
//    identities, which are core-edge weights); run_ghs_mst derives distinct
//    weights from a seed unless the caller supplies its own.
//  * The original algorithm "places a message at the end of the queue" when
//    it cannot be processed yet (Connect from a lower-level... / Test ahead
//    of level / Report during Find). Nodes here keep a local deferred list
//    that is retried after every state change — equivalent behaviour.
//  * GHS halts implicitly at the core; we add an explicit Done broadcast
//    over branch edges so that every node terminates by process knowing its
//    parent/children (the paper's requirement for the startup tree), rooted
//    at the halting core node.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/context.hpp"
#include "runtime/node_env.hpp"
#include "runtime/simulator.hpp"
#include "spanning/tree_result.hpp"
#include "support/rng.hpp"

namespace mdst::spanning {

namespace ghs {

/// Edge weights are 64-bit and must be pairwise distinct.
using EdgeWeight = std::uint64_t;
inline constexpr EdgeWeight kInfiniteWeight = ~EdgeWeight{0};

struct Connect {
  static constexpr const char* kName = "Connect";
  int level = 0;
  static constexpr std::size_t kIdsCarried = 1;
  std::size_t ids_carried() const { return kIdsCarried; }
};
struct Initiate {
  static constexpr const char* kName = "Initiate";
  int level = 0;
  EdgeWeight fragment = 0;
  bool find = false;  // state: Find or Found
  static constexpr std::size_t kIdsCarried = 3;
  std::size_t ids_carried() const { return kIdsCarried; }
};
struct Test {
  static constexpr const char* kName = "Test";
  int level = 0;
  EdgeWeight fragment = 0;
  static constexpr std::size_t kIdsCarried = 2;
  std::size_t ids_carried() const { return kIdsCarried; }
};
struct Accept {
  static constexpr const char* kName = "Accept";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};
struct Reject {
  static constexpr const char* kName = "Reject";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};
struct Report {
  static constexpr const char* kName = "Report";
  EdgeWeight best = kInfiniteWeight;
  static constexpr std::size_t kIdsCarried = 1;
  std::size_t ids_carried() const { return kIdsCarried; }
};
struct ChangeRoot {
  static constexpr const char* kName = "ChangeRoot";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};
/// Added termination broadcast (see header comment).
struct Done {
  static constexpr const char* kName = "Done";
  static constexpr std::size_t kIdsCarried = 0;
  std::size_t ids_carried() const { return kIdsCarried; }
};

using Message = std::variant<Connect, Initiate, Test, Accept, Reject, Report,
                             ChangeRoot, Done>;

class Node {
 public:
  /// `weights[i]` is the weight of the edge to env.neighbors[i].
  Node(const sim::NodeEnv& env, std::vector<EdgeWeight> weights);

  void on_start(sim::IContext<Message>& ctx);
  void on_message(sim::IContext<Message>& ctx, sim::NodeId from,
                  const Message& message);

  bool done() const { return done_; }
  sim::NodeId parent() const { return parent_; }
  std::vector<sim::NodeId> children() const;
  /// Extraction alias: children() already builds a fresh vector.
  std::vector<sim::NodeId> take_children() const { return children(); }
  /// Branch (MST) neighbours after the run.
  std::vector<sim::NodeId> branch_neighbors() const;

 private:
  enum class NodeState { kSleeping, kFind, kFound };
  enum class EdgeState { kBasic, kBranch, kRejected };

  void wakeup(sim::IContext<Message>& ctx);
  void handle(sim::IContext<Message>& ctx, std::size_t edge, const Message& m);
  bool try_handle(sim::IContext<Message>& ctx, std::size_t edge,
                  const Message& m);
  void do_test(sim::IContext<Message>& ctx);
  void do_report(sim::IContext<Message>& ctx);
  void do_change_root(sim::IContext<Message>& ctx);
  void retry_deferred(sim::IContext<Message>& ctx);
  void halt(sim::IContext<Message>& ctx);

  std::size_t edge_of(sim::NodeId neighbor) const;
  std::size_t min_basic_edge() const;  // SIZE_MAX if none

  sim::NodeEnv env_;
  std::vector<EdgeWeight> weights_;
  std::vector<EdgeState> edge_state_;
  NodeState state_ = NodeState::kSleeping;
  int level_ = 0;
  EdgeWeight fragment_ = 0;
  std::size_t in_branch_ = SIZE_MAX;   // edge toward the fragment core
  std::size_t best_edge_ = SIZE_MAX;
  EdgeWeight best_weight_ = kInfiniteWeight;
  std::size_t test_edge_ = SIZE_MAX;
  int find_count_ = 0;
  std::vector<std::pair<std::size_t, Message>> deferred_;
  bool retrying_ = false;
  bool done_ = false;
  sim::NodeId parent_ = sim::kNoNode;
};

struct Protocol {
  using Message = ghs::Message;
  using Node = ghs::Node;
};

}  // namespace ghs

/// Run GHS over `g` with distinct weights derived from `weight_seed`;
/// every node starts spontaneously. Returns the MST rooted at the core
/// node that detected termination.
SpanningRun run_ghs_mst(const graph::Graph& g, std::uint64_t weight_seed = 1,
                        const sim::SimConfig& config = {});

/// As above with caller-provided distinct weights indexed by EdgeId.
SpanningRun run_ghs_mst_weighted(const graph::Graph& g,
                                 const std::vector<ghs::EdgeWeight>& weights,
                                 const sim::SimConfig& config = {});

}  // namespace mdst::spanning
