#include "analysis/pipeline.hpp"

#include "spanning/dfs_st.hpp"
#include "spanning/flood_st.hpp"
#include "spanning/ghs_mst.hpp"
#include "spanning/leader_elect.hpp"
#include "support/assert.hpp"

namespace mdst::analysis {

const char* to_string(StartupProtocol protocol) {
  switch (protocol) {
    case StartupProtocol::kFloodSt: return "flood_st";
    case StartupProtocol::kDfsSt: return "dfs_st";
    case StartupProtocol::kGhsMst: return "ghs_mst";
    case StartupProtocol::kLeaderElect: return "leader_elect";
  }
  return "?";
}

PipelineResult run_pipeline(const graph::Graph& g, StartupProtocol protocol,
                            const core::Options& options,
                            const sim::SimConfig& sim_config,
                            bool elect_initiator) {
  PipelineResult result;
  std::uint64_t election_messages = 0;
  std::uint64_t election_time = 0;

  // Adversity targets the improvement phase: the startup protocol runs
  // fault-free (same schedule seed), so every campaign cell enters MDegST
  // from the same tree and fault effects are attributable to the protocol
  // under study, not the scaffolding (docs/faults.md).
  sim::SimConfig startup_config = sim_config;
  startup_config.faults = sim::FaultPlan{};

  sim::NodeId initiator = g.vertex_by_name(0);
  if (initiator == sim::kNoNode) initiator = 0;  // names need not include 0
  if (elect_initiator && (protocol == StartupProtocol::kFloodSt ||
                          protocol == StartupProtocol::kDfsSt)) {
    const spanning::LeaderRun election =
        spanning::run_leader_elect(g, startup_config);
    initiator = election.tree.root();
    election_messages = election.metrics.total_messages();
    election_time = election.metrics.max_causal_depth();
  }

  spanning::SpanningRun startup;
  switch (protocol) {
    case StartupProtocol::kFloodSt:
      startup = spanning::run_flood_st(g, initiator, startup_config);
      break;
    case StartupProtocol::kDfsSt:
      startup = spanning::run_dfs_st(g, initiator, startup_config);
      break;
    case StartupProtocol::kGhsMst:
      startup = spanning::run_ghs_mst(g, startup_config.seed ^ 0x6057,
                                      startup_config);
      break;
    case StartupProtocol::kLeaderElect: {
      const spanning::LeaderRun election =
          spanning::run_leader_elect(g, startup_config);
      startup.tree = election.tree;
      startup.metrics = election.metrics;
      break;
    }
  }
  result.startup_tree = startup.tree;
  result.startup_messages = startup.metrics.total_messages() + election_messages;
  result.startup_causal_time =
      startup.metrics.max_causal_depth() + election_time;

  result.mdst = core::run_mdst(g, startup.tree, options, sim_config);
  result.total_messages =
      result.startup_messages + result.mdst.metrics.total_messages();
  result.total_causal_time =
      result.startup_causal_time + result.mdst.metrics.max_causal_depth();
  return result;
}

}  // namespace mdst::analysis
