// Full distributed pipeline: startup spanning-tree protocol followed by the
// MDegST improvement phase, with end-to-end metrics.
//
// The paper assumes "a spanning tree already constructed ... the algorithm
// that constructs that tree terminates by process". This module composes the
// two phases exactly that way: the startup protocol runs to termination,
// each node's local (parent, children) view seeds its MDegST node, and the
// two message/time meters are composed sequentially.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "mdst/engine.hpp"
#include "mdst/options.hpp"
#include "runtime/simulator.hpp"

namespace mdst::analysis {

enum class StartupProtocol {
  kFloodSt,       // echo/PIF flooding from the min-identity leader
  kDfsSt,         // token DFS from the min-identity leader
  kGhsMst,        // GHS minimum spanning tree (random distinct weights)
  kLeaderElect,   // echo-wave extinction; tree = winning wave tree
};
const char* to_string(StartupProtocol protocol);

struct PipelineResult {
  graph::RootedTree startup_tree;
  core::RunResult mdst;
  /// Messages/causal time of the startup phase alone.
  std::uint64_t startup_messages = 0;
  std::uint64_t startup_causal_time = 0;
  /// End-to-end totals (startup + improvement, sequential composition).
  std::uint64_t total_messages = 0;
  std::uint64_t total_causal_time = 0;
};

/// Run startup + MDegST. The startup initiator (where one is needed) is the
/// minimum-identity node, chosen by a leader election when
/// `elect_initiator` is set, or directly (by global knowledge, free of
/// charge) otherwise.
PipelineResult run_pipeline(const graph::Graph& g, StartupProtocol protocol,
                            const core::Options& options = {},
                            const sim::SimConfig& sim_config = {},
                            bool elect_initiator = false);

}  // namespace mdst::analysis
