// Experiment harness shared by every bench binary: builds an instance,
// constructs the initial tree, runs the distributed algorithm, and returns
// one flat record per trial. All stochastic choices derive from
// (base_seed, family, n, repetition) so any table row can be reproduced in
// isolation.
#pragma once

#include <cstdint>
#include <string>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/engine.hpp"
#include "mdst/options.hpp"
#include "runtime/simulator.hpp"

namespace mdst::analysis {

struct TrialSpec {
  std::string family = "gnp_sparse";
  std::size_t n = 64;
  std::uint64_t base_seed = 0x5eed;
  std::uint64_t repetition = 0;
  graph::InitialTreeKind initial_tree = graph::InitialTreeKind::kRandom;
  core::Options options;
  sim::DelayModel delay = sim::DelayModel::unit();
  /// Shuffle node names so identities differ from storage indices.
  bool shuffle_names = true;
};

struct TrialRecord {
  // Instance shape.
  std::size_t n = 0;
  std::size_t m = 0;
  int graph_max_degree = 0;
  // Degrees.
  int k_init = 0;
  int k_final = 0;
  // Paper cost measures.
  std::uint64_t messages = 0;
  std::uint64_t causal_time = 0;
  std::uint64_t max_message_bits = 0;
  std::uint64_t max_ids = 0;
  // Round structure.
  std::uint32_t rounds = 0;
  std::uint64_t improvements = 0;
  core::StopReason stop_reason = core::StopReason::kNotStopped;
  // Full engine output for callers that need more.
  core::RunResult run;
  graph::Graph graph;
  graph::RootedTree initial_tree;
};

/// Build the instance for a spec (same graph for the same coordinates).
graph::Graph build_instance(const TrialSpec& spec);

/// Run one full trial (instance + initial tree + distributed MDegST).
TrialRecord run_trial(const TrialSpec& spec);

/// The paper's per-run message budget (k - k* + 1) * m and time budget
/// (k - k* + 1) * n; callers divide measurements by these.
double message_budget(const TrialRecord& r);
double time_budget(const TrialRecord& r);

}  // namespace mdst::analysis
