#include "analysis/experiment.hpp"

#include "support/assert.hpp"

namespace mdst::analysis {

graph::Graph build_instance(const TrialSpec& spec) {
  const graph::FamilySpec& family = graph::family_by_name(spec.family);
  support::Rng rng(support::derive_seed(
      spec.base_seed, std::hash<std::string>{}(spec.family), spec.n,
      spec.repetition));
  graph::Graph g = family.make(spec.n, rng);
  if (spec.shuffle_names) {
    graph::assign_random_names(g, rng);
  }
  return g;
}

TrialRecord run_trial(const TrialSpec& spec) {
  TrialRecord record;
  record.graph = build_instance(spec);
  const graph::Graph& g = record.graph;
  support::Rng tree_rng(support::derive_seed(
      spec.base_seed ^ 0xabcdef, std::hash<std::string>{}(spec.family),
      spec.n, spec.repetition));
  record.initial_tree = graph::build_initial_tree(g, spec.initial_tree, tree_rng);

  sim::SimConfig sim_config;
  sim_config.delay = spec.delay;
  sim_config.seed = support::derive_seed(spec.base_seed ^ 0x51u, spec.n,
                                         spec.repetition);

  record.run = core::run_mdst(g, record.initial_tree, spec.options, sim_config);

  record.n = g.vertex_count();
  record.m = g.edge_count();
  record.graph_max_degree = static_cast<int>(g.max_degree());
  record.k_init = record.run.initial_degree;
  record.k_final = record.run.final_degree;
  record.messages = record.run.metrics.total_messages();
  record.causal_time = record.run.metrics.max_causal_depth();
  record.max_message_bits = record.run.metrics.max_message_bits();
  record.max_ids = record.run.metrics.max_ids_carried();
  record.rounds = record.run.rounds;
  record.improvements = record.run.improvements;
  record.stop_reason = record.run.stop_reason;
  return record;
}

double message_budget(const TrialRecord& r) {
  const double delta = static_cast<double>(r.k_init - r.k_final) + 1.0;
  return delta * static_cast<double>(r.m);
}

double time_budget(const TrialRecord& r) {
  const double delta = static_cast<double>(r.k_init - r.k_final) + 1.0;
  return delta * static_cast<double>(r.n);
}

}  // namespace mdst::analysis
