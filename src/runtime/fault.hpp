// Deterministic adversity: crash-stop faults, lossy links, link churn, and
// per-link FIFO exemptions, all driven by one declarative FaultPlan.
//
// The simulator's channel model through PR 5 is the paper's friendly one —
// static graph, reliable FIFO links. A FaultPlan bends exactly that model,
// nothing else: SimCore consults a FaultEngine behind a single cached
// "plan active" branch in its send and delivery paths, so an inactive plan
// (`FaultPlan{}` / campaign `faults = none`) leaves every trace, metric,
// and RNG stream byte-identical to a build without the subsystem
// (tests/runtime/fault_test.cpp pins this).
//
// Fault model (docs/faults.md has the full write-up):
//   * crash-stop  — a drawn (or explicit) node set stops executing at
//     `crash_time`: every event addressed to a crashed node at t >=
//     crash_time is dropped at delivery, so a crashed node neither handles
//     nor sends. Messages it sent *before* crashing still arrive — the
//     classical crash-stop prefix semantics.
//   * loss + ARQ  — each link attempt is lost with probability `loss`. The
//     link layer retransmits every `retransmit_timeout` ticks until an
//     attempt survives, so loss is survivable and shows up as latency plus
//     a metered retransmit count, never as a silent drop. (Equivalently:
//     an ack/timer stop-and-wait layer, collapsed at send time — the
//     simulator knows each attempt's fate up front, so it schedules the
//     one successful delivery directly instead of simulating duds.)
//   * churn       — every undirected edge cycles `churn_up` ticks up then
//     `churn_down` ticks down, with an independent random phase per edge;
//     attempts made while the link is down fail like lost attempts.
//   * non-FIFO    — a `non_fifo_fraction` of edges is exempted from the
//     per-link FIFO floors, allowing reordering on those links.
//
// Determinism: every fault draw (crash set, churn phases, non-FIFO flags,
// per-attempt loss) comes from a dedicated RNG stream seeded by
// `FaultPlan::seed` — never from the schedule RNG — so activating faults
// does not shift delay draws, and a trial's fault pattern depends only on
// (seed, graph shape), not on thread count or shard assignment. The
// campaign runner derives the seed as
// derive_seed(base_seed ^ 0xf417, n, repetition) (campaign/runner.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/types.hpp"
#include "support/rng.hpp"

namespace mdst::sim {

/// ARQ retransmit-timer policy (`arq_backoff` spec knob): `kFixed` retries
/// every retransmit_timeout ticks (the PR 6 behavior, and the default so
/// existing fault cells never shift); `kExp` doubles the gap per failed
/// attempt (capped) and adds jitter drawn from the same per-message stream.
enum class ArqBackoff : std::uint8_t { kFixed, kExp };

/// Declarative adversity plan; inert (and cost-free) unless active().
struct FaultPlan {
  /// Crash-stop `crash_count` nodes (drawn from the fault stream) — or the
  /// explicit `crash_nodes` set — at simulated time `crash_time`.
  Time crash_time = 0;
  std::uint32_t crash_count = 0;
  std::vector<NodeId> crash_nodes;
  /// State-corruption faults (`corrupt(r,k)`): at time `corrupt_time`,
  /// `corrupt_count` drawn nodes — or the explicit `corrupt_nodes` set —
  /// have their protocol state scrambled through the node's corrupt()
  /// hook. Targets draw from their own stream (seed ^ 0xc0de), appended
  /// after every existing draw, so adding corruption to a plan never
  /// shifts the crash set, churn phases, or FIFO exemptions. Corrupting a
  /// crashed node is a no-op (the hook never runs on casualties).
  Time corrupt_time = 0;
  std::uint32_t corrupt_count = 0;
  std::vector<NodeId> corrupt_nodes;
  /// Per-attempt link-loss probability in [0, 1]. p = 1.0 means every
  /// attempt fails until the attempt cap forces the last one through —
  /// ARQ survivability degenerates to one very late delivery.
  double loss = 0.0;
  /// Link churn windows; churn is active iff churn_down > 0 (and then
  /// churn_up must be >= 1 so every link is periodically usable).
  Time churn_up = 0;
  Time churn_down = 0;
  /// Fraction of edges (drawn per edge) exempt from FIFO floors.
  double non_fifo_fraction = 0.0;
  /// ARQ timer: a failed attempt retries this many ticks later.
  Time retransmit_timeout = 4;
  /// Retransmit-timer policy; kFixed keeps the historical draw sequence.
  ArqBackoff arq_backoff = ArqBackoff::kFixed;
  /// Collapsed stop-and-wait attempt budget: after this many failed
  /// attempts the next one is delivered unconditionally (loss = 1.0 and
  /// long churn outages stay survivable, just slow). The default matches
  /// the historical hard-coded cap.
  std::uint64_t arq_attempt_cap = 100'000;
  /// Wedge-watchdog wall-clock cap (0 = none): run_mdst stops stepping and
  /// reports `wedged` when simulated time passes this.
  Time max_time = 0;
  /// Seed of the dedicated fault RNG stream.
  std::uint64_t seed = 0x0fa1;

  bool corrupts() const {
    return corrupt_count > 0 || !corrupt_nodes.empty();
  }

  bool active() const {
    return crash_count > 0 || !crash_nodes.empty() || corrupts() ||
           loss > 0.0 || churn_down > 0 || non_fifo_fraction > 0.0 ||
           max_time > 0;
  }
};

/// Adversity counters, separate from the hot Metrics tables: fault paths
/// are rare by construction, so they meter into this cold struct.
struct FaultStats {
  /// Failed link attempts recovered by the ARQ layer.
  std::uint64_t retransmits = 0;
  /// Events dropped at delivery because the destination had crashed
  /// (includes suppressed start events of crashed-from-birth nodes).
  std::uint64_t dropped_deliveries = 0;
  /// Events discarded undelivered by the watchdog's time cap.
  std::uint64_t discarded_events = 0;
  /// Size of the crash set (whether or not the crash time was reached).
  std::uint32_t crash_set_size = 0;
  /// Nodes whose corrupt() hook actually ran (crashed targets are no-ops
  /// and do not count).
  std::uint32_t corrupted_nodes = 0;
};

/// How an adverse run ended (engine-level outcome taxonomy; docs/faults.md).
enum class RunOutcome : std::uint8_t {
  kOk,         ///< terminated normally; no crash fired
  kReRooted,   ///< terminated around crashed nodes: all live nodes done and
               ///< their parent pointers still form a spanning tree
  kRecovered,  ///< the self-healing layer intervened (re-election floods
               ///< fired) and the run still converged to a valid spanning
               ///< tree over the live nodes
  kWedged,     ///< queue drained with live unterminated nodes, a live
               ///< subtree stranded behind a crashed parent, or the time
               ///< cap hit
};
const char* to_string(RunOutcome outcome);

/// Runtime realization of a FaultPlan for one simulation: the drawn crash
/// set, per-edge churn phases and FIFO exemptions, the fault RNG stream,
/// and the counters. Owned by SimCore, consulted only when the plan is
/// active. Non-template on purpose — SimCore<Message> calls through
/// ordinary linkage and the fault logic compiles once.
class FaultEngine {
 public:
  /// `slot_edge` maps each directed CSR slot to its undirected edge id
  /// (both directions of a link share churn and FIFO-exemption state).
  FaultEngine(const FaultPlan& plan, std::size_t node_count,
              std::size_t edge_count, std::vector<std::uint32_t> slot_edge);

  /// Apply loss + churn to one send: given the fault-free delivery time
  /// `deliver_at` for a message sent now, return the delivery time of the
  /// first surviving link attempt (metering the failed ones). Monotone in
  /// `deliver_at`, so FIFO floors still apply downstream.
  Time transform_delivery(std::size_t slot, Time now, Time deliver_at);

  /// Keyed (counter-based) variant for the sharded engine: the same
  /// collapsed stop-and-wait loop, but every loss draw comes from a fresh
  /// stream derived from (plan seed, slot, seq) instead of the engine's
  /// sequential member rng — so the attempt fates of the seq-th message on
  /// a directed link are a pure function of the plan, identical for any
  /// shard count and any interleaving. Const: retransmits meter into the
  /// caller's (per-shard) stats, and the member rng is never touched.
  Time transform_delivery_keyed(std::size_t slot, std::uint32_t seq, Time now,
                                Time deliver_at, FaultStats& stats) const;

  /// True when `slot`'s edge is exempt from FIFO floors under the plan.
  bool fifo_exempt(std::size_t slot) const {
    return !non_fifo_.empty() && non_fifo_[slot_edge_[slot]] != 0;
  }

  /// True when node `v` has crash-stopped by time `t`.
  bool crashed_at(NodeId v, Time t) const {
    return t >= plan_.crash_time &&
           !crash_mask_.empty() &&
           crash_mask_[static_cast<std::size_t>(v)] != 0;
  }

  /// The drawn corruption target set, in ascending node order (empty when
  /// the plan corrupts nobody). The engine applies Node::corrupt to each
  /// live target once simulated time reaches plan().corrupt_time, with a
  /// per-node scramble stream derive_seed(seed ^ 0xc0de, node, 1) — so the
  /// scramble is a pure per-node function of the plan, independent of
  /// application order and shard count.
  const std::vector<NodeId>& corrupt_targets() const {
    return corrupt_targets_;
  }

  const FaultPlan& plan() const { return plan_; }
  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  bool link_up(std::uint32_t edge, Time at) const {
    const Time period = plan_.churn_up + plan_.churn_down;
    return (at + churn_phase_[edge]) % period < plan_.churn_up;
  }

  FaultPlan plan_;
  support::Rng rng_;
  /// Per-node crash flags (empty when the plan crashes nobody).
  std::vector<std::uint8_t> crash_mask_;
  /// Per-edge churn phase offsets (empty when churn is off).
  std::vector<Time> churn_phase_;
  /// Per-edge FIFO-exemption flags (empty when non_fifo_fraction == 0).
  std::vector<std::uint8_t> non_fifo_;
  std::vector<std::uint32_t> slot_edge_;
  /// Drawn corruption targets, ascending (empty when the plan corrupts
  /// nobody).
  std::vector<NodeId> corrupt_targets_;
  FaultStats stats_;
};

}  // namespace mdst::sim
