// Core identifier and time types of the simulation runtime.
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace mdst::sim {

/// Node index inside a simulation == vertex index of the underlying graph.
using NodeId = graph::VertexId;
inline constexpr NodeId kNoNode = graph::kInvalidVertex;

/// "No receiver-side neighbor index available" — see SimContext::from_index.
inline constexpr std::uint32_t kNoNeighborIndex =
    static_cast<std::uint32_t>(-1);

/// Discrete simulated time in ticks. Message propagation plus inter-message
/// delay is "at most one time unit" in the paper's analysis model; delay
/// models below generalise that for asynchrony experiments.
using Time = std::uint64_t;

}  // namespace mdst::sim
