#include "runtime/fault.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace mdst::sim {

const char* to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kOk: return "ok";
    case RunOutcome::kReRooted: return "re_rooted";
    case RunOutcome::kRecovered: return "recovered";
    case RunOutcome::kWedged: return "wedged";
  }
  return "?";
}

FaultEngine::FaultEngine(const FaultPlan& plan, std::size_t node_count,
                         std::size_t edge_count,
                         std::vector<std::uint32_t> slot_edge)
    : plan_(plan), rng_(plan.seed), slot_edge_(std::move(slot_edge)) {
  MDST_REQUIRE(plan_.loss >= 0.0 && plan_.loss <= 1.0,
               "fault plan: loss probability must be in [0,1]");
  MDST_REQUIRE(plan_.churn_down == 0 || plan_.churn_up >= 1,
               "fault plan: churn_up must be >= 1 when churn is on");
  MDST_REQUIRE(plan_.non_fifo_fraction >= 0.0 && plan_.non_fifo_fraction <= 1.0,
               "fault plan: non_fifo_fraction must be in [0,1]");
  MDST_REQUIRE((plan_.loss == 0.0 && plan_.churn_down == 0) ||
                   plan_.retransmit_timeout >= 1,
               "fault plan: retransmit_timeout must be >= 1");
  MDST_REQUIRE(plan_.arq_attempt_cap >= 1,
               "fault plan: arq_attempt_cap must be >= 1");
  // Draw order is part of the determinism contract (docs/faults.md): crash
  // set, then churn phases, then FIFO exemptions — so adding one fault kind
  // to a plan never reshuffles another kind's draws across runs of the
  // same seed.
  if (!plan_.crash_nodes.empty() || plan_.crash_count > 0) {
    crash_mask_.assign(node_count, 0);
    std::uint32_t drawn = 0;
    for (const NodeId v : plan_.crash_nodes) {
      MDST_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < node_count,
                   "fault plan: crash node out of range");
      if (crash_mask_[static_cast<std::size_t>(v)] == 0) ++drawn;
      crash_mask_[static_cast<std::size_t>(v)] = 1;
    }
    if (plan_.crash_count > 0) {
      // Partial Fisher–Yates over the identity permutation: the first
      // `crash_count` drawn positions crash. At least one node always
      // survives — crashing everybody makes every outcome trivially
      // wedged and defeats the re-rooting taxonomy.
      const auto want = static_cast<std::uint32_t>(std::min<std::size_t>(
          plan_.crash_count, node_count > 1 ? node_count - 1 : 0));
      std::vector<NodeId> order(node_count);
      for (std::size_t v = 0; v < node_count; ++v) {
        order[v] = static_cast<NodeId>(v);
      }
      for (std::size_t i = 0; i < want; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng_.next_below(node_count - i));
        std::swap(order[i], order[j]);
        if (crash_mask_[static_cast<std::size_t>(order[i])] == 0) ++drawn;
        crash_mask_[static_cast<std::size_t>(order[i])] = 1;
      }
    }
    stats_.crash_set_size = drawn;
  }
  if (plan_.churn_down > 0) {
    const Time period = plan_.churn_up + plan_.churn_down;
    churn_phase_.resize(edge_count);
    for (Time& phase : churn_phase_) phase = rng_.next_below(period);
  }
  if (plan_.non_fifo_fraction > 0.0) {
    non_fifo_.resize(edge_count);
    for (std::uint8_t& flag : non_fifo_) {
      flag = rng_.next_bool(plan_.non_fifo_fraction) ? 1 : 0;
    }
  }
  if (plan_.corrupts()) {
    // Corruption targets come from their own derived stream — never the
    // member rng_ above — so adding `corrupt(r,k)` to an existing plan
    // leaves the crash set, churn phases, and FIFO flags byte-identical.
    support::Rng corrupt_rng(plan_.seed ^ 0xc0de);
    std::vector<std::uint8_t> mask(node_count, 0);
    for (const NodeId v : plan_.corrupt_nodes) {
      MDST_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < node_count,
                   "fault plan: corrupt node out of range");
      mask[static_cast<std::size_t>(v)] = 1;
    }
    if (plan_.corrupt_count > 0) {
      const auto want = static_cast<std::uint32_t>(
          std::min<std::size_t>(plan_.corrupt_count, node_count));
      std::vector<NodeId> order(node_count);
      for (std::size_t v = 0; v < node_count; ++v) {
        order[v] = static_cast<NodeId>(v);
      }
      for (std::size_t i = 0; i < want; ++i) {
        const std::size_t j = i + static_cast<std::size_t>(
                                      corrupt_rng.next_below(node_count - i));
        std::swap(order[i], order[j]);
        mask[static_cast<std::size_t>(order[i])] = 1;
      }
    }
    for (std::size_t v = 0; v < node_count; ++v) {
      if (mask[v] != 0) corrupt_targets_.push_back(static_cast<NodeId>(v));
    }
  }
}

namespace {

/// Collapsed stop-and-wait ARQ shared by the sequential and keyed variants:
/// attempt i goes out at now + gap(i) past the previous one and fails if
/// the link is down or the loss draw bites; the message arrives with the
/// first surviving attempt. Loss < 1 and churn_up >= 1 make success
/// certain; the attempt cap bounds the astronomically unlikely tail (and
/// deliberate loss = 1.0 plans) — a capped message still delivers, late,
/// rather than silently vanishing. Under kExp the retry gap doubles per
/// failure (capped at 64x the base timer) with jitter in [0, gap) drawn
/// from the same stream; the jitter draw happens only on the kExp path, so
/// kFixed plans replay the exact historical draw sequence.
template <typename LinkUp, typename Rand>
Time collapsed_arq(const FaultPlan& plan, std::uint32_t edge, Time now,
                   Time deliver_at, FaultStats& stats, LinkUp&& link_up,
                   Rand& rng) {
  const bool lossy = plan.loss > 0.0;
  const bool churny = plan.churn_down > 0;
  Time offset = 0;
  Time gap = plan.retransmit_timeout;
  std::uint64_t failed = 0;
  while (failed < plan.arq_attempt_cap) {
    const bool up = !churny || link_up(edge, now + offset);
    if (up && !(lossy && rng.next_bool(plan.loss))) break;
    ++failed;
    if (plan.arq_backoff == ArqBackoff::kExp) {
      offset += gap + static_cast<Time>(rng.next_below(gap));
      const Time cap = plan.retransmit_timeout * 64;
      gap = std::min<Time>(gap * 2, cap);
    } else {
      offset += gap;
    }
  }
  stats.retransmits += failed;
  return deliver_at + offset;
}

}  // namespace

Time FaultEngine::transform_delivery(std::size_t slot, Time now,
                                     Time deliver_at) {
  const bool lossy = plan_.loss > 0.0;
  const bool churny = plan_.churn_down > 0;
  if (!lossy && !churny) return deliver_at;
  const std::uint32_t edge = slot_edge_[slot];
  return collapsed_arq(
      plan_, edge, now, deliver_at, stats_,
      [this](std::uint32_t e, Time at) { return link_up(e, at); }, rng_);
}

Time FaultEngine::transform_delivery_keyed(std::size_t slot, std::uint32_t seq,
                                           Time now, Time deliver_at,
                                           FaultStats& stats) const {
  const bool lossy = plan_.loss > 0.0;
  const bool churny = plan_.churn_down > 0;
  if (!lossy && !churny) return deliver_at;
  const std::uint32_t edge = slot_edge_[slot];
  // Same collapsed ARQ as transform_delivery, with the draws keyed by the
  // message's (slot, seq) identity: the stream constant keeps the keyed
  // draws disjoint from every other derived stream of the plan seed.
  support::Rng keyed(
      support::derive_seed(plan_.seed ^ 0x10555a6e, slot, seq));
  return collapsed_arq(
      plan_, edge, now, deliver_at, stats,
      [this](std::uint32_t e, Time at) { return link_up(e, at); }, keyed);
}

}  // namespace mdst::sim
