// Protocol-independent core of the discrete-event simulator.
//
// SimCore<Message> owns everything about the simulated network that does
// not depend on the protocol's node type: the channel-model configuration,
// rng, metrics, trace, the directed-incidence CSR adjacency, per-link FIFO
// floors, the calendar queue of in-flight events, and the send/inject
// paths. Simulator<P> (simulator.hpp) composes a SimCore with the node
// array and the delivery loop.
//
// SimContext<Message> is the concrete context bound to a SimCore. It still
// derives from IContext<Message>, so protocol nodes written against the
// virtual interface — the spanning-tree baselines, the synchronizers, mock
// contexts in tests — bind to it unchanged. But the class and its methods
// are `final`, and its bodies live here in the header: a node type
// templated directly on SimContext (the MDegST fast path,
// mdst::core::Protocol::Node) calls send()/now() with *no virtual
// dispatch*, and the whole send path — neighbor validation, delay draw,
// queue emplace — inlines into the handler's own translation unit.
//
// Event-engine internals (see docs/perf.md for design + measurements):
//   * events sit in a bucketed CalendarQueue — O(1) push/pop FIFO rings per
//     tick instead of a binary-heap reshuffle of fat by-value events;
//   * the network is held as a directed-incidence CSR (adj_off_/adj_peer_),
//     so neighbor validation and per-link state are linear array scans;
//   * per-directed-link FIFO floors live in a flat vector indexed by CSR
//     slot, skipped entirely under unit delays where they provably never
//     bind.
#pragma once

#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/calendar_queue.hpp"
#include "runtime/context.hpp"
#include "runtime/delay.hpp"
#include "runtime/fault.hpp"
#include "runtime/memory_report.hpp"
#include "runtime/metrics.hpp"
#include "runtime/node_env.hpp"
#include "runtime/trace.hpp"
#include "runtime/variant_util.hpp"
#include "support/assert.hpp"
#include "support/compiler.hpp"
#include "support/rng.hpp"

namespace mdst::sim {

struct SimConfig {
  DelayModel delay = DelayModel::unit();
  /// Per-link FIFO ordering (standard model assumption; switch off only for
  /// robustness experiments).
  bool fifo_links = true;
  std::uint64_t seed = 1;
  /// Node i spontaneously starts at a uniform time in [0, start_spread].
  Time start_spread = 0;
  /// Hard cap on total sends — converts protocol livelock bugs into loud
  /// failures instead of hung experiments.
  std::uint64_t max_messages = 50'000'000;
  /// Retain at most this many trace rows (0 disables tracing).
  std::size_t trace_cap = 0;
  /// Bounded-metrics mode: retain at most this many annotations (a ring of
  /// the most recent ones; Metrics::set_annotation_cap). 0 = full history.
  /// Counters, bit totals, and watermarks stay exact either way — only the
  /// per-round annotation *history* is windowed, so million-node runs stop
  /// accruing O(rounds) annotation memory (docs/perf.md "Memory model").
  std::size_t annotation_cap = 0;
  /// Intra-trial shard workers: 0 selects the classic single-threaded
  /// engine (Simulator); K >= 1 selects the sharded engine
  /// (ShardedSimulator, runtime/sharded_sim.hpp) with K lanes. The sharded
  /// engine's outputs are byte-identical for any K >= 1 but differ from
  /// the classic engine's (its randomness is keyed per link-message rather
  /// than drawn sequentially), so 0 vs 1 is an engine choice, not a thread
  /// count.
  std::uint32_t shards = 0;
  /// Adversity plan (runtime/fault.hpp). Inactive by default: the channel
  /// model stays the paper's reliable-FIFO one and the fault paths cost a
  /// single cached-bool branch.
  FaultPlan faults;

  /// Config for large-n sweeps: MDegST message complexity grows
  /// superlinearly (n=1024 → ~5.7M messages, n=4096 → ~80M, and the
  /// measured msgs ≈ 2.5·rounds·m law reaches ~10^12 at n = 10^6 from a
  /// star start), so the default 50M livelock cap trips on healthy large
  /// runs. The accounting path is u64 end-to-end, so the cap is set to a
  /// real 10^12-capable budget, and annotations are bounded (the counters
  /// every campaign row reads stay exact) so memory stays O(n + m), not
  /// O(rounds). See docs/perf.md ("Large-n sweeps", "Memory model").
  static SimConfig large_n_sweep() {
    SimConfig config;
    config.max_messages = 1'000'000'000'000;
    config.annotation_cap = 4096;
    return config;
  }
};

enum class EventKind : std::uint8_t { kStart, kMessage, kTimer };

/// Queue payload; delivery time and send order live in the CalendarQueue
/// slab node, not here.
template <typename Message>
struct Event {
  EventKind kind = EventKind::kMessage;
  /// ids_carried() of the payload, computed at *send* time — where the
  /// typed fast path knows the alternative statically, so the count
  /// constant-folds into the send site (or is one inlined field compare
  /// for the payload-dependent types). Rides padding bytes behind `kind`;
  /// the delivery loop meters from this field and never visits the
  /// variant (metrics_equivalence_test pins it against a per-delivery
  /// reference visit).
  std::uint16_t ids = 0;
  NodeId to = kNoNode;
  NodeId from = kNoNode;
  /// Index of `from` in the receiver's neighbor row (reverse CSR),
  /// precomputed at send time so handlers avoid an O(deg) rescan;
  /// kNoNeighborIndex for starts and external injects.
  std::uint32_t from_index = kNoNeighborIndex;
  Message payload{};
  std::uint64_t causal_depth = 0;
  Time send_time = 0;
};

template <typename Message>
class SimCore {
 public:
  using EventT = Event<Message>;
  using Queue = CalendarQueue<EventT>;

  SimCore(const graph::Graph& graph, const SimConfig& config)
      : config_(config),
        rng_(config.seed),
        metrics_(type_infos(), id_bits_for(graph.vertex_count())),
        trace_(config.trace_cap) {
    const std::size_t n = graph.vertex_count();
    MDST_REQUIRE(n > 0, "simulator: empty graph");
    if (config_.annotation_cap != 0) {
      metrics_.set_annotation_cap(config_.annotation_cap);
    }
    envs_.reserve(n);
    depth_.assign(n, 0);
    adj_off_.assign(n + 1, 0);
    // The network build is part of every end-to-end run, so it is one CSR
    // sweep emitting everything at once: the flat NeighborInfo pool (one
    // array for the whole network; envs hold spans into it, so
    // protocol-side neighbor scans are cache-linear and a NodeEnv copy
    // costs nothing) and the directed-link CSR with each slot's *reverse
    // index* — the sender's position in the receiver's row, packed next to
    // the peer id so the send path reads both from one cache line and each
    // event can be stamped with the receiver-side index of its sender.
    // Reverse indices pair up by edge id: the first visit of edge e records
    // its row position in pos[e]; the second visit (the higher-id endpoint,
    // whose partner's row offset is already final) fills both directions.
    const std::size_t slots = 2 * graph.edge_count();
    neighbor_pool_.reserve(slots);  // reserve + push: no zero-init pass
    links_.reserve(slots);
    // The fault engine's per-link state (churn windows, FIFO exemptions) is
    // per undirected edge; the slot → edge map that addresses it is built
    // inside the same CSR sweep, but only under an active plan — an
    // inactive plan allocates nothing.
    faults_active_ = config_.faults.active();
    std::vector<std::uint32_t> slot_edge;
    if (faults_active_) slot_edge.reserve(slots);
    std::vector<std::uint32_t> pos(graph.edge_count(), kNoNeighborIndex);
    for (std::size_t v = 0; v < n; ++v) {
      std::uint32_t j = 0;
      for (const graph::Incidence& inc :
           graph.neighbors(static_cast<NodeId>(v))) {
        const NodeId u = inc.neighbor;
        const std::size_t e = static_cast<std::size_t>(inc.edge);
        if (faults_active_) {
          slot_edge.push_back(static_cast<std::uint32_t>(e));
        }
        neighbor_pool_.push_back({u, graph.name(u)});
        if (pos[e] == kNoNeighborIndex) {
          pos[e] = j;
          links_.push_back({u, kNoNeighborIndex});  // patched on 2nd visit
        } else {
          links_.push_back({u, pos[e]});
          links_[adj_off_[static_cast<std::size_t>(u)] + pos[e]]
              .reverse_index = j;
        }
        ++j;
      }
      adj_off_[v + 1] = adj_off_[v] + j;
    }
    for (std::size_t v = 0; v < n; ++v) {
      NodeEnv env;
      env.id = static_cast<NodeId>(v);
      env.name = graph.name(static_cast<NodeId>(v));
      env.neighbors = std::span<const NeighborInfo>(
          neighbor_pool_.data() + adj_off_[v], adj_off_[v + 1] - adj_off_[v]);
      envs_.push_back(env);
    }
    // Unit delays deliver every message at now + 1 and floors are monotone
    // in send time, so the per-directed-link FIFO floor can never bind —
    // skip both the array and the per-send bookkeeping in that case.
    fifo_floors_active_ = config_.fifo_links && !config_.delay.is_unit();
    unit_delay_ = config_.delay.is_unit();
    if (fifo_floors_active_) fifo_floor_.assign(links_.size(), 0);
    if (faults_active_) {
      fault_ = std::make_unique<FaultEngine>(config_.faults, n,
                                             graph.edge_count(),
                                             std::move(slot_edge));
    }
    // Schedule the spontaneous starts.
    for (std::size_t v = 0; v < n; ++v) {
      const Time at = config_.start_spread == 0
                          ? 0
                          : rng_.next_below(config_.start_spread + 1);
      EventT& ev = queue_.emplace(at);
      ev.kind = EventKind::kStart;
      ev.ids = 0;
      ev.to = static_cast<NodeId>(v);
      ev.from = kNoNode;
      ev.from_index = kNoNeighborIndex;  // slab nodes recycle: assign all
      ev.causal_depth = 0;
      ev.send_time = at;
    }
  }

  bool idle() const { return queue_.empty(); }
  Time now() const { return now_; }
  const Metrics& metrics() const { return metrics_; }
  const Trace& trace() const { return trace_; }
  const std::vector<NodeEnv>& envs() const { return envs_; }
  std::size_t node_count() const { return envs_.size(); }
  const SimConfig& config() const { return config_; }

  /// Per-subsystem byte accounting of the core's own structures (node_bytes
  /// is filled in by the owning Simulator, which holds the node array).
  MemoryReport memory_report() const {
    MemoryReport report;
    report.queue_bytes = queue_.approx_bytes();
    report.floor_bytes = fifo_floor_.capacity() * sizeof(Time);
    report.metrics_bytes = metrics_.approx_bytes();
    report.graph_bytes = neighbor_pool_.capacity() * sizeof(NeighborInfo) +
                         envs_.capacity() * sizeof(NodeEnv) +
                         depth_.capacity() * sizeof(std::uint64_t) +
                         adj_off_.capacity() * sizeof(std::uint32_t) +
                         links_.capacity() * sizeof(DirectedLink);
    return report;
  }

  /// The hot send path: validate the directed link, meter the cap, draw the
  /// delay, apply the FIFO floor, enqueue. Called by SimContext::send —
  /// directly (no vtable) from nodes templated on SimContext. `Alt` may be
  /// the whole Message variant (virtual-interface senders) or a single
  /// alternative (the typed fast path: the payload is constructed in place
  /// in the queue slab, skipping the intermediate variant copy).
  template <typename Alt>
  void send(NodeId from, NodeId to, Alt&& message) {
    const std::size_t slot = find_directed_slot(from, to);
    MDST_REQUIRE(slot != kNoSlot,
                 "send: target is not a neighbor (point-to-point model)");
    send_on_slot(from, to, slot, std::forward<Alt>(message));
  }

  /// Slot-addressed send: the caller already knows `to` sits at position
  /// `index` of `from`'s neighbor row (a cached parent/child index, a loop
  /// index over the row, or the delivery's reverse hint), so the O(deg) row
  /// scan is replaced by one cross-checked array access.
  template <typename Alt>
  void send_at_neighbor_index(NodeId from, NodeId to, std::uint32_t index,
                              Alt&& message) {
    const std::size_t slot = adj_off_[static_cast<std::size_t>(from)] + index;
    MDST_ASSERT(slot < adj_off_[static_cast<std::size_t>(from) + 1] &&
                    links_[slot].peer == to,
                "send_at_neighbor_index: index does not address the target");
    send_on_slot(from, to, slot, std::forward<Alt>(message));
  }

  /// Message injection from outside the network (tests only). Obeys the
  /// same channel model as protocol sends: it counts against
  /// `max_messages`, its delay is drawn from the configured DelayModel, and
  /// when the directed link from->to exists its FIFO floor applies. `from`
  /// may be kNoNode (or any non-neighbor) for a truly external sender,
  /// which bypasses no cap — only the per-link floor, since there is no
  /// link.
  void inject(NodeId from, NodeId to, Message&& message) {
    MDST_REQUIRE(to >= 0 && static_cast<std::size_t>(to) < envs_.size(),
                 "inject: bad destination");
    MDST_REQUIRE(
        from == kNoNode ||
            (from >= 0 && static_cast<std::size_t>(from) < envs_.size()),
        "inject: bad source");
    check_message_cap();
    ++sent_;
    // Same unit-delay fast path as send_on_slot: the unit model draws no
    // randomness, so injects land at now + 1 with zero sampling overhead
    // and identical behavior (covered by the determinism suite).
    Time deliver_at = now_ + (unit_delay_ ? 1 : config_.delay.sample(rng_));
    std::size_t slot = kNoSlot;
    if (from != kNoNode) slot = find_directed_slot(from, to);
    if (faults_active_ && slot != kNoSlot) [[unlikely]] {
      // Injected traffic on a real link obeys the plan like any send;
      // truly external injects (no link) bypass it, as they do the floors.
      deliver_at = fault_->transform_delivery(slot, now_, deliver_at);
      if (fifo_floors_active_ && !fault_->fifo_exempt(slot)) {
        deliver_at = bump_fifo_floor(slot, deliver_at);
      }
    } else if (fifo_floors_active_ && slot != kNoSlot) {
      deliver_at = bump_fifo_floor(slot, deliver_at);
    }
    const auto ids = static_cast<std::uint16_t>(switch_visit(
        message, [](const auto& m) { return m.ids_carried(); }));
    EventT& ev = queue_.emplace(deliver_at);
    ev.kind = EventKind::kMessage;
    ev.ids = ids;
    ev.to = to;
    ev.from = from;
    ev.from_index =
        slot != kNoSlot ? links_[slot].reverse_index : kNoNeighborIndex;
    ev.payload = std::move(message);
    ev.causal_depth = depth_from(from) + 1;
    ev.send_time = now_;
  }

  /// Schedule a local timer event for `self` at now + delay. Timers are the
  /// recovery layer's clock source (heartbeats, ack timeouts) and sit
  /// entirely outside the message accounting: they are not sends (no cap,
  /// no sent_ increment, no FIFO floor, no fault transform), carry no
  /// payload identity, and are never metered or traced at delivery — so a
  /// protocol that schedules no timers has byte-identical metrics with or
  /// without this path, and timers never perturb in_flight().
  void schedule_timer(NodeId self, Time delay) {
    MDST_REQUIRE(delay >= 1, "schedule_timer: delay must be >= 1");
    EventT& ev = queue_.emplace(now_ + delay);
    ev.kind = EventKind::kTimer;
    ev.ids = 0;
    ev.to = self;
    ev.from = kNoNode;
    ev.from_index = kNoNeighborIndex;
    ev.causal_depth = 0;
    ev.send_time = now_;
  }

  void annotate(const std::string& label) {
    metrics_.annotate(now_, label, in_flight());
  }
  void annotate_tag(const AnnotationTag& tag) {
    metrics_.annotate_tag(now_, tag, in_flight());
  }

  /// Queue occupancy at this instant: messages sent but not yet delivered
  /// or dropped. Computed only at annotation checkpoints (cold), from
  /// counters the hot path maintains anyway. Start events live outside the
  /// send/deliver meters, so they cancel out of the difference.
  std::uint64_t in_flight() const {
    const std::uint64_t gone =
        metrics_.total_messages() +
        (fault_ ? fault_->stats().dropped_deliveries : 0);
    return sent_ > gone ? sent_ - gone : 0;
  }

  // --- delivery-loop support (used by Simulator<P>::step) -----------------

  struct Delivery {
    EventT* event = nullptr;
    typename Queue::Ref ref = 0;
  };

  /// Pop the next event and advance the clock. Precondition: !idle(). The
  /// event is consumed in place from the queue's slab (stable across the
  /// sends a handler performs) and must be released() afterwards — the
  /// payload is never copied out of the queue.
  Delivery pop_event() {
    const auto popped = queue_.pop();
    now_ = popped.time;
    return {popped.payload, popped.ref};
  }

  /// Meter and trace one message delivery, and raise the receiver's causal
  /// depth *before* the handler runs so that messages it sends in response
  /// carry depth + 1.
  ///
  /// TraceOn is the engine-level specialization of `trace_.enabled()`: the
  /// delivery loop (Simulator<P>) picks the branch once per run, so the
  /// disabled-trace path compiles with no trace code in the loop at all.
  /// Metering is table-driven: name and identity count come from the
  /// compile-time MessageDescriptor array — one indexed load — and even
  /// the payload-dependent types cost no visit (the send path stamped
  /// ev.ids where the alternative was statically known). The causal-depth
  /// watermark piggybacks on the receiver-depth raise (a raise dominates
  /// every delivered depth, so the watermark stays exact without its own
  /// per-delivery compare).
  template <bool TraceOn>
  void account_delivery(const EventT& ev) {
    auto& d = depth_[static_cast<std::size_t>(ev.to)];
    if (ev.causal_depth > d) {
      d = ev.causal_depth;
      metrics_.note_causal_depth(ev.causal_depth);
    }
    const std::size_t type_index = ev.payload.index();
    const MessageDescriptor& desc = kMessageDescriptors<Message>[type_index];
    if (desc.dynamic_ids) {
      // The send path stamped the payload's identity count into the event
      // (where the alternative was statically known) — no variant visit
      // here.
      metrics_.count_delivery_dynamic(type_index, ev.ids, now_);
    } else {
      metrics_.count_delivery(type_index, now_);
    }
    if constexpr (TraceOn) {
      trace_.record({ev.send_time, now_, ev.from, ev.to, type_index,
                     desc.name, ev.causal_depth});
    }
  }

  /// Runtime-dispatch convenience for callers outside the specialized loop
  /// (tests driving SimCore directly).
  void account_delivery(const EventT& ev) {
    if (trace_.enabled()) {
      account_delivery<true>(ev);
    } else {
      account_delivery<false>(ev);
    }
  }

  bool trace_enabled() const { return trace_.enabled(); }

  /// Move the recorded trace out (run end only — engine-level consumers
  /// hand it to RunResult so the timeline exporter can replay it without
  /// keeping the whole simulator alive).
  Trace take_trace() { return std::move(trace_); }

  // --- adversity support (runtime/fault.hpp) ------------------------------

  /// True when a fault plan is engaged; the delivery loop's single
  /// plan-active branch.
  bool faults_active() const { return faults_active_; }
  /// True when the plan says `v` has crash-stopped by the current time.
  /// Precondition: faults_active().
  bool crashed_now(NodeId v) const { return fault_->crashed_at(v, now_); }
  /// Meter one event dropped at delivery because its destination crashed.
  void note_dropped_delivery() { ++fault_->stats().dropped_deliveries; }
  /// Meter one event discarded undelivered by the watchdog's time cap.
  void note_discarded_event() { ++fault_->stats().discarded_events; }
  /// Adversity counters (zeroes when no plan is active).
  FaultStats fault_stats() const {
    return fault_ ? fault_->stats() : FaultStats{};
  }

  /// True when the plan schedules state corruption that has not fired yet
  /// (the delivery loop checks this once per step behind the plan-active
  /// branch). Precondition for the other corrupt_* accessors.
  bool corrupt_pending() const {
    return faults_active_ && !corrupt_applied_ &&
           fault_->plan().corrupts();
  }
  Time corrupt_time() const { return fault_->plan().corrupt_time; }
  /// Drawn corruption targets, ascending. See FaultEngine::corrupt_targets.
  const std::vector<NodeId>& corrupt_targets() const {
    return fault_->corrupt_targets();
  }
  /// Mark corruption as fired and meter how many hooks actually ran.
  void note_corruption_applied(std::uint32_t corrupted) {
    corrupt_applied_ = true;
    fault_->stats().corrupted_nodes += corrupted;
  }

  /// Return a delivered event's slab node to the queue, restoring the
  /// resting `kind == kMessage` tag first — this is what lets the send
  /// path skip the kind store entirely (recycled nodes are guaranteed
  /// message-tagged at the mechanism level, not by caller discipline).
  /// Costs nothing extra: release writes the same cache line anyway.
  void release(typename Queue::Ref ref) {
    queue_.payload(ref).kind = EventKind::kMessage;
    queue_.release(ref);
  }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  /// The compile-time descriptor table, materialized for the Metrics type
  /// table (same struct — no parallel type to keep in sync).
  static std::vector<MessageDescriptor> type_infos() {
    return {kMessageDescriptors<Message>.begin(),
            kMessageDescriptors<Message>.end()};
  }

  /// CSR slot of the directed link from->to, or kNoSlot — one contiguous
  /// row scan serves neighbor validation, the FIFO-floor index, and the
  /// reverse-index stamp.
  std::size_t find_directed_slot(NodeId from, NodeId to) const {
    const auto u = static_cast<std::size_t>(from);
    if (from < 0 || u + 1 >= adj_off_.size()) return kNoSlot;
    const std::uint32_t hi = adj_off_[u + 1];
    for (std::uint32_t s = adj_off_[u]; s < hi; ++s) {
      if (links_[s].peer == to) return s;
    }
    return kNoSlot;
  }

  /// Enforce per-directed-link FIFO: never deliver before a message sent
  /// earlier on the same link. Returns the (possibly floored) delivery time.
  Time bump_fifo_floor(std::size_t slot, Time deliver_at) {
    Time& last = fifo_floor_[slot];
    if (deliver_at < last) deliver_at = last;
    last = deliver_at;
    return deliver_at;
  }

  template <typename Alt>
  void send_on_slot(NodeId from, NodeId to, std::size_t slot, Alt&& message) {
    check_message_cap();
    ++sent_;
    // The identity count is computed here, not in the delivery loop: the
    // typed fast path knows the alternative statically, so ids_carried()
    // constant-folds (or is one inlined compare for the payload-dependent
    // types) — where the old per-delivery switch_visit cost ~10% of the
    // MDST run (docs/perf.md). Computed before the payload is moved.
    std::uint16_t ids;
    if constexpr (std::is_same_v<std::decay_t<Alt>, Message>) {
      ids = static_cast<std::uint16_t>(switch_visit(
          message, [](const auto& m) { return m.ids_carried(); }));
    } else {
      ids = static_cast<std::uint16_t>(message.ids_carried());
    }
    Time deliver_at = now_ + (unit_delay_ ? 1 : config_.delay.sample(rng_));
    // The single plan-active branch on the send path: an inactive plan
    // costs one predictable compare, and the fault transform draws only
    // from the dedicated fault stream, so the delay draw above is
    // byte-identical either way.
    if (faults_active_) [[unlikely]] {
      deliver_at = fault_->transform_delivery(slot, now_, deliver_at);
      if (fifo_floors_active_ && !fault_->fifo_exempt(slot)) {
        deliver_at = bump_fifo_floor(slot, deliver_at);
      }
    } else if (fifo_floors_active_) {
      deliver_at = bump_fifo_floor(slot, deliver_at);
    }
    EventT& ev = queue_.emplace(deliver_at);
    // ev.kind is already kMessage: fresh slab nodes default to it and
    // release() restores the tag on every recycled node — so the hot path
    // never stores it.
    ev.ids = ids;
    ev.to = to;
    ev.from = from;
    ev.from_index = links_[slot].reverse_index;
    if constexpr (std::is_same_v<std::decay_t<Alt>, Message>) {
      ev.payload = std::forward<Alt>(message);
    } else {
      ev.payload.template emplace<std::decay_t<Alt>>(
          std::forward<Alt>(message));
    }
    ev.causal_depth = depth_[static_cast<std::size_t>(from)] + 1;
    ev.send_time = now_;
  }

  void check_message_cap() const {
    if (sent_ >= config_.max_messages) [[unlikely]] fail_message_cap();
  }

  /// Outlined cold path so the per-send check stays one compare + branch.
  [[noreturn]] MDST_NOINLINE void fail_message_cap() const {
    MDST_REQUIRE(false,
                 "message cap exceeded (SimConfig::max_messages = " +
                     std::to_string(config_.max_messages) +
                     ") — livelock? Healthy large-n runs need a raised cap; "
                     "see SimConfig::large_n_sweep()");
    std::abort();  // unreachable; REQUIRE above always throws
  }

  std::uint64_t depth_from(NodeId from) const {
    if (from == kNoNode) return 0;
    return depth_[static_cast<std::size_t>(from)];
  }

  SimConfig config_;
  support::Rng rng_;
  Metrics metrics_;
  Trace trace_;
  /// Backing storage for every NodeEnv::neighbors span; never reallocated
  /// after construction.
  std::vector<NeighborInfo> neighbor_pool_;
  std::vector<NodeEnv> envs_;
  std::vector<std::uint64_t> depth_;
  /// One directed CSR slot: the peer id and, packed beside it, the
  /// reverse index (position of the *source* vertex in the peer's row).
  struct DirectedLink {
    NodeId peer = kNoNode;
    std::uint32_t reverse_index = kNoNeighborIndex;
  };
  /// Directed-incidence CSR of the network: links of vertex v are
  /// links_[adj_off_[v] .. adj_off_[v+1]) in graph adjacency order.
  std::vector<std::uint32_t> adj_off_;
  std::vector<DirectedLink> links_;
  /// Latest scheduled delivery per directed link, indexed by CSR slot.
  /// Empty (and unread) when fifo_floors_active_ is false.
  std::vector<Time> fifo_floor_;
  /// Realized fault plan; null exactly when faults_active_ is false.
  std::unique_ptr<FaultEngine> fault_;
  bool faults_active_ = false;
  /// One-shot latch: set once the plan's corruption scramble has run.
  bool corrupt_applied_ = false;
  bool fifo_floors_active_ = false;
  bool unit_delay_ = false;
  Queue queue_;
  Time now_ = 0;
  std::uint64_t sent_ = 0;
};

/// Concrete context bound to a SimCore. Derives from IContext so protocol
/// nodes written against the virtual interface keep working, but is `final`
/// with `final` methods: a node templated on SimContext itself (the MDegST
/// fast path) performs zero virtual dispatch, and the header-visible bodies
/// inline into the caller.
template <typename Message>
class SimContext final : public IContext<Message> {
 public:
  SimContext(SimCore<Message>* core, NodeId self,
             std::uint32_t from_index = kNoNeighborIndex)
      : core_(core), self_(self), from_index_(from_index) {}

  void send(NodeId to, Message message) final {
    core_->send(self_, to, std::move(message));
  }
  /// Typed fast path (not part of IContext): senders that statically know
  /// the alternative construct it in place in the queue slab, skipping the
  /// intermediate variant. Overload resolution prefers this for concrete
  /// message types; passing a whole Message still picks the virtual
  /// signature above.
  template <typename Alt>
    requires(!std::is_same_v<std::decay_t<Alt>, Message>)
  void send(NodeId to, Alt&& message) {
    core_->send(self_, to, std::forward<Alt>(message));
  }

  /// Slot-addressed fast path (not part of IContext): `to` must sit at
  /// position `index` of this node's neighbor row — cross-checked by the
  /// core. See SimCore::send_at_neighbor_index.
  template <typename Alt>
  void send_at_index(NodeId to, std::uint32_t index, Alt&& message) {
    core_->send_at_neighbor_index(self_, to, index,
                                  std::forward<Alt>(message));
  }
  NodeId self() const final { return self_; }
  Time now() const final { return core_->now(); }
  void annotate(const std::string& label) final { core_->annotate(label); }
  /// Tagged fast path (not part of IContext): records a structured
  /// checkpoint with zero allocation or formatting. Nodes reach it through
  /// sim::annotate_tagged (context.hpp), which falls back to the formatted
  /// string on virtual contexts.
  void annotate_tag(const AnnotationTag& tag) { core_->annotate_tag(tag); }

  /// Index of the current delivery's sender in this node's neighbor row
  /// (reverse-CSR, precomputed at send time), or kNoNeighborIndex for
  /// starts and external injects. Not part of IContext — a pure O(1)
  /// shortcut for handlers that would otherwise rescan their row; valid
  /// only for the delivery this context was created for.
  std::uint32_t from_index() const { return from_index_; }

  /// Local timer (not part of IContext): fires this node's on_timer after
  /// `delay` ticks. Nodes reach it through sim::schedule_timer
  /// (context.hpp), which no-ops on virtual contexts.
  void schedule_timer(Time delay) { core_->schedule_timer(self_, delay); }

 private:
  SimCore<Message>* core_;
  NodeId self_;
  std::uint32_t from_index_ = kNoNeighborIndex;
};

}  // namespace mdst::sim
