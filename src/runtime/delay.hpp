// Per-message link-delay models.
//
// The paper's *analysis* assumes every hop takes at most one time unit; its
// *correctness* must hold for arbitrary finite delays (the algorithm is
// event-driven and asynchronous). DelayModel lets experiments run the same
// protocol under:
//   * unit delays        — reproduces the analysis model, so the measured
//                          causal time is the paper's time complexity;
//   * uniform(lo, hi)    — bounded asynchrony;
//   * heavy_tail         — occasional very slow links (1 + geometric tail),
//                          stressing message reordering across links.
#pragma once

#include <cstdint>

#include "runtime/types.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace mdst::sim {

class DelayModel {
 public:
  /// Every message takes exactly one tick.
  static DelayModel unit();
  /// Uniform integer delay in [lo, hi]; lo >= 1.
  static DelayModel uniform(Time lo, Time hi);
  /// 1 + geometric(p) tail; small p gives rare huge delays. p in (0, 1].
  static DelayModel heavy_tail(double p);

  /// Draw the delay for one message.
  Time sample(support::Rng& rng) const;

  /// True for the unit model: every sample is exactly 1 and draws no
  /// randomness. Lets the simulator prove FIFO floors are no-ops (every
  /// delivery lands at now + 1, and floors are monotone in send time) and
  /// skip the per-send floor bookkeeping entirely.
  bool is_unit() const { return kind_ == Kind::kUnit; }

  /// Smallest delay any sample can return — the sharded engine's lookahead:
  /// a message sent at t can never deliver before t + min_delay(), and the
  /// fault transform and FIFO floors only push deliveries later, so a
  /// conservative window of this width is closed under in-window sends.
  Time min_delay() const {
    switch (kind_) {
      case Kind::kUnit: return 1;
      case Kind::kUniform: return lo_;
      case Kind::kHeavyTail: return 1;
    }
    MDST_UNREACHABLE("bad delay kind");
  }

  /// Per-hop scale for calibrating protocol timeouts (the self-healing
  /// stall detector multiplies its quiet tolerance by this, mdst/engine.cpp):
  /// the max delay for the bounded models, mean-ish for heavy_tail — its
  /// rare huge outliers are absorbed by the detector's doubling guard, not
  /// priced into every run's tolerance.
  Time timeout_scale() const {
    switch (kind_) {
      case Kind::kUnit: return 1;
      case Kind::kUniform: return hi_;
      case Kind::kHeavyTail: return 1 + static_cast<Time>(1.0 / p_);
    }
    MDST_UNREACHABLE("bad delay kind");
  }

  const char* name() const;

 private:
  enum class Kind { kUnit, kUniform, kHeavyTail };
  Kind kind_ = Kind::kUnit;
  Time lo_ = 1;
  Time hi_ = 1;
  double p_ = 0.5;
};

inline DelayModel DelayModel::unit() { return DelayModel{}; }

inline DelayModel DelayModel::uniform(Time lo, Time hi) {
  MDST_REQUIRE(lo >= 1 && lo <= hi, "uniform delay: need 1 <= lo <= hi");
  DelayModel m;
  m.kind_ = Kind::kUniform;
  m.lo_ = lo;
  m.hi_ = hi;
  return m;
}

inline DelayModel DelayModel::heavy_tail(double p) {
  MDST_REQUIRE(p > 0.0 && p <= 1.0, "heavy_tail: p in (0,1]");
  DelayModel m;
  m.kind_ = Kind::kHeavyTail;
  m.p_ = p;
  return m;
}

inline Time DelayModel::sample(support::Rng& rng) const {
  switch (kind_) {
    case Kind::kUnit:
      return 1;
    case Kind::kUniform:
      return lo_ + rng.next_below(hi_ - lo_ + 1);
    case Kind::kHeavyTail: {
      // Geometric via inversion; clamp to keep simulations finite.
      Time extra = 0;
      while (!rng.next_bool(p_) && extra < 10'000) ++extra;
      return 1 + extra;
    }
  }
  MDST_UNREACHABLE("bad delay kind");
}

inline const char* DelayModel::name() const {
  switch (kind_) {
    case Kind::kUnit: return "unit";
    case Kind::kUniform: return "uniform";
    case Kind::kHeavyTail: return "heavy_tail";
  }
  return "?";
}

}  // namespace mdst::sim
