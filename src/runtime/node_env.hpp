// Static local knowledge a node starts with.
//
// Matches the paper's model: "each node is ignorant of the global network
// topology except for its own edges, and every node does know identity of
// its neighbors". Nothing else about the graph is visible to protocol code.
//
// `neighbors` is a view into storage owned by whoever built the env (the
// simulator keeps one flat array for all nodes, so protocol-side neighbor
// scans stay cache-linear and copying a NodeEnv into a node is trivially
// cheap). The owner must outlive every Node holding the env — the simulator
// guarantees this; tests that hand-build envs keep a local vector alive.
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"
#include "runtime/types.hpp"

namespace mdst::sim {

struct NeighborInfo {
  NodeId id = kNoNode;             // routing handle (delivery address)
  graph::NodeName name = -1;       // distinct identity, used in tie-breaks
};

struct NodeEnv {
  NodeId id = kNoNode;
  graph::NodeName name = -1;
  std::span<const NeighborInfo> neighbors;

  /// Name of a neighbour by node id; contract-checked.
  graph::NodeName neighbor_name(NodeId node) const;
  /// True iff `node` is a direct neighbour.
  bool is_neighbor(NodeId node) const;
  std::size_t degree() const { return neighbors.size(); }
};

}  // namespace mdst::sim
