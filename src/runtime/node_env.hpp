// Static local knowledge a node starts with.
//
// Matches the paper's model: "each node is ignorant of the global network
// topology except for its own edges, and every node does know identity of
// its neighbors". Nothing else about the graph is visible to protocol code.
#pragma once

#include <vector>

#include "graph/types.hpp"
#include "runtime/types.hpp"

namespace mdst::sim {

struct NeighborInfo {
  NodeId id = kNoNode;             // routing handle (delivery address)
  graph::NodeName name = -1;       // distinct identity, used in tie-breaks
};

struct NodeEnv {
  NodeId id = kNoNode;
  graph::NodeName name = -1;
  std::vector<NeighborInfo> neighbors;

  /// Name of a neighbour by node id; contract-checked.
  graph::NodeName neighbor_name(NodeId node) const;
  /// True iff `node` is a direct neighbour.
  bool is_neighbor(NodeId node) const;
  std::size_t degree() const { return neighbors.size(); }
};

}  // namespace mdst::sim
