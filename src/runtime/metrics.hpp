// Complexity metering — the "measurement instruments" behind every claim
// table the bench/ binaries regenerate (see docs/protocol.md for how each
// yardstick maps to the paper).
//
// The paper evaluates algorithms by three yardsticks, all of which the
// simulator measures directly:
//   * message complexity — total messages delivered (per type and overall);
//   * time complexity    — length of the longest causal dependency chain
//                          (tracked as a Lamport-style depth: a message
//                          carries depth d+1 when its sender's depth is d,
//                          and a receiver's depth becomes max(own, carried));
//                          under unit delays this equals the simulated clock;
//   * bit complexity     — messages carry at most four identities/numbers
//                          (paper §4.2), so each message type reports how
//                          many identity-sized fields it carries and the
//                          meter converts to bits with id_bits = ceil(log2 n).
//
// Layout: a hot core and a derived read side. The delivery loop touches only
// flat per-type arrays — one counter increment for types whose identity
// count is a compile-time constant (see MessageDescriptor in
// variant_util.hpp), plus an ids accumulator and per-type running max for
// the payload-dependent types. Everything the old meter updated per delivery
// — total messages, bit totals, max message width — is now *derived* from
// those arrays at read time, where the sum over ≤16 types is free compared
// to the 10^8-delivery runs it summarizes. The seed's one-call-per-delivery
// `on_deliver` survives as the reference path (mock engines, the legacy
// simulator in the determinism suite, and metrics_equivalence_test, which
// pins the two paths field-for-field equal).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/types.hpp"
#include "runtime/variant_util.hpp"
#include "support/assert.hpp"

namespace mdst::sim {

/// Alloc-free structured annotation payload: a protocol-defined kind plus a
/// round coordinate and up to three numeric fields. The runtime stores it
/// verbatim — the *protocol* owns the kind vocabulary and the read-time
/// formatter (e.g. mdst/annotations.hpp), so recording a per-round
/// checkpoint costs no heap traffic and no string formatting on the hot
/// path. kind == 0 is reserved for "no tag".
struct AnnotationTag {
  std::uint8_t kind = 0;
  std::uint32_t round = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;

  friend bool operator==(const AnnotationTag&, const AnnotationTag&) = default;
};

/// A named checkpoint emitted by a protocol (e.g. "round 3 end") with the
/// cumulative message count at that instant; benches diff consecutive
/// snapshots for per-round budgets. Two flavours share the struct: legacy
/// string-labelled checkpoints (virtual contexts, ad-hoc protocol notes)
/// carry `label`; tagged checkpoints carry `tag` (with `label` empty) and
/// are formatted only when read.
struct Annotation {
  Time time = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t max_causal_depth = 0;
  std::string label;
  AnnotationTag tag;
  bool tagged = false;
  /// Flight-recorder fields (runtime/telemetry.hpp): the cumulative bit
  /// total at this checkpoint and the queue occupancy (messages sent but
  /// not yet delivered or dropped) the engine observed when recording it.
  /// Both are computed at annotate time — per round, not per delivery — so
  /// they cost the hot path nothing; legacy recording paths leave them 0.
  std::uint64_t total_bits = 0;
  std::uint64_t in_flight = 0;
};

class Metrics {
 public:
  /// Per-type hot counters, padded and aligned to half a cache line so one
  /// delivery touches exactly one line of the array (without the alignas,
  /// vector storage could start at 16 mod 64 and entries would straddle).
  /// ids_sum/ids_max are written only for dynamic_ids types (derived reads
  /// use count x static_ids for the rest).
  struct alignas(32) PerTypeCounters {
    std::uint64_t count = 0;
    std::uint64_t ids_sum = 0;
    std::uint64_t ids_max = 0;
    std::uint64_t pad_ = 0;
  };

  /// Legacy/reference constructor: every type metered as payload-dependent
  /// (a default MessageDescriptor is dynamic).
  explicit Metrics(std::size_t message_type_count, std::size_t id_bits)
      : Metrics(std::vector<MessageDescriptor>(message_type_count), id_bits) {}

  /// Table-driven constructor: the engine hands over its compile-time
  /// MessageDescriptor table (variant_util.hpp) so static-count types skip
  /// the ids bookkeeping entirely.
  Metrics(std::vector<MessageDescriptor> types, std::size_t id_bits)
      : types_(std::move(types)),
        counters_(types_.size()),
        id_bits_(id_bits) {}

  // --- hot core (the delivery loop calls exactly one of these) -------------

  /// Delivery of a type with compile-time-constant ids: one increment plus
  /// the monotone clock store.
  void count_delivery(std::size_t type_index, Time now) {
    ++counters_[type_index].count;
    last_delivery_time_ = now;  // pops are monotone; plain store == max
  }

  /// Delivery of a payload-dependent type: also fold the measured count
  /// into the per-type accumulator and running max.
  void count_delivery_dynamic(std::size_t type_index, std::size_t ids,
                              Time now) {
    PerTypeCounters& c = counters_[type_index];
    ++c.count;
    c.ids_sum += ids;
    if (ids > c.ids_max) c.ids_max = ids;
    last_delivery_time_ = now;
  }

  /// Raise the longest-causal-chain watermark. The engine calls this only
  /// when a receiver's depth actually rises (the raise dominates every
  /// delivered depth, so the watermark stays exact).
  void note_causal_depth(std::uint64_t causal_depth) {
    if (causal_depth > max_causal_depth_) max_causal_depth_ = causal_depth;
  }

  /// Reference path (seed semantics): meter one delivery in one call.
  /// Kept for mock engines and the equivalence/determinism suites — and
  /// unlike the simulator loop those callers are not guaranteed monotone
  /// in `now`, so the seed's max() guard on the clock is preserved here.
  void on_deliver(std::size_t type_index, std::size_t ids_carried,
                  std::uint64_t causal_depth, Time now) {
    count_delivery_dynamic(
        type_index, ids_carried,
        now > last_delivery_time_ ? now : last_delivery_time_);
    note_causal_depth(causal_depth);
  }

  /// `in_flight` is the engine's queue-occupancy reading at the checkpoint
  /// (sent − delivered − dropped); callers without one (mocks, the legacy
  /// reference simulator) record 0.
  void annotate(Time now, std::string label, std::uint64_t in_flight = 0) {
    push_annotation({now, total_messages(), max_causal_depth_,
                     std::move(label), AnnotationTag{}, false, total_bits(),
                     in_flight});
  }

  /// Tagged checkpoint: no string is built or copied — the only cost is
  /// the (amortized) vector push and the ≤16-term total_messages() /
  /// total_bits() sums.
  void annotate_tag(Time now, const AnnotationTag& tag,
                    std::uint64_t in_flight = 0) {
    push_annotation({now, total_messages(), max_causal_depth_,
                     std::string{}, tag, true, total_bits(), in_flight});
  }

  /// Bounded mode (SimConfig::annotation_cap): keep only the most recent
  /// `cap` annotations in a fixed-capacity ring instead of the full
  /// history. 0 = unbounded (the default; every existing consumer sees
  /// byte-identical output). Per-type counters, bit totals, and watermarks
  /// are exact in both modes — only the annotation *history* is windowed.
  /// Must be set before the first annotation is recorded.
  void set_annotation_cap(std::size_t cap) {
    MDST_REQUIRE(annotations_.empty(),
                 "set_annotation_cap after annotations were recorded");
    annotation_cap_ = cap;
    if (cap != 0) annotations_.reserve(cap);
  }
  std::size_t annotation_cap() const { return annotation_cap_; }
  /// Total annotations ever recorded (>= annotations().size() when the
  /// bounded ring dropped old entries).
  std::uint64_t annotations_recorded() const { return annotations_recorded_; }

  // --- read side (derived; cold) -------------------------------------------

  std::uint64_t total_messages() const;
  std::uint64_t messages_of_type(std::size_t type_index) const {
    return counters_.at(type_index).count;
  }
  /// Per-type delivery counts, in variant order (built on demand — the hot
  /// representation is the padded PerTypeCounters array).
  std::vector<std::uint64_t> per_type() const;
  std::uint64_t total_bits() const;
  std::uint64_t max_message_bits() const;
  std::uint64_t max_ids_carried() const;
  std::uint64_t max_causal_depth() const { return max_causal_depth_; }
  Time last_delivery_time() const { return last_delivery_time_; }
  std::size_t id_bits() const { return id_bits_; }
  /// The recorded annotations, oldest first. In bounded mode the ring is
  /// rotated into chronological order on first read (lazily, so the hot
  /// recording path stays a single slot store).
  const std::vector<Annotation>& annotations() const {
    if (annotation_head_ != 0) {
      std::rotate(annotations_.begin(),
                  annotations_.begin() +
                      static_cast<std::ptrdiff_t>(annotation_head_),
                  annotations_.end());
      annotation_head_ = 0;
    }
    return annotations_;
  }

  /// Approximate heap footprint of the meter (sim::MemoryReport): the
  /// counter/descriptor arrays plus the annotation storage. Label strings
  /// are counted at header size only — tagged annotations (the simulator
  /// path) carry no label at all.
  std::size_t approx_bytes() const {
    return types_.capacity() * sizeof(MessageDescriptor) +
           counters_.capacity() * sizeof(PerTypeCounters) +
           annotations_.capacity() * sizeof(Annotation);
  }

  /// Merge counts from another run (e.g. spanning-tree phase + MDegST phase
  /// for end-to-end totals). Causal depths take the max, times add. The two
  /// runs may use different message sets (different id widths / type
  /// tables), so both sides are folded through their derived read API into
  /// plain totals; per-type counts merge index-wise.
  void absorb_sequential(const Metrics& later);

  /// Merge counts from a *concurrent* partition of the same run (the
  /// sharded engine's per-shard meters): both sides share one type table
  /// and id width, counts and ids sums add index-wise, and the watermarks
  /// (ids max, causal depth, last delivery time) take the max — the shards
  /// partition one delivery stream, they do not follow each other in time.
  /// Annotations are not merged here; the sharded engine reconstructs them
  /// in canonical order and appends via append_annotation.
  void absorb_parallel(const Metrics& other);

  /// Append one reconstructed annotation (sharded merge path). The caller
  /// owns the ordering contract: annotations must arrive in canonical run
  /// order. Honors the bounded ring like every other recording path.
  void append_annotation(Annotation annotation) {
    push_annotation(std::move(annotation));
  }

  static constexpr std::uint64_t kTagBits = 4;  // <= 16 message types/protocol

 private:
  /// Single recording path for all annotation flavours. Unbounded: plain
  /// push_back. Bounded: fill to cap, then overwrite the oldest slot
  /// (annotation_head_ chases the logical start of the ring; annotations()
  /// rotates it back to index 0 before any reader sees the vector).
  void push_annotation(Annotation annotation) {
    ++annotations_recorded_;
    if (annotation_cap_ == 0 || annotations_.size() < annotation_cap_) {
      annotations_.push_back(std::move(annotation));
      return;
    }
    annotations_[annotation_head_] = std::move(annotation);
    annotation_head_ = (annotation_head_ + 1) % annotation_cap_;
  }

  /// Total identity fields delivered for one type: measured for dynamic
  /// types, count x constant for static ones.
  std::uint64_t ids_of_type(std::size_t t) const {
    return types_[t].dynamic_ids
               ? counters_[t].ids_sum
               : counters_[t].count *
                     static_cast<std::uint64_t>(types_[t].static_ids);
  }

  /// One descriptor per type (name unused here; static_ids/dynamic_ids
  /// drive the derivation) — the same struct the engine's compile-time
  /// table uses, so there is no parallel type to keep in sync.
  std::vector<MessageDescriptor> types_;
  std::vector<PerTypeCounters> counters_;
  std::uint64_t max_causal_depth_ = 0;
  Time last_delivery_time_ = 0;
  std::size_t id_bits_;
  /// Annotation storage. Unbounded mode: append-only, chronological.
  /// Bounded mode: a ring of annotation_cap_ slots; annotation_head_ is the
  /// index of the *oldest* entry once the ring has wrapped. Both are
  /// mutable so the const read side can lazily rotate the ring into
  /// chronological order without changing the container's identity.
  mutable std::vector<Annotation> annotations_;
  mutable std::size_t annotation_head_ = 0;
  std::size_t annotation_cap_ = 0;  // 0 = unbounded
  std::uint64_t annotations_recorded_ = 0;
  /// absorb_sequential folds both sides' derived totals into these
  /// snapshots (the two runs may disagree on type tables / id widths, so
  /// the merged totals are no longer derivable from the arrays above).
  /// When folded_, the total/bit/max reads serve the snapshots; per-type
  /// counts stay index-wise merged in counts_. Live counting ends at the
  /// first absorb — it is an analysis-side operation on finished runs.
  bool folded_ = false;
  std::uint64_t folded_messages_ = 0;
  std::uint64_t folded_bits_ = 0;
  std::uint64_t folded_max_message_bits_ = 0;
  std::uint64_t folded_max_ids_ = 0;
};

/// ceil(log2(n)) with a floor of 1 bit.
std::size_t id_bits_for(std::size_t n);

}  // namespace mdst::sim
