// Complexity metering — the "measurement instruments" behind every claim
// table the bench/ binaries regenerate (see docs/protocol.md for how each
// yardstick maps to the paper).
//
// The paper evaluates algorithms by three yardsticks, all of which the
// simulator measures directly:
//   * message complexity — total messages delivered (per type and overall);
//   * time complexity    — length of the longest causal dependency chain
//                          (tracked as a Lamport-style depth: a message
//                          carries depth d+1 when its sender's depth is d,
//                          and a receiver's depth becomes max(own, carried));
//                          under unit delays this equals the simulated clock;
//   * bit complexity     — messages carry at most four identities/numbers
//                          (paper §4.2), so each message type reports how
//                          many identity-sized fields it carries and the
//                          meter converts to bits with id_bits = ceil(log2 n).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/types.hpp"

namespace mdst::sim {

/// A named checkpoint emitted by a protocol (e.g. "round 3 end") with the
/// cumulative message count at that instant; benches diff consecutive
/// snapshots for per-round budgets.
struct Annotation {
  Time time = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t max_causal_depth = 0;
  std::string label;
};

class Metrics {
 public:
  explicit Metrics(std::size_t message_type_count, std::size_t id_bits)
      : per_type_(message_type_count, 0), id_bits_(id_bits) {}

  void on_deliver(std::size_t type_index, std::size_t ids_carried,
                  std::uint64_t causal_depth, Time now) {
    ++total_messages_;
    ++per_type_[type_index];
    const std::uint64_t bits = kTagBits + ids_carried * id_bits_;
    total_bits_ += bits;
    if (bits > max_message_bits_) max_message_bits_ = bits;
    if (ids_carried > max_ids_) max_ids_ = ids_carried;
    if (causal_depth > max_causal_depth_) max_causal_depth_ = causal_depth;
    if (now > last_delivery_time_) last_delivery_time_ = now;
  }

  void annotate(Time now, std::string label) {
    annotations_.push_back({now, total_messages_, max_causal_depth_,
                            std::move(label)});
  }

  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t messages_of_type(std::size_t type_index) const {
    return per_type_.at(type_index);
  }
  const std::vector<std::uint64_t>& per_type() const { return per_type_; }
  std::uint64_t total_bits() const { return total_bits_; }
  std::uint64_t max_message_bits() const { return max_message_bits_; }
  std::uint64_t max_ids_carried() const { return max_ids_; }
  std::uint64_t max_causal_depth() const { return max_causal_depth_; }
  Time last_delivery_time() const { return last_delivery_time_; }
  std::size_t id_bits() const { return id_bits_; }
  const std::vector<Annotation>& annotations() const { return annotations_; }

  /// Merge counts from another run (e.g. spanning-tree phase + MDegST phase
  /// for end-to-end totals). Causal depths take the max, times add.
  void absorb_sequential(const Metrics& later) {
    total_messages_ += later.total_messages_;
    total_bits_ += later.total_bits_;
    max_message_bits_ = std::max(max_message_bits_, later.max_message_bits_);
    max_ids_ = std::max(max_ids_, later.max_ids_);
    max_causal_depth_ += later.max_causal_depth_;
    last_delivery_time_ += later.last_delivery_time_;
    if (per_type_.size() < later.per_type_.size()) {
      per_type_.resize(later.per_type_.size(), 0);
    }
    for (std::size_t i = 0; i < later.per_type_.size(); ++i) {
      per_type_[i] += later.per_type_[i];
    }
  }

  static constexpr std::uint64_t kTagBits = 4;  // <= 16 message types/protocol

 private:
  std::uint64_t total_messages_ = 0;
  std::vector<std::uint64_t> per_type_;
  std::uint64_t total_bits_ = 0;
  std::uint64_t max_message_bits_ = 0;
  std::uint64_t max_ids_ = 0;
  std::uint64_t max_causal_depth_ = 0;
  Time last_delivery_time_ = 0;
  std::size_t id_bits_;
  std::vector<Annotation> annotations_;
};

/// ceil(log2(n)) with a floor of 1 bit.
std::size_t id_bits_for(std::size_t n);

}  // namespace mdst::sim
