// Helpers for message-variant dispatch in protocol nodes and the simulator.
#pragma once

#include <cstddef>
#include <type_traits>
#include <variant>

#include "support/assert.hpp"

namespace mdst::sim {

template <typename... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};
template <typename... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;

/// std::visit replacement for small variants on the delivery hot path: a
/// plain switch the optimizer lowers to a jump table it can inline each
/// case into, instead of std::visit's table of function pointers (an
/// opaque indirect call per message). All cases must yield the same type.
template <typename Variant, typename F>
decltype(auto) switch_visit(Variant&& v, F&& f) {
  constexpr std::size_t n =
      std::variant_size_v<std::remove_cvref_t<Variant>>;
  static_assert(n <= 16, "switch_visit: grow the switch");
#define MDST_SWITCH_VISIT_CASE(I)                \
  case I:                                        \
    if constexpr (I < n) {                       \
      return f(*std::get_if<I>(&v));             \
    } else {                                     \
      break;                                     \
    }
  switch (v.index()) {
    MDST_SWITCH_VISIT_CASE(0)
    MDST_SWITCH_VISIT_CASE(1)
    MDST_SWITCH_VISIT_CASE(2)
    MDST_SWITCH_VISIT_CASE(3)
    MDST_SWITCH_VISIT_CASE(4)
    MDST_SWITCH_VISIT_CASE(5)
    MDST_SWITCH_VISIT_CASE(6)
    MDST_SWITCH_VISIT_CASE(7)
    MDST_SWITCH_VISIT_CASE(8)
    MDST_SWITCH_VISIT_CASE(9)
    MDST_SWITCH_VISIT_CASE(10)
    MDST_SWITCH_VISIT_CASE(11)
    MDST_SWITCH_VISIT_CASE(12)
    MDST_SWITCH_VISIT_CASE(13)
    MDST_SWITCH_VISIT_CASE(14)
    MDST_SWITCH_VISIT_CASE(15)
    default:
      break;
  }
#undef MDST_SWITCH_VISIT_CASE
  MDST_UNREACHABLE("switch_visit: valueless or out-of-range variant");
}

}  // namespace mdst::sim
