// Small helper for std::visit-based message dispatch in protocol nodes.
#pragma once

namespace mdst::sim {

template <typename... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};
template <typename... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;

}  // namespace mdst::sim
