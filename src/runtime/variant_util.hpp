// Helpers for message-variant dispatch in protocol nodes and the simulator.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <variant>

#include "support/assert.hpp"

namespace mdst::sim {

template <typename... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};
template <typename... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;

/// std::visit replacement for small variants on the delivery hot path: a
/// plain switch the optimizer lowers to a jump table it can inline each
/// case into, instead of std::visit's table of function pointers (an
/// opaque indirect call per message). All cases must yield the same type.
template <typename Variant, typename F>
decltype(auto) switch_visit(Variant&& v, F&& f) {
  constexpr std::size_t n =
      std::variant_size_v<std::remove_cvref_t<Variant>>;
  static_assert(n <= 24, "switch_visit: grow the switch");
#define MDST_SWITCH_VISIT_CASE(I)                \
  case I:                                        \
    if constexpr (I < n) {                       \
      return f(*std::get_if<I>(&v));             \
    } else {                                     \
      break;                                     \
    }
  switch (v.index()) {
    MDST_SWITCH_VISIT_CASE(0)
    MDST_SWITCH_VISIT_CASE(1)
    MDST_SWITCH_VISIT_CASE(2)
    MDST_SWITCH_VISIT_CASE(3)
    MDST_SWITCH_VISIT_CASE(4)
    MDST_SWITCH_VISIT_CASE(5)
    MDST_SWITCH_VISIT_CASE(6)
    MDST_SWITCH_VISIT_CASE(7)
    MDST_SWITCH_VISIT_CASE(8)
    MDST_SWITCH_VISIT_CASE(9)
    MDST_SWITCH_VISIT_CASE(10)
    MDST_SWITCH_VISIT_CASE(11)
    MDST_SWITCH_VISIT_CASE(12)
    MDST_SWITCH_VISIT_CASE(13)
    MDST_SWITCH_VISIT_CASE(14)
    MDST_SWITCH_VISIT_CASE(15)
    MDST_SWITCH_VISIT_CASE(16)
    MDST_SWITCH_VISIT_CASE(17)
    MDST_SWITCH_VISIT_CASE(18)
    MDST_SWITCH_VISIT_CASE(19)
    MDST_SWITCH_VISIT_CASE(20)
    MDST_SWITCH_VISIT_CASE(21)
    MDST_SWITCH_VISIT_CASE(22)
    MDST_SWITCH_VISIT_CASE(23)
    default:
      break;
  }
#undef MDST_SWITCH_VISIT_CASE
  MDST_UNREACHABLE("switch_visit: valueless or out-of-range variant");
}

// --- Compile-time message descriptor table ----------------------------------
//
// Per-delivery metering needs two facts about a message: its trace name and
// how many identity-sized fields it carries. Both used to be fetched with a
// switch_visit (an indexed jump into per-type code) on every delivery. For
// most alternatives `ids_carried()` is a constant of the *type*, not the
// value — those types advertise it as `static constexpr std::size_t
// kIdsCarried`, and the descriptor table below folds name + count into one
// constexpr array indexed by variant index: the whole lookup becomes a single
// array load. Types whose count is payload-dependent (e.g. `Bfs`, whose tag
// fields may coincide) are marked `dynamic_ids`, and the meter falls back to
// switch_visit for them alone.

/// True when the alternative's identity count is a compile-time constant.
template <typename T>
concept HasStaticIdsCarried = requires {
  { std::integral_constant<std::size_t, T::kIdsCarried>{} };
};

struct MessageDescriptor {
  const char* name = nullptr;
  /// ids_carried() of every instance; meaningful iff !dynamic_ids.
  std::uint32_t static_ids = 0;
  /// ids_carried() depends on the payload; meter via switch_visit.
  bool dynamic_ids = true;
};

namespace detail {

template <typename T>
constexpr MessageDescriptor describe_alternative() {
  if constexpr (HasStaticIdsCarried<T>) {
    return {T::kName, static_cast<std::uint32_t>(T::kIdsCarried), false};
  } else {
    return {T::kName, 0, true};
  }
}

template <typename Variant>
struct DescriptorTable;

template <typename... Ts>
struct DescriptorTable<std::variant<Ts...>> {
  static constexpr std::array<MessageDescriptor, sizeof...(Ts)> value = {
      describe_alternative<Ts>()...};
};

}  // namespace detail

/// One descriptor per alternative of `Variant`, in variant order; built at
/// compile time, so `kMessageDescriptors<M>[msg.index()]` is one array load.
template <typename Variant>
inline constexpr auto& kMessageDescriptors =
    detail::DescriptorTable<Variant>::value;

}  // namespace mdst::sim
