#include "runtime/telemetry.hpp"

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

namespace mdst::sim {
namespace {

std::string json_escape(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default: escaped += c;
    }
  }
  return escaped;
}

/// One census list as a JSON object, insertion order preserved (the
/// producers emit labels in a fixed protocol-defined order).
void write_census(std::ostream& out, const char* indent,
                  const std::vector<std::pair<std::string, std::uint64_t>>&
                      census) {
  out << "{";
  bool first = true;
  for (const auto& [label, count] : census) {
    if (!first) out << ",";
    out << "\n" << indent << "  \"" << json_escape(label) << "\": " << count;
    first = false;
  }
  if (!first) out << "\n" << indent;
  out << "}";
}

}  // namespace

void write_wedge_report_json(std::ostream& out, const WedgeReport& report) {
  const auto b = [](bool v) { return v ? "true" : "false"; };
  out << "{\n";
  out << "  \"captured\": " << b(report.captured) << ",\n";
  out << "  \"time_capped\": " << b(report.time_capped) << ",\n";
  out << "  \"nodes\": " << report.nodes << ",\n";
  out << "  \"done\": " << report.done << ",\n";
  out << "  \"crashed\": " << report.crashed << ",\n";
  out << "  \"live_undone\": " << report.live_undone << ",\n";
  out << "  \"live_root_count\": " << report.live_root_count << ",\n";
  out << "  \"live_roots\": [";
  for (std::size_t i = 0; i < report.live_roots.size(); ++i) {
    if (i != 0) out << ", ";
    out << report.live_roots[i];
  }
  out << "],\n";
  out << "  \"last_delivery_time\": " << report.last_delivery_time << ",\n";
  out << "  \"last_round\": " << report.last_round << ",\n";
  out << "  \"last_phase\": \"" << json_escape(report.last_phase) << "\",\n";
  out << "  \"discarded_events\": " << report.discarded_events << ",\n";
  out << "  \"dropped_deliveries\": " << report.dropped_deliveries << ",\n";
  out << "  \"state_census\": ";
  write_census(out, "  ", report.state_census);
  out << ",\n";
  out << "  \"in_flight_by_type\": ";
  write_census(out, "  ", report.in_flight_by_type);
  out << "\n}\n";
}

void write_rounds_csv(std::ostream& out,
                      const std::vector<RoundTelemetry>& rounds) {
  out << "round,k,fragments,waves,improved,messages,bits,causal_depth,"
         "in_flight_peak,time_start,time_end\n";
  for (const RoundTelemetry& r : rounds) {
    out << r.round << ',' << r.k << ',' << r.fragments << ',' << r.waves
        << ',' << (r.improved ? 1 : 0) << ',' << r.messages << ',' << r.bits
        << ',' << r.causal_depth << ',' << r.in_flight_peak << ','
        << r.time_start << ',' << r.time_end << '\n';
  }
}

void write_rounds_jsonl(std::ostream& out,
                        const std::vector<RoundTelemetry>& rounds) {
  for (const RoundTelemetry& r : rounds) {
    out << "{\"round\":" << r.round << ",\"k\":" << r.k
        << ",\"fragments\":" << r.fragments << ",\"waves\":" << r.waves
        << ",\"improved\":" << (r.improved ? "true" : "false")
        << ",\"messages\":" << r.messages << ",\"bits\":" << r.bits
        << ",\"causal_depth\":" << r.causal_depth
        << ",\"in_flight_peak\":" << r.in_flight_peak
        << ",\"time_start\":" << r.time_start
        << ",\"time_end\":" << r.time_end << "}\n";
  }
}

namespace {

/// One trace event, streamed without building a DOM. `args` is pre-rendered
/// JSON (or empty).
void write_event(std::ostream& out, bool& first, std::string_view name,
                 char ph, std::uint64_t pid, std::uint64_t tid, Time ts,
                 Time dur, const std::string& args) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\": \"" << json_escape(name) << "\", \"ph\": \"" << ph
      << "\", \"pid\": " << pid << ", \"tid\": " << tid << ", \"ts\": " << ts;
  if (ph == 'X') out << ", \"dur\": " << dur;
  if (!args.empty()) out << ", \"args\": " << args;
  out << "}";
}

void write_name_meta(std::ostream& out, bool& first, const char* what,
                     std::uint64_t pid, std::uint64_t tid,
                     const std::string& name) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\": \"" << what << "\", \"ph\": \"M\", \"pid\": " << pid
      << ", \"tid\": " << tid << ", \"args\": {\"name\": \""
      << json_escape(name) << "\"}}";
}

constexpr std::uint64_t kPhasePid = 0;
constexpr std::uint64_t kNetworkPid = 1;
constexpr std::uint64_t kLanePid = 2;

}  // namespace

void write_chrome_trace(std::ostream& out, const Trace& trace,
                        const std::vector<TimelinePhase>& phases,
                        const ChromeTraceOptions& options) {
  const std::vector<TraceRow>& rows = trace.rows();
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;

  // Track naming. Only node tracks that actually appear get a label row —
  // a million-node trial must not emit a million metadata events.
  write_name_meta(out, first, "process_name", kPhasePid, 0, "protocol phases");
  write_name_meta(out, first, "process_name", kNetworkPid, 0, "network");
  std::vector<NodeId> seen_nodes;
  for (const TraceRow& row : rows) seen_nodes.push_back(row.to);
  std::sort(seen_nodes.begin(), seen_nodes.end());
  seen_nodes.erase(std::unique(seen_nodes.begin(), seen_nodes.end()),
                   seen_nodes.end());
  for (const NodeId v : seen_nodes) {
    write_name_meta(out, first, "thread_name", kNetworkPid,
                    static_cast<std::uint64_t>(v),
                    "node " + std::to_string(v));
  }

  // Protocol phase track (engine-derived round phases).
  for (const TimelinePhase& phase : phases) {
    if (phase.end < phase.begin) continue;
    write_event(out, first, phase.name, 'X', kPhasePid, 0, phase.begin,
                phase.end - phase.begin, "");
  }

  // Message deliveries: one complete event per traced row, on the
  // receiver's track, spanning [send, deliver].
  for (const TraceRow& row : rows) {
    const Time dur =
        row.deliver_time > row.send_time ? row.deliver_time - row.send_time
                                         : 1;
    std::string args = "{\"from\": " + std::to_string(row.from) +
                       ", \"to\": " + std::to_string(row.to) +
                       ", \"causal_depth\": " +
                       std::to_string(row.causal_depth) + "}";
    write_event(out, first, row.type_name, 'X', kNetworkPid,
                static_cast<std::uint64_t>(row.to), row.send_time, dur, args);
  }

  // Shard-lane window tracks: reconstruct the conservative window sequence
  // from the metered deliveries (window base = first delivery at or past
  // the previous horizon — exact whenever every window delivered at least
  // one traced message) and show, per lane, which windows it was busy in.
  if (options.shards > 0 && options.node_count > 0 && !rows.empty()) {
    const std::size_t lanes =
        std::min<std::size_t>(options.shards, options.node_count);
    write_name_meta(out, first, "process_name", kLanePid, 0, "shard lanes");
    for (std::size_t k = 0; k < lanes; ++k) {
      write_name_meta(out, first, "thread_name", kLanePid, k,
                      "lane " + std::to_string(k));
    }
    // The engine's contiguous block partition (sharded_sim.hpp).
    const std::size_t block = options.node_count / lanes;
    const std::size_t extra = options.node_count % lanes;
    std::vector<std::size_t> lane_begin(lanes + 1, 0);
    for (std::size_t k = 0; k < lanes; ++k) {
      lane_begin[k + 1] = lane_begin[k] + block + (k < extra ? 1 : 0);
    }
    const auto owner = [&](NodeId v) {
      const std::size_t u = static_cast<std::size_t>(v);
      for (std::size_t k = 0; k < lanes; ++k) {
        if (u < lane_begin[k + 1]) return k;
      }
      return lanes - 1;
    };
    std::vector<Time> delivers;
    delivers.reserve(rows.size());
    for (const TraceRow& row : rows) delivers.push_back(row.deliver_time);
    std::sort(delivers.begin(), delivers.end());
    const Time lookahead = options.lookahead == 0 ? 1 : options.lookahead;
    std::size_t at = 0;
    while (at < delivers.size()) {
      const Time base = delivers[at];
      const Time horizon = base + lookahead;
      std::vector<std::uint64_t> per_lane(lanes, 0);
      for (const TraceRow& row : rows) {
        if (row.deliver_time >= base && row.deliver_time < horizon) {
          ++per_lane[owner(row.to)];
        }
      }
      for (std::size_t k = 0; k < lanes; ++k) {
        if (per_lane[k] == 0) continue;
        write_event(out, first, "window", 'X', kLanePid, k, base, lookahead,
                    "{\"deliveries\": " + std::to_string(per_lane[k]) + "}");
      }
      while (at < delivers.size() && delivers[at] < horizon) ++at;
    }
  }

  out << "\n]}\n";
}

void write_trace_csv(std::ostream& out, const Trace& trace) {
  out << "send_time,deliver_time,from,to,type,causal_depth\n";
  for (const TraceRow& row : trace.rows()) {
    out << row.send_time << ',' << row.deliver_time << ',' << row.from << ','
        << row.to << ',' << row.type_name << ',' << row.causal_depth << '\n';
  }
}

}  // namespace mdst::sim
