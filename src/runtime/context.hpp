// The interface a protocol node uses to act on the world.
//
// Nodes never touch the simulator directly; they receive an IContext in
// every callback. This keeps protocol code portable (a real network backend
// would implement the same interface) and makes nodes unit-testable with a
// mock context.
#pragma once

#include <string>

#include "runtime/types.hpp"

namespace mdst::sim {

template <typename Message>
class IContext {
 public:
  virtual ~IContext() = default;

  /// Send `message` to a *neighbouring* node. Sending to non-neighbours is a
  /// contract violation — the model is point-to-point over graph edges.
  virtual void send(NodeId to, Message message) = 0;

  /// This node's id (== vertex index).
  virtual NodeId self() const = 0;

  /// Current simulated time (nodes may not build timeouts on it — the
  /// algorithms are event-driven; it exists for logging/tracing only).
  virtual Time now() const = 0;

  /// Record a named checkpoint in the run metrics (e.g. round boundaries).
  virtual void annotate(const std::string& label) = 0;
};

}  // namespace mdst::sim
