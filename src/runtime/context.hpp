// The interface a protocol node uses to act on the world.
//
// Nodes never touch the simulator directly; every callback receives a
// context. Two bindings exist:
//
//   * IContext<Message> (this file) — the virtual interface. Protocols
//     written against it stay portable (a real network backend would
//     implement the same interface) and unit-testable with a mock context;
//     the spanning-tree baselines and synchronizers use this path, as does
//     trace/replay tooling.
//   * SimContext<Message> (sim_core.hpp) — the concrete, `final`
//     simulator-bound implementation. The simulator always passes one of
//     these; nodes templated on it directly (mdst::core::Protocol's node)
//     get devirtualized, inlinable send()/now() on the hot path, while
//     nodes declared against IContext& bind to it through the base class.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "runtime/types.hpp"

namespace mdst::sim {

template <typename Message>
class IContext {
 public:
  virtual ~IContext() = default;

  /// Send `message` to a *neighbouring* node. Sending to non-neighbours is a
  /// contract violation — the model is point-to-point over graph edges.
  virtual void send(NodeId to, Message message) = 0;

  /// This node's id (== vertex index).
  virtual NodeId self() const = 0;

  /// Current simulated time (nodes may not build timeouts on it — the
  /// algorithms are event-driven; it exists for logging/tracing only).
  virtual Time now() const = 0;

  /// Record a named checkpoint in the run metrics (e.g. round boundaries).
  virtual void annotate(const std::string& label) = 0;
};

// --- Context-generic addressing helpers -------------------------------------
//
// Protocol nodes written generically over their context type (the hot-path
// pattern: one instantiation on SimContext for the simulator, one on
// IContext for mocks/replay) use these to exploit the simulator's O(1)
// addressing when it is available and degrade to the portable interface
// when it is not. Both compile to nothing extra on the virtual binding.

/// Receiver-side index of the current delivery's sender, when the context
/// can provide it (SimContext carries the simulator's reverse-CSR value);
/// kNoNeighborIndex otherwise (virtual contexts, starts, injects).
template <typename Ctx>
std::uint32_t delivery_from_index(Ctx& ctx) {
  if constexpr (requires { ctx.from_index(); }) {
    return ctx.from_index();
  } else {
    return kNoNeighborIndex;
  }
}

/// Slot-addressed send when the context supports it (the simulator path
/// skips the O(deg) neighbor-row scan); plain send otherwise. `idx` may be
/// kNoNeighborIndex to force the fallback (e.g. replayed messages whose
/// delivery hint no longer applies).
template <typename Ctx, typename M>
void send_indexed(Ctx& ctx, NodeId to, std::uint32_t idx, M&& m) {
  if constexpr (requires { ctx.send_at_index(to, idx, std::forward<M>(m)); }) {
    if (idx != kNoNeighborIndex) {
      ctx.send_at_index(to, idx, std::forward<M>(m));
      return;
    }
  }
  ctx.send(to, std::forward<M>(m));
}

/// Local-timer helper: contexts bound to a simulator (SimContext,
/// ShardContext) schedule a real timer event that fires the node's
/// on_timer(ctx) after `delay` ticks; virtual contexts (mocks, replay)
/// silently no-op — timer-driven features like the recovery heartbeat
/// simply stay inert there. Returns whether a timer was actually armed.
template <typename Ctx>
bool schedule_timer(Ctx& ctx, Time delay) {
  if constexpr (requires { ctx.schedule_timer(delay); }) {
    ctx.schedule_timer(delay);
    return true;
  } else {
    return false;
  }
}

struct AnnotationTag;  // runtime/metrics.hpp

/// Structured-annotation helper: contexts that support the tagged path
/// (SimContext) record the tag with no allocation or formatting; virtual
/// contexts receive `format(tag)` through the portable string interface,
/// so mock tests and replay tooling observe the exact seed-style text.
/// tests/runtime/annotation_equivalence_test.cpp pins the two paths equal
/// field-for-field under the protocol's read-time formatter.
template <typename Ctx, typename Formatter>
void annotate_tagged(Ctx& ctx, const AnnotationTag& tag, Formatter&& format) {
  if constexpr (requires { ctx.annotate_tag(tag); }) {
    ctx.annotate_tag(tag);
  } else {
    ctx.annotate(format(tag));
  }
}

}  // namespace mdst::sim
