// The interface a protocol node uses to act on the world.
//
// Nodes never touch the simulator directly; every callback receives a
// context. Two bindings exist:
//
//   * IContext<Message> (this file) — the virtual interface. Protocols
//     written against it stay portable (a real network backend would
//     implement the same interface) and unit-testable with a mock context;
//     the spanning-tree baselines and synchronizers use this path, as does
//     trace/replay tooling.
//   * SimContext<Message> (sim_core.hpp) — the concrete, `final`
//     simulator-bound implementation. The simulator always passes one of
//     these; nodes templated on it directly (mdst::core::Protocol's node)
//     get devirtualized, inlinable send()/now() on the hot path, while
//     nodes declared against IContext& bind to it through the base class.
#pragma once

#include <string>

#include "runtime/types.hpp"

namespace mdst::sim {

template <typename Message>
class IContext {
 public:
  virtual ~IContext() = default;

  /// Send `message` to a *neighbouring* node. Sending to non-neighbours is a
  /// contract violation — the model is point-to-point over graph edges.
  virtual void send(NodeId to, Message message) = 0;

  /// This node's id (== vertex index).
  virtual NodeId self() const = 0;

  /// Current simulated time (nodes may not build timeouts on it — the
  /// algorithms are event-driven; it exists for logging/tracing only).
  virtual Time now() const = 0;

  /// Record a named checkpoint in the run metrics (e.g. round boundaries).
  virtual void annotate(const std::string& label) = 0;
};

}  // namespace mdst::sim
