#include "runtime/metrics.hpp"

namespace mdst::sim {

std::size_t id_bits_for(std::size_t n) {
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace mdst::sim
