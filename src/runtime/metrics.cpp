#include "runtime/metrics.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace mdst::sim {

// The read side derives every total from the flat per-type arrays the
// delivery loop maintains (see the header comment). All of these are cold:
// they run once per finished run / annotation, never per delivery.

std::uint64_t Metrics::total_messages() const {
  if (folded_) return folded_messages_;
  std::uint64_t total = 0;
  for (const PerTypeCounters& c : counters_) total += c.count;
  return total;
}

std::vector<std::uint64_t> Metrics::per_type() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(counters_.size());
  for (const PerTypeCounters& c : counters_) counts.push_back(c.count);
  return counts;
}

std::uint64_t Metrics::total_bits() const {
  if (folded_) return folded_bits_;
  std::uint64_t bits = 0;
  for (std::size_t t = 0; t < counters_.size(); ++t) {
    bits += counters_[t].count * kTagBits + ids_of_type(t) * id_bits_;
  }
  return bits;
}

std::uint64_t Metrics::max_ids_carried() const {
  if (folded_) return folded_max_ids_;
  std::uint64_t max_ids = 0;
  for (std::size_t t = 0; t < counters_.size(); ++t) {
    if (counters_[t].count == 0) continue;
    const std::uint64_t ids =
        types_[t].dynamic_ids ? counters_[t].ids_max : types_[t].static_ids;
    max_ids = std::max(max_ids, ids);
  }
  return max_ids;
}

std::uint64_t Metrics::max_message_bits() const {
  if (folded_) return folded_max_message_bits_;
  // Per-message width is kTagBits + ids * id_bits_, monotone in ids, so the
  // widest message is the one carrying max_ids (0 messages -> 0 bits).
  if (total_messages() == 0) return 0;
  return kTagBits + max_ids_carried() * id_bits_;
}

void Metrics::absorb_sequential(const Metrics& later) {
  // Fold both sides through the derived read API: each side's totals are
  // computed against its *own* type table / id width, so merging runs of
  // different protocols stays exact.
  folded_messages_ = total_messages() + later.total_messages();
  folded_bits_ = total_bits() + later.total_bits();
  folded_max_message_bits_ =
      std::max(max_message_bits(), later.max_message_bits());
  folded_max_ids_ = std::max(max_ids_carried(), later.max_ids_carried());
  folded_ = true;
  max_causal_depth_ += later.max_causal_depth_;
  last_delivery_time_ += later.last_delivery_time_;
  if (counters_.size() < later.counters_.size()) {
    counters_.resize(later.counters_.size());
  }
  for (std::size_t i = 0; i < later.counters_.size(); ++i) {
    counters_[i].count += later.counters_[i].count;
  }
}

void Metrics::absorb_parallel(const Metrics& other) {
  MDST_REQUIRE(!folded_ && !other.folded_,
               "absorb_parallel: both sides must be unfolded live meters");
  MDST_REQUIRE(counters_.size() == other.counters_.size() &&
                   id_bits_ == other.id_bits_,
               "absorb_parallel: shards of one run must share a type table");
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i].count += other.counters_[i].count;
    counters_[i].ids_sum += other.counters_[i].ids_sum;
    counters_[i].ids_max = std::max(counters_[i].ids_max,
                                    other.counters_[i].ids_max);
  }
  max_causal_depth_ = std::max(max_causal_depth_, other.max_causal_depth_);
  last_delivery_time_ =
      std::max(last_delivery_time_, other.last_delivery_time_);
}

std::size_t id_bits_for(std::size_t n) {
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace mdst::sim
