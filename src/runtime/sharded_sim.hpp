// Sharded (intra-trial parallel) discrete-event simulator.
//
// The classic Simulator (simulator.hpp) drains one global calendar queue on
// one thread. This engine partitions the node set into K contiguous shards,
// each owned by one worker lane with a *private* CalendarQueue over its own
// nodes, and advances the simulation in conservative time windows:
//
//   window base T   = min event time over all lanes (agreed at a barrier);
//   lookahead L     = DelayModel::min_delay() — a message sent at t can
//                     never deliver before t + L, the fault transform only
//                     adds a non-negative ARQ offset, and FIFO floors only
//                     push later, so every send made while processing
//                     [T, T+L) lands at >= T + L: windows are event-closed
//                     and lanes can process a whole window without ever
//                     seeing a cross-shard straggler. Under unit delay every
//                     tick is a natural barrier (L = 1).
//
// Cross-shard sends go to per-destination outboxes, drained into the
// receiving lane's queue at the next window boundary (fixed source order;
// see below for why drain order cannot matter). docs/architecture.md
// carries the full design note.
//
// Determinism contract — the reason this file looks the way it does: every
// observable output (traces, metrics, annotations, fault stats, final node
// state) is BYTE-IDENTICAL for 1 and K shards, any K, across delay models,
// engine modes, and fault plans. Three mechanisms combine to give that:
//
//   1. Canonical delivery order. Within a window, every lane processes its
//      events sorted by the intrinsic key (deliver_time, send_time, slot,
//      seq), where `slot` is the sender's directed-CSR slot (uniquely
//      naming the link and the sender's neighbor-row position) and `seq`
//      counts messages on that slot. The key is unique per event and a
//      pure function of the protocol's behaviour, so the per-lane sorted
//      orders are exactly the restriction of one global order — mailbox
//      arrival order, thread scheduling, and K itself drop out.
//   2. Keyed randomness. Delay draws and fault (loss/churn ARQ) draws for
//      the seq-th message on a slot come from a fresh stream derived from
//      (seed, slot, seq) instead of a shared sequential RNG, so a draw
//      depends only on the message's identity, not on which lane drew
//      first. Construction-time draws (crash set, churn phases, FIFO
//      exemptions, start times) happen once, on one thread, before lanes
//      exist.
//   3. Owner-partitioned state. depth_, fifo_floor_ and link_seq_ are
//      global flat arrays, but entry i is written only while the owning
//      lane processes the owning node (a node's sends happen only on its
//      owner's lane), so there are no data races and no ordering
//      ambiguity; the barriers publish everything else.
//
// Fault plans stay on the coordinator clock: crash-stop is evaluated at
// each event's delivery time (a pure function of the plan), and the wedge
// watchdog's time cap is checked against the agreed window base T — never
// against any lane's private progress — so fault behaviour cannot depend
// on shard count.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/calendar_queue.hpp"
#include "runtime/context.hpp"
#include "runtime/delay.hpp"
#include "runtime/fault.hpp"
#include "runtime/metrics.hpp"
#include "runtime/node_env.hpp"
#include "runtime/profile.hpp"
#include "runtime/shard_traits.hpp"
#include "runtime/sim_core.hpp"
#include "runtime/trace.hpp"
#include "runtime/variant_util.hpp"
#include "support/assert.hpp"
#include "support/compiler.hpp"
#include "support/rng.hpp"

namespace mdst::sim {

/// Reusable generation-counted spin barrier. Poisonable: a lane that hits a
/// protocol error sets the abort flag before unwinding, and every lane
/// parked at the barrier observes it and returns false instead of spinning
/// forever on a rendezvous that can no longer complete.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) : parties_(parties) {}

  /// Returns false when the run was aborted (the caller must unwind).
  bool arrive_and_wait(const std::atomic<bool>& abort) {
    const std::uint64_t generation =
        generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.store(generation + 1, std::memory_order_release);
      return !abort.load(std::memory_order_acquire);
    }
    // Yield while spinning: shard counts above the core count (the K=7
    // oversubscription case in the determinism suite) must not livelock.
    while (generation_.load(std::memory_order_acquire) == generation) {
      if (abort.load(std::memory_order_acquire)) return false;
      std::this_thread::yield();
    }
    return !abort.load(std::memory_order_acquire);
  }

 private:
  std::size_t parties_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

/// Queue payload of the sharded engine: the classic event plus the two
/// canonical-key coordinates stamped at send time. For the MDST message set
/// this lands exactly on 64 bytes.
template <typename Message>
struct ShardEvent {
  Event<Message> base;
  /// Sender's directed-CSR slot (canonical link identity); start events use
  /// kStartSlotBit | node id, which sorts after every real slot.
  std::uint32_t slot = 0;
  /// Index of this message in its slot's send sequence.
  std::uint32_t seq = 0;
};

/// Protocol-independent core of the sharded engine: the shared network
/// (CSR, envs, fault engine), the per-lane queues/meters/mailboxes, the
/// keyed send path, and the window-coordination state. ShardedSimulator<P>
/// composes this with the node array and the window loop.
template <typename Message>
class ShardedSimCore {
 public:
  using EventT = ShardEvent<Message>;
  using Queue = CalendarQueue<EventT>;
  using Traits = CrossShardTraits<Message>;

  static constexpr std::uint32_t kStartSlotBit = 0x8000'0000u;

  /// Canonical event key (see the file header). `ss` packs (slot, seq).
  struct EventKey {
    Time deliver = 0;
    Time send = 0;
    std::uint64_t ss = 0;
  };

  /// One extracted window event: its key plus the slab ref holding the
  /// payload (consumed in place, classic-engine style — no event copy).
  struct WindowEntry {
    Time deliver = 0;
    Time send = 0;
    std::uint64_t ss = 0;
    std::uint32_t ref = 0;
  };

  /// Running per-window prefix over the sorted entries: how many were
  /// actually delivered (starts and crash-drops excluded), the bits those
  /// deliveries carried, how many were dropped on a crashed destination,
  /// and the max delivered causal depth — the inputs for reconstructing
  /// annotation snapshots (message, bit, and in-flight meters) in canonical
  /// order. `delivered` is window-relative (added to the published base);
  /// bits/dropped/sent are the lane's ABSOLUTE cumulative counters, with
  /// `sent` taken after this entry's handler returned (handlers send
  /// mid-window, so a within-window send prefix cannot be assembled before
  /// processing — the emitting lane substitutes its own mid-handler value,
  /// see PendingAnnotation::lane_sent_at_emit).
  struct WindowPrefix {
    std::uint64_t delivered = 0;
    std::uint64_t causal_depth = 0;
    std::uint64_t bits = 0;
    std::uint64_t dropped = 0;
    std::uint64_t sent = 0;
  };

  /// An annotation emitted by a handler this window, waiting for the
  /// cross-lane snapshot reconstruction at the next window boundary.
  struct PendingAnnotation {
    EventKey key;
    std::uint32_t emission = 0;  // per-lane monotone: orders same-event tags
    Time time = 0;
    std::string label;
    AnnotationTag tag;
    bool tagged = false;
    /// This lane's absolute send counter at the emit instant — mid-handler
    /// exact, where the prefix array only knows post-handler totals.
    std::uint64_t lane_sent_at_emit = 0;
  };

  struct FinalizedAnnotation {
    EventKey key;
    std::uint32_t emission = 0;
    Annotation annotation;
  };

  /// One cross-shard event in flight between two windows. `luggage` carries
  /// any thread-local payload state detached by the sender (shard_traits).
  struct OutboundEvent {
    Time deliver = 0;
    EventT ev{};
    typename Traits::Luggage luggage{};
  };

  /// Per-window published coordination slot, double-buffered by window
  /// parity so a lane finalizing last window's annotations can still read
  /// last window's bases while others publish this window's.
  struct alignas(64) Published {
    Time min_time = 0;
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t causal_depth = 0;
    std::uint64_t bits = 0;
    std::uint64_t dropped = 0;
  };

  struct alignas(64) Lane {
    Lane(std::uint32_t index_, std::size_t shard_count,
         std::vector<MessageDescriptor> types, std::size_t id_bits)
        : index(index_),
          metrics(std::move(types), id_bits),
          outbox(shard_count) {}

    std::uint32_t index;
    Queue queue;
    Metrics metrics;
    Time now = 0;
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;  // cumulative accounted deliveries
    std::uint64_t bits = 0;       // cumulative delivered bits (meter formula)
    FaultStats fault_stats;
    // Per-type census of events dropped at time-cap teardown (variant
    // order; empty unless discard_lane ran) — wedge forensics input.
    std::vector<std::uint64_t> discard_census;
    // Current window (valid from extraction until the next extraction —
    // annotation finalization on *other* lanes reads them in between).
    std::vector<WindowEntry> win_entries;
    std::vector<WindowPrefix> win_prefix;
    // Annotation bookkeeping.
    EventKey current_key;  // key of the event whose handler is running
    std::uint32_t emission = 0;
    std::vector<PendingAnnotation> pending;
    std::vector<FinalizedAnnotation> finalized;
    // Per-lane trace (rows in lane-canonical order, capped at the global
    // cap; merged by key after the run).
    std::vector<TraceRow> trace_rows;
    std::vector<EventKey> trace_keys;
    std::uint64_t trace_attempted = 0;
    // Cross-shard mailboxes: outbox[dst] is written by this lane while
    // processing a window and drained by lane dst at the next boundary.
    std::vector<std::vector<OutboundEvent>> outbox;
    // Worker-thread pool balance (shard_traits pooled_in_use hook).
    std::size_t pool_before = 0;
    std::size_t pool_after = 0;
    // Per-lane one-shot latch for the plan's corruption scramble (each lane
    // applies it to its owned targets only; see corrupt_pending).
    bool corrupt_applied = false;
  };

  struct Decision {
    Time window_base = 0;
    std::uint64_t total_sent = 0;
    bool done = false;
  };

  ShardedSimCore(const graph::Graph& graph, const SimConfig& config)
      : config_(config),
        trace_cap_(config.trace_cap),
        merged_metrics_(type_infos(), id_bits_for(graph.vertex_count())),
        merged_trace_(config.trace_cap) {
    const std::size_t n = graph.vertex_count();
    MDST_REQUIRE(n > 0, "simulator: empty graph");
    MDST_REQUIRE(config_.shards >= 1,
                 "sharded engine: SimConfig::shards must be >= 1");
    // More lanes than nodes would leave empty shards idling at every
    // barrier; clamp (the canonical order makes the outputs identical for
    // any lane count anyway).
    shard_count_ = std::min<std::size_t>(config_.shards, n);
    barrier_ = std::make_unique<SpinBarrier>(shard_count_);

    envs_.reserve(n);
    depth_.assign(n, 0);
    adj_off_.assign(n + 1, 0);
    // Same single-sweep CSR build as SimCore (sim_core.hpp has the full
    // commentary): flat NeighborInfo pool, directed links with paired
    // reverse indices, and — only under an active plan — the slot → edge
    // map for the fault engine.
    const std::size_t slots = 2 * graph.edge_count();
    MDST_REQUIRE(slots < kStartSlotBit,
                 "sharded engine: graph too large for 31-bit slot keys");
    neighbor_pool_.reserve(slots);
    links_.reserve(slots);
    faults_active_ = config_.faults.active();
    std::vector<std::uint32_t> slot_edge;
    if (faults_active_) slot_edge.reserve(slots);
    std::vector<std::uint32_t> pos(graph.edge_count(), kNoNeighborIndex);
    for (std::size_t v = 0; v < n; ++v) {
      std::uint32_t j = 0;
      for (const graph::Incidence& inc :
           graph.neighbors(static_cast<NodeId>(v))) {
        const NodeId u = inc.neighbor;
        const std::size_t e = static_cast<std::size_t>(inc.edge);
        if (faults_active_) {
          slot_edge.push_back(static_cast<std::uint32_t>(e));
        }
        neighbor_pool_.push_back({u, graph.name(u)});
        if (pos[e] == kNoNeighborIndex) {
          pos[e] = j;
          links_.push_back({u, kNoNeighborIndex});  // patched on 2nd visit
        } else {
          links_.push_back({u, pos[e]});
          links_[adj_off_[static_cast<std::size_t>(u)] + pos[e]]
              .reverse_index = j;
        }
        ++j;
      }
      adj_off_[v + 1] = adj_off_[v] + j;
    }
    for (std::size_t v = 0; v < n; ++v) {
      NodeEnv env;
      env.id = static_cast<NodeId>(v);
      env.name = graph.name(static_cast<NodeId>(v));
      env.neighbors = std::span<const NeighborInfo>(
          neighbor_pool_.data() + adj_off_[v], adj_off_[v + 1] - adj_off_[v]);
      envs_.push_back(env);
    }
    fifo_floors_active_ = config_.fifo_links && !config_.delay.is_unit();
    unit_delay_ = config_.delay.is_unit();
    lookahead_ = config_.delay.min_delay();
    fast_keys_ = unit_delay_ && !faults_active_;
    if (fifo_floors_active_) fifo_floor_.assign(links_.size(), 0);
    link_seq_.assign(links_.size(), 0);
    timer_seq_.assign(n, 1);  // seq 0 on the start slot is the start event
    if (faults_active_) {
      fault_ = std::make_unique<FaultEngine>(config_.faults, n,
                                             graph.edge_count(),
                                             std::move(slot_edge));
    }

    // Contiguous block partition: lane k owns nodes [offset_k, offset_k+1).
    owner_.resize(n);
    const std::size_t block = n / shard_count_;
    const std::size_t extra = n % shard_count_;
    std::size_t next = 0;
    for (std::size_t k = 0; k < shard_count_; ++k) {
      const std::size_t count = block + (k < extra ? 1 : 0);
      for (std::size_t i = 0; i < count; ++i) {
        owner_[next++] = static_cast<std::uint32_t>(k);
      }
    }
    MDST_ASSERT(next == n, "sharded engine: partition must cover every node");

    lanes_.reserve(shard_count_);
    for (std::size_t k = 0; k < shard_count_; ++k) {
      lanes_.push_back(std::make_unique<Lane>(static_cast<std::uint32_t>(k),
                                              shard_count_, type_infos(),
                                              id_bits_for(n)));
    }
    pub_[0].resize(shard_count_);
    pub_[1].resize(shard_count_);

    // Spontaneous starts, drawn centrally in node order from the schedule
    // seed — the same first-draw sequence as the classic engine — then
    // seeded straight into the owning lane's queue (pre-run, one thread).
    support::Rng start_rng(config_.seed);
    for (std::size_t v = 0; v < n; ++v) {
      const Time at = config_.start_spread == 0
                          ? 0
                          : start_rng.next_below(config_.start_spread + 1);
      Lane& lane = *lanes_[owner_[v]];
      EventT& ev = lane.queue.emplace(at);
      ev.base.kind = EventKind::kStart;
      ev.base.ids = 0;
      ev.base.to = static_cast<NodeId>(v);
      ev.base.from = kNoNode;
      ev.base.from_index = kNoNeighborIndex;
      ev.base.causal_depth = 0;
      ev.base.send_time = at;
      ev.slot = kStartSlotBit | static_cast<std::uint32_t>(v);
      ev.seq = 0;
    }
  }

  std::size_t shard_count() const { return shard_count_; }
  const SimConfig& config() const { return config_; }
  const std::vector<NodeEnv>& envs() const { return envs_; }
  std::size_t node_count() const { return envs_.size(); }
  bool faults_active() const { return faults_active_; }
  bool trace_enabled() const { return trace_cap_ > 0; }
  Lane& lane(std::size_t k) { return *lanes_[k]; }

  bool crashed_at(NodeId v, Time t) const { return fault_->crashed_at(v, t); }

  // --- merged post-run views (valid after merge_lanes) ---------------------
  const Metrics& metrics() const { return merged_metrics_; }
  const Trace& trace() const { return merged_trace_; }
  Time now() const { return final_now_; }
  FaultStats fault_stats() const { return merged_fault_stats_; }

  /// Per-subsystem byte accounting across all lanes (node_bytes filled in
  /// by the owning ShardedSimulator, which holds the node array).
  MemoryReport memory_report() const {
    MemoryReport report;
    for (std::size_t k = 0; k < shard_count_; ++k) {
      const Lane& lane = *lanes_[k];
      report.queue_bytes += lane.queue.approx_bytes();
      report.metrics_bytes += lane.metrics.approx_bytes();
    }
    report.metrics_bytes += merged_metrics_.approx_bytes();
    report.floor_bytes = fifo_floor_.capacity() * sizeof(Time) +
                         link_seq_.capacity() * sizeof(std::uint32_t) +
                         timer_seq_.capacity() * sizeof(std::uint32_t);
    report.graph_bytes = neighbor_pool_.capacity() * sizeof(NeighborInfo) +
                         envs_.capacity() * sizeof(NodeEnv) +
                         depth_.capacity() * sizeof(std::uint64_t) +
                         adj_off_.capacity() * sizeof(std::uint32_t) +
                         links_.capacity() * sizeof(DirectedLink) +
                         owner_.capacity() * sizeof(std::uint32_t);
    return report;
  }

  // --- the keyed send path -------------------------------------------------

  template <typename Alt>
  void shard_send(Lane& lane, NodeId from, NodeId to, Alt&& message) {
    const std::size_t slot = find_directed_slot(from, to);
    MDST_REQUIRE(slot != kNoSlot,
                 "send: target is not a neighbor (point-to-point model)");
    send_on_slot(lane, from, to, slot, std::forward<Alt>(message));
  }

  template <typename Alt>
  void shard_send_at_neighbor_index(Lane& lane, NodeId from, NodeId to,
                                    std::uint32_t index, Alt&& message) {
    const std::size_t slot = adj_off_[static_cast<std::size_t>(from)] + index;
    MDST_ASSERT(slot < adj_off_[static_cast<std::size_t>(from) + 1] &&
                    links_[slot].peer == to,
                "send_at_neighbor_index: index does not address the target");
    send_on_slot(lane, from, to, slot, std::forward<Alt>(message));
  }

  void shard_annotate(Lane& lane, std::string label) {
    lane.pending.push_back({lane.current_key, lane.emission++, lane.now,
                            std::move(label), AnnotationTag{}, false,
                            lane.sent});
  }
  void shard_annotate_tag(Lane& lane, const AnnotationTag& tag) {
    lane.pending.push_back(
        {lane.current_key, lane.emission++, lane.now, std::string{}, tag,
         true, lane.sent});
  }

  /// Schedule a lane-local timer for `self` at now + delay (kind kTimer;
  /// same accounting-free contract as SimCore::schedule_timer). A node only
  /// schedules its own timers, so the event stays in the owner lane's queue
  /// — never a cross-shard send. The canonical key reuses the node's start
  /// slot (kStartSlotBit | self) with a per-node sequence starting at 1
  /// (the start event holds seq 0): unique, and a pure function of the
  /// protocol's behaviour, exactly like message keys. Window closure needs
  /// delay >= lookahead — the timer is created while its owner processes
  /// [T, T+L) at now >= T, so it lands at >= T + L, never inside the agreed
  /// window (run_mdst pre-checks the heartbeat period so this REQUIRE only
  /// trips on protocol bugs).
  void shard_schedule_timer(Lane& lane, NodeId self, Time delay) {
    MDST_REQUIRE(delay >= lookahead_,
                 "schedule_timer: delay must be >= the delay model's min "
                 "delay (sharded window closure)");
    EventT& ev = lane.queue.emplace(lane.now + delay);
    ev.base.kind = EventKind::kTimer;
    ev.base.ids = 0;
    ev.base.to = self;
    ev.base.from = kNoNode;
    ev.base.from_index = kNoNeighborIndex;
    ev.base.causal_depth = 0;
    ev.base.send_time = lane.now;
    ev.slot = kStartSlotBit | static_cast<std::uint32_t>(self);
    ev.seq = timer_seq_[static_cast<std::size_t>(self)]++;
  }

  // --- state-corruption faults (lane-partitioned application) --------------

  /// True while the plan schedules a corruption scramble this lane has not
  /// applied yet. The latch is per-lane: each lane scrambles only the
  /// targets it owns, at the first agreed window base >= corrupt_time — a
  /// pure function of the plan and the (K-invariant) window sequence.
  bool corrupt_pending(const Lane& lane) const {
    return faults_active_ && !lane.corrupt_applied &&
           fault_->plan().corrupts();
  }
  Time corrupt_time() const { return fault_->plan().corrupt_time; }
  /// Drawn corruption targets, ascending (FaultEngine::corrupt_targets;
  /// drawn centrally at construction, before lanes exist).
  const std::vector<NodeId>& corrupt_targets() const {
    return fault_->corrupt_targets();
  }
  bool lane_owns(const Lane& lane, NodeId v) const {
    return owner_[static_cast<std::size_t>(v)] == lane.index;
  }

  // --- window coordination (called by the lane loop) -----------------------

  bool barrier_wait(const std::atomic<bool>& abort) {
    return barrier_->arrive_and_wait(abort);
  }

  /// Move every inbound cross-shard event (all source lanes, fixed order)
  /// into this lane's queue, re-homing thread-local payload state. Drain
  /// order cannot affect anything observable — the queue orders by time and
  /// the window sort orders within a window by the intrinsic key — but a
  /// fixed order keeps the walk itself deterministic.
  void drain_inboxes(Lane& lane) {
    for (std::size_t src = 0; src < shard_count_; ++src) {
      if (src == lane.index) continue;
      std::vector<OutboundEvent>& inbox = lanes_[src]->outbox[lane.index];
      for (OutboundEvent& in : inbox) {
        Traits::attach(in.ev.base.payload, in.luggage);
        lane.queue.emplace(in.deliver) = in.ev;
      }
      inbox.clear();
    }
  }

  /// Reconstruct the canonical metric snapshots for every annotation this
  /// lane emitted in the window just processed. Bases come from the
  /// opposite-parity published slots (the state before that window); the
  /// within-window portion comes from every lane's sorted window entries
  /// and delivered-prefix arrays, which stay intact until the next
  /// extraction.
  void finalize_pending(Lane& lane, std::size_t prev_parity) {
    if (lane.pending.empty()) return;
    std::uint64_t base_delivered = 0;
    std::uint64_t base_depth = 0;
    for (std::size_t k = 0; k < shard_count_; ++k) {
      base_delivered += pub_[prev_parity][k].delivered;
      base_depth = std::max(base_depth, pub_[prev_parity][k].causal_depth);
    }
    for (PendingAnnotation& p : lane.pending) {
      std::uint64_t total = base_delivered;
      std::uint64_t depth = base_depth;
      std::uint64_t bits = 0;
      std::uint64_t sent = 0;
      std::uint64_t dropped = 0;
      for (std::size_t k = 0; k < shard_count_; ++k) {
        const Lane& other = *lanes_[k];
        const std::size_t at = upper_bound_key(other.win_entries, p.key);
        if (at > 0) {
          const WindowPrefix& pf = other.win_prefix[at - 1];
          total += pf.delivered;
          depth = std::max(depth, pf.causal_depth);
          bits += pf.bits;
          dropped += pf.dropped;
          // The emitting lane's prefix holds the post-handler send count;
          // the mid-handler value captured at the emit instant is exact.
          sent += k == lane.index ? p.lane_sent_at_emit : pf.sent;
        } else {
          const Published& prev = pub_[prev_parity][k];
          bits += prev.bits;
          dropped += prev.dropped;
          sent += k == lane.index ? p.lane_sent_at_emit : prev.sent;
        }
      }
      // Same clamp as SimCore::in_flight(): dropped counts suppressed start
      // events too, which are not sends.
      const std::uint64_t gone = total + dropped;
      const std::uint64_t in_flight = sent > gone ? sent - gone : 0;
      lane.finalized.push_back(
          {p.key, p.emission,
           Annotation{p.time, total, depth, std::move(p.label), p.tag,
                      p.tagged, bits, in_flight}});
    }
    lane.pending.clear();
  }

  void publish(Lane& lane, std::size_t parity) {
    Published& slot = pub_[parity][lane.index];
    slot.min_time = lane.queue.empty() ? kInfTime : lane.queue.min_time();
    slot.sent = lane.sent;
    slot.delivered = lane.delivered;
    slot.causal_depth = lane.metrics.max_causal_depth();
    slot.bits = lane.bits;
    slot.dropped = lane.fault_stats.dropped_deliveries;
  }

  /// Every lane computes the identical decision from the published slots.
  Decision decide(std::size_t parity) const {
    Decision d;
    Time min_time = kInfTime;
    for (std::size_t k = 0; k < shard_count_; ++k) {
      min_time = std::min(min_time, pub_[parity][k].min_time);
      d.total_sent += pub_[parity][k].sent;
    }
    d.window_base = min_time;
    d.done = min_time == kInfTime;
    return d;
  }

  [[noreturn]] MDST_NOINLINE void fail_message_cap() const {
    MDST_REQUIRE(false,
                 "message cap exceeded (SimConfig::max_messages = " +
                     std::to_string(config_.max_messages) +
                     ") — livelock? Healthy large-n runs need a raised cap; "
                     "see SimConfig::large_n_sweep()");
    std::abort();  // unreachable; REQUIRE above always throws
  }

  /// Pop everything in [T, T+L) into the window buffer and sort it into
  /// canonical order. Payloads stay in the queue slab (consumed in place,
  /// released after processing).
  void extract_window(Lane& lane, Time window_base) {
    lane.win_entries.clear();
    lane.win_prefix.clear();
    const Time horizon = window_base + lookahead_;
    Queue& queue = lane.queue;
    while (!queue.empty() && queue.min_time() < horizon) {
      const auto popped = queue.pop();
      const EventT& ev = *popped.payload;
      lane.win_entries.push_back(
          {popped.time, ev.base.send_time,
           (static_cast<std::uint64_t>(ev.slot) << 32) | ev.seq, popped.ref});
    }
    if (fast_keys_) {
      // Unit delay without faults: within a window every message shares
      // (deliver, send) = (T, T-1) and starts sort last via the slot high
      // bit, so the packed (slot, seq) word alone is the canonical order.
      std::sort(lane.win_entries.begin(), lane.win_entries.end(),
                [](const WindowEntry& a, const WindowEntry& b) {
                  return a.ss < b.ss;
                });
    } else {
      std::sort(lane.win_entries.begin(), lane.win_entries.end(),
                [](const WindowEntry& a, const WindowEntry& b) {
                  if (a.deliver != b.deliver) return a.deliver < b.deliver;
                  if (a.send != b.send) return a.send < b.send;
                  return a.ss < b.ss;
                });
    }
  }

  /// Meter and trace one delivery on this lane (classic account_delivery,
  /// metering into the lane's private instruments).
  template <bool TraceOn>
  void account_delivery(Lane& lane, const EventT& ev, const WindowEntry& at) {
    auto& d = depth_[static_cast<std::size_t>(ev.base.to)];
    if (ev.base.causal_depth > d) {
      d = ev.base.causal_depth;
      lane.metrics.note_causal_depth(ev.base.causal_depth);
    }
    const std::size_t type_index = ev.base.payload.index();
    const MessageDescriptor& desc = kMessageDescriptors<Message>[type_index];
    if (desc.dynamic_ids) {
      lane.metrics.count_delivery_dynamic(type_index, ev.base.ids, at.deliver);
    } else {
      lane.metrics.count_delivery(type_index, at.deliver);
    }
    ++lane.delivered;
    // Running bit meter, matching Metrics::total_bits() per delivery (for
    // static-id types ev.ids was stamped from ids_carried(), which equals
    // the descriptor constant, so the formula is uniform).
    lane.bits += Metrics::kTagBits + ev.base.ids * lane.metrics.id_bits();
    if constexpr (TraceOn) {
      ++lane.trace_attempted;
      if (lane.trace_rows.size() < trace_cap_) {
        lane.trace_rows.push_back({ev.base.send_time, at.deliver, ev.base.from,
                                   ev.base.to, type_index, desc.name,
                                   ev.base.causal_depth});
        lane.trace_keys.push_back({at.deliver, at.send, at.ss});
      }
    }
  }

  EventT& lane_event(Lane& lane, std::uint32_t ref) {
    return lane.queue.payload(ref);
  }

  /// Return a consumed event's slab node, restoring the resting
  /// kind == kMessage tag (the same recycle contract as SimCore::release).
  void release_event(Lane& lane, std::uint32_t ref) {
    lane.queue.payload(ref).base.kind = EventKind::kMessage;
    lane.queue.release(ref);
  }

  /// Merge the per-lane instruments into the final single-run view. Runs on
  /// the coordinating thread after every lane joined. Canonical order of
  /// merged sequences is total order on the event keys, so the result is
  /// identical for any shard count.
  void merge_lanes() {
    merged_metrics_ = std::move(lanes_[0]->metrics);
    for (std::size_t k = 1; k < shard_count_; ++k) {
      merged_metrics_.absorb_parallel(lanes_[k]->metrics);
    }
    // Bounded-metrics mode: lane meters never hold annotations (they flow
    // through the pending/finalized side channel), so the cap can be
    // applied here — after the move wiped any earlier setting and before
    // the canonical-order appends below, which then ring exactly like the
    // classic engine's.
    if (config_.annotation_cap != 0) {
      merged_metrics_.set_annotation_cap(config_.annotation_cap);
    }
    // Annotations: per-lane lists are already key-sorted; one global sort
    // over the concatenation is simplest (annotations are per-round rare).
    std::vector<FinalizedAnnotation> annotations;
    for (std::size_t k = 0; k < shard_count_; ++k) {
      for (FinalizedAnnotation& a : lanes_[k]->finalized) {
        annotations.push_back(std::move(a));
      }
      lanes_[k]->finalized.clear();
    }
    std::sort(annotations.begin(), annotations.end(),
              [](const FinalizedAnnotation& a, const FinalizedAnnotation& b) {
                if (a.key.deliver != b.key.deliver) {
                  return a.key.deliver < b.key.deliver;
                }
                if (a.key.send != b.key.send) return a.key.send < b.key.send;
                if (a.key.ss != b.key.ss) return a.key.ss < b.key.ss;
                return a.emission < b.emission;
              });
    for (FinalizedAnnotation& a : annotations) {
      merged_metrics_.append_annotation(std::move(a.annotation));
    }
    // Trace: merge the per-lane (capped) row lists by key; the global first
    // cap rows are a subset of the per-lane first cap rows, so the merge
    // reproduces the canonical prefix exactly. The truncation flag must
    // reflect globally-attempted rows, which can exceed the cap even when
    // every lane stayed under it.
    if (trace_cap_ > 0) {
      std::vector<std::pair<EventKey, TraceRow>> rows;
      std::uint64_t attempted = 0;
      for (std::size_t k = 0; k < shard_count_; ++k) {
        Lane& lane = *lanes_[k];
        attempted += lane.trace_attempted;
        for (std::size_t i = 0; i < lane.trace_rows.size(); ++i) {
          rows.emplace_back(lane.trace_keys[i], lane.trace_rows[i]);
        }
        lane.trace_rows.clear();
        lane.trace_keys.clear();
      }
      std::sort(rows.begin(), rows.end(),
                [](const auto& a, const auto& b) {
                  if (a.first.deliver != b.first.deliver) {
                    return a.first.deliver < b.first.deliver;
                  }
                  if (a.first.send != b.first.send) {
                    return a.first.send < b.first.send;
                  }
                  return a.first.ss < b.first.ss;
                });
      for (const auto& [key, row] : rows) merged_trace_.record(row);
      if (attempted > trace_cap_) merged_trace_.mark_truncated();
    }
    merged_fault_stats_ = fault_ ? fault_->stats() : FaultStats{};
    for (std::size_t k = 0; k < shard_count_; ++k) {
      const FaultStats& s = lanes_[k]->fault_stats;
      merged_fault_stats_.retransmits += s.retransmits;
      merged_fault_stats_.dropped_deliveries += s.dropped_deliveries;
      merged_fault_stats_.discarded_events += s.discarded_events;
      merged_fault_stats_.corrupted_nodes += s.corrupted_nodes;
      final_now_ = std::max(final_now_, lanes_[k]->now);
      // Time-cap discard census (wedge forensics): sum the per-lane
      // per-type counts; stays empty when no lane discarded anything.
      if (!lanes_[k]->discard_census.empty()) {
        if (discard_census_.empty()) {
          discard_census_.assign(lanes_[k]->discard_census.size(), 0);
        }
        for (std::size_t t = 0; t < discard_census_.size(); ++t) {
          discard_census_[t] += lanes_[k]->discard_census[t];
        }
      }
    }
  }

  /// Per-message-type census of events discarded at time-cap teardown
  /// (variant order; empty when the run was not capped). Valid after
  /// merge_lanes, like the other merged views.
  const std::vector<std::uint64_t>& discard_census() const {
    return discard_census_;
  }

  /// Move the merged trace out (run end only; same contract as
  /// SimCore::take_trace).
  Trace take_trace() { return std::move(merged_trace_); }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  static constexpr Time kInfTime = static_cast<Time>(-1);
  /// Stream constant separating keyed delay draws from every other derived
  /// stream of the schedule seed.
  static constexpr std::uint64_t kDelayStream = 0x5ade1a9;

  static std::vector<MessageDescriptor> type_infos() {
    return {kMessageDescriptors<Message>.begin(),
            kMessageDescriptors<Message>.end()};
  }

  std::size_t find_directed_slot(NodeId from, NodeId to) const {
    const auto u = static_cast<std::size_t>(from);
    if (from < 0 || u + 1 >= adj_off_.size()) return kNoSlot;
    const std::uint32_t hi = adj_off_[u + 1];
    for (std::uint32_t s = adj_off_[u]; s < hi; ++s) {
      if (links_[s].peer == to) return s;
    }
    return kNoSlot;
  }

  Time bump_fifo_floor(std::size_t slot, Time deliver_at) {
    Time& last = fifo_floor_[slot];
    if (deliver_at < last) deliver_at = last;
    last = deliver_at;
    return deliver_at;
  }

  /// Keyed delay draw: the delay of the seq-th message on a slot is a pure
  /// function of (seed, slot, seq) — identical for every shard count. The
  /// unit model draws nothing, exactly like the classic fast path.
  Time keyed_delay(std::size_t slot, std::uint32_t seq) const {
    if (unit_delay_) return 1;
    support::Rng rng(
        support::derive_seed(config_.seed ^ kDelayStream, slot, seq));
    return config_.delay.sample(rng);
  }

  /// upper_bound over a lane's sorted window entries, using the same
  /// comparator the window sort used.
  std::size_t upper_bound_key(const std::vector<WindowEntry>& entries,
                              const EventKey& key) const {
    const auto less = [this](const EventKey& k, const WindowEntry& e) {
      if (fast_keys_) return k.ss < e.ss;
      if (k.deliver != e.deliver) return k.deliver < e.deliver;
      if (k.send != e.send) return k.send < e.send;
      return k.ss < e.ss;
    };
    return static_cast<std::size_t>(
        std::upper_bound(entries.begin(), entries.end(), key, less) -
        entries.begin());
  }

  template <typename Alt>
  void send_on_slot(Lane& lane, NodeId from, NodeId to, std::size_t slot,
                    Alt&& message) {
    // Lane-local runaway guard; the authoritative (deterministic) cap check
    // sums every lane's count at the next window barrier.
    if (lane.sent >= config_.max_messages) [[unlikely]] fail_message_cap();
    ++lane.sent;
    std::uint16_t ids;
    if constexpr (std::is_same_v<std::decay_t<Alt>, Message>) {
      ids = static_cast<std::uint16_t>(switch_visit(
          message, [](const auto& m) { return m.ids_carried(); }));
    } else {
      ids = static_cast<std::uint16_t>(message.ids_carried());
    }
    const std::uint32_t seq = link_seq_[slot]++;
    Time deliver_at = lane.now + keyed_delay(slot, seq);
    if (faults_active_) [[unlikely]] {
      deliver_at = fault_->transform_delivery_keyed(slot, seq, lane.now,
                                                    deliver_at,
                                                    lane.fault_stats);
      if (fifo_floors_active_ && !fault_->fifo_exempt(slot)) {
        deliver_at = bump_fifo_floor(slot, deliver_at);
      }
    } else if (fifo_floors_active_) {
      deliver_at = bump_fifo_floor(slot, deliver_at);
    }
    const std::uint32_t dst = owner_[static_cast<std::size_t>(to)];
    if (dst == lane.index) [[likely]] {
      EventT& ev = lane.queue.emplace(deliver_at);
      // base.kind is already kMessage (fresh default / release_event).
      fill_event(ev, from, to, slot, seq, ids, lane.now,
                 std::forward<Alt>(message));
    } else {
      lane.outbox[dst].emplace_back();
      OutboundEvent& out = lane.outbox[dst].back();
      out.deliver = deliver_at;
      out.ev.base.kind = EventKind::kMessage;
      fill_event(out.ev, from, to, slot, seq, ids, lane.now,
                 std::forward<Alt>(message));
      Traits::detach(out.ev.base.payload, out.luggage);
    }
  }

  template <typename Alt>
  void fill_event(EventT& ev, NodeId from, NodeId to, std::size_t slot,
                  std::uint32_t seq, std::uint16_t ids, Time now,
                  Alt&& message) {
    ev.base.ids = ids;
    ev.base.to = to;
    ev.base.from = from;
    ev.base.from_index = links_[slot].reverse_index;
    if constexpr (std::is_same_v<std::decay_t<Alt>, Message>) {
      ev.base.payload = std::forward<Alt>(message);
    } else {
      ev.base.payload.template emplace<std::decay_t<Alt>>(
          std::forward<Alt>(message));
    }
    ev.base.causal_depth = depth_[static_cast<std::size_t>(from)] + 1;
    ev.base.send_time = now;
    ev.slot = static_cast<std::uint32_t>(slot);
    ev.seq = seq;
  }

  SimConfig config_;
  std::size_t trace_cap_;
  std::size_t shard_count_ = 1;
  std::vector<NeighborInfo> neighbor_pool_;
  std::vector<NodeEnv> envs_;
  /// Owner-partitioned global state (see the file header): entry i is only
  /// ever touched by the lane owning the relevant node.
  std::vector<std::uint64_t> depth_;
  struct DirectedLink {
    NodeId peer = kNoNode;
    std::uint32_t reverse_index = kNoNeighborIndex;
  };
  std::vector<std::uint32_t> adj_off_;
  std::vector<DirectedLink> links_;
  std::vector<Time> fifo_floor_;
  /// Per-slot send counters: the seq half of every message's canonical key.
  std::vector<std::uint32_t> link_seq_;
  /// Per-node timer sequence counters (owner-partitioned like link_seq_;
  /// the seq half of timer keys on the node's start slot).
  std::vector<std::uint32_t> timer_seq_;
  std::vector<std::uint32_t> owner_;
  std::unique_ptr<FaultEngine> fault_;
  bool faults_active_ = false;
  bool fifo_floors_active_ = false;
  bool unit_delay_ = false;
  bool fast_keys_ = false;
  Time lookahead_ = 1;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<Published> pub_[2];
  std::unique_ptr<SpinBarrier> barrier_;
  // Merged post-run views.
  Metrics merged_metrics_;
  Trace merged_trace_;
  FaultStats merged_fault_stats_;
  std::vector<std::uint64_t> discard_census_;
  Time final_now_ = 0;
};

/// Concrete context bound to one lane of a ShardedSimCore. Derives from
/// IContext so virtual-interface protocols (the spanning baselines) bind
/// unchanged; `final` with header-visible bodies so nodes templated on it
/// directly (mdst::core::ShardProtocol's node) devirtualize the send path,
/// exactly like SimContext.
template <typename Message>
class ShardContext final : public IContext<Message> {
 public:
  using Core = ShardedSimCore<Message>;

  ShardContext(Core* core, typename Core::Lane* lane, NodeId self,
               std::uint32_t from_index = kNoNeighborIndex)
      : core_(core), lane_(lane), self_(self), from_index_(from_index) {}

  void send(NodeId to, Message message) final {
    core_->shard_send(*lane_, self_, to, std::move(message));
  }
  /// Typed fast path (not part of IContext); see SimContext::send.
  template <typename Alt>
    requires(!std::is_same_v<std::decay_t<Alt>, Message>)
  void send(NodeId to, Alt&& message) {
    core_->shard_send(*lane_, self_, to, std::forward<Alt>(message));
  }
  /// Slot-addressed fast path; see SimContext::send_at_index.
  template <typename Alt>
  void send_at_index(NodeId to, std::uint32_t index, Alt&& message) {
    core_->shard_send_at_neighbor_index(*lane_, self_, to, index,
                                        std::forward<Alt>(message));
  }
  NodeId self() const final { return self_; }
  Time now() const final { return lane_->now; }
  void annotate(const std::string& label) final {
    core_->shard_annotate(*lane_, label);
  }
  /// Tagged fast path; see SimContext::annotate_tag.
  void annotate_tag(const AnnotationTag& tag) {
    core_->shard_annotate_tag(*lane_, tag);
  }
  /// Reverse-CSR delivery hint; see SimContext::from_index.
  std::uint32_t from_index() const { return from_index_; }
  /// Lane-local timer for the running node; see SimContext::schedule_timer
  /// and ShardedSimCore::shard_schedule_timer for the key/closure contract.
  void schedule_timer(Time delay) {
    core_->shard_schedule_timer(*lane_, self_, delay);
  }

 private:
  Core* core_;
  typename Core::Lane* lane_;
  NodeId self_;
  std::uint32_t from_index_ = kNoNeighborIndex;
};

/// The sharded counterpart of Simulator<P>: node array + the SPMD window
/// loop. The protocol contract is the same (see simulator.hpp); Ctx is
/// ShardContext<Message>, which IContext-typed handlers bind to through the
/// base class.
template <typename P>
class ShardedSimulator {
 public:
  using Message = typename P::Message;
  using Node = typename P::Node;
  using NodeFactory = std::function<Node(const NodeEnv&)>;
  using Core = ShardedSimCore<Message>;
  using Ctx = ShardContext<Message>;
  using Lane = typename Core::Lane;
  using EventT = typename Core::EventT;

  ShardedSimulator(const graph::Graph& graph, const NodeFactory& factory,
                   SimConfig config = {})
      : core_(graph, config) {
    nodes_.reserve(core_.node_count());
    for (const NodeEnv& env : core_.envs()) nodes_.push_back(factory(env));
  }

  /// Run to completion (no time cap).
  void run() { run_windows(0); }

  /// Run with the wedge watchdog's time cap: stop — discarding every event
  /// still queued — as soon as the agreed window base reaches `deadline`
  /// (0 = uncapped). Returns true when the cap cut the run short.
  bool run_capped(Time deadline) { return run_windows(deadline); }

  Time now() const { return core_.now(); }
  const Metrics& metrics() const { return core_.metrics(); }
  const Trace& trace() const { return core_.trace(); }
  Node& node(NodeId id) {
    MDST_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                 "simulator: bad node id");
    return nodes_[static_cast<std::size_t>(id)];
  }
  const Node& node(NodeId id) const {
    return const_cast<ShardedSimulator*>(this)->node(id);
  }
  std::size_t node_count() const { return nodes_.size(); }
  const NodeEnv& env(NodeId id) const {
    return core_.envs().at(static_cast<std::size_t>(id));
  }
  std::size_t shard_count() const { return core_.shard_count(); }

  bool crashed(NodeId v) const {
    return core_.faults_active() && core_.crashed_at(v, core_.now());
  }
  FaultStats fault_stats() const { return core_.fault_stats(); }

  /// Per-message-type census of events discarded by the time cap (variant
  /// order; empty when the run completed normally).
  const std::vector<std::uint64_t>& discard_census() const {
    return core_.discard_census();
  }

  /// Move the merged trace out (run end only).
  sim::Trace take_trace() { return core_.take_trace(); }

  /// True when every worker lane's thread-local payload pool (shard_traits
  /// pooled_in_use hook) returned to its thread-start occupancy. Trivially
  /// true for message sets without pooled payloads.
  bool pools_balanced() const { return pools_balanced_; }

  /// Per-subsystem byte accounting at this instant (read at run end for
  /// RunResult::memory). Core structures plus the node array; the caller
  /// adds externally owned node state (the shared NodeArenas).
  MemoryReport memory_report() const {
    MemoryReport report = core_.memory_report();
    report.node_bytes += nodes_.capacity() * sizeof(Node);
    return report;
  }

 private:
  using Traits = typename Core::Traits;

  void dispose_payload(Event<Message>& ev) {
    if constexpr (requires(const Message& m) { P::dispose(m); }) {
      if (ev.kind == EventKind::kMessage) P::dispose(ev.payload);
    }
  }

  /// One-shot corruption scramble, lane-partitioned: this lane runs the
  /// corrupt() hook of every target it owns, each with its own derived
  /// stream derive_seed(fault seed ^ 0xc0de, node, 1) — the same per-node
  /// derivation as the classic engine, so the scramble is a pure function
  /// of the plan regardless of lane count or application order. Targets
  /// crashed by `window_base` (the K-invariant agreed time) are no-ops.
  void apply_corruption(Lane& lane, Time window_base) {
    std::uint32_t corrupted = 0;
    for (const NodeId v : core_.corrupt_targets()) {
      if (!core_.lane_owns(lane, v)) continue;
      if (core_.crashed_at(v, window_base)) continue;
      Node& victim = nodes_[static_cast<std::size_t>(v)];
      if constexpr (requires(support::Rng& r) { victim.corrupt(r); }) {
        support::Rng scramble(support::derive_seed(
            core_.config().faults.seed ^ 0xc0de,
            static_cast<std::uint64_t>(v), 1));
        if (victim.corrupt(scramble)) ++corrupted;
      }
    }
    lane.fault_stats.corrupted_nodes += corrupted;
    lane.corrupt_applied = true;
  }

  /// Stamp the just-pushed prefix entry with the lane's absolute counters.
  /// bits and dropped are settled before the handler runs (handlers send,
  /// they never deliver or drop); sent is read after the handler returned,
  /// per the WindowPrefix contract.
  void seal_prefix(Lane& lane) {
    typename Core::WindowPrefix& prefix = lane.win_prefix.back();
    prefix.bits = lane.bits;
    prefix.dropped = lane.fault_stats.dropped_deliveries;
    prefix.sent = lane.sent;
  }

  bool run_windows(Time deadline) {
    const std::size_t shards = core_.shard_count();
    std::atomic<bool> abort{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    bool time_capped = false;
    const bool trace_on = core_.trace_enabled();

    auto worker = [&](std::uint32_t lane_index) {
      Lane& lane = core_.lane(lane_index);
      if constexpr (requires { Traits::pooled_in_use(); }) {
        lane.pool_before = Traits::pooled_in_use();
      }
      try {
        const bool capped = trace_on
                                ? lane_loop<true>(lane, deadline, abort)
                                : lane_loop<false>(lane, deadline, abort);
        if (lane_index == 0) time_capped = capped;
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_release);
      }
      if constexpr (requires { Traits::pooled_in_use(); }) {
        lane.pool_after = Traits::pooled_in_use();
      }
    };

    std::vector<std::thread> workers;
    workers.reserve(shards - 1);
    for (std::size_t k = 1; k < shards; ++k) {
      workers.emplace_back(worker, static_cast<std::uint32_t>(k));
    }
    worker(0);  // the calling thread is lane 0
    for (std::thread& t : workers) t.join();
    if (first_error) std::rethrow_exception(first_error);

    pools_balanced_ = true;
    for (std::size_t k = 0; k < shards; ++k) {
      const Lane& lane = core_.lane(k);
      pools_balanced_ &= lane.pool_after == lane.pool_before;
    }
    core_.merge_lanes();
    return time_capped;
  }

  /// One lane's SPMD window loop. Two barriers per window:
  ///
  ///   drain inboxes, finalize last window's annotations, publish
  ///     --- barrier A ---                      (everything published)
  ///   decide T / termination / caps (identically on every lane),
  ///   extract + sort own window, process it in canonical order
  ///     --- barrier B ---                      (all outboxes complete)
  ///
  /// Published slots are double-buffered by window parity so the finalize
  /// step can read last window's bases while this window's are written.
  /// Every exit path is a decision all lanes compute identically from the
  /// same published data, so no lane is ever left waiting at a barrier
  /// (exceptions poison the barrier through the abort flag instead).
  template <bool TraceOn>
  bool lane_loop(Lane& lane, Time deadline, std::atomic<bool>& abort) {
    std::uint64_t window = 0;
    for (;;) {
      const std::size_t parity = window & 1;
      core_.drain_inboxes(lane);
      core_.finalize_pending(lane, 1 - parity);
      core_.publish(lane, parity);
      {
        MDST_PROFILE_SCOPE(Section::kBarrierWait);
        if (!core_.barrier_wait(abort)) return false;  // barrier A
      }
      const typename Core::Decision decision = core_.decide(parity);
      if (decision.total_sent >= core_.config().max_messages) [[unlikely]] {
        core_.fail_message_cap();
      }
      if (decision.done) return false;
      // State corruption fires once, at the first agreed window whose base
      // reaches the plan's corrupt_time — before the window is processed,
      // so the scramble is visible from that window on (mirrors the classic
      // engine's before-the-event application; checked before the deadline
      // so a cap landing on the corrupt tick still observes the scramble).
      if (core_.corrupt_pending(lane) &&
          decision.window_base >= core_.corrupt_time()) [[unlikely]] {
        apply_corruption(lane, decision.window_base);
      }
      if (deadline != 0 && decision.window_base >= deadline) [[unlikely]] {
        discard_lane(lane);
        return true;
      }
      {
        MDST_PROFILE_SCOPE(Section::kLaneBusy);
        core_.extract_window(lane, decision.window_base);
        process_window<TraceOn>(lane);
      }
      {
        MDST_PROFILE_SCOPE(Section::kBarrierWait);
        if (!core_.barrier_wait(abort)) return false;  // barrier B
      }
      ++window;
    }
  }

  template <bool TraceOn>
  void process_window(Lane& lane) {
    for (const typename Core::WindowEntry& entry : lane.win_entries) {
      EventT& ev = core_.lane_event(lane, entry.ref);
      lane.now = entry.deliver;
      const typename Core::WindowPrefix previous =
          lane.win_prefix.empty() ? typename Core::WindowPrefix{}
                                  : lane.win_prefix.back();
      if (core_.faults_active() &&
          core_.crashed_at(ev.base.to, entry.deliver)) [[unlikely]] {
        lane.win_prefix.push_back(previous);
        // Timer events die silently with their node — they were never part
        // of the send/deliver meters (classic step_impl does the same).
        if (ev.base.kind != EventKind::kTimer) {
          ++lane.fault_stats.dropped_deliveries;
          dispose_payload(ev.base);
        }
        seal_prefix(lane);
        Node& casualty = nodes_[static_cast<std::size_t>(ev.base.to)];
        if constexpr (requires { casualty.crash(); }) casualty.crash();
        core_.release_event(lane, entry.ref);
        continue;
      }
      lane.current_key = {entry.deliver, entry.send, entry.ss};
      Ctx ctx(&core_, &lane, ev.base.to, ev.base.from_index);
      Node& node = nodes_[static_cast<std::size_t>(ev.base.to)];
      if (ev.base.kind == EventKind::kStart) {
        lane.win_prefix.push_back(previous);
        node.on_start(ctx);
      } else if (ev.base.kind == EventKind::kTimer) [[unlikely]] {
        // Accounting-free like starts: timers are neither metered nor
        // traced (SimCore::schedule_timer has the contract).
        lane.win_prefix.push_back(previous);
        if constexpr (requires { node.on_timer(ctx); }) {
          node.on_timer(ctx);
        }
      } else {
        core_.template account_delivery<TraceOn>(lane, ev, entry);
        lane.win_prefix.push_back(
            {previous.delivered + 1,
             std::max(previous.causal_depth, ev.base.causal_depth)});
        node.on_message(ctx, ev.base.from, ev.base.payload);
      }
      seal_prefix(lane);
      core_.release_event(lane, entry.ref);
    }
  }

  /// Time-cap teardown: drop this lane's still-queued events undelivered,
  /// reclaiming pooled payload state into this lane's own pool (inbound
  /// events were re-homed at drain time, so the pool stays balanced).
  void discard_lane(Lane& lane) {
    lane.discard_census.assign(std::variant_size_v<Message>, 0);
    while (!lane.queue.empty()) {
      const auto popped = lane.queue.pop();
      if (popped.payload->base.kind == EventKind::kTimer) {
        // Timers sit outside the message accounting end to end — neither
        // censused nor counted as discarded events.
        core_.release_event(lane, popped.ref);
        continue;
      }
      if (popped.payload->base.kind == EventKind::kMessage) {
        ++lane.discard_census[popped.payload->base.payload.index()];
      }
      dispose_payload(popped.payload->base);
      ++lane.fault_stats.discarded_events;
      core_.release_event(lane, popped.ref);
    }
  }

  Core core_;
  std::vector<Node> nodes_;
  bool pools_balanced_ = true;
};

}  // namespace mdst::sim
