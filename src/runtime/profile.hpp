// Compile-time-gated section profiler for the simulator and campaign hot
// paths.
//
// Default builds compile every probe to nothing: MDST_PROFILE_SCOPE expands
// to ((void)0), the Section enum stays for API stability, and the report
// helpers return empty data — so the delivery loop, the lane loop, and the
// trial runner carry zero instrumentation cost and their output stays
// byte-identical (the observability PR's hard contract). Configuring with
// -DMDST_PROFILE=ON defines MDST_PROFILE=1 for the whole build and turns
// each probe into a steady_clock scope accumulating (calls, ns) into a
// per-section relaxed atomic pair — cheap enough to leave on for a whole
// campaign, honest enough for "where does the wall-clock go" tables
// (docs/observability.md "Profile sections").
//
// Sections are global, not per-simulator: the campaign runner's workers and
// the sharded engine's lanes all fold into the same totals, which is what
// the `mdst_lab run --profile` table wants — aggregate time per section
// across the whole invocation. Counters are process-wide and monotone;
// profile_reset() rebaselines between phases when needed.
#pragma once

#include <array>
#include <cstdint>

#if defined(MDST_PROFILE) && MDST_PROFILE
#include <atomic>
#include <chrono>
#endif

namespace mdst::sim {

/// The instrumented sections. Keep in sync with section_name().
enum class Section : std::size_t {
  kQueuePop = 0,   // classic engine: calendar-queue pop + clock advance
  kDispatch,       // classic engine: protocol handler execution
  kMetering,       // classic engine: account_delivery (metrics + trace)
  kLaneBusy,       // sharded engine: processing one window's events
  kBarrierWait,    // sharded engine: parked at window barriers
  kTrialSetup,     // campaign runner: instance + tree construction
  kTrialRun,       // campaign runner: the simulation itself
  kCount,
};

constexpr std::size_t kSectionCount = static_cast<std::size_t>(Section::kCount);

inline const char* section_name(Section s) {
  switch (s) {
    case Section::kQueuePop: return "queue_pop";
    case Section::kDispatch: return "dispatch";
    case Section::kMetering: return "metering";
    case Section::kLaneBusy: return "lane_busy";
    case Section::kBarrierWait: return "barrier_wait";
    case Section::kTrialSetup: return "trial_setup";
    case Section::kTrialRun: return "trial_run";
    case Section::kCount: break;
  }
  return "?";
}

/// One section's accumulated totals, as read by profile_snapshot().
struct SectionStats {
  std::uint64_t calls = 0;
  std::uint64_t ns = 0;
};

#if defined(MDST_PROFILE) && MDST_PROFILE

inline constexpr bool profile_enabled() { return true; }

namespace profile_detail {
struct SectionCell {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> ns{0};
};
inline std::array<SectionCell, kSectionCount>& cells() {
  static std::array<SectionCell, kSectionCount> storage;
  return storage;
}
}  // namespace profile_detail

inline void profile_reset() {
  for (auto& cell : profile_detail::cells()) {
    cell.calls.store(0, std::memory_order_relaxed);
    cell.ns.store(0, std::memory_order_relaxed);
  }
}

inline std::array<SectionStats, kSectionCount> profile_snapshot() {
  std::array<SectionStats, kSectionCount> out;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    out[i].calls =
        profile_detail::cells()[i].calls.load(std::memory_order_relaxed);
    out[i].ns = profile_detail::cells()[i].ns.load(std::memory_order_relaxed);
  }
  return out;
}

/// RAII probe: accumulates the scope's wall time into its section.
class ScopedSection {
 public:
  explicit ScopedSection(Section section)
      : section_(static_cast<std::size_t>(section)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedSection() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    auto& cell = profile_detail::cells()[section_];
    cell.calls.fetch_add(1, std::memory_order_relaxed);
    cell.ns.fetch_add(static_cast<std::uint64_t>(ns),
                      std::memory_order_relaxed);
  }
  ScopedSection(const ScopedSection&) = delete;
  ScopedSection& operator=(const ScopedSection&) = delete;

 private:
  std::size_t section_;
  std::chrono::steady_clock::time_point start_;
};

#define MDST_PROFILE_CAT2(a, b) a##b
#define MDST_PROFILE_CAT(a, b) MDST_PROFILE_CAT2(a, b)
#define MDST_PROFILE_SCOPE(section)                     \
  ::mdst::sim::ScopedSection MDST_PROFILE_CAT(          \
      mdst_profile_scope_, __COUNTER__) { section }

#else  // profiling compiled out

inline constexpr bool profile_enabled() { return false; }
inline void profile_reset() {}
inline std::array<SectionStats, kSectionCount> profile_snapshot() {
  return {};
}

#define MDST_PROFILE_SCOPE(section) ((void)0)

#endif

}  // namespace mdst::sim
