// Per-subsystem memory accounting for a simulation run.
//
// The million-node engineering target (ROADMAP, docs/perf.md "Memory
// model") needs the answer to "where do the bytes go?" to be measured, not
// estimated: MemoryReport is captured at run end from each subsystem's own
// approx_bytes() accounting (container capacities, slab block counts), so
// the bytes/node table in docs/perf.md regenerates from the same code that
// allocates. Figures are approximate by design — they count the dominant
// flat arrays and slabs, not allocator headers or small per-run scratch.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mdst::sim {

struct MemoryReport {
  /// Node state: the BasicNode array itself plus the shared degree-scaled
  /// arenas (mdst/node_arena.hpp).
  std::uint64_t node_bytes = 0;
  /// Event queue slabs + wheel (peak in-flight population; calendar-queue
  /// slabs recycle and never shrink).
  std::uint64_t queue_bytes = 0;
  /// Per-directed-link FIFO floors (zero under unit delays, where the
  /// floors provably never bind and are not allocated).
  std::uint64_t floor_bytes = 0;
  /// Metrics: per-type counter arrays plus annotation storage (bounded in
  /// annotation_cap mode).
  std::uint64_t metrics_bytes = 0;
  /// Network: the neighbor pool, CSR offsets, directed links, and envs.
  std::uint64_t graph_bytes = 0;

  std::uint64_t total() const {
    return node_bytes + queue_bytes + floor_bytes + metrics_bytes +
           graph_bytes;
  }
};

}  // namespace mdst::sim
