// Bucketed calendar queue for integer-time discrete-event simulation.
//
// The simulator's event set has three structural properties a binary heap
// ignores: (1) timestamps are small integers that advance monotonically,
// (2) almost all events land within a short horizon of `now` (unit delays
// put *every* event at now or now+1), and (3) ties at equal time must pop
// in push order. CalendarQueue exploits all three:
//
//   * a power-of-two wheel of W slots covers delivery times in
//     [now, now + W); slot `t & (W-1)` holds exactly the events for time t
//     (one residue class representative per window), appended in push order
//     — so a push and a pop are O(1) operations, no reshuffle;
//   * each slot is an 8-byte (head, tail) pair of an intrusive FIFO list
//     chained through the slab nodes themselves, so the whole wheel stays a
//     few KB (cache-resident even for sparse token-passing workloads) and a
//     push/pop touches only slab lines that are being written anyway;
//   * an occupancy bitmap plus a cached lower bound (`wheel_min_`) finds
//     the next non-empty slot with a single word scan in the common case;
//   * the rare event beyond the horizon (heavy-tail delays, large start
//     spreads) goes to a small overflow min-heap keyed (time, seq) and is
//     migrated into the wheel when `now` advances — strictly before any
//     same-time push can occur, so FIFO order within a slot stays global
//     (time, seq) order. See the determinism test, which checks pop order
//     against a std::priority_queue reference over adversarial schedules.
//
// Payloads live in a slab pool of fixed-size blocks with a free list; the
// wheel and heap shuffle 4-byte slab refs, so queue nodes stay small no
// matter how fat the message payload is, and — because blocks never move —
// a popped payload can be consumed *in place* (emplace() to fill on push,
// payload(ref) to read after pop, release(ref) when done) with zero copies
// of the payload through the queue.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/types.hpp"
#include "support/assert.hpp"

namespace mdst::sim {

template <typename Payload>
class CalendarQueue {
 public:
  /// Stable handle to a slab node; valid from emplace() until release().
  using Ref = std::uint32_t;

  /// wheel_bits picks the horizon W = 2^wheel_bits; delays below W never
  /// touch the overflow heap. 1024 slots (8KB of head/tail pairs + a
  /// 16-word bitmap) cover every delay the built-in models draw in
  /// practice and measured faster than a 256-slot wheel on both bursty
  /// and token-passing benches; larger draws (clamped heavy-tail) fall
  /// back to the overflow heap correctly.
  explicit CalendarQueue(std::size_t wheel_bits = 10)
      : wheel_(std::size_t{1} << wheel_bits),
        occupied_((std::size_t{1} << wheel_bits) / 64, 0),
        mask_((std::size_t{1} << wheel_bits) - 1) {
    MDST_REQUIRE(wheel_bits >= 6 && wheel_bits <= 20,
                 "calendar queue: wheel_bits in [6, 20]");
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Lower bound on all contained event times (== time of the last pop).
  Time now() const { return now_; }

  /// Schedule a payload at time `t` and return it for the caller to fill
  /// (the slab node may be recycled, so assign every field you rely on).
  /// Precondition: t >= now().
  Payload& emplace(Time t) {
    MDST_ASSERT(t >= now_, "calendar queue: push into the past");
    const Ref ref = alloc();
    if (t - now_ <= mask_) {
      place_in_wheel(t, ref);
    } else {
      // seq only needs to order overflow entries against each other (the
      // migration argument in migrate_overflow covers wheel interleaving),
      // so wheel events skip the counter entirely.
      overflow_.push_back({t, next_seq_++, ref});
      std::push_heap(overflow_.begin(), overflow_.end(), OvLater{});
    }
    ++count_;
    return node(ref).payload;
  }

  /// Convenience push for callers that already hold a payload.
  void push(Time t, Payload payload) { emplace(t) = std::move(payload); }

  struct Popped {
    Time time = 0;
    Ref ref = 0;
    Payload* payload = nullptr;  // == &payload(ref); saves a re-lookup
  };

  /// Dequeue the event with the smallest (time, push order). The payload
  /// stays alive in the slab — read it with payload(ref), then release(ref).
  Popped pop() {
    MDST_REQUIRE(count_ > 0, "calendar queue: pop from empty");
    const Time t = wheel_count_ > 0 ? next_wheel_time() : overflow_.front().time;
    wheel_min_ = t;  // exact after the scan; pops are monotone
    if (t != now_) {
      now_ = t;
      migrate_overflow();
    }
    Slot& slot = wheel_[t & mask_];
    const Ref ref = slot.head;
    MDST_ASSERT(ref != kNil, "calendar queue: empty slot hit");
    Node& n = node(ref);
    slot.head = n.next;
    if (slot.head == kNil) {
      slot.tail = kNil;
      occupied_[(t & mask_) >> 6] &= ~(std::uint64_t{1} << (t & 63));
    }
    --wheel_count_;
    --count_;
    return {t, ref, &n.payload};
  }

  /// The payload of a node handed out by pop(); stable across emplace().
  Payload& payload(Ref ref) { return node(ref).payload; }

  /// Return a popped node to the free list.
  void release(Ref ref) { free_.push_back(ref); }

 private:
  static constexpr std::size_t kBlockBits = 9;  // 512 nodes per slab block
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;
  static constexpr Ref kNil = static_cast<Ref>(-1);

  /// Slab node: just the intrusive slot-FIFO link and the payload. Delivery
  /// time lives in the wheel position (and OvRef for overflow), never here.
  struct Node {
    Ref next = kNil;
    Payload payload{};
  };

  /// Intrusive FIFO of slab nodes holding one delivery tick's events.
  struct Slot {
    Ref head = kNil;
    Ref tail = kNil;
  };

  struct OvRef {
    Time time = 0;
    std::uint64_t seq = 0;
    Ref ref = 0;
  };
  struct OvLater {  // min-heap on (time, seq) via std::push_heap's max-heap
    bool operator()(const OvRef& a, const OvRef& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  Node& node(Ref ref) {
    return blocks_[ref >> kBlockBits][ref & (kBlockSize - 1)];
  }

  Ref alloc() {
    Ref ref;
    if (!free_.empty()) {
      ref = free_.back();
      free_.pop_back();
    } else {
      if ((slab_used_ & (kBlockSize - 1)) == 0) {
        blocks_.push_back(std::make_unique<Node[]>(kBlockSize));
      }
      ref = static_cast<Ref>(slab_used_++);
    }
    node(ref).next = kNil;
    return ref;
  }

  void place_in_wheel(Time t, Ref ref) {
    Slot& slot = wheel_[t & mask_];
    if (slot.head == kNil) {
      slot.head = ref;
    } else {
      node(slot.tail).next = ref;
    }
    slot.tail = ref;
    occupied_[(t & mask_) >> 6] |= std::uint64_t{1} << (t & 63);
    if (wheel_count_ == 0 || t < wheel_min_) wheel_min_ = t;
    ++wheel_count_;
  }

  /// Pull every overflow event now inside [now, now + W) into the wheel.
  /// Heap order is (time, seq), and any direct push at the new `now` happens
  /// after this (with a larger seq), so each slot remains seq-sorted.
  void migrate_overflow() {
    while (!overflow_.empty() && overflow_.front().time - now_ <= mask_) {
      std::pop_heap(overflow_.begin(), overflow_.end(), OvLater{});
      const OvRef ov = overflow_.back();
      overflow_.pop_back();
      place_in_wheel(ov.time, ov.ref);
    }
  }

  /// Smallest event time present in the wheel. Precondition: wheel_count_>0.
  /// Starts the bitmap scan at wheel_min_ — a maintained lower bound that is
  /// usually exact, so the common case touches a single word.
  Time next_wheel_time() const {
    const Time from = wheel_min_ > now_ ? wheel_min_ : now_;
    const std::size_t base = from & mask_;
    const std::size_t words = occupied_.size();
    std::size_t w = base >> 6;
    // First word: ignore slots before `base`. If the scan wraps all the way
    // back, the unmasked revisit is safe — the >= base bits were just seen
    // to be zero.
    std::uint64_t bits = occupied_[w] & (~std::uint64_t{0} << (base & 63));
    for (std::size_t probed = 0; probed <= words; ++probed) {
      if (bits != 0) {
        const std::size_t slot =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        return from + ((slot - base) & mask_);
      }
      w = (w + 1) % words;
      bits = occupied_[w];
    }
    MDST_UNREACHABLE("calendar queue: occupancy bitmap out of sync");
  }

  std::vector<std::unique_ptr<Node[]>> blocks_;
  std::size_t slab_used_ = 0;
  std::vector<Ref> free_;
  std::vector<Slot> wheel_;
  std::vector<std::uint64_t> occupied_;
  std::vector<OvRef> overflow_;
  std::size_t mask_;
  Time now_ = 0;
  /// Lower bound on the smallest time in the wheel (valid iff wheel_count_>0).
  Time wheel_min_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t count_ = 0;
  std::size_t wheel_count_ = 0;
};

}  // namespace mdst::sim
