// Bucketed calendar queue for integer-time discrete-event simulation.
//
// The simulator's event set has three structural properties a binary heap
// ignores: (1) timestamps are small integers that advance monotonically,
// (2) almost all events land within a short horizon of `now` (unit delays
// put *every* event at now or now+1), and (3) ties at equal time must pop
// in push order. CalendarQueue exploits all three:
//
//   * a power-of-two wheel of W slots covers delivery times in
//     [now, now + W); slot `t & (W-1)` holds exactly the events for time t
//     (one residue class representative per window), appended in push order
//     — so a push and a pop are O(1) operations, no reshuffle;
//   * each slot is an 8-byte (head, tail) pair of an intrusive FIFO list
//     chained through the slab nodes themselves, so the whole wheel stays a
//     few KB (cache-resident even for sparse token-passing workloads) and a
//     push/pop touches only slab lines that are being written anyway. A
//     slot's emptiness is governed solely by its occupancy bit: head/tail
//     are read only while the bit is set, so neither the slot nor a slab
//     node ever needs re-initialization when reused;
//   * an occupancy bitmap plus a cached lower bound (`wheel_min_`) finds
//     the next non-empty slot with a single word scan — and consecutive
//     pops at the *same tick* skip the scan entirely: the first pop of a
//     tick remembers its slot, and the rest of that tick's FIFO ring drains
//     straight off the intrusive list (the dominant case under unit delays,
//     where a whole wave of deliveries shares each tick);
//   * the rare event beyond the horizon (heavy-tail delays, large start
//     spreads) goes to a small overflow min-heap keyed (time, seq) and is
//     migrated into the wheel when `now` advances — strictly before any
//     same-time push can occur, so FIFO order within a slot stays global
//     (time, seq) order. See the determinism test, which checks pop order
//     against a std::priority_queue reference over adversarial schedules.
//
// Payloads live in a slab pool of fixed-size blocks; freed nodes are
// recycled through an intrusive free list threaded through the same `next`
// links the slot FIFOs use, so alloc/release are two pointer swaps and a
// recycled node is handed back with *no* re-initialization (callers assign
// every field they rely on). The wheel and heap shuffle 4-byte slab refs,
// so queue nodes stay small no matter how fat the message payload is, and —
// because blocks never move — a popped payload can be consumed *in place*
// (emplace() to fill on push, payload(ref) to read after pop, release(ref)
// when done) with zero copies of the payload through the queue.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/types.hpp"
#include "support/assert.hpp"
#include "support/compiler.hpp"

namespace mdst::sim {

template <typename Payload>
class CalendarQueue {
 public:
  /// Stable handle to a slab node; valid from emplace() until release().
  using Ref = std::uint32_t;

  /// wheel_bits picks the horizon W = 2^wheel_bits; delays below W never
  /// touch the overflow heap. 1024 slots (8KB of head/tail pairs + a
  /// 16-word bitmap) cover every delay the built-in models draw in
  /// practice and measured faster than a 256-slot wheel on both bursty
  /// and token-passing benches; larger draws (clamped heavy-tail) fall
  /// back to the overflow heap correctly.
  explicit CalendarQueue(std::size_t wheel_bits = 10)
      : wheel_(std::size_t{1} << wheel_bits),
        occupied_((std::size_t{1} << wheel_bits) / 64, 0),
        mask_((std::size_t{1} << wheel_bits) - 1) {
    MDST_REQUIRE(wheel_bits >= 6 && wheel_bits <= 20,
                 "calendar queue: wheel_bits in [6, 20]");
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Lower bound on all contained event times (== time of the last pop).
  Time now() const { return now_; }

  /// Exact time of the earliest contained event, without popping it. The
  /// sharded engine's window coordinator uses this to agree on the next
  /// conservative window base before any lane commits to a pop.
  /// Precondition: !empty(). Whenever the wheel is non-empty its minimum is
  /// within [now, now + W) while every overflow time is >= now + W, so the
  /// wheel scan answers; otherwise the overflow heap's front does.
  Time min_time() const {
    MDST_REQUIRE(count_ > 0, "calendar queue: min_time on empty");
    return wheel_count_ > 0 ? next_wheel_time() : overflow_.front().time;
  }

  /// Schedule a payload at time `t` and return it for the caller to fill
  /// (the slab node may be recycled, so assign every field you rely on).
  /// Precondition: t >= now().
  Payload& emplace(Time t) {
    MDST_ASSERT(t >= now_, "calendar queue: push into the past");
    const Ref ref = alloc();
    if (t - now_ <= mask_) [[likely]] {
      place_in_wheel(t, ref);
    } else {
      emplace_overflow(t, ref);
    }
    ++count_;
    return node(ref).payload;
  }

  /// Convenience push for callers that already hold a payload.
  void push(Time t, Payload payload) { emplace(t) = std::move(payload); }

  struct Popped {
    Time time = 0;
    Ref ref = 0;
    Payload* payload = nullptr;  // == &payload(ref); saves a re-lookup
  };

  /// Dequeue the event with the smallest (time, push order). The payload
  /// stays alive in the slab — read it with payload(ref), then release(ref).
  ///
  /// Bulk-drain fast path: when the previous pop left more events in the
  /// same tick's FIFO ring — by construction the global minimum — the pop
  /// is a plain list unlink: no bitmap scan, no overflow check (overflow
  /// times are > now_ whenever now_ is current, see migrate_overflow). The
  /// slot's tail is re-read each pop, so same-tick pushes made by handlers
  /// extend the run. Advancing to the next tick is outlined (pop_next_tick)
  /// to keep this body small enough to inline into the delivery loop.
  Popped pop() {
    MDST_REQUIRE(count_ > 0, "calendar queue: pop from empty");
    if (run_active_) {
      return {now_, unlink_head(run_slot_), run_payload_};
    }
    return pop_next_tick();
  }

  /// The payload of a node handed out by pop(); stable across emplace().
  Payload& payload(Ref ref) { return node(ref).payload; }

  /// Return a popped node to the intrusive free list. Nothing else is
  /// cleared: alloc() hands the node back as-is.
  void release(Ref ref) {
    node(ref).next = free_head_;
    free_head_ = ref;
  }

  /// Approximate heap footprint (sim::MemoryReport): the slab blocks —
  /// which track the *peak* in-flight event population, since freed nodes
  /// recycle instead of shrinking — plus the wheel, bitmap, and overflow
  /// heap.
  std::size_t approx_bytes() const {
    return blocks_.size() * kBlockSize * sizeof(Node) +
           blocks_.capacity() * sizeof(blocks_[0]) +
           wheel_.capacity() * sizeof(Slot) +
           occupied_.capacity() * sizeof(std::uint64_t) +
           overflow_.capacity() * sizeof(OvRef);
  }

 private:
  static constexpr std::size_t kBlockBits = 9;  // 512 nodes per slab block
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;
  static constexpr Ref kNil = static_cast<Ref>(-1);
  /// Push-cache sentinel: no emplace can name it (a delta this large always
  /// routes to the overflow heap).
  static constexpr Time kNeverTime = static_cast<Time>(-1);

  /// Slab node: just the intrusive link (slot FIFO while queued, free list
  /// after release) and the payload. Delivery time lives in the wheel
  /// position (and OvRef for overflow), never here.
  struct Node {
    Ref next = kNil;
    Payload payload{};
  };

  /// Intrusive FIFO of slab nodes holding one delivery tick's events.
  /// head/tail are meaningful only while the slot's occupancy bit is set.
  struct Slot {
    Ref head = kNil;
    Ref tail = kNil;
  };

  struct OvRef {
    Time time = 0;
    std::uint64_t seq = 0;
    Ref ref = 0;
  };
  struct OvLater {  // min-heap on (time, seq) via std::push_heap's max-heap
    bool operator()(const OvRef& a, const OvRef& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  Node& node(Ref ref) {
    return blocks_[ref >> kBlockBits][ref & (kBlockSize - 1)];
  }

  /// Take a node off the free list or carve a fresh one from the slab. A
  /// recycled node is returned with its fields untouched (no re-init):
  /// `next` is dead until the node is linked into a slot or the free list
  /// again, and the payload is the caller's to assign.
  Ref alloc() {
    const Ref recycled = free_head_;
    if (recycled != kNil) [[likely]] {
      free_head_ = node(recycled).next;
      return recycled;
    }
    return alloc_fresh();
  }

  /// Slab growth path — cold once the in-flight population peaks, so it is
  /// outlined to keep alloc() two pointer ops in the senders' hot path.
  MDST_NOINLINE Ref alloc_fresh() {
    if ((slab_used_ & (kBlockSize - 1)) == 0) {
      blocks_.push_back(std::make_unique<Node[]>(kBlockSize));
    }
    return static_cast<Ref>(slab_used_++);
  }

  /// Beyond-horizon push (heavy-tail draws, large start spreads): rare, so
  /// outlined. seq only needs to order overflow entries against each other
  /// (the migration argument in migrate_overflow covers wheel
  /// interleaving), so wheel events skip the counter entirely.
  MDST_NOINLINE void emplace_overflow(Time t, Ref ref) {
    overflow_.push_back({t, next_seq_++, ref});
    std::push_heap(overflow_.begin(), overflow_.end(), OvLater{});
  }

  /// First pop of a new tick: find the minimum via bitmap scan / overflow
  /// front, advance the clock, migrate matured overflow events, and start
  /// the tick's drain run. Outlined — it runs once per tick, not once per
  /// event.
  MDST_NOINLINE Popped pop_next_tick() {
    const Time t =
        wheel_count_ > 0 ? next_wheel_time() : overflow_.front().time;
    wheel_min_ = t;  // exact after the scan; pops are monotone
    if (t != now_) {
      now_ = t;
      migrate_overflow();
    }
    const std::size_t slot_index = t & mask_;
    MDST_ASSERT((occupied_[slot_index >> 6] >> (slot_index & 63)) & 1,
                "calendar queue: occupancy bitmap out of sync");
    return {t, unlink_head(slot_index), run_payload_};
  }

  /// Detach the head of a known-occupied slot, maintain the occupancy bit
  /// and the same-tick run state, and stash the payload pointer for the
  /// caller's Popped.
  Ref unlink_head(std::size_t slot_index) {
    Slot& slot = wheel_[slot_index];
    const Ref ref = slot.head;
    Node& n = node(ref);
    if (ref == slot.tail) {
      // Tick exhausted (for now — a same-time push re-sets the bit and the
      // slow path re-finds the slot via wheel_min_ == now_). Drop the push
      // cache if it names this slot: its "occupied" premise just ended, and
      // a later push at the same time must take the full path again.
      occupied_[slot_index >> 6] &= ~(std::uint64_t{1} << (slot_index & 63));
      run_active_ = false;
      if (slot_index == push_slot_cache_) push_time_cache_ = kNeverTime;
    } else {
      slot.head = n.next;
      run_active_ = true;
      run_slot_ = slot_index;
    }
    --wheel_count_;
    --count_;
    run_payload_ = &n.payload;
    return ref;
  }

  void place_in_wheel(Time t, Ref ref) {
    // Same-time push cache: bursts overwhelmingly target one time (under
    // unit delays *every* send of a tick lands at now + 1), so remember the
    // last slot whose occupancy bit this function set and append straight
    // to its FIFO tail. The cached slot provably stays occupied until now_
    // reaches t (only pops at time t clear the bit, sends/injects always
    // schedule past now_, and the overflow heap can never migrate an event
    // to a time the cache could still name), and wheel_min_ <= t already
    // holds while the slot is occupied — so the hit path is one compare
    // plus the list append.
    if (t == push_time_cache_) {
      Slot& slot = wheel_[push_slot_cache_];
      node(slot.tail).next = ref;
      slot.tail = ref;
      ++wheel_count_;
      return;
    }
    const std::size_t slot_index = t & mask_;
    Slot& slot = wheel_[slot_index];
    std::uint64_t& word = occupied_[slot_index >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (slot_index & 63);
    if (word & bit) {
      node(slot.tail).next = ref;
    } else {
      slot.head = ref;
      word |= bit;
    }
    slot.tail = ref;
    push_time_cache_ = t;
    push_slot_cache_ = slot_index;
    // wheel_min_ is monotone (pop sets it to each popped time, and pushes
    // never predate now_), so a single compare maintains the lower bound —
    // no emptiness special case.
    if (t < wheel_min_) wheel_min_ = t;
    ++wheel_count_;
  }

  /// Pull every overflow event now inside [now, now + W) into the wheel.
  /// Heap order is (time, seq), and any direct push at the new `now` happens
  /// after this (with a larger seq), so each slot remains seq-sorted.
  void migrate_overflow() {
    while (!overflow_.empty() && overflow_.front().time - now_ <= mask_) {
      std::pop_heap(overflow_.begin(), overflow_.end(), OvLater{});
      const OvRef ov = overflow_.back();
      overflow_.pop_back();
      place_in_wheel(ov.time, ov.ref);
    }
  }

  /// Smallest event time present in the wheel. Precondition: wheel_count_>0.
  /// Starts the bitmap scan at wheel_min_ — a maintained lower bound that is
  /// usually exact, so the common case touches a single word.
  Time next_wheel_time() const {
    const Time from = wheel_min_ > now_ ? wheel_min_ : now_;
    const std::size_t base = from & mask_;
    const std::size_t words = occupied_.size();
    const std::size_t word_mask = words - 1;  // power of two, like the wheel
    std::size_t w = base >> 6;
    // First word: ignore slots before `base`. If the scan wraps all the way
    // back, the unmasked revisit is safe — the >= base bits were just seen
    // to be zero.
    std::uint64_t bits = occupied_[w] & (~std::uint64_t{0} << (base & 63));
    for (std::size_t probed = 0; probed <= words; ++probed) {
      if (bits != 0) {
        const std::size_t slot =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        return from + ((slot - base) & mask_);
      }
      w = (w + 1) & word_mask;
      bits = occupied_[w];
    }
    MDST_UNREACHABLE("calendar queue: occupancy bitmap out of sync");
  }

  std::vector<std::unique_ptr<Node[]>> blocks_;
  std::size_t slab_used_ = 0;
  /// Head of the intrusive free list threaded through Node::next.
  Ref free_head_ = kNil;
  std::vector<Slot> wheel_;
  std::vector<std::uint64_t> occupied_;
  std::vector<OvRef> overflow_;
  std::size_t mask_;
  Time now_ = 0;
  /// Lower bound on the smallest time in the wheel (maintained monotone:
  /// pops raise it to the popped time, pushes lower it only below the
  /// current bound — so it is valid even across empty phases).
  Time wheel_min_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t count_ = 0;
  std::size_t wheel_count_ = 0;
  /// Same-tick drain state: while run_active_, wheel_[run_slot_] holds more
  /// events at exactly now_ and pop() bypasses the bitmap scan.
  bool run_active_ = false;
  std::size_t run_slot_ = 0;
  Payload* run_payload_ = nullptr;  // payload of the node just unlinked
  /// Same-time push cache (see place_in_wheel): the last wheel time whose
  /// slot is known occupied, invalidated when that slot drains.
  Time push_time_cache_ = kNeverTime;
  std::size_t push_slot_cache_ = 0;
};

}  // namespace mdst::sim
