#include "runtime/node_env.hpp"

#include "support/assert.hpp"

namespace mdst::sim {

graph::NodeName NodeEnv::neighbor_name(NodeId node) const {
  for (const NeighborInfo& info : neighbors) {
    if (info.id == node) return info.name;
  }
  MDST_REQUIRE(false, "neighbor_name: not a neighbor");
  MDST_UNREACHABLE("unreachable");
}

bool NodeEnv::is_neighbor(NodeId node) const {
  for (const NeighborInfo& info : neighbors) {
    if (info.id == node) return true;
  }
  return false;
}

}  // namespace mdst::sim
