// Flight-recorder data model: per-round convergence telemetry, timeline
// (Chrome trace-event) export, and wedge forensics snapshots.
//
// This layer is protocol-agnostic and purely post-run: everything here is
// derived from instruments the engines already keep — the annotation ring
// (now carrying cumulative bit totals and an in-flight watermark per
// checkpoint), the capped TraceRow recorder, the fault counters, and the
// discard census the watchdog teardown paths count. Nothing in this header
// touches the delivery hot path; recording costs stay where they were
// (docs/observability.md has the full schema write-up).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "runtime/trace.hpp"
#include "runtime/types.hpp"

namespace mdst::sim {

/// One row of the per-round convergence ring, derived from a round's
/// contiguous block of annotation checkpoints (the protocol's AnnotationTag
/// stream). Bounded the same way the annotations are: under
/// SimConfig::annotation_cap only the most recent rounds survive.
struct RoundTelemetry {
  std::uint32_t round = 0;
  /// Max tree degree the round's root decided on (-1: no decide mark seen).
  int k = -1;
  /// Fragments the improvement wave ran over: cutting every tree edge of a
  /// degree-k target splits the tree into k neighbor fragments plus the
  /// target itself. 0 for rounds that never cut (terminal rounds).
  std::int64_t fragments = 0;
  /// BFS waves launched this round (wave_done + subimprove marks).
  std::uint32_t waves = 0;
  bool improved = false;
  /// Messages delivered during this round (difference of the cumulative
  /// counter between the round's first and last checkpoint).
  std::uint64_t messages = 0;
  /// Bits delivered during this round (same diff over the bit meter).
  std::uint64_t bits = 0;
  /// Longest-causal-chain watermark at round end (cumulative, not a diff —
  /// depth is a max, not a sum).
  std::uint64_t causal_depth = 0;
  /// Max queue occupancy observed at this round's checkpoints (messages
  /// sent but not yet delivered or dropped). Checkpoint-sampled: peaks
  /// between two checkpoints are not seen.
  std::uint64_t in_flight_peak = 0;
  Time time_start = 0;
  Time time_end = 0;

  friend bool operator==(const RoundTelemetry&,
                         const RoundTelemetry&) = default;
};

/// One protocol phase span on the timeline (e.g. round 3's "wave" between
/// the cut and wave_done checkpoints), engine-derived and handed to the
/// Chrome exporter as its phase track.
struct TimelinePhase {
  std::string name;
  Time begin = 0;
  Time end = 0;
};

/// Wedge forensics snapshot: what the network looked like when the watchdog
/// classified a run as wedged. Captured by the engine at run end (the event
/// queue is already drained or discarded, so every field is settled state).
struct WedgeReport {
  bool captured = false;
  bool time_capped = false;
  std::uint64_t nodes = 0;
  std::uint64_t done = 0;
  std::uint64_t crashed = 0;
  /// Live nodes that never terminated — the wedged population.
  std::uint64_t live_undone = 0;
  /// Per-node protocol-state census: (state label, count), label order
  /// fixed by the protocol (crashed / done / role names).
  std::vector<std::pair<std::string, std::uint64_t>> state_census;
  /// Census of events discarded undelivered (the in-flight population at
  /// teardown), by message type name. Empty when the queue drained.
  std::vector<std::pair<std::string, std::uint64_t>> in_flight_by_type;
  /// Live nodes whose parent pointer is null — the competing root set.
  std::vector<NodeId> live_roots;  // first kMaxLiveRoots only
  std::uint64_t live_root_count = 0;
  static constexpr std::size_t kMaxLiveRoots = 16;
  /// Last metered delivery and the last round/phase checkpoint reached —
  /// "where progress stopped".
  Time last_delivery_time = 0;
  std::uint32_t last_round = 0;
  /// Phase of the last recognized checkpoint: search / move / wave /
  /// choose / improve / terminated / none.
  std::string last_phase = "none";
  std::uint64_t discarded_events = 0;
  std::uint64_t dropped_deliveries = 0;
};

/// JSON object dump of a wedge report (stable key order; used by the
/// campaign wedge-dump sink and pinned by a golden test).
void write_wedge_report_json(std::ostream& out, const WedgeReport& report);

// --- per-round ring export ------------------------------------------------

/// CSV: fixed header then one row per round.
void write_rounds_csv(std::ostream& out,
                      const std::vector<RoundTelemetry>& rounds);
/// JSON lines, fixed key order, one object per round (the input format of
/// scripts/plot_rounds.py).
void write_rounds_jsonl(std::ostream& out,
                        const std::vector<RoundTelemetry>& rounds);

// --- timeline export ------------------------------------------------------

struct ChromeTraceOptions {
  /// Shard-lane count the trial ran with (0 = classic engine). When > 0 the
  /// exporter adds one track per lane showing its conservative windows.
  std::uint32_t shards = 0;
  /// Node count (for the lane block partition; required when shards > 0).
  std::size_t node_count = 0;
  /// Window lookahead L = DelayModel::min_delay() (unit delay: 1).
  Time lookahead = 1;
};

/// Chrome trace-event JSON ({"traceEvents": [...]}, loadable in
/// chrome://tracing and Perfetto): every traced message delivery as a
/// complete event on its receiver's track, protocol phases as a dedicated
/// track, and — under sharding — per-lane window occupancy tracks.
/// Timestamps are simulated ticks, so the output is fully deterministic.
void write_chrome_trace(std::ostream& out, const Trace& trace,
                        const std::vector<TimelinePhase>& phases,
                        const ChromeTraceOptions& options);

/// Flat CSV of the raw trace rows (send_time, deliver_time, from, to, type,
/// causal_depth) — the spreadsheet-friendly sibling of the Chrome export.
void write_trace_csv(std::ostream& out, const Trace& trace);

}  // namespace mdst::sim
