// Synchronizers: run a synchronous round-based protocol on the asynchronous
// network (Awerbuch's α and β synchronizers).
//
// The paper's introduction lists Network Synchronization among the reasons
// distributed systems build trees: the β synchronizer detects round
// completion with a convergecast/broadcast over a spanning tree, so the
// busiest node does tree-degree work per round — exactly the quantity the
// MDegST minimises. This module makes that connection executable
// (examples/network_sync.cpp compares α, β-over-star and β-over-MDegST).
//
// Model. A synchronous protocol runs in lock-step rounds; messages sent in
// round r arrive at the start of round r+1. A SyncProtocol provides:
//
//   struct P {
//     using Inner = <payload type> with ids_carried() const;
//     class Node {
//       // Called once per round with the messages sent to this node in the
//       // previous round; returns this round's outgoing messages.
//       std::vector<std::pair<sim::NodeId, Inner>> on_round(
//           std::size_t round,
//           const std::vector<std::pair<sim::NodeId, Inner>>& inbox);
//     };
//   };
//
// The adapters guarantee: every node executes exactly `rounds` rounds, and
// on_round(r) observes precisely the round-(r-1) messages (the synchronous
// semantics), regardless of link delays.
//
//   * Alpha: per-message Ack + per-edge Safe flood. Overhead per round:
//     one Ack per payload plus 2·m Safe messages; detection is local, no
//     precomputed structure needed.
//   * Beta: per-message Ack + convergecast SafeUp / broadcast NextRound on
//     a rooted spanning tree. Overhead per round: Acks plus 2·(n−1) tree
//     messages; the per-node overhead is bounded by its tree degree.
//
// Rounds at neighbouring nodes differ by at most one, so per-round buffers
// of size two suffice; the adapters buffer by absolute round index for
// clarity and assert the skew bound.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <variant>
#include <vector>

#include "graph/tree.hpp"
#include "runtime/context.hpp"
#include "runtime/node_env.hpp"
#include "runtime/simulator.hpp"
#include "support/assert.hpp"

namespace mdst::sim {

template <typename Inner>
struct SyncPayload {
  static constexpr const char* kName = "SyncPayload";
  std::uint32_t round = 0;
  Inner inner{};
  std::size_t ids_carried() const { return 1 + inner.ids_carried(); }
};
struct SyncAck {
  static constexpr const char* kName = "SyncAck";
  std::uint32_t round = 0;
  std::size_t ids_carried() const { return 1; }
};
/// Alpha: "all my round-r messages were acknowledged" — flooded to every
/// neighbour.
struct SyncSafe {
  static constexpr const char* kName = "SyncSafe";
  std::uint32_t round = 0;
  std::size_t ids_carried() const { return 1; }
};
/// Beta: subtree safe for round r (convergecast up the tree).
struct SyncSafeUp {
  static constexpr const char* kName = "SyncSafeUp";
  std::uint32_t round = 0;
  std::size_t ids_carried() const { return 1; }
};
/// Beta: the root releases round r+1 (broadcast down the tree).
struct SyncNextRound {
  static constexpr const char* kName = "SyncNextRound";
  std::uint32_t round = 0;
  std::size_t ids_carried() const { return 1; }
};

enum class SynchronizerKind { kAlpha, kBeta };

/// Asynchronous wrapper node executing `rounds` synchronous rounds of P.
template <typename P>
class SynchronizerNode {
 public:
  using Inner = typename P::Inner;
  using Message = std::variant<SyncPayload<Inner>, SyncAck, SyncSafe,
                               SyncSafeUp, SyncNextRound>;
  using Ctx = IContext<Message>;

  /// Beta mode takes the node's tree parent/children; alpha ignores them.
  SynchronizerNode(const NodeEnv& env, typename P::Node sync_node,
                   std::size_t rounds, SynchronizerKind kind,
                   NodeId tree_parent = kNoNode,
                   std::vector<NodeId> tree_children = {})
      : env_(env), sync_(std::move(sync_node)), total_rounds_(rounds),
        kind_(kind), tree_parent_(tree_parent),
        tree_children_(std::move(tree_children)) {}

  void on_start(Ctx& ctx) { run_round(ctx); }

  void on_message(Ctx& ctx, NodeId from, const Message& message) {
    std::visit(
        [&](const auto& m) { handle(ctx, from, m); },
        message);
  }

  /// The wrapped synchronous node (for result extraction).
  const typename P::Node& sync_node() const { return sync_; }
  typename P::Node& sync_node() { return sync_; }
  std::size_t rounds_completed() const { return round_; }
  bool done() const { return halted_; }

 private:
  void handle(Ctx& ctx, NodeId from, const SyncPayload<Inner>& m) {
    // A round-r payload is always received before the receiver leaves round
    // r: the sender only turns safe after our Ack, and everyone's advance
    // awaits the sender's safety (causality, not FIFO, enforces this).
    MDST_ASSERT(m.round == round_ || m.round == round_ + 1,
                "synchronizer: round skew > 1");
    inbox_[m.round].emplace_back(from, m.inner);
    ctx.send(from, SyncAck{m.round});
  }

  void handle(Ctx& ctx, NodeId from, const SyncAck& m) {
    (void)from;
    MDST_ASSERT(m.round == round_, "ack for a foreign round");
    MDST_ASSERT(pending_acks_ > 0, "unexpected ack");
    if (--pending_acks_ == 0) became_safe(ctx);
  }

  void handle(Ctx& ctx, NodeId from, const SyncSafe& m) {
    (void)from;
    MDST_ASSERT(kind_ == SynchronizerKind::kAlpha, "Safe in beta mode");
    ++safe_neighbors_[m.round];
    maybe_advance_alpha(ctx);
  }

  void handle(Ctx& ctx, NodeId from, const SyncSafeUp& m) {
    (void)from;
    MDST_ASSERT(kind_ == SynchronizerKind::kBeta, "SafeUp in alpha mode");
    ++safe_children_[m.round];
    maybe_report_beta(ctx);
  }

  void handle(Ctx& ctx, NodeId from, const SyncNextRound& m) {
    (void)from;
    MDST_ASSERT(kind_ == SynchronizerKind::kBeta, "NextRound in alpha mode");
    MDST_ASSERT(m.round == round_, "NextRound skew");
    for (const NodeId child : tree_children_) ctx.send(child, m);
    advance(ctx);
  }

  void run_round(Ctx& ctx) {
    MDST_ASSERT(!halted_, "round after halt");
    self_safe_ = false;
    reported_up_ = false;
    // Round r consumes the messages sent in round r-1; round 0 sees an
    // empty inbox (early round-0 payloads from neighbours that started
    // before us are buffered in inbox_[0] for OUR round 1 — this is what
    // makes staggered spontaneous starts safe).
    static const std::vector<std::pair<NodeId, Inner>> kEmptyInbox;
    const auto& inbox = round_ == 0 ? kEmptyInbox : inbox_[round_ - 1];
    auto outgoing = sync_.on_round(round_, inbox);
    // Round-(r-1) inbox is consumed; free it.
    if (round_ > 0) inbox_.erase(round_ - 1);
    pending_acks_ = outgoing.size();
    for (auto& [to, inner] : outgoing) {
      ctx.send(to, SyncPayload<Inner>{static_cast<std::uint32_t>(round_),
                                      std::move(inner)});
    }
    if (pending_acks_ == 0) became_safe(ctx);
  }

  void became_safe(Ctx& ctx) {
    self_safe_ = true;
    if (kind_ == SynchronizerKind::kAlpha) {
      for (const NeighborInfo& nb : env_.neighbors) {
        ctx.send(nb.id, SyncSafe{static_cast<std::uint32_t>(round_)});
      }
      maybe_advance_alpha(ctx);
    } else {
      maybe_report_beta(ctx);
    }
  }

  void maybe_advance_alpha(Ctx& ctx) {
    if (halted_ || !self_safe_) return;
    if (safe_neighbors_[round_] < env_.neighbors.size()) return;
    safe_neighbors_.erase(round_);
    advance(ctx);
  }

  void maybe_report_beta(Ctx& ctx) {
    if (halted_ || !self_safe_ || reported_up_) return;
    if (safe_children_[round_] < tree_children_.size()) return;
    safe_children_.erase(round_);
    reported_up_ = true;
    if (tree_parent_ != kNoNode) {
      ctx.send(tree_parent_, SyncSafeUp{static_cast<std::uint32_t>(round_)});
      return;
    }
    // Root: the whole tree is safe; release the next round.
    const SyncNextRound release{static_cast<std::uint32_t>(round_)};
    for (const NodeId child : tree_children_) ctx.send(child, release);
    advance(ctx);
  }

  void advance(Ctx& ctx) {
    ++round_;
    if (round_ >= total_rounds_) {
      halted_ = true;
      return;
    }
    run_round(ctx);
  }

  NodeEnv env_;
  typename P::Node sync_;
  std::size_t total_rounds_;
  SynchronizerKind kind_;
  NodeId tree_parent_;
  std::vector<NodeId> tree_children_;
  std::size_t round_ = 0;
  std::map<std::size_t, std::vector<std::pair<NodeId, Inner>>> inbox_;
  std::size_t pending_acks_ = 0;
  bool self_safe_ = false;
  bool reported_up_ = false;
  std::map<std::size_t, std::size_t> safe_neighbors_;  // alpha, by round
  std::map<std::size_t, std::size_t> safe_children_;   // beta, by round
  bool halted_ = false;
};

/// Protocol binding for Simulator.
template <typename P>
struct SynchronizedProtocol {
  using Message = typename SynchronizerNode<P>::Message;
  using Node = SynchronizerNode<P>;
};

/// Run `rounds` synchronous rounds of P over `g` with the alpha
/// synchronizer. The factory builds the wrapped synchronous nodes.
template <typename P, typename Factory>
Simulator<SynchronizedProtocol<P>> make_alpha_synchronizer(
    const graph::Graph& g, Factory&& factory, std::size_t rounds,
    const SimConfig& config = {}) {
  return Simulator<SynchronizedProtocol<P>>(
      g,
      [&](const NodeEnv& env) {
        return SynchronizerNode<P>(env, factory(env), rounds,
                                   SynchronizerKind::kAlpha);
      },
      config);
}

/// As above with the beta synchronizer over the given rooted spanning tree.
template <typename P, typename Factory>
Simulator<SynchronizedProtocol<P>> make_beta_synchronizer(
    const graph::Graph& g, const graph::RootedTree& tree, Factory&& factory,
    std::size_t rounds, const SimConfig& config = {}) {
  return Simulator<SynchronizedProtocol<P>>(
      g,
      [&](const NodeEnv& env) {
        return SynchronizerNode<P>(env, factory(env), rounds,
                                   SynchronizerKind::kBeta, tree.parent(env.id),
                                   tree.children(env.id));
      },
      config);
}

}  // namespace mdst::sim
