// Discrete-event simulator for asynchronous message-passing protocols.
//
// This is the library's stand-in for the paper's execution model: a static
// asynchronous point-to-point network over an undirected graph, FIFO
// bidirectional channels, no shared memory, no global clock visible to the
// protocol. Determinism: given (graph, protocol, SimConfig::seed) a run is
// bit-for-bit reproducible; ties at equal delivery times resolve in send
// order.
//
// A Protocol type P must provide:
//   using Message = std::variant<M0, M1, ...>;
//     where each alternative Mi has
//       static constexpr const char* kName;      // for traces/metrics
//       std::size_t ids_carried() const;         // identity-sized fields
//   using Node = <class> with
//       void on_start(Ctx&);
//       void on_message(Ctx&, NodeId from, const Message&);
//     where Ctx is either the virtual IContext<Message> (portable /
//     mockable protocols) or the concrete SimContext<Message> for
//     devirtualized hot paths — the simulator always passes a
//     SimContext<Message>&, which binds to both.
//
// Nodes are built by a user factory from their NodeEnv (local knowledge
// only). The simulator delivers `on_start` to every node (at staggered
// times if SimConfig::start_spread > 0 — the paper allows nodes to start
// at different moments) and then drains the event queue.
//
// The event engine itself — calendar queue, CSR adjacency, FIFO floors,
// metering — lives in SimCore<Message> (sim_core.hpp); this class adds only
// the node array and the delivery loop.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/profile.hpp"
#include "runtime/sim_core.hpp"
#include "support/assert.hpp"

namespace mdst::sim {

template <typename P>
class Simulator {
 public:
  using Message = typename P::Message;
  using Node = typename P::Node;
  using NodeFactory = std::function<Node(const NodeEnv&)>;
  using Ctx = SimContext<Message>;

  Simulator(const graph::Graph& graph, const NodeFactory& factory,
            SimConfig config = {})
      : core_(graph, config) {
    nodes_.reserve(core_.node_count());
    for (const NodeEnv& env : core_.envs()) nodes_.push_back(factory(env));
  }

  /// Drain the event queue; returns when no message is in flight. Whether
  /// tracing is on is fixed at construction, so the loop is specialized
  /// once here and the disabled-trace branch vanishes from the inner loop.
  void run() {
    if (core_.trace_enabled()) {
      while (step_impl<true>()) {
      }
    } else {
      while (step_impl<false>()) {
      }
    }
  }

  /// Deliver exactly one event; returns false when idle. Exposed so tests
  /// can interleave assertions with delivery.
  bool step() {
    return core_.trace_enabled() ? step_impl<true>() : step_impl<false>();
  }

  bool idle() const { return core_.idle(); }
  Time now() const { return core_.now(); }
  const Metrics& metrics() const { return core_.metrics(); }
  const Trace& trace() const { return core_.trace(); }

  Node& node(NodeId id) {
    MDST_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                 "simulator: bad node id");
    return nodes_[static_cast<std::size_t>(id)];
  }
  const Node& node(NodeId id) const {
    return const_cast<Simulator*>(this)->node(id);
  }
  std::size_t node_count() const { return nodes_.size(); }
  const NodeEnv& env(NodeId id) const {
    return core_.envs().at(static_cast<std::size_t>(id));
  }

  /// Inject a message from outside the network (tests only); see
  /// SimCore::inject for the channel-model contract.
  void inject(NodeId from, NodeId to, Message message) {
    core_.inject(from, to, std::move(message));
  }

  /// True when the fault plan (SimConfig::faults) has crash-stopped `v` by
  /// the current simulated time. Engine-level outcome evaluation reads the
  /// runtime's crash truth from here instead of trusting protocol state.
  bool crashed(NodeId v) const {
    return core_.faults_active() && core_.crashed_now(v);
  }
  /// Adversity counters (zeroes without an active plan).
  FaultStats fault_stats() const { return core_.fault_stats(); }

  /// Per-subsystem byte accounting at this instant (read at run end for
  /// RunResult::memory). Core structures plus the node array; the caller
  /// adds externally owned node state (the shared NodeArenas).
  MemoryReport memory_report() const {
    MemoryReport report = core_.memory_report();
    report.node_bytes += nodes_.capacity() * sizeof(Node);
    return report;
  }

  /// Watchdog support: drop every still-queued event without running a
  /// handler — used when a time cap cuts a run short, so pooled payload
  /// state (P::dispose) is still reclaimed. Returns the discard count.
  /// Discarded message payloads are counted by type into the forensics
  /// census (wedge reports name the in-flight population at teardown).
  std::uint64_t discard_pending() {
    discard_census_.assign(std::variant_size_v<Message>, 0);
    std::uint64_t discarded = 0;
    while (!core_.idle()) {
      const auto delivery = core_.pop_event();
      if (delivery.event->kind == EventKind::kTimer) {
        // Timers sit outside the message accounting end to end — they are
        // neither censused nor counted as discarded events.
        core_.release(delivery.ref);
        continue;
      }
      if (delivery.event->kind == EventKind::kMessage) {
        ++discard_census_[delivery.event->payload.index()];
      }
      dispose_payload(*delivery.event);
      core_.note_discarded_event();
      core_.release(delivery.ref);
      ++discarded;
    }
    return discarded;
  }

  /// Per-message-type census of events discarded by discard_pending()
  /// (variant order; empty when no discard happened).
  const std::vector<std::uint64_t>& discard_census() const {
    return discard_census_;
  }

  /// Move the recorded trace out (run end only; see SimCore::take_trace).
  Trace take_trace() { return core_.take_trace(); }

 private:
  /// Reclaim pooled payload state for an event dropped instead of
  /// delivered, when the protocol declares a dispose hook (detected by
  /// capability probe, like the optional context fast paths).
  void dispose_payload(Event<Message>& ev) {
    if constexpr (requires(const Message& m) { P::dispose(m); }) {
      if (ev.kind == EventKind::kMessage) P::dispose(ev.payload);
    }
  }

  /// One-shot corruption scramble (FaultPlan corrupt(r,k)): run each live
  /// target's corrupt() hook with its own derived stream
  /// derive_seed(fault seed ^ 0xc0de, node, 1), so the scramble is a pure
  /// per-node function of the plan. Crashed targets are no-ops. Protocols
  /// without a corrupt hook (capability probe) are untouched.
  void apply_corruption() {
    std::uint32_t corrupted = 0;
    for (const NodeId v : core_.corrupt_targets()) {
      if (core_.crashed_now(v)) continue;
      Node& victim = nodes_[static_cast<std::size_t>(v)];
      if constexpr (requires(support::Rng& r) { victim.corrupt(r); }) {
        support::Rng scramble(support::derive_seed(
            core_.config().faults.seed ^ 0xc0de,
            static_cast<std::uint64_t>(v), 1));
        if (victim.corrupt(scramble)) ++corrupted;
      }
    }
    core_.note_corruption_applied(corrupted);
  }

  template <bool TraceOn>
  bool step_impl() {
    if (core_.idle()) return false;
    const auto delivery = [&] {
      MDST_PROFILE_SCOPE(Section::kQueuePop);
      return core_.pop_event();
    }();
    Event<Message>& ev = *delivery.event;
    // State corruption fires once, at the first event whose delivery time
    // reaches the plan's corrupt_time — before that event is handled, so
    // the scramble is visible to every handler from that tick on.
    if (core_.corrupt_pending() && core_.now() >= core_.corrupt_time())
        [[unlikely]] {
      apply_corruption();
    }
    // The delivery-side plan-active branch: events addressed to a crashed
    // node are dropped (crash-stop semantics — a crashed node neither
    // handles nor sends), with the node marked so protocol-level state
    // queries can exclude it.
    if (core_.faults_active() && core_.crashed_now(ev.to)) [[unlikely]] {
      Node& casualty = nodes_[static_cast<std::size_t>(ev.to)];
      if constexpr (requires { casualty.crash(); }) casualty.crash();
      if (ev.kind != EventKind::kTimer) {
        // Timer events die silently with their node: they were never part
        // of the send/deliver meters, so dropping one is not a metered
        // dropped delivery.
        core_.note_dropped_delivery();
        dispose_payload(ev);
      }
      core_.release(delivery.ref);
      return true;
    }
    Ctx ctx(&core_, ev.to, ev.from_index);
    Node& node = nodes_[static_cast<std::size_t>(ev.to)];
    if (ev.kind == EventKind::kStart) {
      MDST_PROFILE_SCOPE(Section::kDispatch);
      node.on_start(ctx);
    } else if (ev.kind == EventKind::kTimer) [[unlikely]] {
      // Cold path by construction: only timer-scheduling protocols (the
      // recovery layer) ever enqueue these.
      if constexpr (requires { node.on_timer(ctx); }) {
        MDST_PROFILE_SCOPE(Section::kDispatch);
        node.on_timer(ctx);
      }
    } else {
      {
        MDST_PROFILE_SCOPE(Section::kMetering);
        core_.template account_delivery<TraceOn>(ev);
      }
      MDST_PROFILE_SCOPE(Section::kDispatch);
      node.on_message(ctx, ev.from, ev.payload);
    }
    core_.release(delivery.ref);
    return true;
  }

  SimCore<Message> core_;
  std::vector<Node> nodes_;
  std::vector<std::uint64_t> discard_census_;
};

}  // namespace mdst::sim
