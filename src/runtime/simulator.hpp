// Discrete-event simulator for asynchronous message-passing protocols.
//
// This is the library's stand-in for the paper's execution model: a static
// asynchronous point-to-point network over an undirected graph, FIFO
// bidirectional channels, no shared memory, no global clock visible to the
// protocol. Determinism: given (graph, protocol, SimConfig::seed) a run is
// bit-for-bit reproducible; ties at equal delivery times resolve in send
// order.
//
// A Protocol type P must provide:
//   using Message = std::variant<M0, M1, ...>;
//     where each alternative Mi has
//       static constexpr const char* kName;      // for traces/metrics
//       std::size_t ids_carried() const;         // identity-sized fields
//   using Node = <class> with
//       void on_start(IContext<Message>&);
//       void on_message(IContext<Message>&, NodeId from, const Message&);
//
// Nodes are built by a user factory from their NodeEnv (local knowledge
// only). The simulator delivers `on_start` to every node (at staggered
// times if SimConfig::start_spread > 0 — the paper allows nodes to start
// at different moments) and then drains the event queue.
//
// Event-engine internals (see docs/perf.md for design + measurements):
//   * events sit in a bucketed CalendarQueue — O(1) push/pop FIFO rings per
//     tick instead of a binary-heap reshuffle of fat by-value events;
//   * the network is held as a directed-incidence CSR (adj_off_/adj_peer_),
//     so neighbor validation and per-link state are linear array scans;
//   * per-directed-link FIFO floors live in a flat vector indexed by CSR
//     slot, replacing a hash map keyed on packed (from, to).
#pragma once

#include <functional>
#include <utility>
#include <variant>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/calendar_queue.hpp"
#include "runtime/context.hpp"
#include "runtime/delay.hpp"
#include "runtime/metrics.hpp"
#include "runtime/node_env.hpp"
#include "runtime/trace.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace mdst::sim {

struct SimConfig {
  DelayModel delay = DelayModel::unit();
  /// Per-link FIFO ordering (standard model assumption; switch off only for
  /// robustness experiments).
  bool fifo_links = true;
  std::uint64_t seed = 1;
  /// Node i spontaneously starts at a uniform time in [0, start_spread].
  Time start_spread = 0;
  /// Hard cap on total sends — converts protocol livelock bugs into loud
  /// failures instead of hung experiments.
  std::uint64_t max_messages = 50'000'000;
  /// Retain at most this many trace rows (0 disables tracing).
  std::size_t trace_cap = 0;
};

template <typename P>
class Simulator {
 public:
  using Message = typename P::Message;
  using Node = typename P::Node;
  using NodeFactory = std::function<Node(const NodeEnv&)>;

  Simulator(const graph::Graph& graph, const NodeFactory& factory,
            SimConfig config = {})
      : config_(config),
        rng_(config.seed),
        metrics_(std::variant_size_v<Message>, id_bits_for(graph.vertex_count())),
        trace_(config.trace_cap) {
    const std::size_t n = graph.vertex_count();
    MDST_REQUIRE(n > 0, "simulator: empty graph");
    envs_.reserve(n);
    nodes_.reserve(n);
    depth_.assign(n, 0);
    adj_off_.assign(n + 1, 0);
    adj_peer_.reserve(2 * graph.edge_count());
    // One flat NeighborInfo array for the whole network; envs hold spans
    // into it, so protocol-side neighbor scans are cache-linear and a
    // NodeEnv copy costs nothing. Filled completely before any span is
    // taken — the buffer must never reallocate afterwards.
    neighbor_pool_.reserve(2 * graph.edge_count());
    for (std::size_t v = 0; v < n; ++v) {
      for (const graph::Incidence& inc : graph.neighbors(static_cast<NodeId>(v))) {
        neighbor_pool_.push_back({inc.neighbor, graph.name(inc.neighbor)});
        adj_peer_.push_back(inc.neighbor);
      }
      adj_off_[v + 1] = static_cast<std::uint32_t>(adj_peer_.size());
    }
    for (std::size_t v = 0; v < n; ++v) {
      NodeEnv env;
      env.id = static_cast<NodeId>(v);
      env.name = graph.name(static_cast<NodeId>(v));
      env.neighbors = std::span<const NeighborInfo>(
          neighbor_pool_.data() + adj_off_[v], adj_off_[v + 1] - adj_off_[v]);
      envs_.push_back(env);
      nodes_.push_back(factory(envs_.back()));
    }
    // Unit delays deliver every message at now + 1 and floors are monotone
    // in send time, so the per-directed-link FIFO floor can never bind —
    // skip both the array and the per-send bookkeeping in that case.
    fifo_floors_active_ = config_.fifo_links && !config_.delay.is_unit();
    if (fifo_floors_active_) fifo_floor_.assign(adj_peer_.size(), 0);
    // Schedule the spontaneous starts.
    for (std::size_t v = 0; v < n; ++v) {
      const Time at =
          config_.start_spread == 0
              ? 0
              : rng_.next_below(config_.start_spread + 1);
      Event& ev = queue_.emplace(at);
      ev.kind = EventKind::kStart;
      ev.to = static_cast<NodeId>(v);
      ev.from = kNoNode;
      ev.causal_depth = 0;
      ev.send_time = at;
    }
  }

  /// Drain the event queue; returns when no message is in flight.
  void run() {
    while (!queue_.empty()) {
      step();
    }
  }

  /// Deliver exactly one event; returns false when idle. Exposed so tests
  /// can interleave assertions with delivery.
  bool step() {
    if (queue_.empty()) return false;
    const auto popped = queue_.pop();
    now_ = popped.time;
    // The event is consumed in place from the queue's slab (stable across
    // the sends the handler performs) and released afterwards — the payload
    // is never copied out of the queue.
    Event& ev = *popped.payload;
    ContextImpl ctx(this, ev.to);
    Node& node = nodes_[static_cast<std::size_t>(ev.to)];
    if (ev.kind == EventKind::kStart) {
      node.on_start(ctx);
      queue_.release(popped.ref);
      return true;
    }
    // Update the receiver's causal depth *before* the handler so that
    // messages it sends in response carry depth + 1.
    auto& d = depth_[static_cast<std::size_t>(ev.to)];
    if (ev.causal_depth > d) d = ev.causal_depth;
    const std::size_t type_index = ev.payload.index();
    const std::size_t ids = std::visit(
        [](const auto& m) { return m.ids_carried(); }, ev.payload);
    metrics_.on_deliver(type_index, ids, ev.causal_depth, now_);
    if (trace_.enabled()) {
      const char* type_name = std::visit(
          [](const auto& m) {
            return std::decay_t<decltype(m)>::kName;
          },
          ev.payload);
      trace_.record({ev.send_time, now_, ev.from, ev.to, type_index,
                     type_name, ev.causal_depth});
    }
    node.on_message(ctx, ev.from, ev.payload);
    queue_.release(popped.ref);
    return true;
  }

  bool idle() const { return queue_.empty(); }
  Time now() const { return now_; }
  const Metrics& metrics() const { return metrics_; }
  const Trace& trace() const { return trace_; }

  Node& node(NodeId id) {
    MDST_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                 "simulator: bad node id");
    return nodes_[static_cast<std::size_t>(id)];
  }
  const Node& node(NodeId id) const {
    return const_cast<Simulator*>(this)->node(id);
  }
  std::size_t node_count() const { return nodes_.size(); }
  const NodeEnv& env(NodeId id) const {
    return envs_.at(static_cast<std::size_t>(id));
  }

  /// Inject a message from outside the network (tests only). Obeys the same
  /// channel model as protocol sends: it counts against `max_messages`, its
  /// delay is drawn from the configured DelayModel, and when the directed
  /// link from->to exists its FIFO floor applies. `from` may be kNoNode (or
  /// any non-neighbor) for a truly external sender, which bypasses no cap —
  /// only the per-link floor, since there is no link.
  void inject(NodeId from, NodeId to, Message message) {
    MDST_REQUIRE(to >= 0 && static_cast<std::size_t>(to) < nodes_.size(),
                 "inject: bad destination");
    MDST_REQUIRE(from == kNoNode ||
                     (from >= 0 && static_cast<std::size_t>(from) < nodes_.size()),
                 "inject: bad source");
    MDST_REQUIRE(sent_ < config_.max_messages,
                 "message cap exceeded — livelock?");
    ++sent_;
    Time deliver_at = now_ + config_.delay.sample(rng_);
    if (fifo_floors_active_ && from != kNoNode) {
      const std::size_t slot = find_directed_slot(from, to);
      if (slot != kNoSlot) deliver_at = bump_fifo_floor(slot, deliver_at);
    }
    Event& ev = queue_.emplace(deliver_at);
    ev.kind = EventKind::kMessage;
    ev.to = to;
    ev.from = from;
    ev.payload = std::move(message);
    ev.causal_depth = depth_from(from) + 1;
    ev.send_time = now_;
  }

 private:
  enum class EventKind : std::uint8_t { kStart, kMessage };

  /// Queue payload; delivery time and send order live in the CalendarQueue
  /// slab node, not here.
  struct Event {
    EventKind kind = EventKind::kMessage;
    NodeId to = kNoNode;
    NodeId from = kNoNode;
    Message payload{};
    std::uint64_t causal_depth = 0;
    Time send_time = 0;
  };

  class ContextImpl final : public IContext<Message> {
   public:
    ContextImpl(Simulator* sim, NodeId self) : sim_(sim), self_(self) {}

    void send(NodeId to, Message message) override {
      Simulator& sim = *sim_;
      const std::size_t slot = sim.find_directed_slot(self_, to);
      MDST_REQUIRE(slot != kNoSlot,
                   "send: target is not a neighbor (point-to-point model)");
      MDST_REQUIRE(sim.sent_ < sim.config_.max_messages,
                   "message cap exceeded — livelock?");
      ++sim.sent_;
      Time deliver_at = sim.now_ + sim.config_.delay.sample(sim.rng_);
      if (sim.fifo_floors_active_) {
        deliver_at = sim.bump_fifo_floor(slot, deliver_at);
      }
      Event& ev = sim.queue_.emplace(deliver_at);
      ev.kind = EventKind::kMessage;
      ev.to = to;
      ev.from = self_;
      ev.payload = std::move(message);
      ev.causal_depth = sim.depth_[static_cast<std::size_t>(self_)] + 1;
      ev.send_time = sim.now_;
    }

    NodeId self() const override { return self_; }
    Time now() const override { return sim_->now_; }
    void annotate(const std::string& label) override {
      sim_->metrics_.annotate(sim_->now_, label);
    }

   private:
    Simulator* sim_;
    NodeId self_;
  };

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  /// CSR slot of the directed link from->to, or kNoSlot. The linear scan
  /// over a contiguous int32 row replaces both the old O(deg) NodeEnv
  /// neighbor check and the hash lookup keyed on packed (from, to).
  std::size_t find_directed_slot(NodeId from, NodeId to) const {
    const auto u = static_cast<std::size_t>(from);
    if (from < 0 || u + 1 >= adj_off_.size()) return kNoSlot;
    const std::uint32_t hi = adj_off_[u + 1];
    for (std::uint32_t s = adj_off_[u]; s < hi; ++s) {
      if (adj_peer_[s] == to) return s;
    }
    return kNoSlot;
  }

  /// Enforce per-directed-link FIFO: never deliver before a message sent
  /// earlier on the same link. Returns the (possibly floored) delivery time.
  Time bump_fifo_floor(std::size_t slot, Time deliver_at) {
    Time& last = fifo_floor_[slot];
    if (deliver_at < last) deliver_at = last;
    last = deliver_at;
    return deliver_at;
  }

  std::uint64_t depth_from(NodeId from) const {
    if (from == kNoNode) return 0;
    return depth_[static_cast<std::size_t>(from)];
  }

  SimConfig config_;
  support::Rng rng_;
  Metrics metrics_;
  Trace trace_;
  /// Backing storage for every NodeEnv::neighbors span; never reallocated
  /// after construction.
  std::vector<NeighborInfo> neighbor_pool_;
  std::vector<NodeEnv> envs_;
  std::vector<Node> nodes_;
  std::vector<std::uint64_t> depth_;
  /// Directed-incidence CSR of the network: peers of vertex v are
  /// adj_peer_[adj_off_[v] .. adj_off_[v+1]) in graph adjacency order.
  std::vector<std::uint32_t> adj_off_;
  std::vector<NodeId> adj_peer_;
  /// Latest scheduled delivery per directed link, indexed by CSR slot.
  /// Empty (and unread) when fifo_floors_active_ is false.
  std::vector<Time> fifo_floor_;
  bool fifo_floors_active_ = false;
  CalendarQueue<Event> queue_;
  Time now_ = 0;
  std::uint64_t sent_ = 0;

  friend class ContextImpl;
};

}  // namespace mdst::sim
