// Discrete-event simulator for asynchronous message-passing protocols.
//
// This is the library's stand-in for the paper's execution model: a static
// asynchronous point-to-point network over an undirected graph, FIFO
// bidirectional channels, no shared memory, no global clock visible to the
// protocol. Determinism: given (graph, protocol, SimConfig::seed) a run is
// bit-for-bit reproducible; ties at equal delivery times resolve in send
// order.
//
// A Protocol type P must provide:
//   using Message = std::variant<M0, M1, ...>;
//     where each alternative Mi has
//       static constexpr const char* kName;      // for traces/metrics
//       std::size_t ids_carried() const;         // identity-sized fields
//   using Node = <class> with
//       void on_start(IContext<Message>&);
//       void on_message(IContext<Message>&, NodeId from, const Message&);
//
// Nodes are built by a user factory from their NodeEnv (local knowledge
// only). The simulator delivers `on_start` to every node (at staggered
// times if SimConfig::start_spread > 0 — the paper allows nodes to start
// at different moments) and then drains the event queue.
#pragma once

#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/context.hpp"
#include "runtime/delay.hpp"
#include "runtime/metrics.hpp"
#include "runtime/node_env.hpp"
#include "runtime/trace.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace mdst::sim {

struct SimConfig {
  DelayModel delay = DelayModel::unit();
  /// Per-link FIFO ordering (standard model assumption; switch off only for
  /// robustness experiments).
  bool fifo_links = true;
  std::uint64_t seed = 1;
  /// Node i spontaneously starts at a uniform time in [0, start_spread].
  Time start_spread = 0;
  /// Hard cap on total sends — converts protocol livelock bugs into loud
  /// failures instead of hung experiments.
  std::uint64_t max_messages = 50'000'000;
  /// Retain at most this many trace rows (0 disables tracing).
  std::size_t trace_cap = 0;
};

template <typename P>
class Simulator {
 public:
  using Message = typename P::Message;
  using Node = typename P::Node;
  using NodeFactory = std::function<Node(const NodeEnv&)>;

  Simulator(const graph::Graph& graph, const NodeFactory& factory,
            SimConfig config = {})
      : config_(config),
        rng_(config.seed),
        metrics_(std::variant_size_v<Message>, id_bits_for(graph.vertex_count())),
        trace_(config.trace_cap) {
    const std::size_t n = graph.vertex_count();
    MDST_REQUIRE(n > 0, "simulator: empty graph");
    envs_.reserve(n);
    nodes_.reserve(n);
    depth_.assign(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      NodeEnv env;
      env.id = static_cast<NodeId>(v);
      env.name = graph.name(static_cast<NodeId>(v));
      for (const graph::Incidence& inc : graph.neighbors(static_cast<NodeId>(v))) {
        env.neighbors.push_back({inc.neighbor, graph.name(inc.neighbor)});
      }
      envs_.push_back(std::move(env));
      nodes_.push_back(factory(envs_.back()));
    }
    // Schedule the spontaneous starts.
    for (std::size_t v = 0; v < n; ++v) {
      const Time at =
          config_.start_spread == 0
              ? 0
              : rng_.next_below(config_.start_spread + 1);
      push_event(Event{at, next_seq_++, EventKind::kStart,
                       static_cast<NodeId>(v), kNoNode, Message{}, 0, at});
    }
  }

  /// Drain the event queue; returns when no message is in flight.
  void run() {
    while (!queue_.empty()) {
      step();
    }
  }

  /// Deliver exactly one event; returns false when idle. Exposed so tests
  /// can interleave assertions with delivery.
  bool step() {
    if (queue_.empty()) return false;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ContextImpl ctx(this, ev.to);
    Node& node = nodes_[static_cast<std::size_t>(ev.to)];
    if (ev.kind == EventKind::kStart) {
      node.on_start(ctx);
      return true;
    }
    // Update the receiver's causal depth *before* the handler so that
    // messages it sends in response carry depth + 1.
    auto& d = depth_[static_cast<std::size_t>(ev.to)];
    if (ev.causal_depth > d) d = ev.causal_depth;
    const std::size_t type_index = ev.payload.index();
    const std::size_t ids = std::visit(
        [](const auto& m) { return m.ids_carried(); }, ev.payload);
    metrics_.on_deliver(type_index, ids, ev.causal_depth, now_);
    if (trace_.enabled()) {
      const char* type_name = std::visit(
          [](const auto& m) {
            return std::decay_t<decltype(m)>::kName;
          },
          ev.payload);
      trace_.record({ev.send_time, ev.time, ev.from, ev.to, type_index,
                     type_name, ev.causal_depth});
    }
    node.on_message(ctx, ev.from, ev.payload);
    return true;
  }

  bool idle() const { return queue_.empty(); }
  Time now() const { return now_; }
  const Metrics& metrics() const { return metrics_; }
  const Trace& trace() const { return trace_; }

  Node& node(NodeId id) {
    MDST_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                 "simulator: bad node id");
    return nodes_[static_cast<std::size_t>(id)];
  }
  const Node& node(NodeId id) const {
    return const_cast<Simulator*>(this)->node(id);
  }
  std::size_t node_count() const { return nodes_.size(); }
  const NodeEnv& env(NodeId id) const {
    return envs_.at(static_cast<std::size_t>(id));
  }

  /// Inject a message from outside the network (tests only). Counted and
  /// delivered like any other message; `from` may be kNoNode.
  void inject(NodeId from, NodeId to, Message message) {
    push_event(Event{now_ + 1, next_seq_++, EventKind::kMessage, to, from,
                     std::move(message), depth_from(from) + 1, now_});
  }

 private:
  enum class EventKind { kStart, kMessage };

  struct Event {
    Time time = 0;
    std::uint64_t seq = 0;
    EventKind kind = EventKind::kMessage;
    NodeId to = kNoNode;
    NodeId from = kNoNode;
    Message payload{};
    std::uint64_t causal_depth = 0;
    Time send_time = 0;

    friend bool operator>(const Event& a, const Event& b) {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  class ContextImpl final : public IContext<Message> {
   public:
    ContextImpl(Simulator* sim, NodeId self) : sim_(sim), self_(self) {}

    void send(NodeId to, Message message) override {
      Simulator& sim = *sim_;
      MDST_REQUIRE(sim.envs_[static_cast<std::size_t>(self_)].is_neighbor(to),
                   "send: target is not a neighbor (point-to-point model)");
      MDST_REQUIRE(sim.sent_ < sim.config_.max_messages,
                   "message cap exceeded — livelock?");
      ++sim.sent_;
      const Time delay = sim.config_.delay.sample(sim.rng_);
      Time deliver_at = sim.now_ + delay;
      if (sim.config_.fifo_links) {
        // Enforce per-directed-link FIFO: never deliver before a message
        // sent earlier on the same link.
        Time& last = sim.fifo_floor_[link_key(self_, to)];
        if (deliver_at < last) deliver_at = last;
        last = deliver_at;
      }
      sim.push_event(Event{
          deliver_at, sim.next_seq_++, EventKind::kMessage, to, self_,
          std::move(message),
          sim.depth_[static_cast<std::size_t>(self_)] + 1, sim.now_});
    }

    NodeId self() const override { return self_; }
    Time now() const override { return sim_->now_; }
    void annotate(const std::string& label) override {
      sim_->metrics_.annotate(sim_->now_, label);
    }

   private:
    Simulator* sim_;
    NodeId self_;
  };

  static std::uint64_t link_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
  }

  std::uint64_t depth_from(NodeId from) const {
    if (from == kNoNode) return 0;
    return depth_[static_cast<std::size_t>(from)];
  }

  void push_event(Event ev) { queue_.push(std::move(ev)); }

  SimConfig config_;
  support::Rng rng_;
  Metrics metrics_;
  Trace trace_;
  std::vector<NodeEnv> envs_;
  std::vector<Node> nodes_;
  std::vector<std::uint64_t> depth_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, Time> fifo_floor_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t sent_ = 0;

  friend class ContextImpl;
};

}  // namespace mdst::sim
