// Cross-shard payload traits for the sharded simulator.
//
// The sharded engine (runtime/sharded_sim.hpp) moves events between shard
// workers by value. That is safe for self-contained trivially-copyable
// payloads — but a message may carry handles into *thread-local* state
// (mdst's BoxedCandidate handles into the sender thread's CandidatePool),
// and those must not cross a thread boundary as bare handles. This traits
// template is the message set's hook for re-homing such state:
//
//   * detach(message, luggage) runs on the *sending* shard's thread when an
//     event is placed in a cross-shard outbox: copy any thread-local values
//     out of the message into the luggage and release the sender-side
//     slots. The handles left in the message are dead until attach.
//   * attach(message, luggage) runs on the *receiving* shard's thread when
//     the event is drained from the inbox: re-box the carried values into
//     the receiver thread's pool and write the fresh handles back.
//   * pooled_in_use() (optional, probed by `requires`) reports the calling
//     thread's live pooled-slot count, so the sharded simulator can check
//     per-worker pool balance the way run_mdst checks the main thread's.
//
// The primary template is the identity: plain message sets (the spanning
// baselines' flood/dfs variants) carry no thread-local state, so detach and
// attach are no-ops and the luggage is empty. Message sets with pooled
// payloads specialize it next to their message definitions (see
// mdst/messages.hpp) so every translation unit that sees the message type
// also sees the same specialization.
#pragma once

namespace mdst::sim {

template <typename Message>
struct CrossShardTraits {
  /// Per-event sidecar for values extracted by detach. Empty by default.
  struct Luggage {};

  static void detach(Message& message, Luggage& luggage) {
    (void)message;
    (void)luggage;
  }
  static void attach(Message& message, const Luggage& luggage) {
    (void)message;
    (void)luggage;
  }
};

}  // namespace mdst::sim
