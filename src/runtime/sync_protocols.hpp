// Demonstration synchronous protocols for the synchronizers: textbook
// lock-step algorithms whose behaviour is exactly predictable per round,
// used to validate the synchronizers and in examples/network_sync.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "runtime/node_env.hpp"

namespace mdst::sim {

/// Synchronous BFS layering: the source announces distance 0 in round 0;
/// a node that learns its distance in round r announces it in round r; a
/// node at BFS-distance d from the source learns d at the start of round d.
/// After ecc(source)+1 rounds every node knows its distance and parent.
struct SyncBfs {
  struct Inner {
    int dist = 0;
    std::size_t ids_carried() const { return 1; }
  };

  class Node {
   public:
    Node(const NodeEnv& env, bool is_source) : env_(env), source_(is_source) {}

    std::vector<std::pair<NodeId, Inner>> on_round(
        std::size_t round, const std::vector<std::pair<NodeId, Inner>>& inbox) {
      bool fresh = false;
      if (round == 0 && source_) {
        dist_ = 0;
        fresh = true;
      }
      if (dist_ < 0) {
        for (const auto& [from, msg] : inbox) {
          if (dist_ < 0 || msg.dist + 1 < dist_) {
            dist_ = msg.dist + 1;
            parent_ = from;
            fresh = true;
          }
        }
      }
      std::vector<std::pair<NodeId, Inner>> out;
      if (fresh) {
        out.reserve(env_.neighbors.size());
        for (const NeighborInfo& nb : env_.neighbors) {
          out.emplace_back(nb.id, Inner{dist_});
        }
      }
      return out;
    }

    int distance() const { return dist_; }
    NodeId bfs_parent() const { return parent_; }

   private:
    NodeEnv env_;
    bool source_;
    int dist_ = -1;
    NodeId parent_ = kNoNode;
  };
};

/// Synchronous max-name consensus: everyone repeatedly floods the largest
/// identity heard so far; converges after diameter rounds.
struct SyncMaxConsensus {
  struct Inner {
    graph::NodeName value = -1;
    std::size_t ids_carried() const { return 1; }
  };

  class Node {
   public:
    explicit Node(const NodeEnv& env) : env_(env), best_(env.name) {}

    std::vector<std::pair<NodeId, Inner>> on_round(
        std::size_t round, const std::vector<std::pair<NodeId, Inner>>& inbox) {
      bool improved = round == 0;  // initial announcement
      for (const auto& [from, msg] : inbox) {
        (void)from;
        if (msg.value > best_) {
          best_ = msg.value;
          improved = true;
        }
      }
      std::vector<std::pair<NodeId, Inner>> out;
      if (improved) {
        for (const NeighborInfo& nb : env_.neighbors) {
          out.emplace_back(nb.id, Inner{best_});
        }
      }
      return out;
    }

    graph::NodeName best() const { return best_; }

   private:
    NodeEnv env_;
    graph::NodeName best_;
  };
};

}  // namespace mdst::sim
