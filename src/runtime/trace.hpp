// Optional event-trace recorder.
//
// When enabled, the simulator records one row per delivered message. The
// Fig. 2 walkthrough example and the wave-audit bench replay these rows to
// show exactly how a BFS wave sweeps the fragments and to verify the
// "each edge is seen at most twice per wave" accounting of §4.2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/types.hpp"
#include "support/assert.hpp"

namespace mdst::sim {

struct TraceRow {
  Time send_time = 0;
  Time deliver_time = 0;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::size_t type_index = 0;
  std::string type_name;
  std::uint64_t causal_depth = 0;
};

class Trace {
 public:
  /// cap = maximum rows retained (guards memory in big sweeps; 0 = disabled).
  explicit Trace(std::size_t cap = 0) : cap_(cap) {}

  bool enabled() const { return cap_ > 0; }
  bool truncated() const { return truncated_; }

  void record(TraceRow row) {
    if (!enabled()) return;
    if (rows_.size() >= cap_) {
      truncated_ = true;
      return;
    }
    rows_.push_back(std::move(row));
  }

  const std::vector<TraceRow>& rows() const { return rows_; }

 private:
  std::size_t cap_;
  bool truncated_ = false;
  std::vector<TraceRow> rows_;
};

}  // namespace mdst::sim
