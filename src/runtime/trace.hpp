// Optional event-trace recorder.
//
// When enabled, the simulator records one row per delivered message. The
// Fig. 2 walkthrough example and the wave-audit bench replay these rows to
// show exactly how a BFS wave sweeps the fragments and to verify the
// "each edge is seen at most twice per wave" accounting of §4.2.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "runtime/types.hpp"
#include "support/assert.hpp"

namespace mdst::sim {

struct TraceRow {
  Time send_time = 0;
  Time deliver_time = 0;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::size_t type_index = 0;
  /// Views the message type's static constexpr kName (the simulator's
  /// descriptor table) — program-lifetime storage, so recording a row never
  /// allocates and a TraceRow stays trivially copyable.
  std::string_view type_name;
  std::uint64_t causal_depth = 0;
};

class Trace {
 public:
  /// cap = maximum rows retained (guards memory in big sweeps; 0 = disabled).
  explicit Trace(std::size_t cap = 0) : cap_(cap) {}

  bool enabled() const { return cap_ > 0; }
  bool truncated() const { return truncated_; }

  void record(const TraceRow& row) {
    if (!enabled()) return;
    if (rows_.size() >= cap_) {
      truncated_ = true;
      return;
    }
    rows_.push_back(row);
  }

  const std::vector<TraceRow>& rows() const { return rows_; }

  /// Force the truncation flag. The sharded engine merges per-shard traces
  /// that are each capped at the global cap; when the *global* attempted row
  /// count exceeded the cap but every per-shard recorder stayed under it,
  /// the merged trace must still read as truncated.
  void mark_truncated() { truncated_ = true; }

 private:
  std::size_t cap_;
  bool truncated_ = false;
  std::vector<TraceRow> rows_;
};

}  // namespace mdst::sim
