// Tiny command-line flag parser for examples and bench binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unknown flags are an error (fail fast in scripted sweeps);
// `--help` prints registered flags and exits the parse with `help_requested`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mdst::support {

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Register flags before parse(). `help` is shown by --help.
  void add_string(const std::string& name, std::string* target,
                  const std::string& help);
  void add_int(const std::string& name, std::int64_t* target,
               const std::string& help);
  void add_uint(const std::string& name, std::uint64_t* target,
                const std::string& help);
  void add_double(const std::string& name, double* target,
                  const std::string& help);
  void add_bool(const std::string& name, bool* target, const std::string& help);

  struct ParseResult {
    bool ok = true;
    bool help_requested = false;
    std::string error;
    /// Non-flag positional arguments in order.
    std::vector<std::string> positional;
  };

  ParseResult parse(int argc, const char* const* argv);

  std::string help_text() const;

 private:
  enum class Kind { kString, kInt, kUint, kDouble, kBool };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };
  std::string description_;
  std::vector<Flag> flags_;

  const Flag* find(const std::string& name) const;
  static std::optional<std::string> assign(const Flag& flag,
                                           const std::string& value);
};

}  // namespace mdst::support
