#include "support/cli.hpp"

#include <charconv>
#include <sstream>

#include "support/assert.hpp"

namespace mdst::support {
namespace {

template <typename T>
std::optional<T> parse_number(const std::string& text) {
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> parse_double_text(const std::string& text) {
  // std::from_chars for double is not available everywhere; stod with a
  // full-consumption check is sufficient for flag parsing.
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_string(const std::string& name, std::string* target,
                           const std::string& help) {
  MDST_REQUIRE(target != nullptr, "null flag target");
  MDST_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  flags_.push_back({name, Kind::kString, target, help, *target});
}

void CliParser::add_int(const std::string& name, std::int64_t* target,
                        const std::string& help) {
  MDST_REQUIRE(target != nullptr, "null flag target");
  MDST_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  flags_.push_back({name, Kind::kInt, target, help, std::to_string(*target)});
}

void CliParser::add_uint(const std::string& name, std::uint64_t* target,
                         const std::string& help) {
  MDST_REQUIRE(target != nullptr, "null flag target");
  MDST_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  flags_.push_back({name, Kind::kUint, target, help, std::to_string(*target)});
}

void CliParser::add_double(const std::string& name, double* target,
                           const std::string& help) {
  MDST_REQUIRE(target != nullptr, "null flag target");
  MDST_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  flags_.push_back({name, Kind::kDouble, target, help, std::to_string(*target)});
}

void CliParser::add_bool(const std::string& name, bool* target,
                         const std::string& help) {
  MDST_REQUIRE(target != nullptr, "null flag target");
  MDST_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  flags_.push_back({name, Kind::kBool, target, help, *target ? "true" : "false"});
}

const CliParser::Flag* CliParser::find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

std::optional<std::string> CliParser::assign(const Flag& flag,
                                             const std::string& value) {
  switch (flag.kind) {
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return std::nullopt;
    case Kind::kInt: {
      const auto parsed = parse_number<std::int64_t>(value);
      if (!parsed) return "expected integer for --" + flag.name;
      *static_cast<std::int64_t*>(flag.target) = *parsed;
      return std::nullopt;
    }
    case Kind::kUint: {
      const auto parsed = parse_number<std::uint64_t>(value);
      if (!parsed) return "expected unsigned integer for --" + flag.name;
      *static_cast<std::uint64_t*>(flag.target) = *parsed;
      return std::nullopt;
    }
    case Kind::kDouble: {
      const auto parsed = parse_double_text(value);
      if (!parsed) return "expected number for --" + flag.name;
      *static_cast<double*>(flag.target) = *parsed;
      return std::nullopt;
    }
    case Kind::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return "expected true/false for --" + flag.name;
      }
      return std::nullopt;
    }
  }
  MDST_UNREACHABLE("bad flag kind");
}

CliParser::ParseResult CliParser::parse(int argc, const char* const* argv) {
  ParseResult result;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      result.help_requested = true;
      return result;
    }
    if (arg.rfind("--", 0) != 0) {
      result.positional.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    const Flag* flag = find(body);
    // Boolean negation: --no-foo.
    if (flag == nullptr && body.rfind("no-", 0) == 0) {
      const Flag* base = find(body.substr(3));
      if (base != nullptr && base->kind == Kind::kBool) {
        if (has_value) {
          result.ok = false;
          result.error = "--no-" + base->name + " takes no value";
          return result;
        }
        *static_cast<bool*>(base->target) = false;
        continue;
      }
    }
    if (flag == nullptr) {
      result.ok = false;
      result.error = "unknown flag --" + body;
      return result;
    }
    if (!has_value) {
      if (flag->kind == Kind::kBool) {
        *static_cast<bool*>(flag->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        result.ok = false;
        result.error = "missing value for --" + body;
        return result;
      }
      value = argv[++i];
    }
    if (auto error = assign(*flag, value)) {
      result.ok = false;
      result.error = *error;
      return result;
    }
  }
  return result;
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& flag : flags_) {
    os << "  --" << flag.name << "  (default: " << flag.default_repr << ")\n"
       << "      " << flag.help << '\n';
  }
  return os.str();
}

}  // namespace mdst::support
