#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace mdst::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MDST_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MDST_REQUIRE(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::start_row() {
  MDST_REQUIRE(!building_ || pending_.empty(),
               "previous row not finished before start_row");
  building_ = true;
  pending_.clear();
}

void Table::finish_pending_if_complete() {
  if (building_ && pending_.size() == headers_.size()) {
    rows_.push_back(pending_);
    pending_.clear();
    building_ = false;
  }
}

void Table::cell(const std::string& value) {
  MDST_REQUIRE(building_, "cell() without start_row()");
  MDST_REQUIRE(pending_.size() < headers_.size(), "too many cells in row");
  pending_.push_back(value);
  finish_pending_if_complete();
}

void Table::cell(const char* value) { cell(std::string(value)); }
void Table::cell(std::int64_t value) { cell(std::to_string(value)); }
void Table::cell(std::uint64_t value) { cell(std::to_string(value)); }
void Table::cell(int value) { cell(std::to_string(value)); }
void Table::cell(double value, int precision) {
  cell(format_double(value, precision));
}

void Table::print(std::ostream& out, const std::string& title) const {
  MDST_ASSERT(!building_ || pending_.empty(), "incomplete row at print time");
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title.empty()) out << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c] << " |";
    }
    out << '\n';
  };
  print_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string(const std::string& title) const {
  std::ostringstream os;
  print(os, title);
  return os.str();
}

void Table::write_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      const std::string& cell = row[c];
      const bool needs_quote =
          cell.find_first_of(",\"\n") != std::string::npos;
      if (needs_quote) {
        out << '"';
        for (char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string with_thousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace mdst::support
