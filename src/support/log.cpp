#include "support/log.hpp"

#include <iostream>

namespace mdst::support {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::ostream* g_sink = nullptr;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "[trace] ";
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo:  return "[info ] ";
    case LogLevel::kWarn:  return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    case LogLevel::kOff:   return "";
  }
  return "";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_sink(std::ostream* sink) { g_sink = sink; }
bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level) &&
         g_level != LogLevel::kOff;
}

void log_line(LogLevel level, const std::string& text) {
  if (!log_enabled(level)) return;
  std::ostream& out = g_sink != nullptr ? *g_sink : std::clog;
  out << prefix(level) << text << '\n';
}

}  // namespace mdst::support
