// Streaming statistics used by the experiment harness and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mdst::support {

/// Welford-style streaming accumulator: mean/variance/min/max without
/// storing samples. Used for per-seed aggregation in experiment tables.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores samples to answer quantile queries exactly; used where the tails
/// matter (e.g. causal-time distributions under heavy-tailed delays).
class Samples {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Quantile in [0,1] by linear interpolation. Precondition: non-empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Integer histogram keyed by exact value (degree distributions, message
/// counts per type).
class Histogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);
  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::int64_t value) const;
  std::int64_t min() const;
  std::int64_t max() const;
  const std::map<std::int64_t, std::uint64_t>& buckets() const { return buckets_; }
  /// Render as "v:c v:c ..." for compact logging.
  std::string to_string() const;

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Least-squares fit of y = a + b*x; used to check complexity slopes
/// (e.g. messages vs (k-k*+1)*m should fit with near-zero curvature).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace mdst::support
