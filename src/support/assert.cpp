#include "support/assert.hpp"

#include <sstream>

namespace mdst::detail {

namespace {

[[noreturn]] void fail(const char* kind, const char* cond, const char* file,
                       int line, const char* msg, std::size_t msg_len) {
  std::ostringstream os;
  os << kind << " failed: (" << cond << ") at " << file << ':' << line;
  if (msg_len != 0) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace

void contract_fail(const char* kind, const char* cond, const char* file,
                   int line, const char* msg) {
  fail(kind, cond, file, line, msg, std::char_traits<char>::length(msg));
}

void contract_fail(const char* kind, const char* cond, const char* file,
                   int line, const std::string& msg) {
  fail(kind, cond, file, line, msg.c_str(), msg.size());
}

}  // namespace mdst::detail
