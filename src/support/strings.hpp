// Small string utilities shared by I/O and the CLI tools.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mdst::support {

/// Split on a delimiter; empty tokens are kept (CSV semantics).
std::vector<std::string> split(std::string_view text, char delim);

/// Split on runs of whitespace; empty tokens are dropped.
std::vector<std::string> split_whitespace(std::string_view text);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view text);

}  // namespace mdst::support
