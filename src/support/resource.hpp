// Process-level resource probes for the perf-column instrumentation.
#pragma once

#include <cstdint>

namespace mdst::support {

/// Peak resident set size of this process in bytes (getrusage ru_maxrss),
/// or 0 where the probe is unavailable. Monotone over the process lifetime
/// — a per-trial reading reflects the largest trial so far, which is what
/// the large_n campaign's doubling ladder wants (each row's peak is its
/// own, since sizes only grow). Inherently nondeterministic (allocator and
/// kernel dependent), so it is exposed only through the opt-in perf
/// columns, never the byte-deterministic default sink output.
std::uint64_t peak_rss_bytes();

/// Monotonic wall-clock nanoseconds (steady clock), for msgs/s rates in
/// the perf columns. Same nondeterminism caveat as peak_rss_bytes().
std::uint64_t monotonic_ns();

}  // namespace mdst::support
