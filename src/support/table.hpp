// ASCII table and CSV rendering for the bench harness.
//
// Every bench binary prints the same kind of artefact the paper would have
// published: a fixed-width table on stdout, optionally mirrored to CSV for
// plotting. Cells are stored as strings; numeric helpers format with a
// chosen precision so that tables are stable across runs (modulo data).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mdst::support {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Number of columns (fixed at construction).
  std::size_t columns() const { return headers_.size(); }
  std::size_t rows() const { return rows_.size(); }

  /// Append a full row. Precondition: cells.size() == columns().
  void add_row(std::vector<std::string> cells);

  /// Row-builder interface: start_row() then cell(...) exactly columns()
  /// times.
  void start_row();
  void cell(const std::string& value);
  void cell(const char* value);
  void cell(std::int64_t value);
  void cell(std::uint64_t value);
  void cell(int value);
  void cell(double value, int precision = 3);

  /// Render with column alignment and a header separator.
  void print(std::ostream& out, const std::string& title = "") const;
  std::string to_string(const std::string& title = "") const;

  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
  bool building_ = false;
  void finish_pending_if_complete();
};

/// Format helpers shared by benches.
std::string format_double(double value, int precision = 3);
/// "12345678" -> "12,345,678" for readability in printed tables.
std::string with_thousands(std::uint64_t value);

}  // namespace mdst::support
