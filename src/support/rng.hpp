// Deterministic random number generation.
//
// Every stochastic component in the library (graph generators, delay models,
// tie-breaking experiments) draws from an explicitly seeded Rng instance, so
// every experiment row in EXPERIMENTS.md is reproducible from (family, n,
// seed). We implement xoshiro256** seeded through SplitMix64 — the standard
// pairing recommended by the xoshiro authors — instead of std::mt19937 so
// that streams are cheap to split per-node and the state is trivially
// copyable.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "support/assert.hpp"

namespace mdst::support {

/// SplitMix64 step; used for seeding and for hashing experiment coordinates
/// into independent seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive an independent 64-bit seed from a tuple of coordinates, e.g.
/// derive_seed(base, n, family_index, repetition).
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a, std::uint64_t b = 0,
                          std::uint64_t c = 0);

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator so it can be used
/// with <random> distributions as well.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9054c5e4c3b8f2ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound) with Lemire rejection (unbiased).
  /// Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p in [0, 1].
  bool next_bool(double p);

  /// Exponentially distributed double with the given mean (> 0).
  double next_exponential(double mean);

  /// Fork an independent child stream. Children derived from the same parent
  /// in the same order are deterministic.
  Rng split();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  template <typename Container>
  std::size_t pick_index(const Container& values) {
    MDST_REQUIRE(!values.empty(), "pick_index on empty container");
    return static_cast<std::size_t>(next_below(values.size()));
  }

 private:
  std::uint64_t state_[4] = {};
};

}  // namespace mdst::support
