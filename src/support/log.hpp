// Minimal leveled logger.
//
// The simulator and protocols log through this single sink so verbose traces
// can be switched on per-binary (examples use it for the Fig. 2 walkthrough)
// without recompiling. Not thread-safe by design: the discrete-event
// simulator is single-threaded and experiments run one simulation at a time.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace mdst::support {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirect log output (default: std::clog). Pass nullptr to restore default.
void set_log_sink(std::ostream* sink);

/// Emit one line at `level` with a small "[lvl] " prefix.
void log_line(LogLevel level, const std::string& text);

/// True if a message at `level` would currently be emitted.
bool log_enabled(LogLevel level);

namespace detail {

/// Stream-style builder used by the MDST_LOG macro.
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { log_line(level_, os_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace mdst::support

// Usage: MDST_LOG(kDebug) << "node " << id << " became root";
// The stream expression is only evaluated when the level is enabled.
#define MDST_LOG(level)                                                    \
  if (!::mdst::support::log_enabled(::mdst::support::LogLevel::level)) {   \
  } else                                                                   \
    ::mdst::support::detail::LineBuilder(::mdst::support::LogLevel::level)
