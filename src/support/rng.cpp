#include "support/rng.hpp"

#include <cmath>

namespace mdst::support {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) {
  // Chain SplitMix64 over the coordinates; mixing is bijective per step so
  // distinct tuples give distinct (well-scrambled) seeds.
  std::uint64_t s = base;
  (void)splitmix64(s);
  s ^= a;
  (void)splitmix64(s);
  s ^= b;
  (void)splitmix64(s);
  s ^= c;
  return splitmix64(s);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro256** state must not be all-zero; splitmix64 guarantees that for
  // any seed, but keep the check as a contract.
  MDST_ASSERT(state_[0] || state_[1] || state_[2] || state_[3],
              "rng state must be non-zero");
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MDST_REQUIRE(bound > 0, "next_below(0)");
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  MDST_REQUIRE(lo <= hi, "next_in: empty range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range (lo = INT64_MIN, hi = INT64_MAX).
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high-quality bits -> [0,1) double.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  MDST_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  MDST_REQUIRE(mean > 0.0, "exponential mean must be positive");
  double u = next_double();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() {
  // Derive the child from two fresh draws; parent state advances so repeated
  // splits give independent children.
  const std::uint64_t a = next();
  const std::uint64_t b = next();
  return Rng(derive_seed(a, b));
}

}  // namespace mdst::support
