// Wall-clock stopwatch for coarse harness timing (micro benchmarks use
// google-benchmark instead).
#pragma once

#include <chrono>

namespace mdst::support {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mdst::support
