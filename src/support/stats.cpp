#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace mdst::support {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
  MDST_REQUIRE(count_ > 0, "mean of empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  MDST_REQUIRE(count_ > 0, "min of empty accumulator");
  return min_;
}

double Accumulator::max() const {
  MDST_REQUIRE(count_ > 0, "max of empty accumulator");
  return max_;
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  MDST_REQUIRE(!values_.empty(), "mean of empty samples");
  double total = 0.0;
  for (double v : values_) total += v;
  return total / static_cast<double>(values_.size());
}

double Samples::min() const {
  MDST_REQUIRE(!values_.empty(), "min of empty samples");
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  MDST_REQUIRE(!values_.empty(), "max of empty samples");
  ensure_sorted();
  return values_.back();
}

double Samples::quantile(double q) const {
  MDST_REQUIRE(!values_.empty(), "quantile of empty samples");
  MDST_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  ensure_sorted();
  if (values_.size() == 1) return values_.front();
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

void Histogram::add(std::int64_t value, std::uint64_t weight) {
  buckets_[value] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count(std::int64_t value) const {
  const auto it = buckets_.find(value);
  return it == buckets_.end() ? 0 : it->second;
}

std::int64_t Histogram::min() const {
  MDST_REQUIRE(!buckets_.empty(), "min of empty histogram");
  return buckets_.begin()->first;
}

std::int64_t Histogram::max() const {
  MDST_REQUIRE(!buckets_.empty(), "max of empty histogram");
  return buckets_.rbegin()->first;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [value, count] : buckets_) {
    if (!first) os << ' ';
    os << value << ':' << count;
    first = false;
  }
  return os.str();
}

LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys) {
  MDST_REQUIRE(xs.size() == ys.size(), "fit_linear: size mismatch");
  MDST_REQUIRE(xs.size() >= 2, "fit_linear: need at least 2 points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    // Degenerate: all xs equal; report a flat fit through the mean.
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  } else {
    fit.r_squared = 1.0;
  }
  return fit;
}

}  // namespace mdst::support
