#include "support/resource.hpp"

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace mdst::support {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes already.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux reports kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace mdst::support
