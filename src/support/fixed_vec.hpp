// Fixed-capacity vector over externally owned storage.
//
// The million-node memory audit (docs/perf.md "Memory model") replaces the
// degree-scaled std::vector members of BasicNode with views into shared
// CSR-indexed arenas: one allocation per subsystem for the whole trial
// instead of five small heap blocks per node. FixedVec is the view type —
// a (pointer, size, capacity) triple with the push/erase subset of the
// vector API that the protocol code actually uses. It never allocates and
// never owns: bind() points it at a caller-provided block whose capacity is
// fixed for the container's lifetime (a node's degree never changes, so the
// exact bound is known at construction).
//
// Overflow is a contract violation, not a growth trigger: push_back past
// capacity() means the caller's degree accounting is wrong, and the check
// rides the tiered MDST_ASSERT so the fast tier pays nothing.
#pragma once

#include <cstdint>
#include <cstddef>

#include "support/assert.hpp"

namespace mdst::support {

template <typename T>
class FixedVec {
 public:
  FixedVec() = default;

  /// Point this container at `data[0..capacity)`; size resets to zero. The
  /// storage must stay valid (and fixed) for as long as the binding lives.
  void bind(T* data, std::uint32_t capacity) {
    data_ = data;
    size_ = 0;
    cap_ = capacity;
  }

  void push_back(T value) {
    MDST_ASSERT(size_ < cap_, "FixedVec: push past fixed capacity");
    data_[size_++] = value;
  }

  /// Drop every element; capacity and binding are unchanged.
  void clear() { size_ = 0; }

  /// Remove the element at `pos`, shifting the tail left (keeps order, like
  /// std::vector::erase — the child lists rely on insertion order for
  /// deterministic iteration).
  void erase_at(std::size_t pos) {
    MDST_ASSERT(pos < size_, "FixedVec: erase out of range");
    for (std::size_t i = pos + 1; i < size_; ++i) data_[i - 1] = data_[i];
    --size_;
  }

  T& operator[](std::size_t i) {
    MDST_ASSERT(i < size_, "FixedVec: index out of range");
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    MDST_ASSERT(i < size_, "FixedVec: index out of range");
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T* data() const { return data_; }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }

 private:
  T* data_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = 0;
};

}  // namespace mdst::support
