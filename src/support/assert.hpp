// Contract-checking macros used across the library.
//
// Three flavours, following the Core Guidelines (I.6/E.12) split between
// preconditions, invariants, and unreachable states:
//
//   MDST_REQUIRE(cond, msg)  — precondition on a public API; always checked.
//   MDST_ASSERT(cond, msg)   — internal invariant; always checked (the
//                              library is a research instrument, and silent
//                              state corruption would invalidate results).
//   MDST_UNREACHABLE(msg)    — marks a state machine branch that must never
//                              be taken.
//
// Violations throw mdst::ContractViolation so tests can assert on them and
// long experiment sweeps fail loudly instead of producing garbage tables.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mdst {

/// Thrown when a MDST_REQUIRE/MDST_ASSERT contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace mdst

#define MDST_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::mdst::detail::contract_fail("precondition", #cond, __FILE__,         \
                                    __LINE__, (msg));                        \
    }                                                                        \
  } while (false)

#define MDST_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::mdst::detail::contract_fail("invariant", #cond, __FILE__, __LINE__,  \
                                    (msg));                                  \
    }                                                                        \
  } while (false)

#define MDST_UNREACHABLE(msg)                                                \
  ::mdst::detail::contract_fail("unreachable", "false", __FILE__, __LINE__,  \
                                (msg))
