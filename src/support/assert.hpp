// Contract-checking macros used across the library.
//
// Three flavours, following the Core Guidelines (I.6/E.12) split between
// preconditions, invariants, and unreachable states:
//
//   MDST_REQUIRE(cond, msg)  — precondition on a public API; always checked
//                              in every build tier.
//   MDST_ASSERT(cond, msg)   — internal invariant; checked at the `full`
//                              tier, compiled out at `fast`.
//   MDST_UNREACHABLE(msg)    — marks a state machine branch that must never
//                              be taken; throws at `full`, becomes an
//                              optimizer hint (__builtin_unreachable) at
//                              `fast`.
//
// Check tiers (docs/architecture.md hot-path rule 7): the build-wide
// MDST_CHECK_LEVEL CMake option selects `full` or `fast` and injects the
// MDST_CHECK_FULL compile definition for every target. The protocol state
// machine carries ~50 invariant checks on its per-message path; at `fast`
// they vanish entirely, at `full` each one is a compare plus a predictable
// branch into an *outlined* cold failure function (assert.cpp) — the
// formatting machinery never sits inside a hot handler either way. The
// research-instrument guarantee is preserved operationally: tier-1 CI runs
// a `full`-level job, and check_tier_test.cpp pins that the compiled tier
// matches the advertised one. Conditions must stay side-effect free — at
// `fast` they are not evaluated.
//
// Violations throw mdst::ContractViolation so tests can assert on them and
// long experiment sweeps fail loudly instead of producing garbage tables.
#pragma once

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "support/compiler.hpp"

// Default to the full research-instrument tier when built without the CMake
// toolchain (raw compiler invocations, external embedders).
#ifndef MDST_CHECK_FULL
#define MDST_CHECK_FULL 1
#endif

namespace mdst {

/// True when this build checks internal invariants (MDST_ASSERT /
/// MDST_UNREACHABLE); tests that provoke invariant violations skip at the
/// fast tier.
inline constexpr bool kChecksFull = MDST_CHECK_FULL != 0;

/// Thrown when a MDST_REQUIRE/MDST_ASSERT contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

// Outlined (assert.cpp) so a check site is a compare + branch + call — the
// <sstream> formatting never inlines into hot handlers. Two overloads: the
// common literal-message sites pass the char* straight through; sites that
// compose a diagnostic keep the string path.
[[noreturn]] MDST_NOINLINE void contract_fail(const char* kind,
                                              const char* cond,
                                              const char* file, int line,
                                              const char* msg);
[[noreturn]] MDST_NOINLINE void contract_fail(const char* kind,
                                              const char* cond,
                                              const char* file, int line,
                                              const std::string& msg);

}  // namespace detail
}  // namespace mdst

#define MDST_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::mdst::detail::contract_fail("precondition", #cond, __FILE__,         \
                                    __LINE__, (msg));                        \
    }                                                                        \
  } while (false)

#if MDST_CHECK_FULL

#define MDST_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::mdst::detail::contract_fail("invariant", #cond, __FILE__, __LINE__,  \
                                    (msg));                                  \
    }                                                                        \
  } while (false)

#define MDST_UNREACHABLE(msg)                                                \
  ::mdst::detail::contract_fail("unreachable", "false", __FILE__, __LINE__,  \
                                (msg))

#else  // fast tier: invariants compiled out, unreachables become hints.

// The dead `if (false)` keeps the condition/message expressions compiled
// (no unused-variable warnings, typos still break the build) while the
// optimizer removes them entirely; conditions must be side-effect free.
#define MDST_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (false) {                                                             \
      (void)(cond);                                                          \
      (void)(msg);                                                           \
    }                                                                        \
  } while (false)

#if defined(__GNUC__) || defined(__clang__)
#define MDST_UNREACHABLE(msg) __builtin_unreachable()
#else
#define MDST_UNREACHABLE(msg) ::std::abort()
#endif

#endif  // MDST_CHECK_FULL
