// Portable compiler-attribute macros.
//
// The hot paths outline their cold failure branches (cap exceeded, contract
// violations with formatted messages) into separate functions so the inlined
// fast path stays a compare + predictable branch. `__attribute__((noinline))`
// is GCC/Clang-only; route every such annotation through these macros so the
// codebase keeps one portable spelling.
//
//   MDST_NOINLINE      — keep a cold function out of its caller.
//   MDST_ALWAYS_INLINE — force-inline a tiny hot helper the optimizer keeps
//                        outlining at -O0/-O1 (use sparingly; Release builds
//                        rarely need it).
#pragma once

#if defined(_MSC_VER) && !defined(__clang__)
#define MDST_NOINLINE __declspec(noinline)
#define MDST_ALWAYS_INLINE __forceinline
#elif defined(__GNUC__) || defined(__clang__)
#define MDST_NOINLINE __attribute__((noinline))
#define MDST_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define MDST_NOINLINE
#define MDST_ALWAYS_INLINE inline
#endif
