#include "campaign/checkpoint.hpp"

#include <charconv>
#include <fstream>
#include <ios>
#include <sstream>
#include <string_view>

#include "support/assert.hpp"

namespace mdst::campaign {

namespace {

// FNV-1a over a canonical identity string; stable across platforms, which
// is all a compatibility check needs (this is not a content hash).
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr std::string_view kHeaderMagic = "mdst-checkpoint v1 ";

bool parse_u64(std::string_view token, std::uint64_t& out) {
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

/// Parse one commit line "<index> <csv_bytes> <jsonl_bytes>". False on any
/// deviation — which the loader treats as a torn tail, not corruption.
bool parse_commit_line(const std::string& line, CheckpointState& state) {
  std::istringstream fields{line};
  std::string index_tok, csv_tok, jsonl_tok, extra;
  if (!(fields >> index_tok >> csv_tok >> jsonl_tok)) return false;
  if (fields >> extra) return false;
  std::uint64_t index = 0;
  if (!parse_u64(index_tok, index) || !parse_u64(csv_tok, state.csv_bytes) ||
      !parse_u64(jsonl_tok, state.jsonl_bytes)) {
    return false;
  }
  state.last_index = static_cast<std::size_t>(index);
  return true;
}

std::string hex(std::uint64_t v) {
  char buf[17];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v, 16);
  MDST_ASSERT(ec == std::errc{}, "hex render cannot fail");
  return std::string(buf, ptr);
}

}  // namespace

std::uint64_t checkpoint_fingerprint(const CampaignSpec& spec) {
  // Name + base seed + expanded trial count pin the grid shape; per-trial
  // seeds derive from these, so a matching fingerprint means the surviving
  // trials will reproduce the journaled run's bytes.
  std::string identity = spec.name;
  identity += '|';
  identity += std::to_string(spec.base_seed);
  identity += '|';
  identity += std::to_string(spec.trial_count());
  return fnv1a(identity);
}

bool load_checkpoint(const std::string& path, const CampaignSpec& spec,
                     CheckpointState& out, std::string& error) {
  out = CheckpointState{};
  std::ifstream in(path);
  if (!in.is_open()) return true;  // no journal yet: fresh run
  std::string line;
  if (!std::getline(in, line)) return true;  // empty file: fresh run
  if (line.rfind(kHeaderMagic, 0) != 0) {
    error = "checkpoint '" + path + "': not a checkpoint journal";
    return false;
  }
  std::uint64_t recorded = 0;
  {
    std::istringstream fp{line.substr(kHeaderMagic.size())};
    std::string tok;
    fp >> tok;
    recorded = std::strtoull(tok.c_str(), nullptr, 16);
  }
  if (recorded != checkpoint_fingerprint(spec)) {
    error = "checkpoint '" + path +
            "': journal belongs to a different campaign spec (name, "
            "base_seed, or grid shape changed since the interrupted run)";
    return false;
  }
  // Keep the last intact commit line; a torn tail is expected after a kill.
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    CheckpointState candidate = out;
    if (parse_commit_line(line, candidate)) {
      candidate.resuming = true;
      out = candidate;
    } else {
      break;
    }
  }
  return true;
}

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   const CampaignSpec& spec, bool fresh) {
  out_.open(path, fresh ? std::ios::trunc : std::ios::app);
  MDST_REQUIRE(out_.is_open(),
               "checkpoint: cannot open '" + path + "' for writing");
  if (fresh) {
    out_ << kHeaderMagic << hex(checkpoint_fingerprint(spec)) << '\n';
    out_.flush();
  }
}

void CheckpointWriter::record(std::size_t index, std::uint64_t csv_bytes,
                              std::uint64_t jsonl_bytes) {
  out_ << index << ' ' << csv_bytes << ' ' << jsonl_bytes << '\n';
  out_.flush();
  MDST_REQUIRE(out_.good(), "checkpoint: journal write failed");
}

}  // namespace mdst::campaign
