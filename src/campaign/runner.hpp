// Campaign execution: one trial, or the whole grid on a worker pool.
//
// Determinism contract: a TrialOutcome depends only on the trial's own
// coordinates and the spec's base_seed/engine knobs (the instance derives
// from (base_seed, family, n, repetition), the schedule from
// (base_seed ^ 0x51, n, repetition), and fault draws from
// (base_seed ^ 0xf417, n, repetition) — the same derivation as
// analysis::run_trial). run_campaign executes trials concurrently but
// *commits* outcomes to sinks strictly in grid order, so the streamed
// CSV/JSONL output is byte-identical regardless of worker count. The
// concurrency is safe because each worker builds its own Graph, Rng and
// Simulator; no mutable state is shared beyond the commit slots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "campaign/spec.hpp"
#include "runtime/telemetry.hpp"

namespace mdst::core {
struct RunResult;
}  // namespace mdst::core

namespace mdst::campaign {

class Sink;

/// Flat result of one trial; everything a sink row or aggregate needs.
struct TrialOutcome {
  Trial trial;
  // Instance shape (n_actual can differ from trial.n for snapped families
  // like hypercube/grid).
  std::size_t n_actual = 0;
  std::size_t m = 0;
  // Degrees and the paper's approximation gap vs the best lower bound.
  int k_init = 0;
  int k_final = 0;
  int lower_bound = 0;
  int gap() const { return k_final - lower_bound; }
  // Round structure.
  std::uint32_t rounds = 0;
  std::uint64_t improvements = 0;
  core::StopReason stop_reason = core::StopReason::kNotStopped;
  // Paper cost measures, split by phase (startup protocol vs MDegST).
  std::uint64_t startup_messages = 0;
  std::uint64_t mdst_messages = 0;
  std::uint64_t startup_time = 0;
  std::uint64_t mdst_time = 0;
  std::uint64_t total_messages() const {
    return startup_messages + mdst_messages;
  }
  std::uint64_t total_time() const { return startup_time + mdst_time; }
  // Adversity outcome (docs/faults.md): kOk for fault-free cells; under an
  // active plan the wedge watchdog classifies ok / re_rooted / wedged, and
  // the counters meter the ARQ link layer and crash suppression.
  sim::RunOutcome outcome = sim::RunOutcome::kOk;
  std::uint64_t retransmits = 0;
  std::uint64_t dropped_deliveries = 0;
  // Self-healing layer (docs/faults.md): re-election floods started and the
  // total recovery-plane traffic (Ping/Pong/Recover/RecoverAck). Zero — and
  // byte-stable — whenever `recovery = off`.
  std::uint64_t re_elections = 0;
  std::uint64_t recovery_msgs = 0;
  bool wedged() const { return outcome == sim::RunOutcome::kWedged; }
  // Perf probes (support/resource.hpp): wall time of this trial and the
  // process peak RSS sampled at trial end. Both are inherently
  // nondeterministic, so they are excluded from outcome_fields (the
  // byte-deterministic row contract) and surface only through the opt-in
  // outcome_perf_fields columns (`mdst_lab run --perf-columns`). peak RSS
  // is monotone over the process — meaningful for the large_n doubling
  // ladder where each row's trial is the largest so far.
  std::uint64_t wall_ns = 0;
  std::uint64_t peak_rss_bytes = 0;
  /// Wedge forensics snapshot of the MDegST phase (wedge.captured is true
  /// iff the trial wedged). Not part of outcome_fields — the wedge-dump
  /// sink writes it as a standalone JSON file per wedged trial.
  sim::WedgeReport wedge;
};

/// Run the single trial `trial` of `spec` (used by workers and by
/// `mdst_lab reproduce --cell`).
TrialOutcome run_campaign_trial(const CampaignSpec& spec, const Trial& trial);

/// Replay-side instruments for the observability subcommands: knobs that are
/// deliberately NOT campaign-spec coordinates (they change nothing about the
/// simulated schedule; tracing only records what already happens).
struct TrialInstruments {
  /// SimConfig::trace_cap for the MDegST phase (0 = tracing off).
  std::size_t trace_cap = 0;
};

/// Instrumented single-trial replay (`mdst_lab trace-export` / `rounds` /
/// `reproduce`): same schedule as the plain overload, plus optional tracing
/// and, when `mdst_out` is non-null, the full engine RunResult of the MDegST
/// phase (telemetry ring, wedge report, trace, memory buckets).
TrialOutcome run_campaign_trial(const CampaignSpec& spec, const Trial& trial,
                                const TrialInstruments& instruments,
                                core::RunResult* mdst_out);

struct RunnerConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Fleet-splitting (`mdst_lab run --shard i/k`): this invocation runs
  /// only the trials with `index % shard_count == shard_index` — a
  /// deterministic stripe of the expanded grid, so k machines partition
  /// one campaign with no coordination. Sinks receive the shard-local
  /// rows, still strictly in grid order and still carrying their *global*
  /// grid indices; interleaving the k shards' data rows by stripe
  /// reconstructs the unsharded output byte-for-byte
  /// (tests/campaign/runner_test.cpp pins the union).
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  /// Resumable campaigns (`mdst_lab run --checkpoint=FILE`,
  /// campaign/checkpoint.hpp): when `resume` is set, every trial with
  /// global grid index <= `resume_after` is dropped before execution — it
  /// was committed by the interrupted run and its bytes already live in the
  /// (truncated-to-checkpoint) output files.
  bool resume = false;
  std::size_t resume_after = 0;
  /// Called after an outcome has been committed to every sink, with the
  /// trial's global grid index. Commits happen strictly in grid order, so
  /// indices arrive strictly increasing; the checkpoint journal appends a
  /// record per call. Exceptions propagate and abort the run.
  std::function<void(std::size_t index)> on_commit;
};

/// Execute the grid (or this invocation's shard stripe of it). Outcomes
/// stream to every sink in grid order and are returned in grid order. A
/// failing trial aborts the run with a std::runtime_error naming the trial
/// after all in-flight workers drain.
std::vector<TrialOutcome> run_campaign(const CampaignSpec& spec,
                                       const RunnerConfig& config,
                                       const std::vector<Sink*>& sinks);

}  // namespace mdst::campaign
