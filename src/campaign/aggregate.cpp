#include "campaign/aggregate.hpp"

#include <algorithm>
#include <cmath>

namespace mdst::campaign {

double MetricAggregate::ci95() const {
  if (accumulator.count() < 2) return 0.0;
  return 1.96 * accumulator.stddev() /
         std::sqrt(static_cast<double>(accumulator.count()));
}

void Aggregator::add(const TrialOutcome& outcome) {
  const Trial& t = outcome.trial;
  const char* const startup = analysis::to_string(t.startup);
  const char* const mode = core::to_string(t.mode);
  CellAggregate* cell = nullptr;
  for (CellAggregate& candidate : cells_) {
    if (candidate.family == t.family && candidate.n == t.n &&
        candidate.delay == t.delay.label && candidate.startup == startup &&
        candidate.initial_tree == t.initial_tree && candidate.mode == mode &&
        candidate.faults == t.fault.label) {
      cell = &candidate;
      break;
    }
  }
  if (cell == nullptr) {
    CellAggregate fresh;
    fresh.family = t.family;
    fresh.n = t.n;
    fresh.delay = t.delay.label;
    fresh.startup = startup;
    fresh.initial_tree = t.initial_tree;
    fresh.mode = mode;
    fresh.faults = t.fault.label;
    cells_.push_back(std::move(fresh));
    cell = &cells_.back();
  }
  ++cell->trials;
  // Cost metrics describe the run regardless of how it ended.
  cell->messages.add(static_cast<double>(outcome.total_messages()));
  cell->causal_time.add(static_cast<double>(outcome.total_time()));
  cell->rounds.add(static_cast<double>(outcome.rounds));
  cell->retransmits.add(static_cast<double>(outcome.retransmits));
  if (outcome.wedged()) {
    ++cell->wedged;
    return;  // no valid tree: k_final/gap are sentinels, keep them out
  }
  if (cell->gap.accumulator.count() == 0) {
    cell->gap_min = cell->gap_max = outcome.gap();
    cell->k_final_min = cell->k_final_max = outcome.k_final;
  } else {
    cell->gap_min = std::min(cell->gap_min, outcome.gap());
    cell->gap_max = std::max(cell->gap_max, outcome.gap());
    cell->k_final_min = std::min(cell->k_final_min, outcome.k_final);
    cell->k_final_max = std::max(cell->k_final_max, outcome.k_final);
  }
  cell->gap.add(static_cast<double>(outcome.gap()));
}

support::Table Aggregator::summary_table() const {
  support::Table table({"family", "n", "delay", "startup", "initial_tree",
                        "mode", "faults", "trials", "wedged", "k_final",
                        "gap mean", "gap max", "msgs mean", "msgs ±ci95",
                        "msgs p90", "time mean", "time p90", "rounds mean",
                        "retx mean"});
  for (const CellAggregate& cell : cells_) {
    const bool any_tree = cell.gap.accumulator.count() != 0;
    table.start_row();
    table.cell(cell.family);
    table.cell(static_cast<std::uint64_t>(cell.n));
    table.cell(cell.delay);
    table.cell(cell.startup);
    table.cell(cell.initial_tree);
    table.cell(cell.mode);
    table.cell(cell.faults);
    table.cell(static_cast<std::uint64_t>(cell.trials));
    table.cell(static_cast<std::uint64_t>(cell.wedged));
    if (any_tree) {
      table.cell(cell.k_final_min == cell.k_final_max
                     ? std::to_string(cell.k_final_min)
                     : std::to_string(cell.k_final_min) + ".." +
                           std::to_string(cell.k_final_max));
      table.cell(cell.gap.mean(), 2);
      table.cell(static_cast<std::int64_t>(cell.gap_max));
    } else {
      // Every rep wedged: no valid tree anywhere in the cell.
      table.cell("-");
      table.cell("-");
      table.cell("-");
    }
    table.cell(cell.messages.mean(), 0);
    table.cell(cell.messages.ci95(), 0);
    table.cell(cell.messages.p90(), 0);
    table.cell(cell.causal_time.mean(), 0);
    table.cell(cell.causal_time.p90(), 0);
    table.cell(cell.rounds.mean(), 1);
    table.cell(cell.retransmits.mean(), 1);
  }
  return table;
}

}  // namespace mdst::campaign
