// Streaming output sinks for campaign runs.
//
// Sinks receive outcomes one at a time, in grid order (the runner
// guarantees this regardless of worker count), so file sinks can stream
// without buffering the whole campaign. All row fields are integers or
// canonical spec tokens, so the emitted bytes are a pure function of the
// campaign spec — the determinism suite diffs them across thread counts.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "campaign/runner.hpp"
#include "support/timer.hpp"

namespace mdst::campaign {

class Sink {
 public:
  virtual ~Sink() = default;
  /// Called once before any outcome.
  virtual void begin(const CampaignSpec& spec, std::size_t trial_count) {
    (void)spec;
    (void)trial_count;
  }
  /// Called once per trial, in grid order.
  virtual void add(const TrialOutcome& outcome) = 0;
  /// Called once after every outcome committed (not on abort).
  virtual void finish() {}
};

/// The flat per-trial column set shared by the CSV and JSONL sinks (and the
/// `reproduce` report): name/value pairs in a fixed order, values already
/// rendered as canonical strings. Every field is a pure function of the
/// spec, so the emitted bytes are byte-deterministic.
std::vector<std::pair<std::string, std::string>> outcome_fields(
    const TrialOutcome& outcome);

/// The opt-in perf columns (`mdst_lab run --perf-columns`): wall_ns,
/// peak_rss_bytes and the derived msgs_per_sec. Deliberately separate from
/// outcome_fields — these values vary run to run (allocator, kernel, load),
/// so the default sink output stays byte-deterministic and the nightly
/// large_n table opts in explicitly.
std::vector<std::pair<std::string, std::string>> outcome_perf_fields(
    const TrialOutcome& outcome);

/// RFC-4180-ish CSV: header row, then one row per trial. With
/// `perf_columns`, the nondeterministic perf fields append after the
/// deterministic ones. With `resume` (checkpoint resume appending to a
/// truncated file) the header is suppressed — it is already on disk.
class CsvSink final : public Sink {
 public:
  explicit CsvSink(std::ostream& out, bool perf_columns = false,
                   bool resume = false)
      : out_(out), perf_columns_(perf_columns), resume_(resume) {}
  void begin(const CampaignSpec& spec, std::size_t trial_count) override;
  void add(const TrialOutcome& outcome) override;

 private:
  std::ostream& out_;
  bool perf_columns_;
  bool resume_;
};

/// One JSON object per line, fixed key order; string values escaped.
class JsonlSink final : public Sink {
 public:
  explicit JsonlSink(std::ostream& out, bool perf_columns = false)
      : out_(out), perf_columns_(perf_columns) {}
  void add(const TrialOutcome& outcome) override;

 private:
  std::ostream& out_;
  bool perf_columns_;
};

/// Console progress: a one-line note every `stride` trials (stderr), for
/// long campaigns run interactively. Quiet when stride == 0. Adversity
/// campaigns show a running wedge counter once any trial wedges. Each note
/// carries running throughput (delivered msgs/s and trials/s since begin) —
/// wall-clock derived, so progress lines are NOT byte-deterministic; they
/// go to the console, never into a data sink.
class ProgressSink final : public Sink {
 public:
  ProgressSink(std::ostream& out, std::size_t stride)
      : out_(out), stride_(stride) {}
  void begin(const CampaignSpec& spec, std::size_t trial_count) override;
  void add(const TrialOutcome& outcome) override;
  std::size_t wedged() const { return wedged_; }

 private:
  std::ostream& out_;
  std::size_t stride_;
  std::size_t seen_ = 0;
  std::size_t total_ = 0;
  std::size_t wedged_ = 0;
  std::uint64_t messages_ = 0;
  support::Timer timer_;
};

/// Wedge forensics dumps (`mdst_lab run --wedge-dump=DIR`): one JSON file
/// per wedged trial, named wedge-<grid index>.json, holding the engine's
/// WedgeReport (runtime/telemetry.hpp). Non-wedged trials write nothing.
class WedgeDumpSink final : public Sink {
 public:
  explicit WedgeDumpSink(std::string dir) : dir_(std::move(dir)) {}
  void begin(const CampaignSpec& spec, std::size_t trial_count) override;
  void add(const TrialOutcome& outcome) override;
  std::size_t dumped() const { return dumped_; }

 private:
  std::string dir_;
  std::size_t dumped_ = 0;
};

}  // namespace mdst::campaign
