#include "campaign/runner.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "analysis/experiment.hpp"
#include "campaign/sink.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/bounds.hpp"
#include "runtime/profile.hpp"
#include "support/assert.hpp"
#include "support/resource.hpp"
#include "support/rng.hpp"

namespace mdst::campaign {

namespace {

graph::InitialTreeKind initial_tree_kind(const std::string& token) {
  using graph::InitialTreeKind;
  for (const InitialTreeKind kind :
       {InitialTreeKind::kBfs, InitialTreeKind::kDfs, InitialTreeKind::kRandom,
        InitialTreeKind::kMst, InitialTreeKind::kStarBiased}) {
    if (token == graph::to_string(kind)) return kind;
  }
  MDST_REQUIRE(false, "runner: unknown initial_tree token '" + token +
                          "' (the spec parser admits only startup | bfs | "
                          "dfs | random | mst | star)");
  MDST_UNREACHABLE("unknown initial_tree token");
}

}  // namespace

TrialOutcome run_campaign_trial(const CampaignSpec& spec, const Trial& trial) {
  return run_campaign_trial(spec, trial, TrialInstruments{}, nullptr);
}

TrialOutcome run_campaign_trial(const CampaignSpec& spec, const Trial& trial,
                                const TrialInstruments& instruments,
                                core::RunResult* mdst_out) {
  const std::uint64_t wall_start = support::monotonic_ns();
  analysis::TrialSpec instance_spec;
  instance_spec.family = trial.family;
  instance_spec.n = trial.n;
  instance_spec.base_seed = spec.base_seed;
  instance_spec.repetition = trial.repetition;
  const graph::Graph g = [&] {
    MDST_PROFILE_SCOPE(sim::Section::kTrialSetup);
    return analysis::build_instance(instance_spec);
  }();

  core::Options options;
  options.mode = trial.mode;
  options.max_rounds = spec.max_rounds;
  options.target_degree = spec.target_degree;
  // Engine knob, not a grid coordinate: with `recovery = off` (the default)
  // every cell is byte-identical to a spec without the key.
  options.recovery.enabled = spec.recovery;

  sim::SimConfig sim_config;
  sim_config.delay = trial.delay.model;
  sim_config.seed = support::derive_seed(spec.base_seed ^ 0x51u, trial.n,
                                         trial.repetition);
  if (spec.max_messages != 0) sim_config.max_messages = spec.max_messages;
  sim_config.annotation_cap = spec.annotation_cap;
  sim_config.fifo_links = spec.fifo_links;
  sim_config.start_spread = spec.start_spread;
  // Execution detail, not a grid coordinate: the MDegST phase dispatches to
  // the sharded engine when > 0 (run_mdst), startup phases always use the
  // classic simulator. Row bytes are shard-count-invariant by contract
  // (tests/campaign/spec_test.cpp pins 1-vs-K sink output).
  sim_config.shards = spec.shards;
  // Replay instruments (trace-export/rounds/reproduce): tracing records the
  // schedule without perturbing it, so instrumented replays still reproduce
  // the campaign row bytes exactly.
  sim_config.trace_cap = instruments.trace_cap;
  if (trial.fault.active()) {
    sim_config.faults = trial.fault.plan;
    // Dedicated fault stream: never shares draws with the instance or the
    // schedule, so adding a fault axis leaves every other cell's randomness
    // untouched (docs/faults.md).
    sim_config.faults.seed = support::derive_seed(spec.base_seed ^ 0xf417u,
                                                  trial.n, trial.repetition);
    // ARQ retransmit schedule; kFixed (the default) keeps existing fault
    // cells byte-identical.
    sim_config.faults.arq_backoff = spec.arq_backoff;
  }

  TrialOutcome out;
  out.trial = trial;
  out.n_actual = g.vertex_count();
  out.m = g.edge_count();
  out.lower_bound = core::degree_lower_bound(g);

  const auto finish = [&](const core::RunResult& mdst) {
    out.k_init = mdst.initial_degree;
    out.k_final = mdst.final_degree;
    out.rounds = mdst.rounds;
    out.improvements = mdst.improvements;
    out.stop_reason = mdst.stop_reason;
    out.mdst_messages = mdst.metrics.total_messages();
    out.mdst_time = mdst.metrics.max_causal_depth();
    out.outcome = mdst.outcome;
    out.retransmits = mdst.fault_stats.retransmits;
    out.dropped_deliveries = mdst.fault_stats.dropped_deliveries;
    out.re_elections = mdst.recovery.re_elections;
    out.recovery_msgs = mdst.recovery.recovery_messages;
    out.wedge = mdst.wedge;
  };

  MDST_PROFILE_SCOPE(sim::Section::kTrialRun);
  if (trial.initial_tree == "startup") {
    // Two-phase pipeline: the startup protocol's tree seeds MDegST and its
    // messages/causal time are metered into the startup_* columns.
    analysis::PipelineResult run =
        analysis::run_pipeline(g, trial.startup, options, sim_config);
    finish(run.mdst);
    out.startup_messages = run.startup_messages;
    out.startup_time = run.startup_causal_time;
    if (mdst_out != nullptr) *mdst_out = std::move(run.mdst);
  } else {
    // Initial-tree ablation cell (the E8 axis): a centrally built tree
    // replaces the startup phase. The tree draws from its own stream
    // (base_seed ^ 0xabcdef — the bench-harness derivation), so this axis
    // never shifts the instance, schedule, or fault randomness, and
    // startup costs are metered as zero (the tree is free by fiat, as in
    // the bench's ablation).
    support::Rng tree_rng(support::derive_seed(
        spec.base_seed ^ 0xabcdef, std::hash<std::string>{}(trial.family),
        trial.n, trial.repetition));
    const graph::RootedTree initial =
        graph::build_initial_tree(g, initial_tree_kind(trial.initial_tree),
                                  tree_rng);
    core::RunResult result = core::run_mdst(g, initial, options, sim_config);
    finish(result);
    if (mdst_out != nullptr) *mdst_out = std::move(result);
  }
  out.wall_ns = support::monotonic_ns() - wall_start;
  out.peak_rss_bytes = support::peak_rss_bytes();
  return out;
}

namespace {

std::string describe(const Trial& trial) {
  return "trial " + std::to_string(trial.index) + " (" + trial.family +
         " n=" + std::to_string(trial.n) + " delay=" + trial.delay.label +
         " startup=" + analysis::to_string(trial.startup) +
         " initial_tree=" + trial.initial_tree +
         " mode=" + core::to_string(trial.mode) +
         " faults=" + trial.fault.label +
         " rep=" + std::to_string(trial.repetition) + ")";
}

void commit(const TrialOutcome& outcome, const std::vector<Sink*>& sinks) {
  for (Sink* sink : sinks) sink->add(outcome);
}

}  // namespace

std::vector<TrialOutcome> run_campaign(const CampaignSpec& spec,
                                       const RunnerConfig& config,
                                       const std::vector<Sink*>& sinks) {
  MDST_REQUIRE(config.shard_count >= 1, "runner: shard_count must be >= 1");
  MDST_REQUIRE(config.shard_index < config.shard_count,
               "runner: shard_index must be < shard_count");
  std::vector<Trial> trials = expand(spec);
  if (config.shard_count > 1) {
    // Deterministic striping: trial.index keeps its global grid value, so
    // shard rows interleave back into the unsharded output.
    std::vector<Trial> stripe;
    stripe.reserve(trials.size() / config.shard_count + 1);
    for (Trial& trial : trials) {
      if (trial.index % config.shard_count == config.shard_index) {
        stripe.push_back(std::move(trial));
      }
    }
    trials = std::move(stripe);
  }
  if (config.resume) {
    // Checkpoint resume: trials at or before the journal's last committed
    // index already have their bytes in the truncated output files; the
    // survivors re-run with unchanged per-trial seeds, so the concatenated
    // output is byte-identical to an uninterrupted run.
    std::vector<Trial> remaining;
    remaining.reserve(trials.size());
    for (Trial& trial : trials) {
      if (trial.index > config.resume_after) {
        remaining.push_back(std::move(trial));
      }
    }
    trials = std::move(remaining);
  }
  for (Sink* sink : sinks) sink->begin(spec, trials.size());
  std::vector<TrialOutcome> outcomes;
  outcomes.reserve(trials.size());

  unsigned threads =
      config.threads != 0 ? config.threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (trials.size() < threads) threads = static_cast<unsigned>(trials.size());

  if (threads <= 1) {
    for (const Trial& trial : trials) {
      try {
        outcomes.push_back(run_campaign_trial(spec, trial));
      } catch (const std::exception& e) {
        throw std::runtime_error("campaign '" + spec.name + "' failed at " +
                                 describe(trial) + ": " + e.what());
      }
      commit(outcomes.back(), sinks);
      if (config.on_commit) config.on_commit(trial.index);
    }
    for (Sink* sink : sinks) sink->finish();
    return outcomes;
  }

  // Workers claim trial indices from a shared counter and park results in
  // per-trial slots; this (committer) thread drains the slots strictly in
  // index order, so sink output cannot depend on completion order.
  std::vector<std::optional<TrialOutcome>> slots(trials.size());
  std::vector<std::string> failures(trials.size());
  std::atomic<std::size_t> next{0};
  // Raised on the first failure so workers stop claiming fresh trials —
  // a failing 10k-trial campaign must not run to the end before reporting.
  // Committed indices before the failed one are unaffected (they are
  // already done or in flight), so the "drain in-flight, then throw"
  // behavior below stays deterministic enough for diagnosis.
  std::atomic<bool> abort_requested{false};
  std::mutex mutex;
  std::condition_variable slot_ready;

  const auto worker = [&] {
    for (;;) {
      if (abort_requested.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) return;
      std::optional<TrialOutcome> outcome;
      std::string failure;
      try {
        outcome = run_campaign_trial(spec, trials[i]);
      } catch (const std::exception& e) {
        failure = e.what();
      } catch (...) {
        failure = "unknown exception";
      }
      if (!failure.empty()) {
        abort_requested.store(true, std::memory_order_relaxed);
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        slots[i] = std::move(outcome);
        failures[i] = std::move(failure);
      }
      slot_ready.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);

  std::string first_failure;
  // Threads must be joined before any exception leaves this function
  // (destroying a joinable std::thread calls std::terminate), so a sink
  // throwing mid-commit is parked and rethrown after the drain.
  std::exception_ptr commit_error;
  try {
    std::unique_lock<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < trials.size(); ++i) {
      slot_ready.wait(lock, [&] { return slots[i] || !failures[i].empty(); });
      if (!failures[i].empty()) {
        first_failure = describe(trials[i]) + ": " + failures[i];
        break;
      }
      TrialOutcome outcome = std::move(*slots[i]);
      slots[i].reset();
      lock.unlock();
      commit(outcome, sinks);
      if (config.on_commit) config.on_commit(outcome.trial.index);
      outcomes.push_back(std::move(outcome));
      lock.lock();
    }
  } catch (...) {
    commit_error = std::current_exception();
    abort_requested.store(true, std::memory_order_relaxed);
  }
  for (std::thread& t : pool) t.join();
  if (commit_error) std::rethrow_exception(commit_error);
  if (!first_failure.empty()) {
    throw std::runtime_error("campaign '" + spec.name +
                             "' failed at " + first_failure);
  }
  for (Sink* sink : sinks) sink->finish();
  return outcomes;
}

}  // namespace mdst::campaign
