// Streaming per-cell aggregation of campaign outcomes.
//
// A *cell* is one point of the sweep grid without the repetition axis:
// (family, n, delay, startup, initial_tree, mode, faults). Repetitions land
// in the same
// cell, so the summary reports mean / 95% CI / percentiles over reps — the
// numbers the paper-style tables quote. The aggregator is itself a Sink, so
// it rides the runner's deterministic commit order and its table row order
// is the grid order. Wedged trials (docs/faults.md) count toward the cell's
// wedge rate but contribute no tree metrics — a wedged run has no valid
// final tree, so its k_final/gap would poison the means.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/sink.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace mdst::campaign {

/// Mean/CI from a Welford accumulator plus exact percentiles from retained
/// samples (rep counts are small; retention is cheap).
struct MetricAggregate {
  support::Accumulator accumulator;
  support::Samples samples;
  void add(double value) {
    accumulator.add(value);
    samples.add(value);
  }
  double mean() const { return accumulator.mean(); }
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95() const;
  double p90() const { return samples.quantile(0.9); }
};

struct CellAggregate {
  // Coordinates (canonical spec tokens).
  std::string family;
  std::size_t n = 0;
  std::string delay;
  std::string startup;
  std::string initial_tree;
  std::string mode;
  std::string faults;
  // Aggregated metrics over repetitions.
  std::size_t trials = 0;
  /// Trials classified kWedged; excluded from the tree metrics below.
  std::size_t wedged = 0;
  int gap_min = 0;
  int gap_max = 0;
  int k_final_min = 0;
  int k_final_max = 0;
  MetricAggregate gap;
  MetricAggregate messages;
  MetricAggregate causal_time;
  MetricAggregate rounds;
  MetricAggregate retransmits;
};

class Aggregator final : public Sink {
 public:
  void add(const TrialOutcome& outcome) override;

  /// Cells in first-seen order (= grid order under the runner's contract).
  const std::vector<CellAggregate>& cells() const { return cells_; }

  /// Paper-style console summary (one row per cell).
  support::Table summary_table() const;

 private:
  std::vector<CellAggregate> cells_;
};

}  // namespace mdst::campaign
