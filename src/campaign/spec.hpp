// Declarative scenario-campaign specs.
//
// A campaign describes a sweep grid — graph families × sizes × delay models
// × startup protocols × engine modes × repetitions — in a small line-oriented
// `key = value` text format (see docs/campaign.md):
//
//     name      = quickstart
//     base_seed = 0x5eed
//     families  = gnp_sparse, geometric
//     sizes     = 32, 64..256        # a..b expands by doubling: 64 128 256
//     delays    = unit, uniform(1,10), heavy_tail(0.2)
//     startups  = flood_st, ghs_mst
//     modes     = single, concurrent
//     reps      = 5
//
// The spec expands into a flat list of Trials in a fixed nested-loop order
// (family → n → delay → startup → initial_tree → mode → faults → rep), so a
// trial's `index` is a stable coordinate: `mdst_lab reproduce --cell=<index>`
// re-runs exactly that trial. Randomness follows the experiment-harness
// contract: the instance derives from (base_seed, family, n, repetition),
// the schedule from (base_seed ^ 0x51, n, repetition), and fault draws from
// (base_seed ^ 0xf417, n, repetition) on their own stream — so a trial is
// reproducible in isolation, independent of which other cells the grid
// contains or which worker thread ran it, and adding a fault axis never
// shifts the seeds of existing axes.
//
// Adversity axis (`faults`, docs/faults.md) and channel knobs:
//
//     faults      = none, crash(8,1), loss(0.05), churn(6,2)
//     fifo_links  = false          # disable per-link FIFO ordering
//     start_spread = 16            # stagger spontaneous starts
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/pipeline.hpp"
#include "mdst/options.hpp"
#include "runtime/delay.hpp"
#include "runtime/fault.hpp"

namespace mdst::campaign {

/// A delay model together with its canonical spec-text spelling, so output
/// rows round-trip back into specs (and stay byte-stable across runs).
struct DelaySpec {
  sim::DelayModel model;
  std::string label = "unit";
};

/// One value of the `faults` axis: a fault-plan template (seedless — the
/// runner derives the per-trial fault stream) plus its canonical spec
/// spelling.
struct FaultSpec {
  sim::FaultPlan plan;
  std::string label = "none";
  bool active() const { return plan.active(); }
};

struct CampaignSpec {
  std::string name = "campaign";
  std::uint64_t base_seed = 0x5eed;
  std::vector<std::string> families;          // required, non-empty
  std::vector<std::size_t> sizes;             // required, non-empty
  std::vector<DelaySpec> delays;              // default {unit}
  std::vector<analysis::StartupProtocol> startups;  // default {flood_st}
  /// Initial-tree axis (`initial_trees = startup, star, dfs, ...`): how the
  /// MDegST phase's starting tree is built. The default token "startup"
  /// keeps the two-phase pipeline (the startup protocol's tree seeds the
  /// improvement phase and its messages are metered). Every other token is
  /// a graph::InitialTreeKind name — bfs | dfs | random | mst | star — and
  /// replaces the startup phase with a centrally built tree drawn from the
  /// dedicated tree stream (base_seed ^ 0xabcdef, same derivation as the
  /// bench harness), with startup costs metered as zero. This is the E8
  /// initial-tree ablation as a campaign axis.
  std::vector<std::string> initial_trees{"startup"};
  std::vector<core::EngineMode> modes;        // default {single}
  std::vector<FaultSpec> faults{FaultSpec{}};  // default {none}
  std::uint64_t reps = 5;
  // Engine/simulator knobs applied to every cell.
  std::size_t max_rounds = 0;
  int target_degree = 0;
  std::uint64_t max_messages = 0;  // 0 = simulator default cap
  /// Bounded-metrics mode (`annotation_cap = N`): cap the per-run
  /// annotation ring at N entries (0 = unbounded, the default). Campaign
  /// rows consume nothing from annotations, so capping never changes row
  /// bytes — it bounds the metrics subsystem's memory for large_n sweeps
  /// (docs/perf.md "Memory model").
  std::size_t annotation_cap = 0;
  /// Per-link FIFO ordering (`fifo_links = true|false`); off for
  /// reordering-robustness sweeps.
  bool fifo_links = true;
  /// Spontaneous-start stagger window (`start_spread = N`); 0 = all nodes
  /// start at time 0.
  std::uint64_t start_spread = 0;
  /// Intra-trial shard workers for the MDegST phase (`shards = K`); 0 =
  /// the classic sequential engine. An engine knob, not a grid axis: the
  /// sharded engine's outputs are byte-identical for every K >= 1, so a
  /// shard count is an execution detail of the trial, never a row
  /// coordinate — campaign CSV/JSONL bytes must not depend on it.
  std::uint32_t shards = 0;
  /// Self-healing layer (`recovery = on|off`, default off): heartbeat
  /// failure detection + re-election recovery in the MDegST phase
  /// (mdst/recovery.hpp). Off keeps every cell byte-identical to a spec
  /// without the key.
  bool recovery = false;
  /// ARQ retransmit schedule under loss/churn plans (`arq_backoff =
  /// fixed|exp`, default fixed): kExp doubles the retransmit gap with
  /// jitter (runtime/fault.hpp). Fixed keeps existing fault cells
  /// byte-identical.
  sim::ArqBackoff arq_backoff = sim::ArqBackoff::kFixed;

  std::size_t trial_count() const {
    return families.size() * sizes.size() * delays.size() * startups.size() *
           initial_trees.size() * modes.size() * faults.size() *
           static_cast<std::size_t>(reps);
  }
};

/// One concrete grid cell: full coordinates plus its stable index.
struct Trial {
  std::size_t index = 0;
  std::string family;
  std::size_t n = 0;
  DelaySpec delay;
  analysis::StartupProtocol startup = analysis::StartupProtocol::kFloodSt;
  /// "startup" (two-phase pipeline) or a graph::InitialTreeKind name.
  std::string initial_tree = "startup";
  core::EngineMode mode = core::EngineMode::kSingleImprovement;
  FaultSpec fault;
  std::uint64_t repetition = 0;
};

struct ParseResult {
  bool ok = false;
  CampaignSpec spec;
  /// On failure: "line N: <diagnostic>".
  std::string error;
};

/// Parse and validate spec text. Every rejection names the offending line.
ParseResult parse_spec(std::string_view text);

/// Read `path` and parse it; I/O failures report as `ok = false` too.
ParseResult load_spec(const std::string& path);

/// Expand the grid in deterministic nested-loop order.
std::vector<Trial> expand(const CampaignSpec& spec);

/// The single trial at `index` without materializing the grid.
/// Precondition: index < spec.trial_count().
Trial trial_at(const CampaignSpec& spec, std::size_t index);

/// Parse one delay token ("unit" | "uniform(lo,hi)" | "heavy_tail(p)").
/// Returns false and sets `error` on bad syntax or parameters.
/// Spec tokens for startups and modes are the existing
/// `analysis::to_string(StartupProtocol)` / `core::to_string(EngineMode)`
/// names, so output rows round-trip into specs.
bool parse_delay(std::string_view token, DelaySpec& out, std::string& error);

/// Parse one fault token ("none" | "crash(r,k)" | "loss(p)" |
/// "churn(up,down)"). Returns false and sets `error` on bad syntax or
/// parameters. Labels are canonical: they round-trip back into specs.
bool parse_fault(std::string_view token, FaultSpec& out, std::string& error);

}  // namespace mdst::campaign
