#include "campaign/spec.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"

namespace mdst::campaign {
namespace {

// ---------------------------------------------------------------- scanners --

bool parse_u64(std::string_view token, std::uint64_t& out) {
  token = support::trim(token);
  if (token.empty()) return false;
  int base = 10;
  if (support::starts_with(token, "0x") || support::starts_with(token, "0X")) {
    token.remove_prefix(2);
    base = 16;
    if (token.empty()) return false;
  }
  const char* end = token.data() + token.size();
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(token.data(), end, value, base);
  if (ec != std::errc{} || ptr != end) return false;
  out = value;
  return true;
}

bool parse_double(std::string_view token, double& out) {
  token = support::trim(token);
  if (token.empty()) return false;
  // std::from_chars<double> is spotty across libstdc++ versions; strtod via
  // a bounded copy keeps this portable.
  const std::string copy(token);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  out = value;
  return true;
}

/// "a(b)" -> true with name/args split; "a" -> true with empty args.
bool split_call(std::string_view token, std::string_view& callee,
                std::string_view& arguments) {
  const std::size_t open = token.find('(');
  if (open == std::string_view::npos) {
    callee = support::trim(token);
    arguments = {};
    return true;
  }
  if (token.back() != ')') return false;
  callee = support::trim(token.substr(0, open));
  arguments = token.substr(open + 1, token.size() - open - 2);
  return true;
}

std::string format_probability(double p) {
  // Shortest representation that round-trips the exact value (0.2 -> "0.2"),
  // so a label pasted back into a spec reproduces the same distribution.
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << p;
    if (std::strtod(os.str().c_str(), nullptr) == p) return os.str();
  }
  MDST_UNREACHABLE("max_digits10 must round-trip a double");
}

bool parse_startup(std::string_view token, analysis::StartupProtocol& out) {
  using analysis::StartupProtocol;
  for (const StartupProtocol protocol :
       {StartupProtocol::kFloodSt, StartupProtocol::kDfsSt,
        StartupProtocol::kGhsMst, StartupProtocol::kLeaderElect}) {
    if (token == analysis::to_string(protocol)) {
      out = protocol;
      return true;
    }
  }
  return false;
}

/// Initial-tree axis tokens: "startup" plus the InitialTreeKind names.
bool valid_initial_tree(std::string_view token) {
  if (token == "startup") return true;
  using graph::InitialTreeKind;
  for (const InitialTreeKind kind :
       {InitialTreeKind::kBfs, InitialTreeKind::kDfs, InitialTreeKind::kRandom,
        InitialTreeKind::kMst, InitialTreeKind::kStarBiased}) {
    if (token == graph::to_string(kind)) return true;
  }
  return false;
}

bool parse_mode(std::string_view token, core::EngineMode& out) {
  using core::EngineMode;
  for (const EngineMode mode :
       {EngineMode::kSingleImprovement, EngineMode::kConcurrent,
        EngineMode::kStrictLot}) {
    if (token == core::to_string(mode)) {
      out = mode;
      return true;
    }
  }
  return false;
}

/// Size entries: "N" or "A..B" (A, 2A, 4A, ... capped at B; B itself is
/// included exactly when it lies on the doubling ladder).
bool parse_sizes(std::string_view token, std::vector<std::size_t>& out,
                 std::string& error) {
  const std::size_t dots = token.find("..");
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  if (dots == std::string_view::npos) {
    if (!parse_u64(token, lo)) {
      error = "bad size '" + std::string(token) + "' (want N or A..B)";
      return false;
    }
    hi = lo;
  } else if (!parse_u64(token.substr(0, dots), lo) ||
             !parse_u64(token.substr(dots + 2), hi) || lo > hi) {
    error = "bad size range '" + std::string(token) + "' (want A..B, A <= B)";
    return false;
  }
  if (lo < 4) {
    error = "size " + std::to_string(lo) + " too small (minimum 4)";
    return false;
  }
  if (hi > 1'048'576) {
    // 2^20 — the large_n memory campaigns' ceiling (docs/perf.md).
    error = "size " + std::to_string(hi) + " too large (maximum 1048576)";
    return false;
  }
  for (std::uint64_t n = lo; n <= hi; n *= 2) {
    out.push_back(static_cast<std::size_t>(n));
  }
  return true;
}

/// Split on commas outside parentheses — axis values like "uniform(1,10)"
/// or "crash(8,1)" contain commas of their own.
std::vector<std::string> split_top_level(std::string_view value) {
  int depth = 0;
  std::string token;
  std::vector<std::string> tokens;
  for (const char c : value) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      tokens.push_back(token);
      token.clear();
    } else {
      token += c;
    }
  }
  tokens.push_back(token);
  return tokens;
}

struct LineContext {
  int number = 0;
  std::string error;  // first failure wins
  bool fail(const std::string& message) {
    if (error.empty()) {
      error = "line " + std::to_string(number) + ": " + message;
    }
    return false;
  }
};

}  // namespace

bool parse_delay(std::string_view token, DelaySpec& out, std::string& error) {
  std::string_view callee;
  std::string_view arguments;
  if (!split_call(support::trim(token), callee, arguments)) {
    error = "bad delay '" + std::string(token) + "' (unbalanced parentheses)";
    return false;
  }
  if (callee == "unit") {
    if (!support::trim(arguments).empty()) {
      error = "delay 'unit' takes no parameters";
      return false;
    }
    out.model = sim::DelayModel::unit();
    out.label = "unit";
    return true;
  }
  if (callee == "uniform") {
    const std::vector<std::string> parts = support::split(arguments, ',');
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    if (parts.size() != 2 || !parse_u64(parts[0], lo) ||
        !parse_u64(parts[1], hi) || lo < 1 || lo > hi) {
      error = "bad delay '" + std::string(token) +
              "' (want uniform(lo,hi) with 1 <= lo <= hi)";
      return false;
    }
    out.model = sim::DelayModel::uniform(static_cast<sim::Time>(lo),
                                         static_cast<sim::Time>(hi));
    out.label = "uniform(" + std::to_string(lo) + "," + std::to_string(hi) + ")";
    return true;
  }
  if (callee == "heavy_tail") {
    double p = 0.0;
    if (!parse_double(arguments, p) || !(p > 0.0) || p > 1.0) {
      error = "bad delay '" + std::string(token) +
              "' (want heavy_tail(p) with p in (0,1])";
      return false;
    }
    out.model = sim::DelayModel::heavy_tail(p);
    out.label = "heavy_tail(" + format_probability(p) + ")";
    return true;
  }
  error = "unknown delay model '" + std::string(callee) +
          "' (unit | uniform(lo,hi) | heavy_tail(p))";
  return false;
}

bool parse_fault(std::string_view token, FaultSpec& out, std::string& error) {
  std::string_view callee;
  std::string_view arguments;
  if (!split_call(support::trim(token), callee, arguments)) {
    error = "bad fault '" + std::string(token) + "' (unbalanced parentheses)";
    return false;
  }
  out = FaultSpec{};
  if (callee == "none") {
    if (!support::trim(arguments).empty()) {
      error = "fault 'none' takes no parameters";
      return false;
    }
    return true;
  }
  if (callee == "crash") {
    const std::vector<std::string> parts = support::split(arguments, ',');
    std::uint64_t time = 0;
    std::uint64_t count = 0;
    if (parts.size() != 2 || !parse_u64(parts[0], time) ||
        !parse_u64(parts[1], count) || count < 1) {
      error = "bad fault '" + std::string(token) +
              "' (want crash(r,k) with k >= 1 nodes crashing at time r)";
      return false;
    }
    out.plan.crash_time = static_cast<sim::Time>(time);
    out.plan.crash_count = static_cast<std::uint32_t>(count);
    out.label =
        "crash(" + std::to_string(time) + "," + std::to_string(count) + ")";
    return true;
  }
  if (callee == "loss") {
    double p = 0.0;
    if (!parse_double(arguments, p) || !(p > 0.0) || p >= 1.0) {
      error = "bad fault '" + std::string(token) +
              "' (want loss(p) with p in (0,1))";
      return false;
    }
    out.plan.loss = p;
    out.label = "loss(" + format_probability(p) + ")";
    return true;
  }
  if (callee == "corrupt") {
    const std::vector<std::string> parts = support::split(arguments, ',');
    std::uint64_t time = 0;
    std::uint64_t count = 0;
    if (parts.size() != 2 || !parse_u64(parts[0], time) ||
        !parse_u64(parts[1], count) || count < 1) {
      error = "bad fault '" + std::string(token) +
              "' (want corrupt(r,k) with k >= 1 nodes scrambled at time r)";
      return false;
    }
    out.plan.corrupt_time = static_cast<sim::Time>(time);
    out.plan.corrupt_count = static_cast<std::uint32_t>(count);
    out.label =
        "corrupt(" + std::to_string(time) + "," + std::to_string(count) + ")";
    return true;
  }
  if (callee == "churn") {
    const std::vector<std::string> parts = support::split(arguments, ',');
    std::uint64_t up = 0;
    std::uint64_t down = 0;
    if (parts.size() != 2 || !parse_u64(parts[0], up) ||
        !parse_u64(parts[1], down) || up < 1 || down < 1) {
      error = "bad fault '" + std::string(token) +
              "' (want churn(up,down) with up >= 1, down >= 1)";
      return false;
    }
    out.plan.churn_up = static_cast<sim::Time>(up);
    out.plan.churn_down = static_cast<sim::Time>(down);
    out.label = "churn(" + std::to_string(up) + "," + std::to_string(down) + ")";
    return true;
  }
  error = "unknown fault '" + std::string(callee) +
          "' (none | crash(r,k) | loss(p) | churn(up,down) | corrupt(r,k))";
  return false;
}

ParseResult parse_spec(std::string_view text) {
  ParseResult result;
  CampaignSpec& spec = result.spec;
  spec.delays.clear();
  spec.startups.clear();
  spec.modes.clear();
  spec.faults.clear();

  LineContext at;
  std::vector<std::string> seen_keys;
  std::istringstream stream{std::string(text)};
  std::string raw_line;
  while (std::getline(stream, raw_line)) {
    ++at.number;
    std::string_view line = raw_line;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = support::trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      at.fail("expected 'key = value', got '" + std::string(line) + "'");
      break;
    }
    const std::string key{support::trim(line.substr(0, eq))};
    const std::string_view value = support::trim(line.substr(eq + 1));
    if (key.empty()) {
      at.fail("missing key before '='");
      break;
    }
    bool duplicate = false;
    for (const std::string& seen : seen_keys) duplicate |= (seen == key);
    if (duplicate) {
      at.fail("duplicate key '" + key + "'");
      break;
    }
    seen_keys.push_back(key);
    if (value.empty()) {
      at.fail("key '" + key + "' has an empty value");
      break;
    }

    std::string item_error;
    if (key == "name") {
      spec.name = std::string(value);
    } else if (key == "base_seed") {
      if (!parse_u64(value, spec.base_seed)) {
        at.fail("bad base_seed '" + std::string(value) +
                "' (decimal or 0x hex)");
        break;
      }
    } else if (key == "families") {
      for (const std::string& token : support::split(value, ',')) {
        const std::string family{support::trim(token)};
        bool known = false;
        for (const graph::FamilySpec& known_family :
             graph::standard_families()) {
          known |= (known_family.name == family);
        }
        if (!known) {
          std::string names;
          for (const graph::FamilySpec& known_family :
               graph::standard_families()) {
            names += (names.empty() ? "" : " ") + known_family.name;
          }
          at.fail("unknown family '" + family + "' (known: " + names + ")");
          break;
        }
        spec.families.push_back(family);
      }
    } else if (key == "sizes") {
      for (const std::string& token : support::split(value, ',')) {
        if (!parse_sizes(support::trim(token), spec.sizes, item_error)) {
          at.fail(item_error);
          break;
        }
      }
    } else if (key == "delays") {
      for (const std::string& delay_token : split_top_level(value)) {
        DelaySpec delay;
        if (!parse_delay(support::trim(delay_token), delay, item_error)) {
          at.fail(item_error);
          break;
        }
        spec.delays.push_back(delay);
      }
    } else if (key == "faults") {
      for (const std::string& fault_token : split_top_level(value)) {
        FaultSpec fault;
        if (!parse_fault(support::trim(fault_token), fault, item_error)) {
          at.fail(item_error);
          break;
        }
        spec.faults.push_back(fault);
      }
    } else if (key == "startups") {
      for (const std::string& token : support::split(value, ',')) {
        analysis::StartupProtocol protocol;
        if (!parse_startup(support::trim(token), protocol)) {
          at.fail("unknown startup '" + std::string(support::trim(token)) +
                  "' (flood_st | dfs_st | ghs_mst | leader_elect)");
          break;
        }
        spec.startups.push_back(protocol);
      }
    } else if (key == "initial_trees") {
      spec.initial_trees.clear();
      for (const std::string& token : support::split(value, ',')) {
        const std::string tree{support::trim(token)};
        if (!valid_initial_tree(tree)) {
          at.fail("unknown initial_tree '" + tree +
                  "' (startup | bfs | dfs | random | mst | star)");
          break;
        }
        spec.initial_trees.push_back(tree);
      }
    } else if (key == "modes") {
      for (const std::string& token : support::split(value, ',')) {
        core::EngineMode mode;
        if (!parse_mode(support::trim(token), mode)) {
          at.fail("unknown mode '" + std::string(support::trim(token)) +
                  "' (single | concurrent | strict_lot)");
          break;
        }
        spec.modes.push_back(mode);
      }
    } else if (key == "reps") {
      if (!parse_u64(value, spec.reps) || spec.reps == 0) {
        at.fail("bad reps '" + std::string(value) + "' (want an integer >= 1)");
        break;
      }
    } else if (key == "max_rounds") {
      std::uint64_t rounds = 0;
      if (!parse_u64(value, rounds)) {
        at.fail("bad max_rounds '" + std::string(value) + "'");
        break;
      }
      spec.max_rounds = static_cast<std::size_t>(rounds);
    } else if (key == "target_degree") {
      std::uint64_t degree = 0;
      if (!parse_u64(value, degree) || degree > 1'000'000) {
        at.fail("bad target_degree '" + std::string(value) + "'");
        break;
      }
      spec.target_degree = static_cast<int>(degree);
    } else if (key == "max_messages") {
      if (!parse_u64(value, spec.max_messages)) {
        at.fail("bad max_messages '" + std::string(value) + "'");
        break;
      }
    } else if (key == "annotation_cap") {
      std::uint64_t cap = 0;
      if (!parse_u64(value, cap)) {
        at.fail("bad annotation_cap '" + std::string(value) +
                "' (want an entry count; 0 = unbounded)");
        break;
      }
      spec.annotation_cap = static_cast<std::size_t>(cap);
    } else if (key == "fifo_links") {
      if (value == "true") {
        spec.fifo_links = true;
      } else if (value == "false") {
        spec.fifo_links = false;
      } else {
        at.fail("bad fifo_links '" + std::string(value) +
                "' (true | false)");
        break;
      }
    } else if (key == "start_spread") {
      if (!parse_u64(value, spec.start_spread)) {
        at.fail("bad start_spread '" + std::string(value) +
                "' (want a tick count >= 0)");
        break;
      }
    } else if (key == "shards") {
      std::uint64_t shards = 0;
      if (!parse_u64(value, shards) || shards > 64) {
        at.fail("bad shards '" + std::string(value) +
                "' (want an integer 0..64; 0 = classic engine)");
        break;
      }
      spec.shards = static_cast<std::uint32_t>(shards);
    } else if (key == "recovery") {
      if (value == "on") {
        spec.recovery = true;
      } else if (value == "off") {
        spec.recovery = false;
      } else {
        at.fail("bad recovery '" + std::string(value) + "' (on | off)");
        break;
      }
    } else if (key == "arq_backoff") {
      if (value == "fixed") {
        spec.arq_backoff = sim::ArqBackoff::kFixed;
      } else if (value == "exp") {
        spec.arq_backoff = sim::ArqBackoff::kExp;
      } else {
        at.fail("bad arq_backoff '" + std::string(value) +
                "' (fixed | exp)");
        break;
      }
    } else {
      at.fail("unknown key '" + key +
              "' (name base_seed families sizes delays startups initial_trees "
              "modes faults reps max_rounds target_degree max_messages "
              "annotation_cap fifo_links start_spread shards recovery "
              "arq_backoff)");
      break;
    }
    if (!at.error.empty()) break;
  }

  if (at.error.empty()) {
    if (spec.families.empty()) at.fail("missing required key 'families'");
  }
  if (at.error.empty()) {
    if (spec.sizes.empty()) at.fail("missing required key 'sizes'");
  }
  if (!at.error.empty()) {
    result.error = at.error;
    return result;
  }

  if (spec.delays.empty()) spec.delays.push_back({sim::DelayModel::unit(), "unit"});
  if (spec.startups.empty()) {
    spec.startups.push_back(analysis::StartupProtocol::kFloodSt);
  }
  if (spec.modes.empty()) {
    spec.modes.push_back(core::EngineMode::kSingleImprovement);
  }
  if (spec.faults.empty()) spec.faults.push_back(FaultSpec{});
  result.ok = true;
  return result;
}

ParseResult load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult result;
    result.error = "cannot open spec file '" + path + "'";
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ParseResult result = parse_spec(buffer.str());
  if (!result.ok) result.error = path + ": " + result.error;
  return result;
}

std::vector<Trial> expand(const CampaignSpec& spec) {
  std::vector<Trial> trials;
  trials.reserve(spec.trial_count());
  std::size_t index = 0;
  for (const std::string& family : spec.families) {
    for (const std::size_t n : spec.sizes) {
      for (const DelaySpec& delay : spec.delays) {
        for (const analysis::StartupProtocol startup : spec.startups) {
          for (const std::string& initial_tree : spec.initial_trees) {
            for (const core::EngineMode mode : spec.modes) {
              for (const FaultSpec& fault : spec.faults) {
                for (std::uint64_t rep = 0; rep < spec.reps; ++rep) {
                  trials.push_back(Trial{index++, family, n, delay, startup,
                                         initial_tree, mode, fault, rep});
                }
              }
            }
          }
        }
      }
    }
  }
  return trials;
}

Trial trial_at(const CampaignSpec& spec, std::size_t index) {
  MDST_REQUIRE(index < spec.trial_count(),
               "trial index " + std::to_string(index) +
                   " out of range (grid has " +
                   std::to_string(spec.trial_count()) + " trials)");
  Trial trial;
  trial.index = index;
  // Invert the nested-loop order: rep is the innermost axis.
  std::size_t rest = index;
  const auto take = [&rest](std::size_t extent) {
    const std::size_t coordinate = rest % extent;
    rest /= extent;
    return coordinate;
  };
  trial.repetition = take(static_cast<std::size_t>(spec.reps));
  trial.fault = spec.faults[take(spec.faults.size())];
  trial.mode = spec.modes[take(spec.modes.size())];
  trial.initial_tree = spec.initial_trees[take(spec.initial_trees.size())];
  trial.startup = spec.startups[take(spec.startups.size())];
  trial.delay = spec.delays[take(spec.delays.size())];
  trial.n = spec.sizes[take(spec.sizes.size())];
  trial.family = spec.families[take(spec.families.size())];
  return trial;
}

}  // namespace mdst::campaign
