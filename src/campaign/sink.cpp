#include "campaign/sink.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <system_error>
#include <utility>
#include <vector>

#include "runtime/telemetry.hpp"
#include "support/assert.hpp"

namespace mdst::campaign {
namespace {

bool is_numeric_field(const std::string& value) {
  if (value.empty()) return false;
  for (const char c : value) {
    if ((c < '0' || c > '9') && c != '-') return false;
  }
  return true;
}

std::string csv_escape(const std::string& value) {
  bool needs_quotes = false;
  for (const char c : value) {
    needs_quotes |= (c == ',' || c == '"' || c == '\n' || c == '\r');
  }
  if (!needs_quotes) return value;
  std::string quoted = "\"";
  for (const char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string json_escape(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default: escaped += c;
    }
  }
  return escaped;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> outcome_fields(
    const TrialOutcome& o) {
  const auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  return {
      {"index", u64(o.trial.index)},
      {"family", o.trial.family},
      {"n", u64(o.trial.n)},
      {"delay", o.trial.delay.label},
      {"startup", analysis::to_string(o.trial.startup)},
      {"initial_tree", o.trial.initial_tree},
      {"mode", core::to_string(o.trial.mode)},
      {"faults", o.trial.fault.label},
      {"rep", u64(o.trial.repetition)},
      {"nodes", u64(o.n_actual)},
      {"edges", u64(o.m)},
      {"k_init", std::to_string(o.k_init)},
      {"k_final", std::to_string(o.k_final)},
      {"lower_bound", std::to_string(o.lower_bound)},
      {"gap", std::to_string(o.gap())},
      {"rounds", u64(o.rounds)},
      {"improvements", u64(o.improvements)},
      {"startup_messages", u64(o.startup_messages)},
      {"mdst_messages", u64(o.mdst_messages)},
      {"total_messages", u64(o.total_messages())},
      {"startup_time", u64(o.startup_time)},
      {"mdst_time", u64(o.mdst_time)},
      {"total_time", u64(o.total_time())},
      {"stop_reason", core::to_string(o.stop_reason)},
      {"outcome", sim::to_string(o.outcome)},
      {"retransmits", u64(o.retransmits)},
      {"dropped", u64(o.dropped_deliveries)},
      {"re_elections", u64(o.re_elections)},
      {"recovery_msgs", u64(o.recovery_msgs)},
  };
}

std::vector<std::pair<std::string, std::string>> outcome_perf_fields(
    const TrialOutcome& o) {
  const auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  // Messages per wall second, rounded down; 0 when the clock saw no time
  // (sub-nanosecond trials exist only in unit tests with prototype rows).
  const std::uint64_t rate =
      o.wall_ns == 0
          ? 0
          : static_cast<std::uint64_t>(
                static_cast<double>(o.total_messages()) * 1e9 /
                static_cast<double>(o.wall_ns));
  return {
      {"wall_ns", u64(o.wall_ns)},
      {"peak_rss_bytes", u64(o.peak_rss_bytes)},
      {"msgs_per_sec", u64(rate)},
  };
}

namespace {

std::vector<std::pair<std::string, std::string>> row_fields(
    const TrialOutcome& outcome, bool perf_columns) {
  auto fields = outcome_fields(outcome);
  if (perf_columns) {
    for (auto& field : outcome_perf_fields(outcome)) {
      fields.push_back(std::move(field));
    }
  }
  return fields;
}

}  // namespace

void CsvSink::begin(const CampaignSpec& spec, std::size_t trial_count) {
  (void)spec;
  (void)trial_count;
  // Checkpoint resume appends to a file whose header (and committed rows)
  // already exist; re-emitting it would corrupt the byte-identity contract.
  if (resume_) return;
  const TrialOutcome prototype{};
  bool first = true;
  for (const auto& [name, value] : row_fields(prototype, perf_columns_)) {
    (void)value;
    if (!first) out_ << ',';
    out_ << csv_escape(name);
    first = false;
  }
  out_ << '\n';
}

void CsvSink::add(const TrialOutcome& outcome) {
  bool first = true;
  for (const auto& [name, value] : row_fields(outcome, perf_columns_)) {
    (void)name;
    if (!first) out_ << ',';
    out_ << csv_escape(value);
    first = false;
  }
  out_ << '\n';
}

void JsonlSink::add(const TrialOutcome& outcome) {
  out_ << '{';
  bool first = true;
  for (const auto& [name, value] : row_fields(outcome, perf_columns_)) {
    if (!first) out_ << ',';
    out_ << '"' << json_escape(name) << "\":";
    if (is_numeric_field(value)) {
      out_ << value;
    } else {
      out_ << '"' << json_escape(value) << '"';
    }
    first = false;
  }
  out_ << "}\n";
}

void ProgressSink::begin(const CampaignSpec& spec, std::size_t trial_count) {
  total_ = trial_count;
  timer_.reset();
  if (stride_ != 0) {
    out_ << "campaign '" << spec.name << "': " << trial_count << " trials\n";
  }
}

void ProgressSink::add(const TrialOutcome& outcome) {
  ++seen_;
  messages_ += outcome.total_messages();
  if (outcome.wedged()) ++wedged_;
  if (stride_ != 0 && (seen_ % stride_ == 0 || seen_ == total_)) {
    out_ << "  " << seen_ << "/" << total_ << " trials done";
    const double elapsed = timer_.seconds();
    if (elapsed > 0.0) {
      // Coarse running throughput; integer msgs/s, decideci trials/s.
      const auto msgs_rate = static_cast<std::uint64_t>(
          static_cast<double>(messages_) / elapsed);
      const auto trials_rate_x10 = static_cast<std::uint64_t>(
          static_cast<double>(seen_) * 10.0 / elapsed);
      out_ << " [" << msgs_rate << " msgs/s, " << trials_rate_x10 / 10 << '.'
           << trials_rate_x10 % 10 << " trials/s]";
    }
    if (wedged_ != 0) out_ << " (" << wedged_ << " wedged)";
    out_ << '\n';
  }
}

void WedgeDumpSink::begin(const CampaignSpec& spec, std::size_t trial_count) {
  (void)spec;
  (void)trial_count;
  // error_code overload: a failure here (permission, DIR is a regular file)
  // must surface as a named campaign diagnostic, not a raw filesystem_error
  // whose message doesn't say which flag caused it.
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  MDST_REQUIRE(!ec && std::filesystem::is_directory(dir_),
               "wedge-dump: cannot create directory '" + dir_ + "'" +
                   (ec ? ": " + ec.message() : " (exists as a non-directory)"));
}

void WedgeDumpSink::add(const TrialOutcome& outcome) {
  if (!outcome.wedged() || !outcome.wedge.captured) return;
  const std::filesystem::path path =
      std::filesystem::path(dir_) /
      ("wedge-" + std::to_string(outcome.trial.index) + ".json");
  std::ofstream out(path);
  MDST_REQUIRE(out.good(),
               "wedge-dump: cannot open '" + path.string() + "' for writing");
  sim::write_wedge_report_json(out, outcome.wedge);
  ++dumped_;
}

}  // namespace mdst::campaign
