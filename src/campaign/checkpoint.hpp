// Resumable campaigns (`mdst_lab run --checkpoint=FILE`).
//
// The journal records, after each sink commit, the trial's global grid
// index together with the byte sizes of the CSV/JSONL output files at that
// moment. A killed run resumes by (1) reading the last intact journal line,
// (2) truncating the output files back to the recorded sizes — amputating
// any partially written row — and (3) skipping every trial at or before the
// recorded index. Per-trial seeds are pure functions of the trial's grid
// coordinates (campaign/spec.hpp), so the surviving trials reproduce their
// exact bytes and the concatenated output is byte-identical to an
// uninterrupted run (tests/campaign/runner_test.cpp pins this).
//
// Journal format, line-oriented and append-only:
//
//     mdst-checkpoint v1 <fingerprint-hex>
//     <index> <csv_bytes> <jsonl_bytes>
//     ...
//
// The fingerprint hashes the spec identity (name, base_seed, trial count),
// so resuming against a different spec fails loudly instead of silently
// interleaving incompatible rows. A torn final line (the kill landed
// mid-append) is ignored: the line before it is the true last commit, and
// the truncation step discards the younger bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>

#include "campaign/spec.hpp"

namespace mdst::campaign {

/// Stable identity hash of a spec for checkpoint compatibility checks.
std::uint64_t checkpoint_fingerprint(const CampaignSpec& spec);

/// Parsed state of a checkpoint journal.
struct CheckpointState {
  /// True iff the journal exists and holds at least one intact commit line.
  bool resuming = false;
  /// Last committed global grid index (meaningful iff `resuming`).
  std::size_t last_index = 0;
  /// Output-file sizes at that commit; resume truncates the files to these.
  std::uint64_t csv_bytes = 0;
  std::uint64_t jsonl_bytes = 0;
};

/// Read `path` (a missing or empty journal means a fresh run). On a
/// fingerprint mismatch or malformed header, returns false and sets
/// `error`; a torn trailing line is tolerated, not an error.
bool load_checkpoint(const std::string& path, const CampaignSpec& spec,
                     CheckpointState& out, std::string& error);

/// Appends one journal line per committed trial, flushing after each so the
/// journal never runs ahead of un-synced knowledge by more than the commit
/// in flight. Fresh runs truncate and write the header; resumed runs append
/// below the surviving lines.
class CheckpointWriter {
 public:
  /// Open `path` for journaling. `fresh` truncates and writes the header;
  /// otherwise appends. Requires the file to be writable.
  CheckpointWriter(const std::string& path, const CampaignSpec& spec,
                   bool fresh);

  /// Record a commit: `index` plus current output-file byte sizes (0 for
  /// absent outputs). Call only after the output streams were flushed.
  void record(std::size_t index, std::uint64_t csv_bytes,
              std::uint64_t jsonl_bytes);

 private:
  std::ofstream out_;
};

}  // namespace mdst::campaign
