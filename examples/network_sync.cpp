// Network synchronization over a minimum-degree spanning tree — the first
// application the paper's introduction names.
//
// Awerbuch's β synchronizer detects round completion with a convergecast +
// broadcast over a spanning tree, so every node handles tree-degree control
// messages per round. On a high-degree tree the busiest node becomes a
// hotspot; on the MDegST it does O(Δ*) work. This example runs the same
// synchronous BFS computation under:
//   * the α synchronizer (no tree; 2m Safe messages per round),
//   * the β synchronizer over a hub-star spanning tree,
//   * the β synchronizer over the distributed MDegST result,
// and reports total traffic and the busiest node's per-round load.
//
//   ./network_sync --n=80 --family=barabasi_albert --rounds=12
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/engine.hpp"
#include "runtime/sync_protocols.hpp"
#include "runtime/synchronizer.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace mdst;

struct SyncOutcome {
  std::uint64_t total_messages = 0;
  std::uint64_t busiest_node_sends = 0;
  bool bfs_correct = true;
};

template <typename Sim>
SyncOutcome finish(const graph::Graph& g, Sim& sim, sim::NodeId source) {
  sim.run();
  SyncOutcome out;
  out.total_messages = sim.metrics().total_messages();
  std::map<sim::NodeId, std::uint64_t> sends;
  for (const sim::TraceRow& row : sim.trace().rows()) {
    ++sends[row.from];
  }
  for (const auto& [node, count] : sends) {
    out.busiest_node_sends = std::max(out.busiest_node_sends, count);
  }
  const graph::BfsResult reference = graph::bfs(g, source);
  for (std::size_t v = 0; v < sim.node_count(); ++v) {
    if (sim.node(static_cast<sim::NodeId>(v)).sync_node().distance() !=
        reference.distance[v]) {
      out.bfs_correct = false;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t n = 80;
  std::string family = "barabasi_albert";
  std::uint64_t seed = 4;
  std::uint64_t rounds = 0;  // 0 = diameter + 2
  support::CliParser cli("Synchronizers over spanning trees (paper §1 use case)");
  cli.add_uint("n", &n, "network size");
  cli.add_string("family", &family, "graph family");
  cli.add_uint("seed", &seed, "instance seed");
  cli.add_uint("rounds", &rounds, "synchronous rounds (0 = diameter + 2)");
  const auto parsed = cli.parse(argc, argv);
  if (parsed.help_requested) {
    std::cout << cli.help_text();
    return 0;
  }
  if (!parsed.ok) {
    std::cerr << parsed.error << '\n';
    return 1;
  }

  support::Rng rng(seed);
  graph::Graph g = graph::family_by_name(family).make(n, rng);
  if (rounds == 0) rounds = graph::diameter(g) + 2;
  std::cout << "network: " << g.summary() << ", running " << rounds
            << " synchronous BFS rounds\n\n";

  // Trees for the beta variants.
  const graph::RootedTree star = graph::star_biased_tree(g);
  const core::RunResult improved = core::run_mdst(g, star, {}, {});
  const graph::RootedTree& mdst_tree = improved.tree;

  sim::SimConfig cfg;
  cfg.delay = sim::DelayModel::uniform(1, 4);
  cfg.seed = seed;
  cfg.trace_cap = 5'000'000;

  auto source_factory = [](const sim::NodeEnv& env) {
    return sim::SyncBfs::Node(env, env.id == 0);
  };

  support::Table table({"synchronizer", "tree degree", "total messages",
                        "busiest node sends", "BFS result"});
  {
    auto sim = sim::make_alpha_synchronizer<sim::SyncBfs>(g, source_factory,
                                                          rounds, cfg);
    const SyncOutcome out = finish(g, sim, 0);
    table.start_row();
    table.cell("alpha (no tree)");
    table.cell("-");
    table.cell(out.total_messages);
    table.cell(out.busiest_node_sends);
    table.cell(out.bfs_correct ? "correct" : "WRONG");
  }
  {
    auto sim = sim::make_beta_synchronizer<sim::SyncBfs>(g, star,
                                                         source_factory,
                                                         rounds, cfg);
    const SyncOutcome out = finish(g, sim, 0);
    table.start_row();
    table.cell("beta over hub star");
    table.cell(static_cast<std::uint64_t>(star.max_degree()));
    table.cell(out.total_messages);
    table.cell(out.busiest_node_sends);
    table.cell(out.bfs_correct ? "correct" : "WRONG");
  }
  {
    auto sim = sim::make_beta_synchronizer<sim::SyncBfs>(g, mdst_tree,
                                                         source_factory,
                                                         rounds, cfg);
    const SyncOutcome out = finish(g, sim, 0);
    table.start_row();
    table.cell("beta over MDegST");
    table.cell(static_cast<std::uint64_t>(mdst_tree.max_degree()));
    table.cell(out.total_messages);
    table.cell(out.busiest_node_sends);
    table.cell(out.bfs_correct ? "correct" : "WRONG");
  }
  table.print(std::cout, "synchronizing " + std::to_string(rounds) + " rounds");

  std::cout << "\nBoth beta variants send far fewer control messages than\n"
               "alpha; the MDegST tree additionally keeps the *busiest*\n"
               "node's load near the optimum degree — the hotspot argument\n"
               "the paper's introduction makes for minimum-degree trees.\n";
  return 0;
}
