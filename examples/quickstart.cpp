// Quickstart: build a network, construct a spanning tree with a distributed
// protocol, then run the Blin–Butelle distributed MDegST algorithm on it.
//
//   ./quickstart --n=64 --family=gnp_sparse --seed=7 --mode=single
//
// Prints the before/after trees' degree profiles and the paper's three cost
// measures (messages, causal time, message width).
#include <cstdint>
#include <iostream>

#include "analysis/pipeline.hpp"
#include "graph/generators.hpp"
#include "mdst/checker.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

mdst::core::EngineMode parse_mode(const std::string& mode) {
  if (mode == "single") return mdst::core::EngineMode::kSingleImprovement;
  if (mode == "concurrent") return mdst::core::EngineMode::kConcurrent;
  if (mode == "strict_lot") return mdst::core::EngineMode::kStrictLot;
  std::cerr << "unknown --mode '" << mode
            << "' (expected single|concurrent|strict_lot); using single\n";
  return mdst::core::EngineMode::kSingleImprovement;
}

std::string histogram_line(const std::vector<std::size_t>& hist) {
  std::string out;
  for (std::size_t d = 0; d < hist.size(); ++d) {
    if (hist[d] == 0) continue;
    if (!out.empty()) out += "  ";
    out += "deg" + std::to_string(d) + ":" + std::to_string(hist[d]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t n = 64;
  std::string family = "gnp_sparse";
  std::uint64_t seed = 7;
  std::string mode_name = "single";
  std::string startup = "ghs_mst";

  mdst::support::CliParser cli(
      "Quickstart: distributed minimum-degree spanning tree construction");
  cli.add_uint("n", &n, "number of nodes in the network");
  cli.add_string("family", &family, "graph family (see graph/generators.hpp)");
  cli.add_uint("seed", &seed, "seed for the instance and the schedule");
  cli.add_string("mode", &mode_name, "engine mode: single|concurrent|strict_lot");
  cli.add_string("startup", &startup,
                 "startup tree protocol: flood_st|dfs_st|ghs_mst|leader_elect");
  const auto parsed = cli.parse(argc, argv);
  if (parsed.help_requested) {
    std::cout << cli.help_text();
    return 0;
  }
  if (!parsed.ok) {
    std::cerr << parsed.error << '\n';
    return 1;
  }

  using namespace mdst;

  // 1. The network: any connected graph; nodes know only their neighbours.
  support::Rng rng(seed);
  graph::Graph g = graph::family_by_name(family).make(n, rng);
  graph::assign_random_names(g, rng);
  std::cout << "network: " << g.summary() << " family=" << family
            << " seed=" << seed << "\n\n";

  // 2. Startup protocol + distributed MDegST.
  analysis::StartupProtocol protocol = analysis::StartupProtocol::kGhsMst;
  if (startup == "flood_st") protocol = analysis::StartupProtocol::kFloodSt;
  if (startup == "dfs_st") protocol = analysis::StartupProtocol::kDfsSt;
  if (startup == "leader_elect") protocol = analysis::StartupProtocol::kLeaderElect;

  core::Options options;
  options.mode = parse_mode(mode_name);
  sim::SimConfig sim_config;
  sim_config.seed = seed;

  const analysis::PipelineResult result =
      analysis::run_pipeline(g, protocol, options, sim_config);

  // 3. Results.
  const graph::RootedTree& before = result.startup_tree;
  const graph::RootedTree& after = result.mdst.tree;
  std::cout << "startup tree  (" << to_string(protocol)
            << "): max degree " << before.max_degree() << "   ["
            << histogram_line(before.degree_histogram()) << "]\n";
  std::cout << "MDegST result (" << to_string(options.mode)
            << "): max degree " << after.max_degree() << "   ["
            << histogram_line(after.degree_histogram()) << "]\n\n";

  const core::LocalOptReport report = core::local_optimality(g, after);
  std::cout << "stop reason: " << to_string(result.mdst.stop_reason)
            << "; max-degree vertices blocked: " << report.blocked.size()
            << "/" << report.blocked.size() + report.improvable.size()
            << "\n\n";

  support::Table table({"phase", "messages", "causal time", "max msg bits"});
  table.start_row();
  table.cell("startup");
  table.cell(result.startup_messages);
  table.cell(result.startup_causal_time);
  table.cell("-");
  table.start_row();
  table.cell("mdst improvement");
  table.cell(result.mdst.metrics.total_messages());
  table.cell(result.mdst.metrics.max_causal_depth());
  table.cell(result.mdst.metrics.max_message_bits());
  table.start_row();
  table.cell("total");
  table.cell(result.total_messages);
  table.cell(result.total_causal_time);
  table.cell("-");
  table.print(std::cout, "cost (paper metrics)");

  std::cout << "\nrounds: " << result.mdst.rounds
            << ", improvements: " << result.mdst.improvements << "\n";
  return 0;
}
