// File-driven command-line tool: read a network from an edge-list file (or
// generate one), run the full distributed pipeline, verify the result with
// the distributed checker, and write the tree + a metrics summary.
//
//   ./mdst_cli --input=network.txt --output=tree.txt --mode=concurrent
//   ./mdst_cli --family=geometric --n=200 --save-input=network.txt
#include <fstream>
#include <iostream>

#include "analysis/pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mdst/bounds.hpp"
#include "mdst/checker.hpp"
#include "spanning/verify_st.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  std::string save_input;
  std::string family = "gnp_sparse";
  std::uint64_t n = 100;
  std::uint64_t seed = 1;
  std::string mode_name = "single";
  std::string startup = "ghs_mst";
  std::int64_t target_degree = 0;

  mdst::support::CliParser cli(
      "mdst_cli — distributed minimum-degree spanning tree over an edge-list "
      "network");
  cli.add_string("input", &input, "edge-list file (default: generate)");
  cli.add_string("output", &output, "write the result tree as an edge list");
  cli.add_string("save-input", &save_input, "save the generated network");
  cli.add_string("family", &family, "generator family when no --input");
  cli.add_uint("n", &n, "generated network size");
  cli.add_uint("seed", &seed, "instance + schedule seed");
  cli.add_string("mode", &mode_name, "single|concurrent|strict_lot");
  cli.add_string("startup", &startup, "flood_st|dfs_st|ghs_mst|leader_elect");
  cli.add_int("target-degree", &target_degree,
              "stop early once max degree <= this (0 = run to optimality)");
  const auto parsed = cli.parse(argc, argv);
  if (parsed.help_requested) {
    std::cout << cli.help_text();
    return 0;
  }
  if (!parsed.ok) {
    std::cerr << parsed.error << '\n';
    return 1;
  }

  using namespace mdst;
  support::Rng rng(seed);
  graph::Graph g = input.empty()
                       ? graph::family_by_name(family).make(n, rng)
                       : graph::load_edge_list(input);
  if (input.empty()) graph::assign_random_names(g, rng);
  if (!save_input.empty()) graph::save_edge_list(save_input, g);
  std::cout << "network: " << g.summary() << "\n";

  core::Options options;
  if (mode_name == "concurrent") options.mode = core::EngineMode::kConcurrent;
  if (mode_name == "strict_lot") options.mode = core::EngineMode::kStrictLot;
  options.target_degree = static_cast<int>(target_degree);

  analysis::StartupProtocol protocol = analysis::StartupProtocol::kGhsMst;
  if (startup == "flood_st") protocol = analysis::StartupProtocol::kFloodSt;
  if (startup == "dfs_st") protocol = analysis::StartupProtocol::kDfsSt;
  if (startup == "leader_elect") protocol = analysis::StartupProtocol::kLeaderElect;

  sim::SimConfig sim_config;
  sim_config.seed = seed;

  support::Timer timer;
  const analysis::PipelineResult result =
      analysis::run_pipeline(g, protocol, options, sim_config);
  const double elapsed_ms = timer.millis();

  // Distributed self-check of the final structure.
  const spanning::VerifyRun verified = spanning::run_verify_st(
      g, spanning::views_from_tree(result.mdst.tree), sim_config);

  support::Table table({"metric", "value"});
  auto row = [&table](const std::string& k, const std::string& v) {
    table.start_row();
    table.cell(k);
    table.cell(v);
  };
  row("startup protocol", to_string(protocol));
  row("engine mode", to_string(options.mode));
  row("initial max degree", std::to_string(result.mdst.initial_degree));
  row("final max degree", std::to_string(result.mdst.final_degree));
  row("lower bound on optimum", std::to_string(core::degree_lower_bound(g)));
  row("stop reason", to_string(result.mdst.stop_reason));
  row("rounds", std::to_string(result.mdst.rounds));
  row("improvements", std::to_string(result.mdst.improvements));
  row("messages (startup + mdst)",
      support::with_thousands(result.total_messages));
  row("causal time", support::with_thousands(result.total_causal_time));
  row("distributed verification", verified.ok ? "PASS" : "FAIL");
  row("host wall clock", support::format_double(elapsed_ms, 1) + " ms");
  table.print(std::cout, "result");

  if (!output.empty()) {
    graph::Graph tree_graph(g.vertex_count());
    for (const graph::Edge& e : result.mdst.tree.edges()) {
      tree_graph.add_edge(e.u, e.v);
    }
    graph::save_edge_list(output, tree_graph);
    std::cout << "tree written to " << output << "\n";
  }
  return verified.ok ? 0 : 2;
}
