// Walkthrough of one improvement round — the paper's Figure 2 scenario.
//
// Builds a small network whose startup tree has a clear maximum-degree node,
// runs a single round with tracing enabled, and prints the message timeline
// grouped by phase so the Cut / BFS wave / cousin replies / BFSBack
// convergecast / Update..Child exchange described in §3.2 can be followed
// message by message.
//
//   ./trace_bfs_wave [--n=18] [--seed=2]
#include <cstdint>
#include <iostream>
#include <map>

#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/engine.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  std::uint64_t n = 18;
  std::uint64_t seed = 2;
  bool full_trace = false;
  mdst::support::CliParser cli("Fig. 2 walkthrough: one BFS wave, traced");
  cli.add_uint("n", &n, "network size");
  cli.add_uint("seed", &seed, "instance seed");
  cli.add_bool("full-trace", &full_trace, "print every message row");
  const auto parsed = cli.parse(argc, argv);
  if (parsed.help_requested) {
    std::cout << cli.help_text();
    return 0;
  }
  if (!parsed.ok) {
    std::cerr << parsed.error << '\n';
    return 1;
  }

  using namespace mdst;
  support::Rng rng(seed);
  graph::Graph g = graph::make_gnp_connected(n, 0.22, rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  std::cout << "network " << g.summary() << "; startup tree max degree "
            << start.max_degree() << " at node " << start.root() << "\n\n";

  core::Options options;  // single-improvement mode: the paper's §3.2 core
  sim::SimConfig cfg;
  cfg.trace_cap = 100'000;
  cfg.seed = seed;
  const core::RunResult run = core::run_mdst(g, start, options, cfg);

  // Group the trace per round using the annotation timestamps.
  std::cout << "round markers:\n";
  for (const core::RoundMark& mark : run.marks) {
    std::cout << "  t=" << mark.time << "  msgs=" << mark.total_messages
              << "  " << mark.label << "\n";
  }

  std::cout << "\nmessage census (whole run):\n";
  std::map<std::string, std::uint64_t> census;
  // (Trace rows live in run.metrics? No: the engine owns them via the
  // simulator; we re-run with identical seed to collect rows — determinism
  // makes the two runs identical.)
  sim::Simulator<core::Protocol> replay(
      g,
      [&](const sim::NodeEnv& env) {
        return core::Protocol::Node(env, start.parent(env.id), start.children(env.id),
                                    options);
      },
      cfg);
  replay.run();
  for (const sim::TraceRow& row : replay.trace().rows()) {
    ++census[std::string(row.type_name)];
  }
  support::Table table({"message type", "count"});
  for (const auto& [type, count] : census) {
    table.start_row();
    table.cell(type);
    table.cell(count);
  }
  table.print(std::cout);

  if (full_trace) {
    std::cout << "\nfull timeline:\n";
    for (const sim::TraceRow& row : replay.trace().rows()) {
      std::cout << "  t=" << row.deliver_time << "  " << row.from << " -> "
                << row.to << "  " << row.type_name << "  (causal depth "
                << row.causal_depth << ")\n";
    }
  } else {
    std::cout << "\n(re-run with --full-trace to see every message)\n";
  }

  std::cout << "\nfinal max degree " << run.final_degree << " after "
            << run.rounds << " rounds, " << run.improvements
            << " edge exchanges; stop: " << to_string(run.stop_reason) << "\n";
  return 0;
}
