// Overlay/backbone design for a wireless sensor field.
//
// A random geometric network models radios on a unit square. The backbone
// (a spanning tree) should keep every node's fan-out small — battery drain
// and MAC contention grow with tree degree — which is exactly the MDegST
// objective. This example builds the backbone fully distributedly
// (leader election -> flooding ST -> MDegST), reports the degree profile
// and the usual structural trade-offs, and can dump DOT files for plotting.
//
//   ./overlay_network --n=120 --radius=0.16 --seed=5 --dot-prefix=/tmp/overlay
#include <cstdint>
#include <fstream>
#include <iostream>

#include "analysis/pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mdst/bounds.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  std::uint64_t n = 120;
  double radius = 0.16;
  std::uint64_t seed = 5;
  std::string dot_prefix;
  mdst::support::CliParser cli("Low-degree backbone for a sensor field");
  cli.add_uint("n", &n, "number of sensors");
  cli.add_double("radius", &radius, "radio range on the unit square");
  cli.add_uint("seed", &seed, "placement seed");
  cli.add_string("dot-prefix", &dot_prefix,
                 "if set, write <prefix>_before.dot / <prefix>_after.dot");
  const auto parsed = cli.parse(argc, argv);
  if (parsed.help_requested) {
    std::cout << cli.help_text();
    return 0;
  }
  if (!parsed.ok) {
    std::cerr << parsed.error << '\n';
    return 1;
  }

  using namespace mdst;
  support::Rng rng(seed);
  graph::Graph g = graph::make_geometric_connected(n, radius, rng);
  std::cout << "sensor field: " << g.summary() << ", radio degree max "
            << g.max_degree() << ", min " << g.min_degree() << "\n\n";

  // Fully distributed: elect the initiator, flood a spanning tree, improve.
  core::Options options;
  options.mode = core::EngineMode::kConcurrent;  // paper §3.2.6 variant
  sim::SimConfig sim_config;
  sim_config.seed = seed;
  sim_config.delay = sim::DelayModel::uniform(1, 4);
  const analysis::PipelineResult result = analysis::run_pipeline(
      g, analysis::StartupProtocol::kFloodSt, options, sim_config,
      /*elect_initiator=*/true);

  const graph::RootedTree& before = result.startup_tree;
  const graph::RootedTree& after = result.mdst.tree;

  support::Table table({"metric", "flooded ST", "MDegST backbone"});
  auto row = [&table](const std::string& name, std::uint64_t a, std::uint64_t b) {
    table.start_row();
    table.cell(name);
    table.cell(a);
    table.cell(b);
  };
  row("max fan-out (tree degree)", before.max_degree(), after.max_degree());
  row("tree height", before.height(), after.height());
  const auto hist_before = before.degree_histogram();
  const auto hist_after = after.degree_histogram();
  auto count_ge3 = [](const std::vector<std::size_t>& hist) {
    std::uint64_t c = 0;
    for (std::size_t d = 3; d < hist.size(); ++d) c += hist[d];
    return c;
  };
  row("nodes with fan-out >= 3", count_ge3(hist_before), count_ge3(hist_after));
  row("leaves", hist_before[1], hist_after[1]);
  table.print(std::cout, "backbone quality");

  std::cout << "\nlower bound on any backbone's max degree (vertex cuts): "
            << core::degree_lower_bound(g) << "\n";
  std::cout << "distributed cost: " << result.total_messages
            << " messages end-to-end, " << result.mdst.rounds
            << " improvement rounds\n";

  if (!dot_prefix.empty()) {
    std::ofstream before_dot(dot_prefix + "_before.dot");
    graph::write_dot(before_dot, g, &before);
    std::ofstream after_dot(dot_prefix + "_after.dot");
    graph::write_dot(after_dot, g, &after);
    std::cout << "wrote " << dot_prefix << "_before.dot and _after.dot\n";
  }
  return 0;
}
