// The paper's motivating scenario (§1): broadcasting over a spanning tree
// loads each node proportionally to its tree degree; a minimum-degree
// spanning tree minimises the worst per-node communication work.
//
// This example actually runs a broadcast protocol over several spanning
// trees of the same network and measures (a) the maximum number of sends
// any single node performs and (b) the completion time, showing the
// load/latency trade-off the introduction describes.
//
//   ./broadcast_load --n=96 --family=barabasi_albert --seed=3
#include <cstdint>
#include <iostream>
#include <variant>

#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/engine.hpp"
#include "runtime/simulator.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace mdst;

// --- A tiny broadcast protocol over a fixed rooted tree ---------------------

struct Payload {
  static constexpr const char* kName = "Payload";
  std::size_t ids_carried() const { return 1; }
};

struct BroadcastProto {
  using Message = std::variant<Payload>;
  class Node {
   public:
    Node(const sim::NodeEnv& env, std::vector<sim::NodeId> children, bool root)
        : env_(env), children_(std::move(children)), is_root_(root) {}
    void on_start(sim::IContext<Message>& ctx) {
      if (is_root_) forward(ctx);
    }
    void on_message(sim::IContext<Message>& ctx, sim::NodeId, const Message&) {
      forward(ctx);
    }
    std::uint64_t sends = 0;

   private:
    void forward(sim::IContext<Message>& ctx) {
      for (const sim::NodeId child : children_) {
        ctx.send(child, Payload{});
        ++sends;
      }
    }
    sim::NodeEnv env_;
    std::vector<sim::NodeId> children_;
    bool is_root_;
  };
};

struct BroadcastOutcome {
  std::uint64_t max_node_sends = 0;
  sim::Time completion_time = 0;
  std::size_t tree_degree = 0;
  std::size_t tree_height = 0;
};

BroadcastOutcome measure_broadcast(const graph::Graph& g,
                                   const graph::RootedTree& tree,
                                   std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.delay = sim::DelayModel::uniform(1, 3);  // mildly asynchronous links
  cfg.seed = seed;
  sim::Simulator<BroadcastProto> sim(
      g,
      [&tree](const sim::NodeEnv& env) {
        return BroadcastProto::Node(env, tree.children(env.id),
                                    env.id == tree.root());
      },
      cfg);
  sim.run();
  BroadcastOutcome out;
  for (std::size_t v = 0; v < sim.node_count(); ++v) {
    out.max_node_sends =
        std::max(out.max_node_sends, sim.node(static_cast<sim::NodeId>(v)).sends);
  }
  out.completion_time = sim.metrics().last_delivery_time();
  out.tree_degree = tree.max_degree();
  out.tree_height = tree.height();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t n = 96;
  std::string family = "barabasi_albert";
  std::uint64_t seed = 3;
  support::CliParser cli("Broadcast load across spanning-tree choices");
  cli.add_uint("n", &n, "network size");
  cli.add_string("family", &family, "graph family");
  cli.add_uint("seed", &seed, "instance seed");
  const auto parsed = cli.parse(argc, argv);
  if (parsed.help_requested) {
    std::cout << cli.help_text();
    return 0;
  }
  if (!parsed.ok) {
    std::cerr << parsed.error << '\n';
    return 1;
  }

  support::Rng rng(seed);
  graph::Graph g = graph::family_by_name(family).make(n, rng);
  std::cout << "network: " << g.summary() << " (" << family << ")\n\n";

  // Candidate trees.
  const graph::RootedTree star = graph::star_biased_tree(g);
  const graph::RootedTree bfs = graph::bfs_tree(g, 0);
  const graph::RootedTree mst = graph::random_mst(g, 0, rng);
  core::Options options;  // defaults: single-improvement mode
  const core::RunResult improved = core::run_mdst(g, star, options, {});

  support::Table table({"spanning tree", "max degree", "height",
                        "max sends/node", "broadcast completion time"});
  const struct {
    const char* name;
    const graph::RootedTree* tree;
  } rows[] = {
      {"hub star (worst case)", &star},
      {"BFS tree", &bfs},
      {"random MST", &mst},
      {"MDegST (this paper)", &improved.tree},
  };
  for (const auto& row : rows) {
    const BroadcastOutcome out = measure_broadcast(g, *row.tree, seed + 17);
    table.start_row();
    table.cell(row.name);
    table.cell(static_cast<std::uint64_t>(out.tree_degree));
    table.cell(static_cast<std::uint64_t>(out.tree_height));
    table.cell(out.max_node_sends);
    table.cell(static_cast<std::uint64_t>(out.completion_time));
  }
  table.print(std::cout, "per-node broadcast work");

  std::cout << "\nThe MDegST tree bounds every node's forwarding work by its"
               " max degree\n(one send per tree edge at the busiest node),"
               " trading a taller tree for a\nflatter load profile — the"
               " motivation in the paper's introduction.\n";
  return 0;
}
