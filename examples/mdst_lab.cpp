// mdst_lab — the campaign front door: declarative scenario sweeps over the
// full distributed pipeline (startup protocol + MDegST improvement).
//
//   mdst_lab run --spec=examples/specs/quickstart.campaign --threads=4 \
//            --csv=trials.csv --jsonl=trials.jsonl
//   mdst_lab list-families
//   mdst_lab expand --spec=sweep.campaign          # print the grid, run nothing
//   mdst_lab reproduce --spec=sweep.campaign --cell=137
//
// Output streams commit in grid order regardless of --threads, so the CSV
// and JSONL bytes are identical for 1 and N workers; `reproduce --cell`
// re-runs any single row to identical metrics (see docs/campaign.md).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <system_error>

#include "campaign/aggregate.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "graph/generators.hpp"
#include "mdst/engine.hpp"
#include "runtime/profile.hpp"
#include "runtime/telemetry.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace mdst;

int usage(std::ostream& out, int exit_code) {
  out << "mdst_lab — scenario campaigns for the distributed MDegST pipeline\n"
         "\n"
         "subcommands:\n"
         "  run           execute a campaign spec   (--spec, --threads,\n"
         "                --csv, --jsonl, --progress, --no-summary,\n"
         "                --shard=i/k for fleet-splitting across machines,\n"
         "                --shards=K for intra-trial sharded simulation,\n"
         "                --perf-columns for wall/RSS/rate row columns,\n"
         "                --wedge-dump=DIR for per-wedged-trial forensics,\n"
         "                --checkpoint=FILE for a resumable commit journal,\n"
         "                --profile for the section-timer table,\n"
         "                --allow-wedged to exit 0 despite wedged trials)\n"
         "  expand        print the trial grid of a spec (--spec)\n"
         "  reproduce     re-run one grid cell       (--spec, --cell,\n"
         "                --trace-cap for trace/memory diagnostics rows)\n"
         "  trace-export  replay one cell with tracing and export a timeline\n"
         "                (--spec, --cell, --format=chrome|csv, --out,\n"
         "                --trace-cap; chrome output loads in chrome://tracing\n"
         "                and Perfetto)\n"
         "  rounds        replay one cell and export its per-round telemetry\n"
         "                ring (--spec, --cell, --csv, --jsonl)\n"
         "  list-families show the graph families usable in specs\n"
         "\n"
         "`mdst_lab <subcommand> --help` lists the subcommand's flags.\n";
  return exit_code;
}

/// Shared --spec loading with CLI-friendly diagnostics.
bool load_or_complain(const std::string& path, campaign::CampaignSpec& spec) {
  if (path.empty()) {
    std::cerr << "missing required --spec=<file>\n";
    return false;
  }
  campaign::ParseResult parsed = campaign::load_spec(path);
  if (!parsed.ok) {
    std::cerr << "spec error: " << parsed.error << "\n";
    return false;
  }
  spec = std::move(parsed.spec);
  return true;
}

int cmd_list_families() {
  support::Table table({"family", "notes"});
  for (const graph::FamilySpec& family : graph::standard_families()) {
    table.start_row();
    table.cell(family.name);
    table.cell("size knob ~n (snapped to the nearest legal size)");
  }
  table.print(std::cout, "graph families (spec key: families)");
  return 0;
}

int cmd_expand(int argc, char** argv) {
  std::string spec_path;
  support::CliParser cli("mdst_lab expand — print a spec's trial grid");
  cli.add_string("spec", &spec_path, "campaign spec file");
  const auto parsed = cli.parse(argc, argv);
  if (parsed.help_requested) {
    std::cout << cli.help_text();
    return 0;
  }
  if (!parsed.ok) {
    std::cerr << parsed.error << '\n';
    return 1;
  }
  campaign::CampaignSpec spec;
  if (!load_or_complain(spec_path, spec)) return 1;

  support::Table table({"index", "family", "n", "delay", "startup",
                        "initial_tree", "mode", "faults", "rep"});
  for (const campaign::Trial& trial : campaign::expand(spec)) {
    table.start_row();
    table.cell(static_cast<std::uint64_t>(trial.index));
    table.cell(trial.family);
    table.cell(static_cast<std::uint64_t>(trial.n));
    table.cell(trial.delay.label);
    table.cell(analysis::to_string(trial.startup));
    table.cell(trial.initial_tree);
    table.cell(core::to_string(trial.mode));
    table.cell(trial.fault.label);
    table.cell(trial.repetition);
  }
  table.print(std::cout, "campaign '" + spec.name + "' — " +
                             std::to_string(spec.trial_count()) + " trials");
  return 0;
}

/// Parse a `--shard i/k` token ("2/5": this machine runs stripe 2 of 5).
bool parse_shard(const std::string& token, unsigned& index, unsigned& count,
                 std::string& error) {
  index = 0;
  count = 1;
  if (token.empty()) return true;
  const std::size_t slash = token.find('/');
  std::size_t index_end = 0;
  std::size_t count_end = 0;
  try {
    if (slash == std::string::npos) throw std::invalid_argument("no slash");
    const unsigned long i = std::stoul(token.substr(0, slash), &index_end);
    const unsigned long k = std::stoul(token.substr(slash + 1), &count_end);
    if (index_end != slash || count_end != token.size() - slash - 1 ||
        k == 0 || i >= k) {
      throw std::invalid_argument("bad range");
    }
    index = static_cast<unsigned>(i);
    count = static_cast<unsigned>(k);
    return true;
  } catch (const std::exception&) {
    error = "--shard must be i/k with 0 <= i < k (e.g. --shard=2/5), got '" +
            token + "'";
    return false;
  }
}

/// Validate --cell against the spec's grid and fetch the trial.
bool cell_or_complain(const campaign::CampaignSpec& spec, std::int64_t cell,
                      campaign::Trial& trial) {
  if (cell < 0 || static_cast<std::size_t>(cell) >= spec.trial_count()) {
    std::cerr << "--cell must be in [0, " << spec.trial_count()
              << ") for this spec\n";
    return false;
  }
  trial = campaign::trial_at(spec, static_cast<std::size_t>(cell));
  return true;
}

/// `mdst_lab run --profile` / section-timer table. No-op builds print a
/// pointer to the CMake switch instead of an empty table.
void print_profile_table(std::ostream& out) {
  if (!sim::profile_enabled()) {
    out << "profiling compiled out — configure with -DMDST_PROFILE=ON to "
           "collect section timers\n";
    return;
  }
  const auto snapshot = sim::profile_snapshot();
  support::Table table({"section", "calls", "total_ms", "ns/call"});
  for (std::size_t i = 0; i < sim::kSectionCount; ++i) {
    const sim::SectionStats& stats = snapshot[i];
    table.start_row();
    table.cell(sim::section_name(static_cast<sim::Section>(i)));
    table.cell(stats.calls);
    table.cell(support::format_double(static_cast<double>(stats.ns) / 1e6, 2));
    table.cell(stats.calls == 0 ? 0 : stats.ns / stats.calls);
  }
  table.print(out, "profile sections (process-wide wall time)");
}

int cmd_run(int argc, char** argv) {
  std::string spec_path;
  std::string csv_path;
  std::string jsonl_path;
  std::string shard;
  std::string wedge_dump;
  std::string checkpoint_path;
  std::uint64_t threads = 0;
  // ~0 = "flag absent, keep the spec's shards knob".
  std::uint64_t shards = ~std::uint64_t{0};
  std::uint64_t progress = 0;
  bool summary = true;
  bool allow_wedged = false;
  bool perf_columns = false;
  bool profile = false;
  support::CliParser cli("mdst_lab run — execute a campaign spec");
  cli.add_string("spec", &spec_path, "campaign spec file");
  cli.add_string("csv", &csv_path, "write per-trial rows as CSV");
  cli.add_string("jsonl", &jsonl_path, "write per-trial rows as JSON lines");
  cli.add_string("shard", &shard,
                 "run stripe i of k machines, as i/k (e.g. 2/5); rows keep "
                 "their global grid indices");
  cli.add_uint("threads", &threads,
               "worker threads (0 = all hardware threads)");
  cli.add_uint("shards", &shards,
               "intra-trial shard workers per MDegST run, overriding the "
               "spec's shards knob (0 = classic engine; output bytes are "
               "identical for every value >= 1)");
  cli.add_uint("progress", &progress,
               "print progress every N trials (0 = quiet)");
  cli.add_bool("summary", &summary, "print the per-cell summary table");
  cli.add_bool("allow-wedged", &allow_wedged,
               "exit 0 even when trials wedge (adversity sweeps where "
               "wedging is the measured phenomenon)");
  cli.add_bool("perf-columns", &perf_columns,
               "append wall_ns / peak_rss_bytes / msgs_per_sec to CSV and "
               "JSONL rows (nondeterministic values — off by default so the "
               "output stays byte-reproducible)");
  cli.add_string("wedge-dump", &wedge_dump,
                 "directory for per-wedged-trial forensics JSON "
                 "(wedge-<index>.json; non-wedged trials write nothing)");
  cli.add_string("checkpoint", &checkpoint_path,
                 "commit journal for resumable campaigns: a killed run "
                 "re-invoked with the same spec and flags resumes after the "
                 "last committed trial, and the final --csv/--jsonl bytes "
                 "are identical to an uninterrupted run (implies "
                 "--no-summary: the aggregate would only cover the resumed "
                 "tail)");
  cli.add_bool("profile", &profile,
               "print the section-timer table after the run (needs a build "
               "configured with -DMDST_PROFILE=ON)");
  const auto parsed = cli.parse(argc, argv);
  if (parsed.help_requested) {
    std::cout << cli.help_text();
    return 0;
  }
  if (!parsed.ok) {
    std::cerr << parsed.error << '\n';
    return 1;
  }
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  {
    std::string shard_error;
    if (!parse_shard(shard, shard_index, shard_count, shard_error)) {
      std::cerr << shard_error << '\n';
      return 1;
    }
  }
  campaign::CampaignSpec spec;
  if (!load_or_complain(spec_path, spec)) return 1;
  if (shards != ~std::uint64_t{0}) {
    if (shards > 64) {
      std::cerr << "--shards must be 0..64, got " << shards << "\n";
      return 1;
    }
    spec.shards = static_cast<std::uint32_t>(shards);
  }

  campaign::CheckpointState checkpoint;
  if (!checkpoint_path.empty()) {
    std::string checkpoint_error;
    if (!campaign::load_checkpoint(checkpoint_path, spec, checkpoint,
                                   checkpoint_error)) {
      std::cerr << checkpoint_error << '\n';
      return 1;
    }
    // A resumed invocation only runs the surviving tail, so an in-process
    // aggregate would silently cover a fraction of the campaign.
    summary = false;
  }
  // Resume-aware output opening: truncate the file back to the journal's
  // byte offset (amputating any row the kill tore mid-write), then append.
  const auto open_output = [&](std::ofstream& file, const std::string& path,
                               std::uint64_t resume_bytes,
                               const char* flag) -> bool {
    if (checkpoint.resuming && std::filesystem::exists(path)) {
      std::error_code ec;
      std::filesystem::resize_file(path, resume_bytes, ec);
      if (ec) {
        std::cerr << "cannot truncate " << flag << " path " << path
                  << " to its checkpoint offset: " << ec.message() << "\n";
        return false;
      }
      file.open(path, std::ios::binary | std::ios::app);
    } else {
      file.open(path, std::ios::binary);
    }
    if (!file) {
      std::cerr << "cannot open " << flag << " path " << path << "\n";
      return false;
    }
    return true;
  };

  std::ofstream csv_file;
  std::ofstream jsonl_file;
  campaign::Aggregator aggregator;
  campaign::ProgressSink progress_sink(std::cerr,
                                       static_cast<std::size_t>(progress));
  std::vector<campaign::Sink*> sinks{&aggregator, &progress_sink};
  campaign::CsvSink csv_sink(csv_file, perf_columns, checkpoint.resuming);
  if (!csv_path.empty()) {
    if (!open_output(csv_file, csv_path, checkpoint.csv_bytes, "--csv")) {
      return 1;
    }
    sinks.push_back(&csv_sink);
  }
  campaign::JsonlSink jsonl_sink(jsonl_file, perf_columns);
  if (!jsonl_path.empty()) {
    if (!open_output(jsonl_file, jsonl_path, checkpoint.jsonl_bytes,
                     "--jsonl")) {
      return 1;
    }
    sinks.push_back(&jsonl_sink);
  }
  campaign::WedgeDumpSink wedge_sink(wedge_dump);
  if (!wedge_dump.empty()) sinks.push_back(&wedge_sink);

  campaign::RunnerConfig runner;
  runner.threads = static_cast<unsigned>(threads);
  runner.shard_index = shard_index;
  runner.shard_count = shard_count;
  runner.resume = checkpoint.resuming;
  runner.resume_after = checkpoint.last_index;
  std::optional<campaign::CheckpointWriter> journal;
  if (!checkpoint_path.empty()) {
    journal.emplace(checkpoint_path, spec, /*fresh=*/!checkpoint.resuming);
    // Journal only after the output bytes are durable: flush first, then
    // record the file sizes. A kill between commit and journal append
    // re-runs that trial on resume, and the truncation step discards its
    // half-written row — never the other way around.
    runner.on_commit = [&](std::size_t index) {
      std::uint64_t csv_bytes = 0;
      std::uint64_t jsonl_bytes = 0;
      if (!csv_path.empty()) {
        csv_file.flush();
        csv_bytes = std::filesystem::file_size(csv_path);
      }
      if (!jsonl_path.empty()) {
        jsonl_file.flush();
        jsonl_bytes = std::filesystem::file_size(jsonl_path);
      }
      journal->record(index, csv_bytes, jsonl_bytes);
    };
  }
  support::Timer timer;
  std::vector<campaign::TrialOutcome> outcomes;
  try {
    outcomes = campaign::run_campaign(spec, runner, sinks);
  } catch (const std::exception& e) {
    std::cerr << "campaign failed: " << e.what() << "\n";
    return 2;
  }
  const double elapsed_ms = timer.millis();

  if (summary) {
    // Repetitions stripe across shards (rep is the innermost grid axis),
    // so a shard-local summary aggregates only ~reps/k samples per cell —
    // say so in the title rather than passing it off as the campaign's.
    std::string title = "campaign '" + spec.name + "' — per-cell summary";
    if (shard_count > 1) {
      title += " (shard " + std::to_string(shard_index) + "/" +
               std::to_string(shard_count) + " only — partial reps per cell)";
    }
    aggregator.summary_table().print(std::cout, title);
  }
  std::cout << outcomes.size() << " trials";
  if (checkpoint.resuming) {
    std::cout << " (resumed after trial " << checkpoint.last_index << ")";
  }
  if (shard_count > 1) {
    std::cout << " (shard " << shard_index << "/" << shard_count << " of "
              << spec.trial_count() << ")";
  }
  std::cout << " in " << support::format_double(elapsed_ms / 1000.0, 1)
            << " s";
  if (!csv_path.empty()) std::cout << "; csv -> " << csv_path;
  if (!jsonl_path.empty()) std::cout << "; jsonl -> " << jsonl_path;
  if (!wedge_dump.empty()) {
    std::cout << "; wedge dumps -> " << wedge_dump << " ("
              << wedge_sink.dumped() << " file"
              << (wedge_sink.dumped() == 1 ? "" : "s") << ")";
  }
  std::size_t wedged = 0;
  for (const campaign::TrialOutcome& outcome : outcomes) {
    if (outcome.wedged()) ++wedged;
  }
  if (wedged != 0) std::cout << "; " << wedged << " wedged";
  std::cout << "\n";
  if (profile) print_profile_table(std::cout);
  if (wedged != 0 && !allow_wedged) {
    std::cerr << wedged << " trial(s) wedged — the protocol failed to "
                 "terminate cleanly under the fault plan (re-run with "
                 "--allow-wedged if that is the phenomenon under study)\n";
    return 3;
  }
  return 0;
}

int cmd_reproduce(int argc, char** argv) {
  std::string spec_path;
  std::int64_t cell = -1;
  std::uint64_t trace_cap = 0;
  support::CliParser cli(
      "mdst_lab reproduce — re-run one grid cell from its index");
  cli.add_string("spec", &spec_path, "campaign spec file");
  cli.add_int("cell", &cell, "trial index (the `index` column of run output)");
  cli.add_uint("trace-cap", &trace_cap,
               "record up to N trace rows during the replay (0 = tracing "
               "off; tracing never perturbs the schedule)");
  const auto parsed = cli.parse(argc, argv);
  if (parsed.help_requested) {
    std::cout << cli.help_text();
    return 0;
  }
  if (!parsed.ok) {
    std::cerr << parsed.error << '\n';
    return 1;
  }
  campaign::CampaignSpec spec;
  if (!load_or_complain(spec_path, spec)) return 1;
  campaign::Trial trial;
  if (!cell_or_complain(spec, cell, trial)) return 1;

  campaign::TrialInstruments instruments;
  instruments.trace_cap = static_cast<std::size_t>(trace_cap);
  core::RunResult mdst;
  const campaign::TrialOutcome outcome =
      campaign::run_campaign_trial(spec, trial, instruments, &mdst);
  support::Table table({"field", "value"});
  for (const auto& [name, value] : campaign::outcome_fields(outcome)) {
    table.start_row();
    table.cell(name);
    table.cell(value);
  }
  // Diagnostics beyond the row contract: the engine's memory buckets, the
  // telemetry ring size, and (under --trace-cap) the recorder state.
  const auto row = [&](const char* name, std::uint64_t value) {
    table.start_row();
    table.cell(name);
    table.cell(value);
  };
  row("telemetry_rounds", mdst.round_telemetry.size());
  row("memory_node_bytes", mdst.memory.node_bytes);
  row("memory_queue_bytes", mdst.memory.queue_bytes);
  row("memory_floor_bytes", mdst.memory.floor_bytes);
  row("memory_metrics_bytes", mdst.memory.metrics_bytes);
  row("memory_graph_bytes", mdst.memory.graph_bytes);
  row("memory_total_bytes", mdst.memory.total());
  row("trace_rows", mdst.trace.rows().size());
  table.start_row();
  table.cell("trace_truncated");
  table.cell(mdst.trace.truncated() ? "yes" : "no");
  if (mdst.wedge.captured) {
    table.start_row();
    table.cell("wedge_last_phase");
    table.cell(mdst.wedge.last_phase);
    row("wedge_live_undone", mdst.wedge.live_undone);
  }
  table.print(std::cout, "campaign '" + spec.name + "' — cell " +
                             std::to_string(cell));
  return 0;
}

int cmd_trace_export(int argc, char** argv) {
  std::string spec_path;
  std::string format = "chrome";
  std::string out_path;
  std::int64_t cell = -1;
  std::uint64_t trace_cap = 1u << 20;
  support::CliParser cli(
      "mdst_lab trace-export — replay one grid cell with the trace recorder "
      "on and export its timeline");
  cli.add_string("spec", &spec_path, "campaign spec file");
  cli.add_int("cell", &cell, "trial index (the `index` column of run output)");
  cli.add_string("format", &format,
                 "chrome (trace-event JSON for chrome://tracing / Perfetto) "
                 "or csv (flat trace rows)");
  cli.add_string("out", &out_path, "output file (default: stdout)");
  cli.add_uint("trace-cap", &trace_cap,
               "maximum trace rows retained during the replay");
  const auto parsed = cli.parse(argc, argv);
  if (parsed.help_requested) {
    std::cout << cli.help_text();
    return 0;
  }
  if (!parsed.ok) {
    std::cerr << parsed.error << '\n';
    return 1;
  }
  if (format != "chrome" && format != "csv") {
    std::cerr << "--format must be chrome or csv, got '" << format << "'\n";
    return 1;
  }
  if (trace_cap == 0) {
    std::cerr << "--trace-cap must be > 0 (a timeline needs trace rows)\n";
    return 1;
  }
  campaign::CampaignSpec spec;
  if (!load_or_complain(spec_path, spec)) return 1;
  campaign::Trial trial;
  if (!cell_or_complain(spec, cell, trial)) return 1;

  campaign::TrialInstruments instruments;
  instruments.trace_cap = static_cast<std::size_t>(trace_cap);
  core::RunResult mdst;
  const campaign::TrialOutcome outcome =
      campaign::run_campaign_trial(spec, trial, instruments, &mdst);

  std::ofstream file;
  std::ostream* out = &std::cout;
  if (!out_path.empty()) {
    file.open(out_path, std::ios::binary);
    if (!file) {
      std::cerr << "cannot open --out path " << out_path << "\n";
      return 1;
    }
    out = &file;
  }
  if (format == "chrome") {
    sim::ChromeTraceOptions options;
    options.shards = spec.shards;
    options.node_count = outcome.n_actual;
    options.lookahead = trial.delay.model.min_delay();
    sim::write_chrome_trace(*out, mdst.trace, core::round_phases(mdst),
                            options);
  } else {
    sim::write_trace_csv(*out, mdst.trace);
  }
  std::cerr << "cell " << cell << ": " << mdst.trace.rows().size()
            << " trace rows"
            << (mdst.trace.truncated()
                    ? " (TRUNCATED at --trace-cap — raise it for the full "
                      "timeline)"
                    : "");
  if (!out_path.empty()) std::cerr << " -> " << out_path;
  std::cerr << "\n";
  return 0;
}

int cmd_rounds(int argc, char** argv) {
  std::string spec_path;
  std::string csv_path;
  std::string jsonl_path;
  std::int64_t cell = -1;
  support::CliParser cli(
      "mdst_lab rounds — replay one grid cell and export its per-round "
      "telemetry ring");
  cli.add_string("spec", &spec_path, "campaign spec file");
  cli.add_int("cell", &cell, "trial index (the `index` column of run output)");
  cli.add_string("csv", &csv_path, "write the ring as CSV");
  cli.add_string("jsonl", &jsonl_path,
                 "write the ring as JSON lines (scripts/plot_rounds.py "
                 "input)");
  const auto parsed = cli.parse(argc, argv);
  if (parsed.help_requested) {
    std::cout << cli.help_text();
    return 0;
  }
  if (!parsed.ok) {
    std::cerr << parsed.error << '\n';
    return 1;
  }
  campaign::CampaignSpec spec;
  if (!load_or_complain(spec_path, spec)) return 1;
  campaign::Trial trial;
  if (!cell_or_complain(spec, cell, trial)) return 1;

  core::RunResult mdst;
  campaign::run_campaign_trial(spec, trial, campaign::TrialInstruments{},
                               &mdst);
  const auto open_and_write = [&](const std::string& path, auto writer) {
    std::ofstream file(path, std::ios::binary);
    if (!file) {
      std::cerr << "cannot open path " << path << "\n";
      return false;
    }
    writer(file, mdst.round_telemetry);
    return true;
  };
  if (!csv_path.empty() &&
      !open_and_write(csv_path, [](std::ostream& o, const auto& r) {
        sim::write_rounds_csv(o, r);
      })) {
    return 1;
  }
  if (!jsonl_path.empty() &&
      !open_and_write(jsonl_path, [](std::ostream& o, const auto& r) {
        sim::write_rounds_jsonl(o, r);
      })) {
    return 1;
  }
  if (csv_path.empty() && jsonl_path.empty()) {
    sim::write_rounds_csv(std::cout, mdst.round_telemetry);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 1);
  const std::string subcommand = argv[1];
  // Subcommand parsers see argv without the subcommand token.
  argv[1] = argv[0];
  if (subcommand == "run") return cmd_run(argc - 1, argv + 1);
  if (subcommand == "expand") return cmd_expand(argc - 1, argv + 1);
  if (subcommand == "reproduce") return cmd_reproduce(argc - 1, argv + 1);
  if (subcommand == "trace-export") return cmd_trace_export(argc - 1, argv + 1);
  if (subcommand == "rounds") return cmd_rounds(argc - 1, argv + 1);
  if (subcommand == "list-families") return cmd_list_families();
  if (subcommand == "--help" || subcommand == "help" || subcommand == "-h") {
    return usage(std::cout, 0);
  }
  std::cerr << "unknown subcommand '" << subcommand << "'\n\n";
  return usage(std::cerr, 1);
}
