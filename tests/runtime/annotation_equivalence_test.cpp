// Annotation equivalence: the MDegST protocol records its per-round
// checkpoints as alloc-free structured tags (sim::AnnotationTag +
// mdst/annotations.hpp) on the simulator path, while virtual contexts
// (mocks, replay tooling) receive the seed-style formatted string through
// sim::annotate_tagged's fallback. This suite proves the two paths are the
// same instrument: running the identical MDegST configuration through both
// context bindings, every annotation must match field-for-field — time,
// message counter snapshot, causal-depth snapshot, and *text*, where the
// tagged side's text is produced at read time by format_round_note().
// Covered under unit and uniform delays, in single-improvement and
// concurrent engine modes (the latter exercises subimprove notes).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/annotations.hpp"
#include "mdst/engine.hpp"
#include "runtime/simulator.hpp"
#include "support/rng.hpp"

namespace mdst {
namespace {

using core::Message;

/// Hosts the IContext-bound node: annotations travel as formatted strings
/// through the virtual interface, exactly like the seed engine.
struct VirtualNodeAdapter {
  core::Node inner;  // BasicNode<sim::IContext<Message>>

  VirtualNodeAdapter(const sim::NodeEnv& env, sim::NodeId parent,
                     std::vector<sim::NodeId> children, core::Options options)
      : inner(env, parent, std::move(children), options) {}

  void on_start(sim::IContext<Message>& ctx) { inner.on_start(ctx); }
  void on_message(sim::IContext<Message>& ctx, sim::NodeId from,
                  const Message& m) {
    inner.on_message(ctx, from, m);
  }
};

struct VirtualProtocol {
  using Message = core::Message;
  using Node = VirtualNodeAdapter;
};

template <typename P>
sim::Simulator<P> run_mdst_as(const graph::Graph& g,
                              const graph::RootedTree& start,
                              const core::Options& options,
                              const sim::SimConfig& config) {
  sim::Simulator<P> simulation(
      g,
      [&](const sim::NodeEnv& env) {
        return typename P::Node(env, start.parent(env.id),
                                start.children(env.id), options);
      },
      config);
  simulation.run();
  return simulation;
}

void expect_annotations_equivalent(const graph::Graph& g,
                                   const graph::RootedTree& start,
                                   const core::Options& options,
                                   const sim::SimConfig& config,
                                   const char* what) {
  auto tagged = run_mdst_as<core::Protocol>(g, start, options, config);
  auto seeded = run_mdst_as<VirtualProtocol>(g, start, options, config);

  const auto& got = tagged.metrics().annotations();
  const auto& want = seeded.metrics().annotations();
  ASSERT_EQ(got.size(), want.size()) << what;
  ASSERT_FALSE(got.empty()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    // The simulator path stored a tag and no string; the virtual path
    // stored the seed-formatted string and no tag.
    EXPECT_TRUE(got[i].tagged) << what << " annotation " << i;
    EXPECT_FALSE(want[i].tagged) << what << " annotation " << i;
    EXPECT_TRUE(got[i].label.empty()) << what << " annotation " << i;
    // Field-for-field equality, with the tagged text produced at read time.
    EXPECT_EQ(core::annotation_text(got[i]), want[i].label)
        << what << " annotation " << i;
    EXPECT_EQ(got[i].time, want[i].time) << what << " annotation " << i;
    EXPECT_EQ(got[i].total_messages, want[i].total_messages)
        << what << " annotation " << i;
    EXPECT_EQ(got[i].max_causal_depth, want[i].max_causal_depth)
        << what << " annotation " << i;
  }
}

std::vector<sim::SimConfig> delay_configs() {
  std::vector<sim::SimConfig> configs;
  for (const sim::DelayModel& delay :
       {sim::DelayModel::unit(), sim::DelayModel::uniform(1, 9)}) {
    sim::SimConfig cfg;
    cfg.delay = delay;
    cfg.seed = 41;
    configs.push_back(cfg);
  }
  return configs;
}

TEST(AnnotationEquivalenceTest, SingleImprovementUnitAndUniformDelays) {
  support::Rng rng(53);
  const graph::Graph g = graph::make_gnp_connected(48, 0.15, rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  const core::Options options;
  for (const sim::SimConfig& cfg : delay_configs()) {
    expect_annotations_equivalent(g, start, options, cfg, cfg.delay.name());
  }
}

TEST(AnnotationEquivalenceTest, ConcurrentModeEmitsIdenticalSubImproves) {
  support::Rng rng(59);
  const graph::Graph g = graph::make_gnp_connected(48, 0.15, rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  core::Options options;
  options.mode = core::EngineMode::kConcurrent;
  for (const sim::SimConfig& cfg : delay_configs()) {
    expect_annotations_equivalent(g, start, options, cfg, cfg.delay.name());
  }
}

TEST(AnnotationEquivalenceTest, FormatterCoversEveryKind) {
  // Direct formatter pinning: each kind renders the exact seed spelling.
  using sim::AnnotationTag;
  EXPECT_EQ(core::format_round_note(core::note_round_start(7)), "round=7");
  EXPECT_EQ(core::format_round_note(core::note_decide(7, 5, 4, 123)),
            "decide round=7 k_all=5 best=4 target=123");
  EXPECT_EQ(core::format_round_note(core::note_decide(2, 3, -1, -1)),
            "decide round=2 k_all=3 best=-1 target=-1");
  EXPECT_EQ(core::format_round_note(core::note_cut(7, 5)),
            "cut round=7 k=5");
  EXPECT_EQ(core::format_round_note(core::note_wave_done(7, true)),
            "wave_done round=7 has_candidate=1");
  EXPECT_EQ(core::format_round_note(core::note_wave_done(7, false)),
            "wave_done round=7 has_candidate=0");
  EXPECT_EQ(core::format_round_note(core::note_improve(7, 5)),
            "improve round=7 k=5");
  EXPECT_EQ(core::format_round_note(core::note_sub_improve(7, 5)),
            "subimprove round=7 k=5");
  EXPECT_EQ(core::format_round_note(core::note_terminate(
                9, core::StopReason::kLocallyOptimal, 4)),
            "terminate round=9 reason=locally_optimal k_all=4");
}

TEST(AnnotationEquivalenceTest, RunResultMarksCarryFormattedTextAndTags) {
  // End-to-end: run_mdst's marks expose both the formatted label and the
  // structured tag of each checkpoint.
  support::Rng rng(61);
  const graph::Graph g = graph::make_gnp_connected(32, 0.2, rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  const core::RunResult run = core::run_mdst(g, start);
  ASSERT_FALSE(run.marks.empty());
  for (const core::RoundMark& mark : run.marks) {
    ASSERT_TRUE(mark.tagged);
    EXPECT_EQ(mark.label, core::format_round_note(mark.tag));
  }
  EXPECT_EQ(run.marks.front().tag.kind,
            static_cast<std::uint8_t>(core::RoundNote::kRoundStart));
  EXPECT_EQ(run.marks.back().tag.kind,
            static_cast<std::uint8_t>(core::RoundNote::kTerminate));
}

}  // namespace
}  // namespace mdst
