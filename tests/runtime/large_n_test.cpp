// The large-n sweep configuration (SimConfig::large_n_sweep): the
// max_messages override is respected, a tripped livelock cap reports the
// *configured* cap in its error message, and an MDST run at n >= 1024 —
// which needs several million messages — completes under the raised cap.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/engine.hpp"
#include "runtime/simulator.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace mdst::sim {
namespace {

struct Ping {
  static constexpr const char* kName = "Ping";
  std::size_t ids_carried() const { return 0; }
};

/// Two nodes bouncing a ping forever — guaranteed to hit any finite cap.
struct PingPongProto {
  using Message = std::variant<Ping>;
  struct Node {
    explicit Node(const NodeEnv& env) : env(env) {}
    void on_start(IContext<Message>& ctx) {
      if (env.id == 0) ctx.send(1, Ping{});
    }
    void on_message(IContext<Message>& ctx, NodeId from, const Message&) {
      ctx.send(from, Ping{});
    }
    NodeEnv env;
  };
};

graph::Graph two_nodes() {
  graph::Graph g(2);
  g.add_edge(0, 1);
  return g;
}

TEST(LargeNConfigTest, MaxMessagesOverrideIsRespected) {
  SimConfig config;
  config.max_messages = 137;
  Simulator<PingPongProto> sim(
      two_nodes(), [](const NodeEnv& env) { return PingPongProto::Node(env); },
      config);
  EXPECT_THROW(sim.run(), ContractViolation);
  // The ping-pong is serial (one message in flight), so the cap fires on
  // send attempt max_messages + 1, after exactly max_messages deliveries.
  EXPECT_EQ(sim.metrics().total_messages(), config.max_messages);
}

TEST(LargeNConfigTest, CapErrorMessageNamesTheConfiguredCap) {
  SimConfig config;
  config.max_messages = 4242;
  Simulator<PingPongProto> sim(
      two_nodes(), [](const NodeEnv& env) { return PingPongProto::Node(env); },
      config);
  try {
    sim.run();
    FAIL() << "livelock cap did not fire";
  } catch (const mdst::ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("4242"), std::string::npos)
        << "cap error must include the configured cap, got: " << what;
    EXPECT_NE(what.find("large_n_sweep"), std::string::npos)
        << "cap error should point at the sweep config, got: " << what;
  }
}

TEST(LargeNConfigTest, LargeNSweepRaisesTheCap) {
  const SimConfig config = SimConfig::large_n_sweep();
  EXPECT_GT(config.max_messages, SimConfig{}.max_messages);
  // Comfortably above the ~89M messages an n=4096 MDST run needs.
  EXPECT_GE(config.max_messages, 200'000'000u);
}

TEST(LargeNConfigTest, MdstAt1024CompletesUnderRaisedCap) {
  // n=1024 needs ~5.7M messages — a healthy large-n run, far below the
  // raised cap but enough to prove the override reaches the engine.
  support::Rng rng(21);
  graph::Graph g =
      graph::make_gnp_connected(1024, 8.0 / 1023.0, rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  const mdst::core::RunResult run =
      mdst::core::run_mdst(g, start, {}, SimConfig::large_n_sweep());
  EXPECT_TRUE(run.tree.spans(g));
  EXPECT_GT(run.metrics.total_messages(), 1'000'000u);
  EXPECT_LT(run.metrics.total_messages(),
            SimConfig::large_n_sweep().max_messages);
  EXPECT_LE(run.final_degree, run.initial_degree);
}

}  // namespace
}  // namespace mdst::sim
