// Metering equivalence: the engine's batched, descriptor-table-driven
// Metrics must be field-for-field identical to a straightforward reference
// meter that accumulates every statistic per delivery, seed-style.
//
// The production path (SimCore::account_delivery) looks each message's
// identity count up in the compile-time MessageDescriptor table, bumps flat
// per-type counters, and derives totals/bit complexity/maxima at read time;
// the reference meter below stores every derived quantity directly, updated
// once per delivered message. This test drives both from the *same*
// delivery stream — a hand-rolled copy of Simulator<P>::step around a
// SimCore — for the MDegST protocol (dynamic-ids types, annotations) and
// the flood baseline (all-static types), under unit and uniform delays,
// and asserts every public Metrics field matches, including annotations.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/node.hpp"
#include "runtime/sim_core.hpp"
#include "spanning/flood_st.hpp"
#include "support/rng.hpp"

namespace mdst::sim {
namespace {

/// The seed engine's meter: one call per delivery, every statistic stored.
struct ReferenceMeter {
  ReferenceMeter(std::size_t type_count, std::size_t id_bits)
      : per_type(type_count, 0), id_bits(id_bits) {}

  void on_deliver(std::size_t type_index, std::size_t ids,
                  std::uint64_t causal_depth, Time now) {
    ++total_messages;
    ++per_type[type_index];
    const std::uint64_t bits = Metrics::kTagBits + ids * id_bits;
    total_bits += bits;
    if (bits > max_message_bits) max_message_bits = bits;
    if (ids > max_ids) max_ids = ids;
    if (causal_depth > max_causal_depth) max_causal_depth = causal_depth;
    if (now > last_delivery_time) last_delivery_time = now;
  }

  /// Mirror of Metrics::annotate/annotate_tag: copy the production
  /// annotation's identity (time, label, tag) but recompute the counter
  /// snapshot from this meter's own state.
  void annotate(const Annotation& production) {
    Annotation copy = production;
    copy.total_messages = total_messages;
    copy.max_causal_depth = max_causal_depth;
    annotations.push_back(std::move(copy));
  }

  std::uint64_t total_messages = 0;
  std::vector<std::uint64_t> per_type;
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;
  std::uint64_t max_ids = 0;
  std::uint64_t max_causal_depth = 0;
  Time last_delivery_time = 0;
  std::vector<Annotation> annotations;
  std::size_t id_bits;
};

/// Run protocol P on a SimCore with the production metering, feeding the
/// reference meter the identical delivery stream, then compare every field.
template <typename P, typename Factory>
void expect_metering_equivalent(const graph::Graph& g, Factory factory,
                                const SimConfig& config, const char* what) {
  using Message = typename P::Message;
  SimCore<Message> core(g, config);
  std::vector<typename P::Node> nodes;
  nodes.reserve(core.node_count());
  for (const NodeEnv& env : core.envs()) nodes.push_back(factory(env));

  ReferenceMeter reference(std::variant_size_v<Message>,
                           id_bits_for(g.vertex_count()));
  std::size_t annotations_seen = 0;
  while (!core.idle()) {
    const auto delivery = core.pop_event();
    Event<Message>& ev = *delivery.event;
    SimContext<Message> ctx(&core, ev.to, ev.from_index);
    auto& node = nodes[static_cast<std::size_t>(ev.to)];
    if (ev.kind == EventKind::kStart) {
      node.on_start(ctx);
    } else {
      // Reference side: the straightforward per-delivery visit.
      const std::size_t ids = std::visit(
          [](const auto& m) { return m.ids_carried(); }, ev.payload);
      core.account_delivery(ev);  // production: table-driven + batched
      reference.on_deliver(ev.payload.index(), ids, ev.causal_depth,
                           core.now());
      node.on_message(ctx, ev.from, ev.payload);
    }
    core.release(delivery.ref);
    // Any annotation recorded during this step saw the post-accounting
    // totals of exactly this delivery, which the reference now also has.
    const auto& annotations = core.metrics().annotations();
    for (; annotations_seen < annotations.size(); ++annotations_seen) {
      reference.annotate(annotations[annotations_seen]);
    }
  }

  const Metrics& metered = core.metrics();
  EXPECT_GT(metered.total_messages(), 0u) << what;
  EXPECT_EQ(metered.total_messages(), reference.total_messages) << what;
  EXPECT_EQ(metered.per_type(), reference.per_type) << what;
  EXPECT_EQ(metered.total_bits(), reference.total_bits) << what;
  EXPECT_EQ(metered.max_message_bits(), reference.max_message_bits) << what;
  EXPECT_EQ(metered.max_ids_carried(), reference.max_ids) << what;
  EXPECT_EQ(metered.max_causal_depth(), reference.max_causal_depth) << what;
  EXPECT_EQ(metered.last_delivery_time(), reference.last_delivery_time)
      << what;
  ASSERT_EQ(metered.annotations().size(), reference.annotations.size())
      << what;
  for (std::size_t i = 0; i < reference.annotations.size(); ++i) {
    const Annotation& got = metered.annotations()[i];
    const Annotation& want = reference.annotations[i];
    EXPECT_EQ(got.time, want.time) << what << " annotation " << i;
    EXPECT_EQ(got.total_messages, want.total_messages)
        << what << " annotation " << i;
    EXPECT_EQ(got.max_causal_depth, want.max_causal_depth)
        << what << " annotation " << i;
    EXPECT_EQ(got.label, want.label) << what << " annotation " << i;
    EXPECT_EQ(got.tagged, want.tagged) << what << " annotation " << i;
    EXPECT_TRUE(got.tag == want.tag) << what << " annotation " << i;
  }
}

std::vector<SimConfig> metering_configs() {
  std::vector<SimConfig> configs;
  for (const DelayModel& delay :
       {DelayModel::unit(), DelayModel::uniform(1, 9)}) {
    SimConfig cfg;
    cfg.delay = delay;
    cfg.seed = 23;
    configs.push_back(cfg);
  }
  return configs;
}

TEST(MetricsEquivalenceTest, MdstMatchesReferenceMeter) {
  // MDegST exercises the dynamic-ids fallback (Cut/Bfs/CousinReply/BfsBack
  // carry payload-dependent identity counts) and protocol annotations.
  support::Rng rng(31);
  const graph::Graph g = graph::make_gnp_connected(48, 0.15, rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  const core::Options options{};
  for (const SimConfig& cfg : metering_configs()) {
    expect_metering_equivalent<core::Protocol>(
        g,
        [&](const NodeEnv& env) {
          return core::Protocol::Node(env, start.parent(env.id),
                                      start.children(env.id), options);
        },
        cfg, cfg.delay.name());
  }
}

TEST(MetricsEquivalenceTest, FloodMatchesReferenceMeter) {
  // Flood's message set is entirely static-count: every delivery takes the
  // one-increment fast path.
  graph::Graph g = graph::make_grid(9, 9);
  for (const SimConfig& cfg : metering_configs()) {
    expect_metering_equivalent<spanning::flood::Protocol>(
        g,
        [](const NodeEnv& env) {
          return spanning::flood::Node(env, env.id == 0);
        },
        cfg, cfg.delay.name());
  }
}

}  // namespace
}  // namespace mdst::sim
