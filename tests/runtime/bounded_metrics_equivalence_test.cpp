// Streaming (bounded) vs full metrics equivalence: selecting an
// annotation cap (SimConfig::annotation_cap) must change *only* how many
// annotations are retained — every scalar the campaign tables and the
// stop logic consume (message totals, per-type counts, bit complexity,
// causal depth, delivery times, rounds, improvements, stop reason, final
// degree) must be bit-identical to the unbounded run, and the retained
// ring must be exactly the newest-`cap` suffix of the full annotation
// list. Covered for the MDegST engine (classic and sharded K ∈ {1, 4})
// and the flood-ST baseline, under unit and uniform delays.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/engine.hpp"
#include "runtime/metrics.hpp"
#include "spanning/flood_st.hpp"
#include "support/rng.hpp"

namespace mdst::sim {
namespace {

/// Every comparable scalar of the two meters, plus the suffix property of
/// the bounded ring against the full run's annotation list.
void expect_equivalent(const Metrics& full, const Metrics& capped,
                       std::size_t cap) {
  EXPECT_EQ(full.total_messages(), capped.total_messages());
  EXPECT_EQ(full.per_type(), capped.per_type());
  EXPECT_EQ(full.total_bits(), capped.total_bits());
  EXPECT_EQ(full.max_message_bits(), capped.max_message_bits());
  EXPECT_EQ(full.max_ids_carried(), capped.max_ids_carried());
  EXPECT_EQ(full.max_causal_depth(), capped.max_causal_depth());
  EXPECT_EQ(full.last_delivery_time(), capped.last_delivery_time());
  // Both meters saw every annotation; only retention differs.
  EXPECT_EQ(full.annotations_recorded(), capped.annotations_recorded());
  EXPECT_EQ(full.annotations_recorded(), full.annotations().size());
  const std::vector<Annotation>& all = full.annotations();
  const std::vector<Annotation>& kept = capped.annotations();
  ASSERT_EQ(kept.size(), std::min<std::size_t>(cap, all.size()));
  const std::size_t offset = all.size() - kept.size();
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const Annotation& want = all[offset + i];
    const Annotation& got = kept[i];
    EXPECT_EQ(got.time, want.time) << "annotation " << i;
    EXPECT_EQ(got.total_messages, want.total_messages) << "annotation " << i;
    EXPECT_EQ(got.max_causal_depth, want.max_causal_depth)
        << "annotation " << i;
    EXPECT_EQ(got.tagged, want.tagged) << "annotation " << i;
    EXPECT_TRUE(got.tag == want.tag) << "annotation " << i;
    EXPECT_EQ(got.label, want.label) << "annotation " << i;
  }
}

TEST(BoundedMetricsEquivalenceTest, MdstMatchesFullRunEverywhere) {
  constexpr std::size_t kCap = 8;
  support::Rng graph_rng(0xb0a7u);
  const graph::Graph g = graph::make_gnp_connected(48, 0.12, graph_rng);
  for (const DelayModel& delay :
       {DelayModel::unit(), DelayModel::uniform(1, 4)}) {
    for (const std::uint32_t shards : {0u, 1u, 4u}) {
      support::Rng full_tree_rng(0x7eedu);
      support::Rng capped_tree_rng(0x7eedu);
      const graph::RootedTree initial_full = graph::build_initial_tree(
          g, graph::InitialTreeKind::kBfs, full_tree_rng);
      const graph::RootedTree initial_capped = graph::build_initial_tree(
          g, graph::InitialTreeKind::kBfs, capped_tree_rng);
      core::Options options;
      SimConfig config;
      config.delay = delay;
      config.seed = 0x5eedu;
      config.shards = shards;
      config.annotation_cap = 0;
      const core::RunResult full =
          core::run_mdst(g, initial_full, options, config);
      config.annotation_cap = kCap;
      const core::RunResult capped =
          core::run_mdst(g, initial_capped, options, config);
      SCOPED_TRACE("shards=" + std::to_string(shards));
      EXPECT_EQ(full.stop_reason, capped.stop_reason);
      EXPECT_EQ(full.rounds, capped.rounds);
      EXPECT_EQ(full.improvements, capped.improvements);
      EXPECT_EQ(full.initial_degree, capped.initial_degree);
      EXPECT_EQ(full.final_degree, capped.final_degree);
      // A real MDegST run annotates once per round: the cap must bind.
      EXPECT_GT(full.metrics.annotations_recorded(), kCap);
      expect_equivalent(full.metrics, capped.metrics, kCap);
    }
  }
}

TEST(BoundedMetricsEquivalenceTest, FloodStMatchesFullRun) {
  constexpr std::size_t kCap = 4;
  support::Rng graph_rng(0xf100du);
  const graph::Graph g = graph::make_gnp_connected(64, 0.1, graph_rng);
  for (const DelayModel& delay :
       {DelayModel::unit(), DelayModel::uniform(1, 4)}) {
    SimConfig config;
    config.delay = delay;
    config.seed = 0x5eedu;
    config.annotation_cap = 0;
    const spanning::SpanningRun full = spanning::run_flood_st(g, 0, config);
    config.annotation_cap = kCap;
    const spanning::SpanningRun capped = spanning::run_flood_st(g, 0, config);
    ASSERT_EQ(full.tree.vertex_count(), capped.tree.vertex_count());
    EXPECT_EQ(full.tree.root(), capped.tree.root());
    const auto n = static_cast<graph::VertexId>(g.vertex_count());
    for (graph::VertexId v = 0; v < n; ++v) {
      EXPECT_EQ(full.tree.parent(v), capped.tree.parent(v)) << "vertex " << v;
    }
    expect_equivalent(full.metrics, capped.metrics, kCap);
  }
}

TEST(BoundedMetricsEquivalenceTest, CapLargerThanRunKeepsEverything) {
  support::Rng graph_rng(0xcafeu);
  const graph::Graph g = graph::make_gnp_connected(32, 0.15, graph_rng);
  support::Rng full_rng(0x7eedu);
  support::Rng capped_rng(0x7eedu);
  const graph::RootedTree initial_full =
      graph::build_initial_tree(g, graph::InitialTreeKind::kBfs, full_rng);
  const graph::RootedTree initial_capped =
      graph::build_initial_tree(g, graph::InitialTreeKind::kBfs, capped_rng);
  core::Options options;
  SimConfig config;
  config.seed = 0x5eedu;
  const core::RunResult full =
      core::run_mdst(g, initial_full, options, config);
  config.annotation_cap = 1 << 20;  // far above any run this size
  const core::RunResult capped =
      core::run_mdst(g, initial_capped, options, config);
  expect_equivalent(full.metrics, capped.metrics, 1 << 20);
}

}  // namespace
}  // namespace mdst::sim
