// Devirtualization equivalence: the simulator runs the MDegST node
// instantiated on the concrete SimContext (no vtable on send/now). This
// suite proves that path is behaviourally identical to the virtual
// IContext binding by running the same protocol through an adapter that
// erases the context back to IContext& — traces, metrics, and final trees
// must match row for row.
#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/node.hpp"
#include "runtime/simulator.hpp"
#include "support/rng.hpp"

namespace mdst {
namespace {

using core::Message;

/// Hosts the IContext-bound node; the simulator hands it a SimContext&,
/// which binds to the IContext& parameters through the base class — i.e.
/// every send/now goes through the vtable, like the pre-devirtualization
/// engine.
struct VirtualNodeAdapter {
  core::Node inner;  // BasicNode<sim::IContext<Message>>

  VirtualNodeAdapter(const sim::NodeEnv& env, sim::NodeId parent,
                     std::vector<sim::NodeId> children, core::Options options)
      : inner(env, parent, std::move(children), options) {}

  void on_start(sim::IContext<Message>& ctx) { inner.on_start(ctx); }
  void on_message(sim::IContext<Message>& ctx, sim::NodeId from,
                  const Message& m) {
    inner.on_message(ctx, from, m);
  }
};

struct VirtualProtocol {
  using Message = core::Message;
  using Node = VirtualNodeAdapter;
};

template <typename P, typename MakeNode>
sim::Simulator<P> run_protocol(const graph::Graph& g,
                               const graph::RootedTree& start,
                               const MakeNode& make) {
  sim::SimConfig config;
  config.trace_cap = 1'000'000;
  sim::Simulator<P> simulation(g, make, config);
  simulation.run();
  return simulation;
}

TEST(DevirtualizationTest, ConcreteAndVirtualContextsProduceIdenticalRuns) {
  support::Rng rng(17);
  const graph::Graph g = graph::make_gnp_connected(64, 0.12, rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  const core::Options options;

  auto fast = run_protocol<core::Protocol>(
      g, start, [&](const sim::NodeEnv& env) {
        return core::Protocol::Node(env, start.parent(env.id),
                                    start.children(env.id), options);
      });
  auto virt = run_protocol<VirtualProtocol>(
      g, start, [&](const sim::NodeEnv& env) {
        return VirtualNodeAdapter(env, start.parent(env.id),
                                  start.children(env.id), options);
      });

  // Metrics equality: same message counts per type, bits, causal depth.
  ASSERT_EQ(fast.metrics().total_messages(), virt.metrics().total_messages());
  EXPECT_EQ(fast.metrics().per_type(), virt.metrics().per_type());
  EXPECT_EQ(fast.metrics().total_bits(), virt.metrics().total_bits());
  EXPECT_EQ(fast.metrics().max_causal_depth(),
            virt.metrics().max_causal_depth());
  EXPECT_EQ(fast.now(), virt.now());

  // Trace equality: identical rows in identical order.
  const auto& fr = fast.trace().rows();
  const auto& vr = virt.trace().rows();
  ASSERT_EQ(fr.size(), vr.size());
  for (std::size_t i = 0; i < fr.size(); ++i) {
    EXPECT_EQ(fr[i].send_time, vr[i].send_time) << "row " << i;
    EXPECT_EQ(fr[i].deliver_time, vr[i].deliver_time) << "row " << i;
    EXPECT_EQ(fr[i].from, vr[i].from) << "row " << i;
    EXPECT_EQ(fr[i].to, vr[i].to) << "row " << i;
    EXPECT_EQ(fr[i].type_index, vr[i].type_index) << "row " << i;
    EXPECT_EQ(fr[i].causal_depth, vr[i].causal_depth) << "row " << i;
  }

  // Same final tree, node by node.
  ASSERT_EQ(fast.node_count(), virt.node_count());
  for (std::size_t v = 0; v < fast.node_count(); ++v) {
    const auto id = static_cast<sim::NodeId>(v);
    EXPECT_EQ(fast.node(id).parent(), virt.node(id).inner.parent());
    const std::vector<sim::NodeId> fast_kids(fast.node(id).children().begin(),
                                             fast.node(id).children().end());
    const std::vector<sim::NodeId> virt_kids(
        virt.node(id).inner.children().begin(),
        virt.node(id).inner.children().end());
    EXPECT_EQ(fast_kids, virt_kids);
    EXPECT_TRUE(fast.node(id).done());
  }
}

TEST(DevirtualizationTest, EquivalenceHoldsUnderNonUnitDelays) {
  // Non-unit delays activate the FIFO floors and rng-driven delivery times;
  // the two context bindings must still interleave identically.
  support::Rng rng(29);
  const graph::Graph g = graph::make_gnp_connected(40, 0.15, rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  const core::Options options;
  sim::SimConfig config;
  config.delay = sim::DelayModel::uniform(1, 9);
  config.seed = 33;
  config.trace_cap = 1'000'000;

  sim::Simulator<core::Protocol> fast(
      g,
      [&](const sim::NodeEnv& env) {
        return core::Protocol::Node(env, start.parent(env.id),
                                    start.children(env.id), options);
      },
      config);
  fast.run();
  sim::Simulator<VirtualProtocol> virt(
      g,
      [&](const sim::NodeEnv& env) {
        return VirtualNodeAdapter(env, start.parent(env.id),
                                  start.children(env.id), options);
      },
      config);
  virt.run();

  ASSERT_EQ(fast.metrics().total_messages(), virt.metrics().total_messages());
  EXPECT_EQ(fast.metrics().per_type(), virt.metrics().per_type());
  const auto& fr = fast.trace().rows();
  const auto& vr = virt.trace().rows();
  ASSERT_EQ(fr.size(), vr.size());
  for (std::size_t i = 0; i < fr.size(); ++i) {
    EXPECT_EQ(fr[i].deliver_time, vr[i].deliver_time) << "row " << i;
    EXPECT_EQ(fr[i].from, vr[i].from) << "row " << i;
    EXPECT_EQ(fr[i].to, vr[i].to) << "row " << i;
    EXPECT_EQ(fr[i].type_index, vr[i].type_index) << "row " << i;
  }
}

}  // namespace
}  // namespace mdst
