// Adversity subsystem (runtime/fault.hpp) at the engine level, with a small
// chatter protocol — protocol-level behavior under faults lives in
// tests/mdst/wedge_watchdog_test.cpp.
//
// The load-bearing guarantee pinned here: an *inactive* plan is free — the
// trace, metrics, and RNG draws of `faults = none` are byte-identical to a
// run that never heard of the subsystem — and an active-but-never-firing
// plan (crash scheduled far past the last delivery) changes delivery times
// not at all.
#include <gtest/gtest.h>

#include <variant>
#include <vector>

#include "graph/generators.hpp"
#include "runtime/fault.hpp"
#include "support/assert.hpp"
#include "runtime/simulator.hpp"
#include "support/rng.hpp"

namespace mdst::sim {
namespace {

struct Ping {
  static constexpr const char* kName = "Ping";
  int ttl = 0;
  std::size_t ids_carried() const { return 1; }
};

// Bounded flood: every delivery re-sends to all neighbors with ttl-1, so
// traffic crosses every link in both directions many times.
struct FloodProto {
  using Message = std::variant<Ping>;
  class Node {
   public:
    explicit Node(const NodeEnv& env) : env_(env) {}
    void on_start(IContext<Message>& ctx) {
      for (const NeighborInfo& nb : env_.neighbors) ctx.send(nb.id, Ping{2});
    }
    void on_message(IContext<Message>& ctx, NodeId /*from*/,
                    const Message& m) {
      ++received_;
      const int ttl = std::get<Ping>(m).ttl;
      if (ttl > 0) {
        for (const NeighborInfo& nb : env_.neighbors) {
          ctx.send(nb.id, Ping{ttl - 1});
        }
      }
    }
    int received() const { return received_; }
    /// Corruption hook (docs/faults.md): scramble the only protocol state
    /// this node has. Returns true so the engine meters the scramble.
    bool corrupt(support::Rng& rng) {
      received_ = static_cast<int>(rng.next_below(1'000'000));
      was_corrupted_ = true;
      return true;
    }
    bool was_corrupted() const { return was_corrupted_; }

   private:
    NodeEnv env_;
    int received_ = 0;
    bool was_corrupted_ = false;
  };
};

graph::Graph test_graph() {
  support::Rng rng(321);
  return graph::make_gnp_connected(24, 0.2, rng);
}

SimConfig traced_config() {
  SimConfig cfg;
  cfg.delay = DelayModel::uniform(1, 6);
  cfg.seed = 7;
  cfg.trace_cap = 1'000'000;
  return cfg;
}

using Sim = Simulator<FloodProto>;

Sim make_sim(const graph::Graph& g, const SimConfig& cfg) {
  return Sim(g, [](const NodeEnv& env) { return FloodProto::Node(env); }, cfg);
}

void expect_traces_equal(const Trace& a, const Trace& b, const char* what) {
  ASSERT_EQ(a.rows().size(), b.rows().size()) << what;
  for (std::size_t i = 0; i < a.rows().size(); ++i) {
    const TraceRow& ra = a.rows()[i];
    const TraceRow& rb = b.rows()[i];
    ASSERT_EQ(ra.send_time, rb.send_time) << what << " row " << i;
    ASSERT_EQ(ra.deliver_time, rb.deliver_time) << what << " row " << i;
    ASSERT_EQ(ra.from, rb.from) << what << " row " << i;
    ASSERT_EQ(ra.to, rb.to) << what << " row " << i;
    ASSERT_EQ(ra.type_index, rb.type_index) << what << " row " << i;
    ASSERT_EQ(ra.causal_depth, rb.causal_depth) << what << " row " << i;
  }
}

TEST(FaultPlanTest, ActivityPredicate) {
  EXPECT_FALSE(FaultPlan{}.active());
  FaultPlan crash;
  crash.crash_time = 10;
  crash.crash_count = 1;
  EXPECT_TRUE(crash.active());
  FaultPlan explicit_crash;
  explicit_crash.crash_nodes = {3};
  EXPECT_TRUE(explicit_crash.active());
  FaultPlan loss;
  loss.loss = 0.01;
  EXPECT_TRUE(loss.active());
  FaultPlan churn;
  churn.churn_up = 4;
  churn.churn_down = 2;
  EXPECT_TRUE(churn.active());
  FaultPlan capped;
  capped.max_time = 100;
  EXPECT_TRUE(capped.active());
  // Knobs alone (timer, seed, fifo fraction 0) do not activate a plan.
  FaultPlan knobs;
  knobs.retransmit_timeout = 9;
  knobs.seed = 42;
  EXPECT_FALSE(knobs.active());
}

TEST(FaultTest, InactivePlanIsByteIdenticalToNoPlan) {
  const graph::Graph g = test_graph();
  const SimConfig plain = traced_config();
  SimConfig with_default_plan = traced_config();
  with_default_plan.faults = FaultPlan{};
  Sim a = make_sim(g, plain);
  Sim b = make_sim(g, with_default_plan);
  a.run();
  b.run();
  expect_traces_equal(a.trace(), b.trace(), "inactive plan");
  EXPECT_EQ(a.metrics().total_messages(), b.metrics().total_messages());
  EXPECT_EQ(a.metrics().last_delivery_time(),
            b.metrics().last_delivery_time());
  EXPECT_FALSE(a.trace().rows().empty());
  const FaultStats stats = b.fault_stats();
  EXPECT_EQ(stats.retransmits, 0u);
  EXPECT_EQ(stats.dropped_deliveries, 0u);
  EXPECT_EQ(stats.crash_set_size, 0u);
}

TEST(FaultTest, NeverFiringCrashLeavesDeliveriesUntouched) {
  // An active plan forces the fault engine into the send path; a crash
  // scheduled far past the last delivery (and no loss/churn) must still
  // change nothing observable — transform_delivery is identity then.
  const graph::Graph g = test_graph();
  Sim plain = make_sim(g, traced_config());
  plain.run();
  SimConfig cfg = traced_config();
  cfg.faults.crash_time = plain.metrics().last_delivery_time() + 1000;
  cfg.faults.crash_count = 3;
  Sim adverse = make_sim(g, cfg);
  adverse.run();
  expect_traces_equal(plain.trace(), adverse.trace(), "late crash");
  EXPECT_EQ(adverse.fault_stats().retransmits, 0u);
  EXPECT_EQ(adverse.fault_stats().dropped_deliveries, 0u);
  EXPECT_EQ(adverse.fault_stats().crash_set_size, 3u);
}

TEST(FaultTest, CrashedFromBirthNodeNeverHandlesOrSends) {
  const graph::Graph g = test_graph();
  SimConfig cfg = traced_config();
  cfg.faults.crash_time = 0;
  cfg.faults.crash_nodes = {5};
  Sim sim = make_sim(g, cfg);
  sim.run();
  EXPECT_TRUE(sim.crashed(5));
  // Every event addressed to node 5 (including its start) was dropped
  // before the handler: no trace row delivers to it, none originates at it.
  for (const TraceRow& row : sim.trace().rows()) {
    EXPECT_NE(row.to, NodeId{5});
    EXPECT_NE(row.from, NodeId{5});
  }
  const FaultStats stats = sim.fault_stats();
  EXPECT_EQ(stats.crash_set_size, 1u);
  // At least the start event and one neighbor ping were suppressed.
  EXPECT_GE(stats.dropped_deliveries, 2u);
  // Live nodes still ran: the flood reached everyone else.
  EXPECT_FALSE(sim.trace().rows().empty());
}

TEST(FaultTest, LossDelaysButNeverDropsSends) {
  const graph::Graph g = test_graph();
  Sim plain = make_sim(g, traced_config());
  plain.run();
  SimConfig cfg = traced_config();
  cfg.faults.loss = 0.3;
  cfg.faults.retransmit_timeout = 5;
  Sim lossy = make_sim(g, cfg);
  lossy.run();
  // ARQ semantics: same sends, same deliveries (count), later arrivals.
  ASSERT_EQ(plain.trace().rows().size(), lossy.trace().rows().size());
  EXPECT_GT(lossy.fault_stats().retransmits, 0u);
  EXPECT_EQ(lossy.fault_stats().dropped_deliveries, 0u);
  EXPECT_GE(lossy.metrics().last_delivery_time(),
            plain.metrics().last_delivery_time());
  // Every failed attempt costs exactly one timer period somewhere.
  std::uint64_t plain_latency = 0;
  std::uint64_t lossy_latency = 0;
  for (const TraceRow& row : plain.trace().rows()) {
    plain_latency += row.deliver_time - row.send_time;
  }
  for (const TraceRow& row : lossy.trace().rows()) {
    lossy_latency += row.deliver_time - row.send_time;
  }
  EXPECT_GE(lossy_latency, plain_latency);
}

TEST(FaultTest, ChurnedLinksDeliverOnlyInUpWindows) {
  const graph::Graph g = test_graph();
  SimConfig cfg = traced_config();
  cfg.faults.churn_up = 5;
  cfg.faults.churn_down = 3;
  Sim sim = make_sim(g, cfg);
  sim.run();
  EXPECT_GT(sim.fault_stats().retransmits, 0u);
  EXPECT_EQ(sim.fault_stats().dropped_deliveries, 0u);
  EXPECT_FALSE(sim.trace().rows().empty());
}

TEST(FaultTest, SameSeedSameFaultPattern) {
  const graph::Graph g = test_graph();
  SimConfig cfg = traced_config();
  cfg.faults.loss = 0.2;
  cfg.faults.churn_up = 6;
  cfg.faults.churn_down = 2;
  cfg.faults.crash_time = 40;
  cfg.faults.crash_count = 2;
  cfg.faults.seed = 0xabcd;
  Sim a = make_sim(g, cfg);
  Sim b = make_sim(g, cfg);
  a.run();
  b.run();
  expect_traces_equal(a.trace(), b.trace(), "same fault seed");
  EXPECT_EQ(a.fault_stats().retransmits, b.fault_stats().retransmits);
  EXPECT_EQ(a.fault_stats().dropped_deliveries,
            b.fault_stats().dropped_deliveries);
  for (NodeId v = 0; v < static_cast<NodeId>(g.vertex_count()); ++v) {
    EXPECT_EQ(a.crashed(v), b.crashed(v)) << "node " << v;
  }
}

TEST(FaultTest, FaultSeedIsItsOwnStream) {
  // Changing only the fault seed must leave the underlying delay draws
  // alone: the delivery time of a message is base delay (schedule stream)
  // plus ARQ offsets (fault stream). With loss = 0 and churn off there are
  // no ARQ offsets, so two different fault seeds (crash sets!) produce
  // runs whose common prefix of deliveries — before any crash fires —
  // matches tick for tick.
  const graph::Graph g = test_graph();
  SimConfig cfg_a = traced_config();
  cfg_a.faults.crash_time = 25;
  cfg_a.faults.crash_count = 1;
  cfg_a.faults.seed = 1;
  SimConfig cfg_b = cfg_a;
  cfg_b.faults.seed = 2;
  Sim a = make_sim(g, cfg_a);
  Sim b = make_sim(g, cfg_b);
  a.run();
  b.run();
  const std::size_t scan =
      std::min(a.trace().rows().size(), b.trace().rows().size());
  for (std::size_t i = 0; i < scan; ++i) {
    const TraceRow& ra = a.trace().rows()[i];
    if (ra.deliver_time >= 25) break;  // crash divergence allowed from here
    const TraceRow& rb = b.trace().rows()[i];
    ASSERT_EQ(ra.deliver_time, rb.deliver_time) << "row " << i;
    ASSERT_EQ(ra.from, rb.from) << "row " << i;
    ASSERT_EQ(ra.to, rb.to) << "row " << i;
  }
}

TEST(FaultTest, NonFifoFractionExemptsEdgesFromFloors) {
  // With fraction 1.0 every edge may reorder; the run stays deterministic
  // per seed and delivers the same number of messages.
  const graph::Graph g = test_graph();
  SimConfig cfg = traced_config();
  cfg.faults.non_fifo_fraction = 1.0;
  Sim a = make_sim(g, cfg);
  Sim b = make_sim(g, cfg);
  a.run();
  b.run();
  expect_traces_equal(a.trace(), b.trace(), "non-fifo exemption");
  Sim plain = make_sim(g, traced_config());
  plain.run();
  EXPECT_EQ(plain.trace().rows().size(), a.trace().rows().size());
}

TEST(FaultTest, RunOutcomeNames) {
  EXPECT_STREQ(to_string(RunOutcome::kOk), "ok");
  EXPECT_STREQ(to_string(RunOutcome::kReRooted), "re_rooted");
  EXPECT_STREQ(to_string(RunOutcome::kWedged), "wedged");
}

TEST(FaultTest, BadPlansAreRejected) {
  const graph::Graph g = test_graph();
  const auto build = [&](const FaultPlan& plan) {
    SimConfig cfg = traced_config();
    cfg.faults = plan;
    Sim sim = make_sim(g, cfg);
    (void)sim;
  };
  // loss = 1.0 is legal — the ARQ layer still delivers through the attempt
  // cap (CertainLossStillDeliversThroughArqCap below); beyond-probability
  // values are not.
  FaultPlan over_loss;
  over_loss.loss = 1.5;
  EXPECT_THROW(build(over_loss), ContractViolation);
  FaultPlan no_attempts;
  no_attempts.loss = 0.5;
  no_attempts.arq_attempt_cap = 0;
  EXPECT_THROW(build(no_attempts), ContractViolation);
  FaultPlan never_up;
  never_up.churn_up = 0;
  never_up.churn_down = 3;
  EXPECT_THROW(build(never_up), ContractViolation);
  FaultPlan overfull;
  overfull.non_fifo_fraction = 1.5;
  EXPECT_THROW(build(overfull), ContractViolation);
  FaultPlan no_timer;
  no_timer.loss = 0.1;
  no_timer.retransmit_timeout = 0;
  EXPECT_THROW(build(no_timer), ContractViolation);
  FaultPlan ghost;
  ghost.crash_nodes = {static_cast<NodeId>(g.vertex_count())};
  EXPECT_THROW(build(ghost), ContractViolation);
  FaultPlan ghost_corrupt;
  ghost_corrupt.corrupt_time = 1;
  ghost_corrupt.corrupt_nodes = {static_cast<NodeId>(g.vertex_count())};
  EXPECT_THROW(build(ghost_corrupt), ContractViolation);
}

TEST(FaultTest, CrashAtExactlyTheLastDeliveryTick) {
  // Edge case: the crash fires on the very tick the run would otherwise
  // finish on. The run must still terminate cleanly (no wedge in a plain
  // flood — there is nothing to wait for), with the crash set drawn and
  // any same-tick deliveries to the casualties suppressed, and the whole
  // thing must be deterministic per seed.
  const graph::Graph g = test_graph();
  Sim plain = make_sim(g, traced_config());
  plain.run();
  SimConfig cfg = traced_config();
  cfg.faults.crash_time = plain.metrics().last_delivery_time();
  cfg.faults.crash_count = 2;
  Sim a = make_sim(g, cfg);
  Sim b = make_sim(g, cfg);
  a.run();
  b.run();
  expect_traces_equal(a.trace(), b.trace(), "terminate-tick crash");
  EXPECT_EQ(a.fault_stats().crash_set_size, 2u);
  // The prefix strictly before the crash tick matches the plain run.
  const std::size_t scan =
      std::min(plain.trace().rows().size(), a.trace().rows().size());
  for (std::size_t i = 0; i < scan; ++i) {
    const TraceRow& rp = plain.trace().rows()[i];
    if (rp.deliver_time >= cfg.faults.crash_time) break;
    const TraceRow& ra = a.trace().rows()[i];
    ASSERT_EQ(rp.deliver_time, ra.deliver_time) << "row " << i;
    ASSERT_EQ(rp.to, ra.to) << "row " << i;
  }
}

TEST(FaultTest, CorruptOnCrashedNodeIsANoOp) {
  // A target that is already crashed when the corruption tick arrives must
  // not have its hook run: crash-stop nodes hold no live state to scramble,
  // and the corrupted_nodes meter counts only hooks that actually fired.
  const graph::Graph g = test_graph();
  SimConfig cfg = traced_config();
  cfg.faults.crash_time = 0;
  cfg.faults.crash_nodes = {5};
  cfg.faults.corrupt_time = 10;
  cfg.faults.corrupt_nodes = {5};
  Sim sim = make_sim(g, cfg);
  sim.run();
  EXPECT_TRUE(sim.crashed(5));
  EXPECT_EQ(sim.fault_stats().corrupted_nodes, 0u);
  EXPECT_FALSE(sim.node(5).was_corrupted());
  // The same target, not crashed, is scrambled exactly once.
  SimConfig live_cfg = traced_config();
  live_cfg.faults.corrupt_time = 10;
  live_cfg.faults.corrupt_nodes = {5};
  Sim live = make_sim(g, live_cfg);
  live.run();
  EXPECT_EQ(live.fault_stats().corrupted_nodes, 1u);
  EXPECT_TRUE(live.node(5).was_corrupted());
}

TEST(FaultTest, CertainLossStillDeliversThroughArqCap) {
  // loss = 1.0: every attempt draw fails, so every message rides the ARQ
  // ladder to the attempt cap and then delivers anyway (the cap bounds the
  // worst-case added latency; it never silently drops — docs/faults.md).
  const graph::Graph g = test_graph();
  Sim plain = make_sim(g, traced_config());
  plain.run();
  SimConfig cfg = traced_config();
  cfg.faults.loss = 1.0;
  cfg.faults.retransmit_timeout = 3;
  cfg.faults.arq_attempt_cap = 4;
  Sim lossy = make_sim(g, cfg);
  lossy.run();
  // Same deliveries, every one of them capped-late.
  ASSERT_EQ(plain.trace().rows().size(), lossy.trace().rows().size());
  EXPECT_EQ(lossy.fault_stats().dropped_deliveries, 0u);
  // Each delivery burned exactly arq_attempt_cap failed attempts.
  EXPECT_EQ(lossy.fault_stats().retransmits,
            4u * lossy.trace().rows().size());
  for (const TraceRow& row : lossy.trace().rows()) {
    EXPECT_GE(row.deliver_time - row.send_time, 4u * 3u) << "uncapped row";
  }
}

TEST(FaultTest, ExponentialBackoffDoublesTheArqLadder) {
  // arq_backoff = exp under certain loss: the k-th retry gap is drawn from
  // [2^k T, 2^(k+1) T), so a capped message lands strictly later than the
  // fixed ladder's cap * T. Same delivery count, same determinism.
  const graph::Graph g = test_graph();
  SimConfig fixed_cfg = traced_config();
  fixed_cfg.faults.loss = 1.0;
  fixed_cfg.faults.retransmit_timeout = 3;
  fixed_cfg.faults.arq_attempt_cap = 4;
  SimConfig exp_cfg = fixed_cfg;
  exp_cfg.faults.arq_backoff = ArqBackoff::kExp;
  Sim fixed_sim = make_sim(g, fixed_cfg);
  Sim exp_a = make_sim(g, exp_cfg);
  Sim exp_b = make_sim(g, exp_cfg);
  fixed_sim.run();
  exp_a.run();
  exp_b.run();
  expect_traces_equal(exp_a.trace(), exp_b.trace(), "exp backoff determinism");
  ASSERT_EQ(fixed_sim.trace().rows().size(), exp_a.trace().rows().size());
  std::uint64_t fixed_latency = 0;
  std::uint64_t exp_latency = 0;
  for (const TraceRow& row : fixed_sim.trace().rows()) {
    fixed_latency += row.deliver_time - row.send_time;
  }
  for (const TraceRow& row : exp_a.trace().rows()) {
    exp_latency += row.deliver_time - row.send_time;
  }
  EXPECT_GT(exp_latency, fixed_latency);
}

}  // namespace
}  // namespace mdst::sim
