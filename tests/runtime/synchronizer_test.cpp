// Synchronizer correctness: the wrapped synchronous protocols must observe
// exact lock-step semantics on the asynchronous network, for both the alpha
// and beta variants, under arbitrary delays.
#include "runtime/synchronizer.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "runtime/sync_protocols.hpp"
#include "support/rng.hpp"

namespace mdst::sim {
namespace {

template <typename Sim>
void expect_bfs_matches(const graph::Graph& g, Sim& sim, NodeId source) {
  const graph::BfsResult reference = graph::bfs(g, source);
  for (std::size_t v = 0; v < sim.node_count(); ++v) {
    const auto& node = sim.node(static_cast<NodeId>(v));
    EXPECT_TRUE(node.done());
    EXPECT_EQ(node.sync_node().distance(), reference.distance[v])
        << "vertex " << v;
  }
}

TEST(SynchronizerTest, AlphaBfsUnitDelays) {
  support::Rng rng(1);
  graph::Graph g = graph::make_gnp_connected(30, 0.15, rng);
  const std::size_t rounds = graph::diameter(g) + 2;
  auto sim = make_alpha_synchronizer<SyncBfs>(
      g, [](const NodeEnv& env) { return SyncBfs::Node(env, env.id == 0); },
      rounds);
  sim.run();
  expect_bfs_matches(g, sim, 0);
}

TEST(SynchronizerTest, AlphaBfsRandomDelays) {
  support::Rng rng(2);
  graph::Graph g = graph::make_gnp_connected(24, 0.2, rng);
  const std::size_t rounds = graph::diameter(g) + 2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimConfig cfg;
    cfg.delay = DelayModel::uniform(1, 14);
    cfg.seed = seed;
    auto sim = make_alpha_synchronizer<SyncBfs>(
        g, [](const NodeEnv& env) { return SyncBfs::Node(env, env.id == 3); },
        rounds, cfg);
    sim.run();
    expect_bfs_matches(g, sim, 3);
  }
}

TEST(SynchronizerTest, BetaBfsOverVariousTrees) {
  support::Rng rng(3);
  graph::Graph g = graph::make_gnp_connected(26, 0.2, rng);
  const std::size_t rounds = graph::diameter(g) + 2;
  for (const graph::InitialTreeKind kind :
       {graph::InitialTreeKind::kBfs, graph::InitialTreeKind::kStarBiased,
        graph::InitialTreeKind::kRandom}) {
    const graph::RootedTree tree = graph::build_initial_tree(g, kind, rng);
    SimConfig cfg;
    cfg.delay = DelayModel::uniform(1, 9);
    cfg.seed = 11;
    auto sim = make_beta_synchronizer<SyncBfs>(
        g, tree,
        [](const NodeEnv& env) { return SyncBfs::Node(env, env.id == 0); },
        rounds, cfg);
    sim.run();
    expect_bfs_matches(g, sim, 0);
  }
}

TEST(SynchronizerTest, MaxConsensusConverges) {
  support::Rng rng(4);
  graph::Graph g = graph::make_gnp_connected(32, 0.12, rng);
  graph::assign_random_names(g, rng);
  const std::size_t rounds = graph::diameter(g) + 2;
  auto sim = make_alpha_synchronizer<SyncMaxConsensus>(
      g, [](const NodeEnv& env) { return SyncMaxConsensus::Node(env); },
      rounds);
  sim.run();
  const graph::NodeName expected =
      static_cast<graph::NodeName>(g.vertex_count()) - 1;
  for (std::size_t v = 0; v < sim.node_count(); ++v) {
    EXPECT_EQ(sim.node(static_cast<NodeId>(v)).sync_node().best(), expected);
  }
}

TEST(SynchronizerTest, EveryNodeRunsExactlyRequestedRounds) {
  support::Rng rng(5);
  graph::Graph g = graph::make_cycle(10);
  const std::size_t rounds = 7;
  SimConfig cfg;
  cfg.delay = DelayModel::heavy_tail(0.3);
  cfg.seed = 2;
  auto sim = make_alpha_synchronizer<SyncMaxConsensus>(
      g, [](const NodeEnv& env) { return SyncMaxConsensus::Node(env); },
      rounds, cfg);
  sim.run();
  for (std::size_t v = 0; v < sim.node_count(); ++v) {
    EXPECT_EQ(sim.node(static_cast<NodeId>(v)).rounds_completed(), rounds);
    EXPECT_TRUE(sim.node(static_cast<NodeId>(v)).done());
  }
}

TEST(SynchronizerTest, BetaOverheadIsTreeBound) {
  // Beta control traffic per round: one SafeUp + one NextRound per tree
  // edge. Measure on a quiet protocol (consensus converges fast; later
  // rounds carry control traffic only).
  support::Rng rng(6);
  graph::Graph g = graph::make_gnp_connected(24, 0.3, rng);
  const graph::RootedTree tree = graph::bfs_tree(g, 0);
  const std::size_t rounds = 12;
  auto sim = make_beta_synchronizer<SyncMaxConsensus>(
      g, tree, [](const NodeEnv& env) { return SyncMaxConsensus::Node(env); },
      rounds);
  sim.run();
  const std::size_t safe_up_index = 3;     // variant order
  const std::size_t next_round_index = 4;
  EXPECT_EQ(sim.metrics().messages_of_type(safe_up_index),
            rounds * (g.vertex_count() - 1));
  EXPECT_EQ(sim.metrics().messages_of_type(next_round_index),
            rounds * (g.vertex_count() - 1));
}

TEST(SynchronizerTest, StaggeredStartsKeepLockStepSemantics) {
  // A node that starts late must still observe round-0 payloads in round 1,
  // not round 0 (regression test for the round-0 inbox).
  support::Rng rng(8);
  graph::Graph g = graph::make_gnp_connected(20, 0.25, rng);
  const std::size_t rounds = graph::diameter(g) + 2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimConfig cfg;
    cfg.start_spread = 100;
    cfg.delay = DelayModel::uniform(1, 7);
    cfg.seed = seed;
    auto sim = make_alpha_synchronizer<SyncBfs>(
        g, [](const NodeEnv& env) { return SyncBfs::Node(env, env.id == 0); },
        rounds, cfg);
    sim.run();
    expect_bfs_matches(g, sim, 0);
  }
}

TEST(SynchronizerTest, AlphaSafeFloodIsEdgeBound) {
  support::Rng rng(7);
  graph::Graph g = graph::make_gnp_connected(20, 0.3, rng);
  const std::size_t rounds = 5;
  auto sim = make_alpha_synchronizer<SyncMaxConsensus>(
      g, [](const NodeEnv& env) { return SyncMaxConsensus::Node(env); },
      rounds);
  sim.run();
  const std::size_t safe_index = 2;
  EXPECT_EQ(sim.metrics().messages_of_type(safe_index),
            rounds * 2 * g.edge_count());
}

}  // namespace
}  // namespace mdst::sim
