// Section-profiler API surface (runtime/profile.hpp).
//
// The suite runs in both build modes: default builds must keep every probe a
// no-op (snapshot stays all-zero no matter what runs), and -DMDST_PROFILE=ON
// builds must actually accumulate (calls, ns). Tier-1 CI exercises only the
// no-op side; the nightly profile job builds the other.
#include "runtime/profile.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/engine.hpp"
#include "support/rng.hpp"

namespace mdst {
namespace {

TEST(ProfileTest, SectionNamesAreStable) {
  for (std::size_t i = 0; i < sim::kSectionCount; ++i) {
    const char* name = sim::section_name(static_cast<sim::Section>(i));
    EXPECT_STRNE(name, "?") << "section " << i << " has no name";
  }
  EXPECT_STREQ(sim::section_name(sim::Section::kDispatch), "dispatch");
  EXPECT_STREQ(sim::section_name(sim::Section::kBarrierWait), "barrier_wait");
}

TEST(ProfileTest, ScopeMacroHonorsCompiledState) {
  sim::profile_reset();
  {
    MDST_PROFILE_SCOPE(sim::Section::kDispatch);
  }
  const auto snapshot = sim::profile_snapshot();
  const auto& dispatch =
      snapshot[static_cast<std::size_t>(sim::Section::kDispatch)];
  if (sim::profile_enabled()) {
    EXPECT_EQ(dispatch.calls, 1u);
  } else {
    EXPECT_EQ(dispatch.calls, 0u);
    EXPECT_EQ(dispatch.ns, 0u);
  }
}

TEST(ProfileTest, SimulationRunFeedsTheEngineSections) {
  sim::profile_reset();
  support::Rng rng(11);
  const graph::Graph g = graph::make_gnp_connected(16, 0.3, rng);
  const graph::RootedTree tree = graph::bfs_tree(g, 0);
  core::Options options;
  options.mode = core::EngineMode::kSingleImprovement;
  const core::RunResult run = core::run_mdst(g, tree, options);
  EXPECT_GT(run.metrics.total_messages(), 0u);
  const auto snapshot = sim::profile_snapshot();
  const auto& dispatch =
      snapshot[static_cast<std::size_t>(sim::Section::kDispatch)];
  if (sim::profile_enabled()) {
    // Every delivered message passes through the dispatch probe.
    EXPECT_GE(dispatch.calls, run.metrics.total_messages());
  } else {
    for (const sim::SectionStats& stats : snapshot) {
      EXPECT_EQ(stats.calls, 0u);
      EXPECT_EQ(stats.ns, 0u);
    }
  }
}

}  // namespace
}  // namespace mdst
