// Flight-recorder contracts (docs/observability.md):
//
//   1. Recording is free: turning the trace recorder on must not perturb the
//      schedule — metrics, marks, and the telemetry ring are identical with
//      tracing on and off.
//   2. The ring is engine-invariant: the sharded engine reconstructs the
//      same per-round telemetry for every K >= 1, and matches the classic
//      engine under unit delay (where neither engine draws randomness).
//   3. Export formats are pinned by goldens (CSV, JSONL, Chrome trace JSON).
//      To regenerate after an intended format change:
//
//        MDST_BLESS=1 ./build/mdst_tests --gtest_filter='TelemetryTest.*'
#include "runtime/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/engine.hpp"
#include "support/rng.hpp"

namespace mdst {
namespace {

using core::EngineMode;
using core::Options;
using core::RunResult;

const char* kGoldenDir = MDST_SOURCE_DIR "/tests/runtime/golden";

Options run_options() {
  Options o;
  o.mode = EngineMode::kSingleImprovement;
  o.max_rounds = 10'000;
  return o;
}

graph::Graph test_graph() {
  support::Rng rng(4242);
  return graph::make_gnp_connected(24, 0.25, rng);
}

RunResult run_with(const graph::Graph& g, std::uint32_t shards,
                   sim::DelayModel delay = sim::DelayModel::unit(),
                   std::size_t trace_cap = 0) {
  const graph::RootedTree tree = graph::bfs_tree(g, 0);
  sim::SimConfig cfg;
  cfg.delay = delay;
  cfg.seed = 99;
  cfg.shards = shards;
  cfg.trace_cap = trace_cap;
  return core::run_mdst(g, tree, run_options(), cfg);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void compare_or_bless(const std::string& actual, const std::string& name) {
  const std::string path = std::string(kGoldenDir) + "/" + name;
  if (std::getenv("MDST_BLESS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    GTEST_SKIP() << "blessed " << path;
  }
  EXPECT_EQ(actual, read_file(path)) << "golden drift in " << name
                                     << " — if intended, re-bless "
                                        "(MDST_BLESS=1) and commit";
}

TEST(TelemetryTest, RingDescribesEveryRound) {
  const graph::Graph g = test_graph();
  const RunResult run = run_with(g, 0);
  ASSERT_FALSE(run.round_telemetry.empty());
  EXPECT_EQ(run.round_telemetry.size(), run.rounds);
  std::uint64_t messages = 0;
  std::uint32_t improved = 0;
  for (std::size_t i = 0; i < run.round_telemetry.size(); ++i) {
    const sim::RoundTelemetry& row = run.round_telemetry[i];
    EXPECT_EQ(row.round, i + 1);
    EXPECT_LE(row.time_start, row.time_end);
    messages += row.messages;
    improved += row.improved ? 1 : 0;
    if (row.improved) {
      // An improving round decided a target of degree k and cut its k tree
      // edges: k neighbor fragments plus the target itself.
      EXPECT_EQ(row.fragments, row.k + 1);
      EXPECT_GE(row.waves, 1u);
    }
  }
  EXPECT_EQ(improved, run.improvements);
  // Rounds cover [first round start, terminate decision]; the termination
  // broadcast delivered after the terminate mark belongs to no round, so the
  // ring accounts for almost-all-but-not-quite the run total.
  EXPECT_LE(messages, run.metrics.total_messages());
  EXPECT_GT(messages, run.metrics.total_messages() * 9 / 10);
  EXPECT_LE(run.round_telemetry.back().causal_depth,
            run.metrics.max_causal_depth());
}

TEST(TelemetryTest, TraceRecordingDoesNotPerturbTheRun) {
  const graph::Graph g = test_graph();
  const RunResult off = run_with(g, 0, sim::DelayModel::uniform(2, 5));
  const RunResult on =
      run_with(g, 0, sim::DelayModel::uniform(2, 5), 1 << 20);
  EXPECT_TRUE(off.trace.rows().empty());
  ASSERT_FALSE(on.trace.rows().empty());
  EXPECT_FALSE(on.trace.truncated());
  EXPECT_EQ(on.trace.rows().size(), on.metrics.total_messages());
  // Identical schedule: every meter, mark, and derived telemetry row agrees.
  EXPECT_EQ(on.metrics.total_messages(), off.metrics.total_messages());
  EXPECT_EQ(on.metrics.total_bits(), off.metrics.total_bits());
  EXPECT_EQ(on.metrics.max_causal_depth(), off.metrics.max_causal_depth());
  EXPECT_EQ(on.round_telemetry, off.round_telemetry);
  EXPECT_EQ(on.final_degree, off.final_degree);
}

TEST(TelemetryTest, RingIsShardCountInvariant) {
  const graph::Graph g = test_graph();
  // Real asynchrony: the sharded engine's keyed randomness must reconstruct
  // identical rings for every lane count.
  const RunResult one = run_with(g, 1, sim::DelayModel::uniform(2, 5));
  ASSERT_FALSE(one.round_telemetry.empty());
  for (const std::uint32_t shards : {2u, 4u, 7u}) {
    const RunResult many =
        run_with(g, shards, sim::DelayModel::uniform(2, 5));
    EXPECT_EQ(many.round_telemetry, one.round_telemetry)
        << "ring drift at shards=" << shards;
  }
}

TEST(TelemetryTest, ShardedRingMatchesClassicUnderUnitDelay) {
  // Under unit delay neither engine draws randomness, so the classic and
  // sharded schedules coincide — including the reconstructed bit totals and
  // in-flight watermarks the annotations now carry.
  const graph::Graph g = test_graph();
  const RunResult classic = run_with(g, 0);
  ASSERT_FALSE(classic.round_telemetry.empty());
  for (const std::uint32_t shards : {1u, 3u}) {
    const RunResult sharded = run_with(g, shards);
    EXPECT_EQ(sharded.round_telemetry, classic.round_telemetry)
        << "classic/sharded ring divergence at shards=" << shards;
  }
}

TEST(TelemetryTest, ShardedTraceIsShardCountInvariant) {
  // The merged trace is emitted in the canonical (deliver, send, slot, seq)
  // order, so its bytes are a pure function of the schedule — identical for
  // every lane count. (It is NOT row-for-row equal to the classic engine's
  // trace: the classic recorder logs queue pop order, which interleaves
  // same-tick deliveries differently.)
  const graph::Graph g = test_graph();
  const RunResult one =
      run_with(g, 1, sim::DelayModel::uniform(2, 5), 1 << 20);
  ASSERT_FALSE(one.trace.rows().empty());
  for (const std::uint32_t shards : {3u, 7u}) {
    const RunResult many =
        run_with(g, shards, sim::DelayModel::uniform(2, 5), 1 << 20);
    ASSERT_EQ(many.trace.rows().size(), one.trace.rows().size())
        << "shards=" << shards;
    for (std::size_t i = 0; i < one.trace.rows().size(); ++i) {
      const sim::TraceRow& a = one.trace.rows()[i];
      const sim::TraceRow& b = many.trace.rows()[i];
      ASSERT_TRUE(a.send_time == b.send_time &&
                  a.deliver_time == b.deliver_time && a.from == b.from &&
                  a.to == b.to && a.type_index == b.type_index &&
                  a.causal_depth == b.causal_depth)
          << "trace divergence at row " << i << ", shards=" << shards;
    }
  }
}

TEST(TelemetryTest, RoundPhasesTileTheRun) {
  const graph::Graph g = test_graph();
  const RunResult run = run_with(g, 0);
  const std::vector<sim::TimelinePhase> phases = core::round_phases(run);
  ASSERT_FALSE(phases.empty());
  for (const sim::TimelinePhase& phase : phases) {
    EXPECT_LE(phase.begin, phase.end) << phase.name;
    EXPECT_TRUE(phase.name == "search" || phase.name == "move" ||
                phase.name == "wave" || phase.name == "choose")
        << "unknown phase '" << phase.name << "'";
  }
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_LE(phases[i - 1].end, phases[i].begin) << "overlap at " << i;
  }
}

// --- golden exports --------------------------------------------------------

/// The fixed small run every export golden derives from.
RunResult golden_run(std::size_t trace_cap = 0) {
  support::Rng rng(7);
  const graph::Graph g = graph::make_gnp_connected(12, 0.3, rng);
  return run_with(g, 0, sim::DelayModel::unit(), trace_cap);
}

TEST(TelemetryTest, RoundsCsvMatchesGolden) {
  std::ostringstream out;
  sim::write_rounds_csv(out, golden_run().round_telemetry);
  compare_or_bless(out.str(), "rounds_small.csv");
}

TEST(TelemetryTest, RoundsJsonlMatchesGolden) {
  std::ostringstream out;
  sim::write_rounds_jsonl(out, golden_run().round_telemetry);
  compare_or_bless(out.str(), "rounds_small.jsonl");
}

TEST(TelemetryTest, ChromeTraceMatchesGolden) {
  RunResult run = golden_run(1 << 16);
  std::ostringstream out;
  sim::ChromeTraceOptions options;
  options.shards = 0;
  options.node_count = 12;
  sim::write_chrome_trace(out, run.trace, core::round_phases(run), options);
  compare_or_bless(out.str(), "chrome_small.json");
}

TEST(TelemetryTest, ShardedChromeTraceMatchesGolden) {
  support::Rng rng(7);
  const graph::Graph g = graph::make_gnp_connected(12, 0.3, rng);
  RunResult run = run_with(g, 3, sim::DelayModel::unit(), 1 << 16);
  std::ostringstream out;
  sim::ChromeTraceOptions options;
  options.shards = 3;
  options.node_count = 12;
  options.lookahead = 1;
  sim::write_chrome_trace(out, run.trace, core::round_phases(run), options);
  compare_or_bless(out.str(), "chrome_sharded.json");
}

TEST(TelemetryTest, TraceCsvHasOneRowPerDelivery) {
  RunResult run = golden_run(1 << 16);
  std::ostringstream out;
  sim::write_trace_csv(out, run.trace);
  const std::string csv = out.str();
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, run.trace.rows().size() + 1);  // header + rows
  EXPECT_EQ(csv.rfind("send_time,deliver_time,from,to,type,causal_depth\n",
                      0),
            0u);
}

}  // namespace
}  // namespace mdst
