// Simulator semantics tests using small purpose-built protocols.
#include "runtime/simulator.hpp"

#include <gtest/gtest.h>

#include <variant>

#include "graph/generators.hpp"
#include "runtime/variant_util.hpp"
#include "support/assert.hpp"

namespace mdst::sim {
namespace {

// --- Toy protocol 1: ping-pong along a path, `hops` times -------------------

struct Ping {
  static constexpr const char* kName = "Ping";
  int remaining = 0;
  std::size_t ids_carried() const { return 1; }
};

struct PingProto {
  using Message = std::variant<Ping>;
  class Node {
   public:
    Node(const NodeEnv& env, int start_hops)
        : env_(env), start_hops_(start_hops) {}
    void on_start(IContext<Message>& ctx) {
      if (env_.id == 0 && !env_.neighbors.empty()) {
        ctx.send(env_.neighbors.front().id, Ping{start_hops_});
      }
    }
    void on_message(IContext<Message>& ctx, NodeId from, const Message& m) {
      const auto& ping = std::get<Ping>(m);
      ++received_;
      if (ping.remaining > 0) ctx.send(from, Ping{ping.remaining - 1});
    }
    int received() const { return received_; }

   private:
    NodeEnv env_;
    int start_hops_;
    int received_ = 0;
  };
};

TEST(SimulatorTest, PingPongDeliversExactCount) {
  graph::Graph g = graph::make_path(2);
  Simulator<PingProto> sim(
      g, [](const NodeEnv& env) { return PingProto::Node(env, 9); });
  sim.run();
  // 10 messages total (initial + 9 bounces).
  EXPECT_EQ(sim.metrics().total_messages(), 10u);
  EXPECT_EQ(sim.node(0).received() + sim.node(1).received(), 10);
  // Causal chain = 10 messages; unit delays => finish time 10.
  EXPECT_EQ(sim.metrics().max_causal_depth(), 10u);
  EXPECT_EQ(sim.metrics().last_delivery_time(), 10u);
}

TEST(SimulatorTest, CausalDepthUnderRandomDelaysStillCountsHops) {
  graph::Graph g = graph::make_path(2);
  SimConfig cfg;
  cfg.delay = DelayModel::uniform(1, 20);
  cfg.seed = 42;
  Simulator<PingProto> sim(
      g, [](const NodeEnv& env) { return PingProto::Node(env, 9); }, cfg);
  sim.run();
  // Wall time varies with delays, but the causal chain is exactly 10.
  EXPECT_EQ(sim.metrics().max_causal_depth(), 10u);
  EXPECT_GE(sim.metrics().last_delivery_time(), 10u);
}

TEST(SimulatorTest, BitAccounting) {
  graph::Graph g = graph::make_path(2);  // n=2 -> id_bits = 1
  Simulator<PingProto> sim(
      g, [](const NodeEnv& env) { return PingProto::Node(env, 0); });
  sim.run();
  EXPECT_EQ(sim.metrics().id_bits(), 1u);
  // One message, one id field: tag bits + 1 * id_bits.
  EXPECT_EQ(sim.metrics().max_message_bits(), Metrics::kTagBits + 1);
  EXPECT_EQ(sim.metrics().total_bits(), Metrics::kTagBits + 1);
  EXPECT_EQ(sim.metrics().max_ids_carried(), 1u);
}

TEST(SimulatorTest, SendToNonNeighborThrows) {
  struct BadProto {
    using Message = std::variant<Ping>;
    class Node {
     public:
      explicit Node(const NodeEnv& env) : env_(env) {}
      void on_start(IContext<Message>& ctx) {
        if (env_.id == 0) ctx.send(2, Ping{0});  // 2 is not adjacent to 0
      }
      void on_message(IContext<Message>&, NodeId, const Message&) {}

     private:
      NodeEnv env_;
    };
  };
  graph::Graph g = graph::make_path(3);
  Simulator<BadProto> sim(g, [](const NodeEnv& env) { return BadProto::Node(env); });
  EXPECT_THROW(sim.run(), mdst::ContractViolation);
}

TEST(SimulatorTest, MessageCapConvertsLivelockToError) {
  struct LoopProto {
    using Message = std::variant<Ping>;
    class Node {
     public:
      explicit Node(const NodeEnv& env) : env_(env) {}
      void on_start(IContext<Message>& ctx) {
        if (env_.id == 0) ctx.send(env_.neighbors.front().id, Ping{1});
      }
      void on_message(IContext<Message>& ctx, NodeId from, const Message&) {
        ctx.send(from, Ping{1});  // bounce forever
      }

     private:
      NodeEnv env_;
    };
  };
  graph::Graph g = graph::make_path(2);
  SimConfig cfg;
  cfg.max_messages = 500;
  Simulator<LoopProto> sim(
      g, [](const NodeEnv& env) { return LoopProto::Node(env); }, cfg);
  EXPECT_THROW(sim.run(), mdst::ContractViolation);
}

// --- Toy protocol 2: sender fires a numbered burst; FIFO must preserve order.

struct Seq {
  static constexpr const char* kName = "Seq";
  int index = 0;
  std::size_t ids_carried() const { return 1; }
};

struct FifoProto {
  using Message = std::variant<Seq>;
  class Node {
   public:
    explicit Node(const NodeEnv& env) : env_(env) {}
    void on_start(IContext<Message>& ctx) {
      if (env_.id == 0) {
        for (int i = 0; i < 64; ++i) ctx.send(env_.neighbors.front().id, Seq{i});
      }
    }
    void on_message(IContext<Message>&, NodeId, const Message& m) {
      received.push_back(std::get<Seq>(m).index);
    }
    std::vector<int> received;

   private:
    NodeEnv env_;
  };
};

TEST(SimulatorTest, FifoLinksPreserveSendOrder) {
  graph::Graph g = graph::make_path(2);
  SimConfig cfg;
  cfg.delay = DelayModel::uniform(1, 50);  // delays would reorder without FIFO
  cfg.seed = 7;
  cfg.fifo_links = true;
  Simulator<FifoProto> sim(
      g, [](const NodeEnv& env) { return FifoProto::Node(env); }, cfg);
  sim.run();
  const auto& received = sim.node(1).received;
  ASSERT_EQ(received.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, NonFifoCanReorder) {
  graph::Graph g = graph::make_path(2);
  SimConfig cfg;
  cfg.delay = DelayModel::uniform(1, 50);
  cfg.seed = 7;
  cfg.fifo_links = false;
  Simulator<FifoProto> sim(
      g, [](const NodeEnv& env) { return FifoProto::Node(env); }, cfg);
  sim.run();
  const auto& received = sim.node(1).received;
  ASSERT_EQ(received.size(), 64u);
  bool out_of_order = false;
  for (std::size_t i = 1; i < received.size(); ++i) {
    if (received[i] < received[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  graph::Graph g = graph::make_cycle(6);
  auto run_once = [&g](std::uint64_t seed) {
    SimConfig cfg;
    cfg.delay = DelayModel::uniform(1, 9);
    cfg.seed = seed;
    Simulator<FifoProto> sim(
        g, [](const NodeEnv& env) { return FifoProto::Node(env); }, cfg);
    sim.run();
    return sim.metrics().last_delivery_time();
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

TEST(SimulatorTest, StartSpreadStaggersOnStart) {
  graph::Graph g = graph::make_path(2);
  SimConfig cfg;
  cfg.start_spread = 100;
  cfg.seed = 3;
  Simulator<PingProto> sim(
      g, [](const NodeEnv& env) { return PingProto::Node(env, 0); }, cfg);
  sim.run();
  EXPECT_EQ(sim.metrics().total_messages(), 1u);
}

TEST(SimulatorTest, TraceRecordsDeliveries) {
  graph::Graph g = graph::make_path(2);
  SimConfig cfg;
  cfg.trace_cap = 100;
  Simulator<PingProto> sim(
      g, [](const NodeEnv& env) { return PingProto::Node(env, 3); }, cfg);
  sim.run();
  const auto& rows = sim.trace().rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].type_name, "Ping");
  EXPECT_EQ(rows[0].from, 0);
  EXPECT_EQ(rows[0].to, 1);
  EXPECT_LT(rows[0].send_time, rows[0].deliver_time);
  EXPECT_FALSE(sim.trace().truncated());
}

TEST(SimulatorTest, TraceCapTruncates) {
  graph::Graph g = graph::make_path(2);
  SimConfig cfg;
  cfg.trace_cap = 2;
  Simulator<PingProto> sim(
      g, [](const NodeEnv& env) { return PingProto::Node(env, 9); }, cfg);
  sim.run();
  EXPECT_EQ(sim.trace().rows().size(), 2u);
  EXPECT_TRUE(sim.trace().truncated());
}

TEST(SimulatorTest, NodeEnvHasNeighborNames) {
  graph::Graph g = graph::make_path(3);
  g.set_names({30, 10, 20});
  Simulator<PingProto> sim(
      g, [](const NodeEnv& env) { return PingProto::Node(env, 0); });
  EXPECT_EQ(sim.env(1).name, 10);
  EXPECT_EQ(sim.env(1).neighbors.size(), 2u);
  EXPECT_EQ(sim.env(1).neighbor_name(0), 30);
  EXPECT_EQ(sim.env(1).neighbor_name(2), 20);
  EXPECT_TRUE(sim.env(0).is_neighbor(1));
  EXPECT_FALSE(sim.env(0).is_neighbor(2));
}

TEST(DelayModelTest, UnitIsAlwaysOne) {
  support::Rng rng(1);
  const DelayModel m = DelayModel::unit();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(m.sample(rng), 1u);
}

TEST(DelayModelTest, UniformInRange) {
  support::Rng rng(2);
  const DelayModel m = DelayModel::uniform(3, 7);
  for (int i = 0; i < 200; ++i) {
    const Time d = m.sample(rng);
    EXPECT_GE(d, 3u);
    EXPECT_LE(d, 7u);
  }
}

TEST(DelayModelTest, HeavyTailAtLeastOne) {
  support::Rng rng(3);
  const DelayModel m = DelayModel::heavy_tail(0.3);
  Time max_seen = 0;
  for (int i = 0; i < 2000; ++i) {
    const Time d = m.sample(rng);
    EXPECT_GE(d, 1u);
    max_seen = std::max(max_seen, d);
  }
  EXPECT_GT(max_seen, 5u);  // tail actually occurs
}

TEST(MetricsTest, IdBits) {
  EXPECT_EQ(id_bits_for(1), 1u);
  EXPECT_EQ(id_bits_for(2), 1u);
  EXPECT_EQ(id_bits_for(3), 2u);
  EXPECT_EQ(id_bits_for(16), 4u);
  EXPECT_EQ(id_bits_for(17), 5u);
  EXPECT_EQ(id_bits_for(1024), 10u);
}

TEST(MetricsTest, AbsorbSequential) {
  Metrics a(2, 4), b(2, 4);
  a.on_deliver(0, 1, 3, 10);
  b.on_deliver(1, 2, 5, 20);
  a.absorb_sequential(b);
  EXPECT_EQ(a.total_messages(), 2u);
  EXPECT_EQ(a.messages_of_type(0), 1u);
  EXPECT_EQ(a.messages_of_type(1), 1u);
  EXPECT_EQ(a.max_causal_depth(), 8u);       // sequential composition adds
  EXPECT_EQ(a.last_delivery_time(), 30u);
}

}  // namespace
}  // namespace mdst::sim
