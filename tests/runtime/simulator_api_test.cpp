// Coverage of the remaining Simulator surface: step(), idle(), inject(),
// context annotations and clock queries.
#include "runtime/simulator.hpp"

#include <gtest/gtest.h>

#include <variant>

#include "graph/generators.hpp"

namespace mdst::sim {
namespace {

struct Echo {
  static constexpr const char* kName = "Echo";
  int hops = 0;
  std::size_t ids_carried() const { return 1; }
};

struct EchoProto {
  using Message = std::variant<Echo>;
  class Node {
   public:
    explicit Node(const NodeEnv& env) : env_(env) {}
    void on_start(IContext<Message>& ctx) {
      if (env_.id == 0) {
        ctx.annotate("node0 started");
      }
    }
    void on_message(IContext<Message>& ctx, NodeId from, const Message& m) {
      last_seen_time = ctx.now();
      ++received;
      const auto& echo = std::get<Echo>(m);
      if (echo.hops > 0) ctx.send(from, Echo{echo.hops - 1});
    }
    int received = 0;
    Time last_seen_time = 0;

   private:
    NodeEnv env_;
  };
};

TEST(SimulatorApiTest, StepDeliversExactlyOneEvent) {
  graph::Graph g = graph::make_path(2);
  Simulator<EchoProto> sim(
      g, [](const NodeEnv& env) { return EchoProto::Node(env); });
  // Two start events pending.
  EXPECT_FALSE(sim.idle());
  EXPECT_TRUE(sim.step());
  EXPECT_TRUE(sim.step());
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorApiTest, InjectFromOutsideDelivers) {
  graph::Graph g = graph::make_path(3);
  Simulator<EchoProto> sim(
      g, [](const NodeEnv& env) { return EchoProto::Node(env); });
  sim.run();  // drain the starts
  // hops=0 so the handler does not reply toward the external sender.
  sim.inject(kNoNode, 1, Echo{0});
  sim.run();
  EXPECT_EQ(sim.node(1).received, 1);
  EXPECT_EQ(sim.node(0).received, 0);
}

TEST(SimulatorApiTest, InjectWithSourceStartsPingPong) {
  graph::Graph g = graph::make_path(2);
  Simulator<EchoProto> sim(
      g, [](const NodeEnv& env) { return EchoProto::Node(env); });
  sim.run();
  sim.inject(0, 1, Echo{4});
  sim.run();
  // Delivered to 1 with 4 bounces: 1 got hops {4,2,0} -> 3 messages, 0 got
  // {3,1} -> 2 messages.
  EXPECT_EQ(sim.node(1).received, 3);
  EXPECT_EQ(sim.node(0).received, 2);
  EXPECT_EQ(sim.metrics().total_messages(), 5u);
}

TEST(SimulatorApiTest, AnnotationsRecordTimeAndCounts) {
  graph::Graph g = graph::make_path(2);
  Simulator<EchoProto> sim(
      g, [](const NodeEnv& env) { return EchoProto::Node(env); });
  sim.run();
  const auto& notes = sim.metrics().annotations();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].label, "node0 started");
  EXPECT_EQ(notes[0].total_messages, 0u);
}

TEST(SimulatorApiTest, ContextNowAdvancesWithDeliveries) {
  graph::Graph g = graph::make_path(2);
  Simulator<EchoProto> sim(
      g, [](const NodeEnv& env) { return EchoProto::Node(env); });
  sim.run();
  sim.inject(0, 1, Echo{2});
  sim.run();
  // Last delivery (3rd message after injection) is later than the first.
  EXPECT_GE(sim.node(0).last_seen_time, 2u);
  EXPECT_EQ(sim.now(), sim.metrics().last_delivery_time());
}

TEST(SimulatorApiTest, InjectCountsAgainstMessageCap) {
  graph::Graph g = graph::make_path(2);
  SimConfig cfg;
  cfg.max_messages = 3;
  Simulator<EchoProto> sim(
      g, [](const NodeEnv& env) { return EchoProto::Node(env); }, cfg);
  sim.run();
  // hops=0: no replies, so only the injections themselves count.
  sim.inject(kNoNode, 1, Echo{0});
  sim.inject(kNoNode, 1, Echo{0});
  sim.inject(kNoNode, 1, Echo{0});
  EXPECT_THROW(sim.inject(kNoNode, 1, Echo{0}), mdst::ContractViolation);
}

// Records the order tagged messages arrive in; never replies.
struct Tag {
  static constexpr const char* kName = "Tag";
  int index = 0;
  std::size_t ids_carried() const { return 1; }
};

struct TagRecorderProto {
  using Message = std::variant<Tag>;
  class Node {
   public:
    explicit Node(const NodeEnv&) {}
    void on_start(IContext<Message>&) {}
    void on_message(IContext<Message>&, NodeId, const Message& m) {
      received.push_back(std::get<Tag>(m).index);
    }
    std::vector<int> received;
  };
};

TEST(SimulatorApiTest, InjectRespectsFifoFloorOnExistingLink) {
  // Injected messages draw real delays from the configured model; a wide
  // uniform delay would reorder a burst on link 0->1 unless the per-link
  // FIFO floor applies to injections exactly as it does to protocol sends.
  graph::Graph g = graph::make_path(2);
  SimConfig cfg;
  cfg.delay = DelayModel::uniform(1, 40);
  cfg.seed = 21;
  Simulator<TagRecorderProto> sim(
      g, [](const NodeEnv& env) { return TagRecorderProto::Node(env); }, cfg);
  sim.run();  // drain starts
  for (int i = 0; i < 30; ++i) sim.inject(0, 1, Tag{i});
  sim.run();
  const auto& received = sim.node(1).received;
  ASSERT_EQ(received.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i)
        << "injection reordered — FIFO floor not applied";
  }
}

TEST(SimulatorApiTest, InjectRejectsBadDestination) {
  graph::Graph g = graph::make_path(2);
  Simulator<EchoProto> sim(
      g, [](const NodeEnv& env) { return EchoProto::Node(env); });
  sim.run();
  EXPECT_THROW(sim.inject(kNoNode, 7, Echo{0}), mdst::ContractViolation);
}

TEST(SimulatorApiTest, EmptyGraphRejected) {
  graph::Graph g;
  EXPECT_THROW(Simulator<EchoProto>(
                   g, [](const NodeEnv& env) { return EchoProto::Node(env); }),
               mdst::ContractViolation);
}

TEST(SimulatorApiTest, NodeAccessorBounds) {
  graph::Graph g = graph::make_path(2);
  Simulator<EchoProto> sim(
      g, [](const NodeEnv& env) { return EchoProto::Node(env); });
  EXPECT_THROW(sim.node(5), mdst::ContractViolation);
  EXPECT_THROW(sim.node(-1), mdst::ContractViolation);
  EXPECT_EQ(sim.node_count(), 2u);
}

}  // namespace
}  // namespace mdst::sim
