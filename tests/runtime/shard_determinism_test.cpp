// Shard-count invariance: the sharded engine's hard guarantee is that its
// observable outputs — metrics, traces, annotations, final node state — are
// IDENTICAL for 1 and K shard workers, for any K. This suite pins that
// contract row-for-row and field-for-field, the way devirtualization_test
// pins the virtual/concrete context equivalence:
//
//   * K ∈ {1, 2, 4, 7} — including a shard count above this host's core
//     count (oversubscription must change nothing) and a count that does
//     not divide n (uneven block partition);
//   * unit and uniform delays (uniform activates the FIFO floors and the
//     keyed delay draws);
//   * single-improvement and concurrent engine modes (concurrent exercises
//     the BfsBack candidate boxes, i.e. the cross-shard luggage re-homing);
//   * the MDST protocol and the flood spanning baseline (a virtual-context
//     protocol with no pooled payloads — the traits primary template).
//
// Note what is NOT claimed: sharded runs are not byte-identical to the
// classic sequential engine — keyed per-(slot, seq) randomness replaces the
// classic engine's sequential draws, so `shards = 0` vs `shards >= 1` is an
// engine choice. Shard *count* is what must never matter.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "graph/generators.hpp"
#include "graph/spanning_builders.hpp"
#include "mdst/engine.hpp"
#include "mdst/node.hpp"
#include "runtime/sharded_sim.hpp"
#include "spanning/flood_st.hpp"
#include "support/rng.hpp"

namespace mdst {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 4, 7};

template <typename P>
sim::ShardedSimulator<P> run_mdst_sharded(const graph::Graph& g,
                                          const graph::RootedTree& start,
                                          const core::Options& options,
                                          sim::SimConfig config,
                                          std::size_t shards) {
  config.shards = static_cast<std::uint32_t>(shards);
  sim::ShardedSimulator<P> simulation(
      g,
      [&](const sim::NodeEnv& env) {
        return typename P::Node(env, start.parent(env.id),
                                start.children(env.id), options);
      },
      config);
  simulation.run();
  return simulation;
}

/// Full observable-state comparison between a baseline (1-shard) run and a
/// K-shard run of the same protocol instance.
template <typename SimT>
void expect_identical_runs(const SimT& base, const SimT& other,
                           std::size_t shards) {
  ASSERT_EQ(base.metrics().total_messages(), other.metrics().total_messages())
      << "K=" << shards;
  EXPECT_EQ(base.metrics().per_type(), other.metrics().per_type())
      << "K=" << shards;
  EXPECT_EQ(base.metrics().total_bits(), other.metrics().total_bits())
      << "K=" << shards;
  EXPECT_EQ(base.metrics().max_causal_depth(),
            other.metrics().max_causal_depth())
      << "K=" << shards;
  EXPECT_EQ(base.now(), other.now()) << "K=" << shards;

  // Annotations: same sequence, field for field.
  const auto& ba = base.metrics().annotations();
  const auto& oa = other.metrics().annotations();
  ASSERT_EQ(ba.size(), oa.size()) << "K=" << shards;
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].time, oa[i].time) << "K=" << shards << " mark " << i;
    EXPECT_EQ(ba[i].total_messages, oa[i].total_messages)
        << "K=" << shards << " mark " << i;
    EXPECT_EQ(ba[i].max_causal_depth, oa[i].max_causal_depth)
        << "K=" << shards << " mark " << i;
    EXPECT_EQ(ba[i].label, oa[i].label) << "K=" << shards << " mark " << i;
    EXPECT_EQ(ba[i].tag, oa[i].tag) << "K=" << shards << " mark " << i;
    EXPECT_EQ(ba[i].tagged, oa[i].tagged) << "K=" << shards << " mark " << i;
  }

  // Trace: identical rows in identical order.
  const auto& br = base.trace().rows();
  const auto& orr = other.trace().rows();
  EXPECT_EQ(base.trace().truncated(), other.trace().truncated())
      << "K=" << shards;
  ASSERT_EQ(br.size(), orr.size()) << "K=" << shards;
  for (std::size_t i = 0; i < br.size(); ++i) {
    EXPECT_EQ(br[i].send_time, orr[i].send_time)
        << "K=" << shards << " row " << i;
    EXPECT_EQ(br[i].deliver_time, orr[i].deliver_time)
        << "K=" << shards << " row " << i;
    EXPECT_EQ(br[i].from, orr[i].from) << "K=" << shards << " row " << i;
    EXPECT_EQ(br[i].to, orr[i].to) << "K=" << shards << " row " << i;
    EXPECT_EQ(br[i].type_index, orr[i].type_index)
        << "K=" << shards << " row " << i;
    EXPECT_EQ(br[i].causal_depth, orr[i].causal_depth)
        << "K=" << shards << " row " << i;
  }
}

void expect_identical_mdst_state(
    const sim::ShardedSimulator<core::ShardProtocol>& base,
    const sim::ShardedSimulator<core::ShardProtocol>& other,
    std::size_t shards) {
  ASSERT_EQ(base.node_count(), other.node_count());
  for (std::size_t v = 0; v < base.node_count(); ++v) {
    const auto id = static_cast<sim::NodeId>(v);
    EXPECT_EQ(base.node(id).parent(), other.node(id).parent())
        << "K=" << shards << " node " << v;
    // children() is a span view over the node arenas; materialize for the
    // element-wise comparison.
    const std::vector<sim::NodeId> base_kids(base.node(id).children().begin(),
                                             base.node(id).children().end());
    const std::vector<sim::NodeId> other_kids(
        other.node(id).children().begin(), other.node(id).children().end());
    EXPECT_EQ(base_kids, other_kids) << "K=" << shards << " node " << v;
    EXPECT_EQ(base.node(id).done(), other.node(id).done())
        << "K=" << shards << " node " << v;
    EXPECT_EQ(base.node(id).tree_degree(), other.node(id).tree_degree())
        << "K=" << shards << " node " << v;
  }
}

struct ShardCase {
  const char* name;
  sim::DelayModel delay;
  core::EngineMode mode;
};

class ShardDeterminismTest : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardDeterminismTest, MdstRunsAreIdenticalForOneAndKShards) {
  const ShardCase& param = GetParam();
  support::Rng rng(17);
  const graph::Graph g = graph::make_gnp_connected(64, 0.12, rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  core::Options options;
  options.mode = param.mode;
  sim::SimConfig config;
  config.delay = param.delay;
  config.seed = 33;
  config.trace_cap = 1'000'000;

  const auto base = run_mdst_sharded<core::ShardProtocol>(g, start, options,
                                                          config, 1);
  EXPECT_TRUE(base.pools_balanced());
  for (const std::size_t shards : kShardCounts) {
    if (shards == 1) continue;
    const auto run = run_mdst_sharded<core::ShardProtocol>(g, start, options,
                                                           config, shards);
    EXPECT_TRUE(run.pools_balanced()) << "K=" << shards;
    expect_identical_runs(base, run, shards);
    expect_identical_mdst_state(base, run, shards);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DelaysAndModes, ShardDeterminismTest,
    ::testing::Values(
        ShardCase{"unit_single", sim::DelayModel::unit(),
                  core::EngineMode::kSingleImprovement},
        ShardCase{"unit_concurrent", sim::DelayModel::unit(),
                  core::EngineMode::kConcurrent},
        ShardCase{"uniform_single", sim::DelayModel::uniform(1, 9),
                  core::EngineMode::kSingleImprovement},
        ShardCase{"uniform_concurrent", sim::DelayModel::uniform(1, 9),
                  core::EngineMode::kConcurrent}),
    [](const ::testing::TestParamInfo<ShardCase>& info) {
      return info.param.name;
    });

TEST(ShardDeterminismFloodTest, FloodRunsAreIdenticalForOneAndKShards) {
  // The flood baseline drives the sharded engine through the virtual
  // IContext surface (its handlers take IContext&) and uses the traits
  // primary template — no luggage, no pools.
  support::Rng rng(23);
  const graph::Graph g = graph::make_gnp_connected(80, 0.1, rng);
  for (const sim::DelayModel delay :
       {sim::DelayModel::unit(), sim::DelayModel::uniform(2, 7)}) {
    sim::SimConfig config;
    config.delay = delay;
    config.seed = 7;
    config.trace_cap = 1'000'000;
    config.shards = 1;
    auto make = [](const sim::NodeEnv& env) {
      return spanning::flood::Node(env, env.id == 0);
    };
    sim::ShardedSimulator<spanning::flood::Protocol> base(g, make, config);
    base.run();
    for (const std::size_t shards : kShardCounts) {
      if (shards == 1) continue;
      config.shards = static_cast<std::uint32_t>(shards);
      sim::ShardedSimulator<spanning::flood::Protocol> run(g, make, config);
      run.run();
      expect_identical_runs(base, run, shards);
      for (std::size_t v = 0; v < base.node_count(); ++v) {
        const auto id = static_cast<sim::NodeId>(v);
        EXPECT_EQ(base.node(id).parent(), run.node(id).parent())
            << "K=" << shards << " node " << v;
        EXPECT_EQ(base.node(id).children(), run.node(id).children())
            << "K=" << shards << " node " << v;
      }
    }
  }
}

TEST(ShardDeterminismRecoveryTest, RecoveryRunsAreTraceIdenticalForOneAndKShards) {
  // The self-healing layer's timers, heartbeats, and keyed re-election
  // floods ride the same canonical (deliver, send, slot, seq) event keys as
  // the base protocol, so a run that detects a crash, re-elects, and
  // re-attaches must stay trace-identical — row for row — across shard
  // counts. This is the byte-level pin behind the coarser campaign-row
  // equality in tests/property/shard_sweep_test.cpp and
  // tests/mdst/recovery_test.cpp.
  support::Rng rng(29);
  const graph::Graph g = graph::make_gnp_connected(40, 0.15, rng);
  const graph::RootedTree start = graph::star_biased_tree(g);

  struct RecoveryCase {
    const char* name;
    sim::DelayModel delay;
    sim::Time crash_time;
    std::uint32_t crash_count;
    sim::Time corrupt_time;
    std::uint32_t corrupt_count;
  };
  const RecoveryCase cases[] = {
      {"crash_unit", sim::DelayModel::unit(), 5, 1, 0, 0},
      {"crash_uniform", sim::DelayModel::uniform(1, 4), 5, 1, 0, 0},
      {"corrupt_unit", sim::DelayModel::unit(), 0, 0, 20, 2},
  };
  for (const RecoveryCase& rc : cases) {
    core::Options options;
    options.recovery.enabled = true;
    // run_mdst arms defensive mode for corrupting plans (mdst/engine.cpp);
    // this direct-engine test mirrors that so the scrambled state surfaces
    // through the stall detector instead of riding to the fault watchdog.
    options.recovery.defensive = rc.corrupt_count > 0;
    sim::SimConfig config;
    config.delay = rc.delay;
    config.seed = 61;
    config.trace_cap = 1'000'000;
    config.faults.crash_time = rc.crash_time;
    config.faults.crash_count = rc.crash_count;
    config.faults.corrupt_time = rc.corrupt_time;
    config.faults.corrupt_count = rc.corrupt_count;
    config.faults.seed = 0xfa11;
    config.faults.max_time = 500'000;

    const auto base = run_mdst_sharded<core::ShardProtocol>(g, start, options,
                                                            config, 1);
    for (const std::size_t shards : kShardCounts) {
      if (shards == 1) continue;
      SCOPED_TRACE(rc.name);
      const auto run = run_mdst_sharded<core::ShardProtocol>(g, start, options,
                                                             config, shards);
      EXPECT_TRUE(run.pools_balanced()) << "K=" << shards;
      expect_identical_runs(base, run, shards);
      expect_identical_mdst_state(base, run, shards);
    }
  }
}

TEST(ShardDeterminismRunMdstTest, RunResultsAreIdenticalForOneAndKShards) {
  // End-to-end through run_mdst: the RunResult a campaign trial sees —
  // census, marks, improvement counts — must not depend on the shard
  // count either.
  support::Rng rng(41);
  const graph::Graph g = graph::make_gnp_connected(48, 0.15, rng);
  const graph::RootedTree start = graph::star_biased_tree(g);
  const core::Options options;
  sim::SimConfig config;
  config.seed = 9;

  config.shards = 1;
  const core::RunResult base = core::run_mdst(g, start, options, config);
  for (const std::size_t shards : {2, 4}) {
    config.shards = static_cast<std::uint32_t>(shards);
    const core::RunResult run = core::run_mdst(g, start, options, config);
    EXPECT_EQ(base.final_degree, run.final_degree) << "K=" << shards;
    EXPECT_EQ(base.rounds, run.rounds) << "K=" << shards;
    EXPECT_EQ(base.improvements, run.improvements) << "K=" << shards;
    EXPECT_EQ(base.stop_reason, run.stop_reason) << "K=" << shards;
    EXPECT_EQ(base.metrics.total_messages(), run.metrics.total_messages())
        << "K=" << shards;
    EXPECT_EQ(base.metrics.per_type(), run.metrics.per_type())
        << "K=" << shards;
    ASSERT_EQ(base.marks.size(), run.marks.size()) << "K=" << shards;
    for (std::size_t i = 0; i < base.marks.size(); ++i) {
      EXPECT_EQ(base.marks[i].label, run.marks[i].label)
          << "K=" << shards << " mark " << i;
      EXPECT_EQ(base.marks[i].total_messages, run.marks[i].total_messages)
          << "K=" << shards << " mark " << i;
    }
    ASSERT_EQ(base.round_stats.size(), run.round_stats.size())
        << "K=" << shards;
    for (std::size_t i = 0; i < base.round_stats.size(); ++i) {
      EXPECT_EQ(base.round_stats[i].search_msgs, run.round_stats[i].search_msgs)
          << "K=" << shards << " round " << i;
      EXPECT_EQ(base.round_stats[i].wave_msgs, run.round_stats[i].wave_msgs)
          << "K=" << shards << " round " << i;
    }
    ASSERT_EQ(base.tree.vertex_count(), run.tree.vertex_count());
    for (std::size_t v = 0; v < base.tree.vertex_count(); ++v) {
      EXPECT_EQ(base.tree.parent(static_cast<graph::VertexId>(v)),
                run.tree.parent(static_cast<graph::VertexId>(v)))
          << "K=" << shards << " node " << v;
    }
  }
}

}  // namespace
}  // namespace mdst
