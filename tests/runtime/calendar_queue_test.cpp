// CalendarQueue unit tests: FIFO tie-breaks, overflow migration, and an
// adversarial cross-check against a std::priority_queue reference — the
// structure the simulator used before the calendar-queue swap.
#include "runtime/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace mdst::sim {
namespace {

TEST(CalendarQueueTest, PopsInTimeOrder) {
  CalendarQueue<int> q;
  q.push(5, 50);
  q.push(1, 10);
  q.push(3, 30);
  std::vector<Time> times;
  std::vector<int> values;
  while (!q.empty()) {
    const auto p = q.pop();
    times.push_back(p.time);
    values.push_back(*p.payload);
    q.release(p.ref);
  }
  EXPECT_EQ(times, (std::vector<Time>{1, 3, 5}));
  EXPECT_EQ(values, (std::vector<int>{10, 30, 50}));
}

TEST(CalendarQueueTest, EqualTimesPopInPushOrder) {
  CalendarQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(7, i);
  for (int i = 0; i < 100; ++i) {
    const auto p = q.pop();
    EXPECT_EQ(p.time, 7u);
    EXPECT_EQ(*p.payload, i);
    q.release(p.ref);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, FarFutureEventsGoThroughOverflowCorrectly) {
  CalendarQueue<int> q;  // horizon 1024
  q.push(100'000, 2);    // overflow
  q.push(3, 1);          // wheel
  q.push(2'000'000, 3);  // overflow
  auto a = q.pop();
  EXPECT_EQ(a.time, 3u);
  EXPECT_EQ(*a.payload, 1);
  q.release(a.ref);
  auto b = q.pop();
  EXPECT_EQ(b.time, 100'000u);
  EXPECT_EQ(*b.payload, 2);
  q.release(b.ref);
  auto c = q.pop();
  EXPECT_EQ(c.time, 2'000'000u);
  EXPECT_EQ(*c.payload, 3);
  q.release(c.ref);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, PushIntoPastRejected) {
  // Exercises an internal invariant (MDST_ASSERT), present only at the
  // `full` check tier (docs/architecture.md rule 7).
  if (!mdst::kChecksFull) {
    GTEST_SKIP() << "invariant checks compiled out (MDST_CHECK_LEVEL=fast)";
  }
  CalendarQueue<int> q;
  q.push(10, 1);
  const auto p = q.pop();  // now == 10
  q.release(p.ref);
  EXPECT_THROW(q.push(9, 2), mdst::ContractViolation);
}

struct RefEv {
  Time time;
  std::uint64_t seq;
  int tag;
  friend bool operator>(const RefEv& a, const RefEv& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
};

// The regression guard for the queue swap: an adversarial random schedule
// (bursts at equal times, short and far-horizon delays, interleaved pops)
// must pop in exactly the (time, push order) sequence a binary heap keyed
// (time, seq) produces.
TEST(CalendarQueueTest, MatchesPriorityQueueReferenceOnRandomSchedules) {
  using Ev = RefEv;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    support::Rng rng(seed);
    CalendarQueue<int> q;
    std::priority_queue<Ev, std::vector<Ev>, std::greater<>> ref;
    std::uint64_t seq = 0;
    Time now = 0;
    int tag = 0;
    for (int step = 0; step < 20'000; ++step) {
      const bool push = q.empty() || rng.next_bool(0.55);
      if (push) {
        // Mix of near events, same-time bursts, and far overflow jumps.
        Time at = now;
        const std::uint64_t kind = rng.next_below(10);
        if (kind < 5) {
          at = now + rng.next_below(4);
        } else if (kind < 9) {
          at = now + rng.next_below(900);
        } else {
          at = now + 1000 + rng.next_below(100'000);  // beyond the horizon
        }
        q.push(at, tag);
        ref.push({at, seq++, tag});
        ++tag;
      } else {
        const auto got = q.pop();
        const Ev want = ref.top();
        ref.pop();
        ASSERT_EQ(got.time, want.time) << "seed " << seed << " step " << step;
        ASSERT_EQ(*got.payload, want.tag) << "seed " << seed << " step " << step;
        q.release(got.ref);
        now = got.time;
      }
    }
    while (!q.empty()) {
      const auto got = q.pop();
      const Ev want = ref.top();
      ref.pop();
      ASSERT_EQ(got.time, want.time);
      ASSERT_EQ(*got.payload, want.tag);
      q.release(got.ref);
    }
    EXPECT_TRUE(ref.empty());
  }
}

TEST(CalendarQueueTest, SlabReusesReleasedNodes) {
  CalendarQueue<std::vector<int>> q;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 600; ++i) {  // crosses one 512-node block
      q.emplace(static_cast<Time>(100 * round + 1)) = {i, i + 1};
    }
    for (int i = 0; i < 600; ++i) {
      const auto p = q.pop();
      ASSERT_EQ((*p.payload)[0], i);
      q.release(p.ref);
    }
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace mdst::sim
